# Empty dependencies file for bench_det_vs_random.
# This may be replaced when dependencies are built.
