file(REMOVE_RECURSE
  "CMakeFiles/bench_dfs_vs_awerbuch.dir/bench_dfs_vs_awerbuch.cpp.o"
  "CMakeFiles/bench_dfs_vs_awerbuch.dir/bench_dfs_vs_awerbuch.cpp.o.d"
  "bench_dfs_vs_awerbuch"
  "bench_dfs_vs_awerbuch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfs_vs_awerbuch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
