# Empty compiler generated dependencies file for bench_dfs_vs_awerbuch.
# This may be replaced when dependencies are built.
