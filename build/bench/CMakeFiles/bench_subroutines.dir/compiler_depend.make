# Empty compiler generated dependencies file for bench_subroutines.
# This may be replaced when dependencies are built.
