file(REMOVE_RECURSE
  "CMakeFiles/bench_subroutines.dir/bench_subroutines.cpp.o"
  "CMakeFiles/bench_subroutines.dir/bench_subroutines.cpp.o.d"
  "bench_subroutines"
  "bench_subroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
