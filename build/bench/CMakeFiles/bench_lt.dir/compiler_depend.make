# Empty compiler generated dependencies file for bench_lt.
# This may be replaced when dependencies are built.
