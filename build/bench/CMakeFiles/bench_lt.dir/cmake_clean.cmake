file(REMOVE_RECURSE
  "CMakeFiles/bench_lt.dir/bench_lt.cpp.o"
  "CMakeFiles/bench_lt.dir/bench_lt.cpp.o.d"
  "bench_lt"
  "bench_lt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
