# Empty compiler generated dependencies file for bench_separator_quality.
# This may be replaced when dependencies are built.
