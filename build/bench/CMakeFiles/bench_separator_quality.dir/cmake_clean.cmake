file(REMOVE_RECURSE
  "CMakeFiles/bench_separator_quality.dir/bench_separator_quality.cpp.o"
  "CMakeFiles/bench_separator_quality.dir/bench_separator_quality.cpp.o.d"
  "bench_separator_quality"
  "bench_separator_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separator_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
