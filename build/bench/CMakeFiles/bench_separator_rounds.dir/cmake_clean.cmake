file(REMOVE_RECURSE
  "CMakeFiles/bench_separator_rounds.dir/bench_separator_rounds.cpp.o"
  "CMakeFiles/bench_separator_rounds.dir/bench_separator_rounds.cpp.o.d"
  "bench_separator_rounds"
  "bench_separator_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separator_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
