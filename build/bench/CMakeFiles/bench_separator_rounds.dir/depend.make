# Empty dependencies file for bench_separator_rounds.
# This may be replaced when dependencies are built.
