# Empty compiler generated dependencies file for bench_partwise.
# This may be replaced when dependencies are built.
