file(REMOVE_RECURSE
  "CMakeFiles/bench_partwise.dir/bench_partwise.cpp.o"
  "CMakeFiles/bench_partwise.dir/bench_partwise.cpp.o.d"
  "bench_partwise"
  "bench_partwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
