file(REMOVE_RECURSE
  "CMakeFiles/bench_weights.dir/bench_weights.cpp.o"
  "CMakeFiles/bench_weights.dir/bench_weights.cpp.o.d"
  "bench_weights"
  "bench_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
