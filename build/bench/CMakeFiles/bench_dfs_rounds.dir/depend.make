# Empty dependencies file for bench_dfs_rounds.
# This may be replaced when dependencies are built.
