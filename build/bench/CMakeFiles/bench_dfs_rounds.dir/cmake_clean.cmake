file(REMOVE_RECURSE
  "CMakeFiles/bench_dfs_rounds.dir/bench_dfs_rounds.cpp.o"
  "CMakeFiles/bench_dfs_rounds.dir/bench_dfs_rounds.cpp.o.d"
  "bench_dfs_rounds"
  "bench_dfs_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfs_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
