file(REMOVE_RECURSE
  "CMakeFiles/bench_phase_coverage.dir/bench_phase_coverage.cpp.o"
  "CMakeFiles/bench_phase_coverage.dir/bench_phase_coverage.cpp.o.d"
  "bench_phase_coverage"
  "bench_phase_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
