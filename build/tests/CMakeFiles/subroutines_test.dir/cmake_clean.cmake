file(REMOVE_RECURSE
  "CMakeFiles/subroutines_test.dir/subroutines_test.cpp.o"
  "CMakeFiles/subroutines_test.dir/subroutines_test.cpp.o.d"
  "subroutines_test"
  "subroutines_test.pdb"
  "subroutines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subroutines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
