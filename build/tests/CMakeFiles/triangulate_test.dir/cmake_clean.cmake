file(REMOVE_RECURSE
  "CMakeFiles/triangulate_test.dir/triangulate_test.cpp.o"
  "CMakeFiles/triangulate_test.dir/triangulate_test.cpp.o.d"
  "triangulate_test"
  "triangulate_test.pdb"
  "triangulate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
