# Empty compiler generated dependencies file for triangulate_test.
# This may be replaced when dependencies are built.
