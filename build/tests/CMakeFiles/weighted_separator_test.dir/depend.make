# Empty dependencies file for weighted_separator_test.
# This may be replaced when dependencies are built.
