file(REMOVE_RECURSE
  "CMakeFiles/weighted_separator_test.dir/weighted_separator_test.cpp.o"
  "CMakeFiles/weighted_separator_test.dir/weighted_separator_test.cpp.o.d"
  "weighted_separator_test"
  "weighted_separator_test.pdb"
  "weighted_separator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_separator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
