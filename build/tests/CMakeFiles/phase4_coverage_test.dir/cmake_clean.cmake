file(REMOVE_RECURSE
  "CMakeFiles/phase4_coverage_test.dir/phase4_coverage_test.cpp.o"
  "CMakeFiles/phase4_coverage_test.dir/phase4_coverage_test.cpp.o.d"
  "phase4_coverage_test"
  "phase4_coverage_test.pdb"
  "phase4_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase4_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
