# Empty dependencies file for phase4_coverage_test.
# This may be replaced when dependencies are built.
