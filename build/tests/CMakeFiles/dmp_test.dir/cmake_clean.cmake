file(REMOVE_RECURSE
  "CMakeFiles/dmp_test.dir/dmp_test.cpp.o"
  "CMakeFiles/dmp_test.dir/dmp_test.cpp.o.d"
  "dmp_test"
  "dmp_test.pdb"
  "dmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
