# Empty dependencies file for dmp_test.
# This may be replaced when dependencies are built.
