file(REMOVE_RECURSE
  "CMakeFiles/faces_membership_test.dir/faces_membership_test.cpp.o"
  "CMakeFiles/faces_membership_test.dir/faces_membership_test.cpp.o.d"
  "faces_membership_test"
  "faces_membership_test.pdb"
  "faces_membership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faces_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
