# Empty compiler generated dependencies file for faces_membership_test.
# This may be replaced when dependencies are built.
