# Empty dependencies file for deep_tree_test.
# This may be replaced when dependencies are built.
