file(REMOVE_RECURSE
  "CMakeFiles/deep_tree_test.dir/deep_tree_test.cpp.o"
  "CMakeFiles/deep_tree_test.dir/deep_tree_test.cpp.o.d"
  "deep_tree_test"
  "deep_tree_test.pdb"
  "deep_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
