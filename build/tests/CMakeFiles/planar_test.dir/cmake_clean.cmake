file(REMOVE_RECURSE
  "CMakeFiles/planar_test.dir/planar_test.cpp.o"
  "CMakeFiles/planar_test.dir/planar_test.cpp.o.d"
  "planar_test"
  "planar_test.pdb"
  "planar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
