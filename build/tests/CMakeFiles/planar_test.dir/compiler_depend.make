# Empty compiler generated dependencies file for planar_test.
# This may be replaced when dependencies are built.
