file(REMOVE_RECURSE
  "CMakeFiles/partwise_message_test.dir/partwise_message_test.cpp.o"
  "CMakeFiles/partwise_message_test.dir/partwise_message_test.cpp.o.d"
  "partwise_message_test"
  "partwise_message_test.pdb"
  "partwise_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partwise_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
