# Empty compiler generated dependencies file for partwise_message_test.
# This may be replaced when dependencies are built.
