# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for partwise_message_test.
