# Empty dependencies file for faces_weights_test.
# This may be replaced when dependencies are built.
