file(REMOVE_RECURSE
  "CMakeFiles/faces_weights_test.dir/faces_weights_test.cpp.o"
  "CMakeFiles/faces_weights_test.dir/faces_weights_test.cpp.o.d"
  "faces_weights_test"
  "faces_weights_test.pdb"
  "faces_weights_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faces_weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
