# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/planar_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/faces_weights_test[1]_include.cmake")
include("/root/repo/build/tests/faces_membership_test[1]_include.cmake")
include("/root/repo/build/tests/congest_test[1]_include.cmake")
include("/root/repo/build/tests/separator_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/subroutines_test[1]_include.cmake")
include("/root/repo/build/tests/dmp_test[1]_include.cmake")
include("/root/repo/build/tests/deep_tree_test[1]_include.cmake")
include("/root/repo/build/tests/phase4_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/triangulate_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/partwise_message_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_separator_test[1]_include.cmake")
