add_test([=[Phase4Coverage.AugmentationAndHiddenFallbackExercised]=]  /root/repo/build/tests/phase4_coverage_test [==[--gtest_filter=Phase4Coverage.AugmentationAndHiddenFallbackExercised]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Phase4Coverage.AugmentationAndHiddenFallbackExercised]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  phase4_coverage_test_TESTS Phase4Coverage.AugmentationAndHiddenFallbackExercised)
