file(REMOVE_RECURSE
  "CMakeFiles/separator_decomposition.dir/separator_decomposition.cpp.o"
  "CMakeFiles/separator_decomposition.dir/separator_decomposition.cpp.o.d"
  "separator_decomposition"
  "separator_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separator_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
