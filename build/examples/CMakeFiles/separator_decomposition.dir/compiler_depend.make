# Empty compiler generated dependencies file for separator_decomposition.
# This may be replaced when dependencies are built.
