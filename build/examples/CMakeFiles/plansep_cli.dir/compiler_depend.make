# Empty compiler generated dependencies file for plansep_cli.
# This may be replaced when dependencies are built.
