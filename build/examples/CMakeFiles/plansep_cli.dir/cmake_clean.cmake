file(REMOVE_RECURSE
  "CMakeFiles/plansep_cli.dir/plansep_cli.cpp.o"
  "CMakeFiles/plansep_cli.dir/plansep_cli.cpp.o.d"
  "plansep_cli"
  "plansep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plansep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
