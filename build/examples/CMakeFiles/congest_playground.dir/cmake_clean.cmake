file(REMOVE_RECURSE
  "CMakeFiles/congest_playground.dir/congest_playground.cpp.o"
  "CMakeFiles/congest_playground.dir/congest_playground.cpp.o.d"
  "congest_playground"
  "congest_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
