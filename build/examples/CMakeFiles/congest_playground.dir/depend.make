# Empty dependencies file for congest_playground.
# This may be replaced when dependencies are built.
