file(REMOVE_RECURSE
  "CMakeFiles/articulation_points.dir/articulation_points.cpp.o"
  "CMakeFiles/articulation_points.dir/articulation_points.cpp.o.d"
  "articulation_points"
  "articulation_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/articulation_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
