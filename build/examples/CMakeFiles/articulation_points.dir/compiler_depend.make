# Empty compiler generated dependencies file for articulation_points.
# This may be replaced when dependencies are built.
