# Empty dependencies file for plansep.
# This may be replaced when dependencies are built.
