
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/awerbuch.cpp" "src/CMakeFiles/plansep.dir/baselines/awerbuch.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/baselines/awerbuch.cpp.o.d"
  "/root/repo/src/baselines/level_separator.cpp" "src/CMakeFiles/plansep.dir/baselines/level_separator.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/baselines/level_separator.cpp.o.d"
  "/root/repo/src/baselines/randomized_separator.cpp" "src/CMakeFiles/plansep.dir/baselines/randomized_separator.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/baselines/randomized_separator.cpp.o.d"
  "/root/repo/src/congest/bfs_tree.cpp" "src/CMakeFiles/plansep.dir/congest/bfs_tree.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/congest/bfs_tree.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "src/CMakeFiles/plansep.dir/congest/network.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/congest/network.cpp.o.d"
  "/root/repo/src/core/plansep.cpp" "src/CMakeFiles/plansep.dir/core/plansep.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/core/plansep.cpp.o.d"
  "/root/repo/src/dfs/builder.cpp" "src/CMakeFiles/plansep.dir/dfs/builder.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/dfs/builder.cpp.o.d"
  "/root/repo/src/dfs/join.cpp" "src/CMakeFiles/plansep.dir/dfs/join.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/dfs/join.cpp.o.d"
  "/root/repo/src/dfs/partial_tree.cpp" "src/CMakeFiles/plansep.dir/dfs/partial_tree.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/dfs/partial_tree.cpp.o.d"
  "/root/repo/src/dfs/validate.cpp" "src/CMakeFiles/plansep.dir/dfs/validate.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/dfs/validate.cpp.o.d"
  "/root/repo/src/faces/augmentation.cpp" "src/CMakeFiles/plansep.dir/faces/augmentation.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/augmentation.cpp.o.d"
  "/root/repo/src/faces/containment.cpp" "src/CMakeFiles/plansep.dir/faces/containment.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/containment.cpp.o.d"
  "/root/repo/src/faces/fundamental.cpp" "src/CMakeFiles/plansep.dir/faces/fundamental.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/fundamental.cpp.o.d"
  "/root/repo/src/faces/hidden.cpp" "src/CMakeFiles/plansep.dir/faces/hidden.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/hidden.cpp.o.d"
  "/root/repo/src/faces/membership.cpp" "src/CMakeFiles/plansep.dir/faces/membership.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/membership.cpp.o.d"
  "/root/repo/src/faces/weight_oracle.cpp" "src/CMakeFiles/plansep.dir/faces/weight_oracle.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/weight_oracle.cpp.o.d"
  "/root/repo/src/faces/weights.cpp" "src/CMakeFiles/plansep.dir/faces/weights.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/faces/weights.cpp.o.d"
  "/root/repo/src/planar/dmp_embedder.cpp" "src/CMakeFiles/plansep.dir/planar/dmp_embedder.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/dmp_embedder.cpp.o.d"
  "/root/repo/src/planar/embedded_graph.cpp" "src/CMakeFiles/plansep.dir/planar/embedded_graph.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/embedded_graph.cpp.o.d"
  "/root/repo/src/planar/face_structure.cpp" "src/CMakeFiles/plansep.dir/planar/face_structure.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/face_structure.cpp.o.d"
  "/root/repo/src/planar/generators.cpp" "src/CMakeFiles/plansep.dir/planar/generators.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/generators.cpp.o.d"
  "/root/repo/src/planar/planarity.cpp" "src/CMakeFiles/plansep.dir/planar/planarity.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/planarity.cpp.o.d"
  "/root/repo/src/planar/region.cpp" "src/CMakeFiles/plansep.dir/planar/region.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/region.cpp.o.d"
  "/root/repo/src/planar/triangulate.cpp" "src/CMakeFiles/plansep.dir/planar/triangulate.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/planar/triangulate.cpp.o.d"
  "/root/repo/src/separator/engine.cpp" "src/CMakeFiles/plansep.dir/separator/engine.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/separator/engine.cpp.o.d"
  "/root/repo/src/separator/hierarchy.cpp" "src/CMakeFiles/plansep.dir/separator/hierarchy.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/separator/hierarchy.cpp.o.d"
  "/root/repo/src/separator/validate.cpp" "src/CMakeFiles/plansep.dir/separator/validate.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/separator/validate.cpp.o.d"
  "/root/repo/src/separator/weighted.cpp" "src/CMakeFiles/plansep.dir/separator/weighted.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/separator/weighted.cpp.o.d"
  "/root/repo/src/shortcuts/partwise.cpp" "src/CMakeFiles/plansep.dir/shortcuts/partwise.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/shortcuts/partwise.cpp.o.d"
  "/root/repo/src/shortcuts/partwise_message.cpp" "src/CMakeFiles/plansep.dir/shortcuts/partwise_message.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/shortcuts/partwise_message.cpp.o.d"
  "/root/repo/src/subroutines/components.cpp" "src/CMakeFiles/plansep.dir/subroutines/components.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/subroutines/components.cpp.o.d"
  "/root/repo/src/subroutines/part_context.cpp" "src/CMakeFiles/plansep.dir/subroutines/part_context.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/subroutines/part_context.cpp.o.d"
  "/root/repo/src/subroutines/problems.cpp" "src/CMakeFiles/plansep.dir/subroutines/problems.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/subroutines/problems.cpp.o.d"
  "/root/repo/src/subroutines/spanning_forest.cpp" "src/CMakeFiles/plansep.dir/subroutines/spanning_forest.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/subroutines/spanning_forest.cpp.o.d"
  "/root/repo/src/tree/rooted_tree.cpp" "src/CMakeFiles/plansep.dir/tree/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/tree/rooted_tree.cpp.o.d"
  "/root/repo/src/util/check.cpp" "src/CMakeFiles/plansep.dir/util/check.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/util/check.cpp.o.d"
  "/root/repo/src/util/io.cpp" "src/CMakeFiles/plansep.dir/util/io.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/util/io.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/plansep.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/plansep.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/plansep.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/plansep.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
