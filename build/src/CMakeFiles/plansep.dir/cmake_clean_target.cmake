file(REMOVE_RECURSE
  "libplansep.a"
)
