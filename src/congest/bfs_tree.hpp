#pragma once

// Message-level distributed BFS: the basic wave algorithm. Builds a BFS
// spanning tree in depth(T) rounds; used to (a) construct the global tree
// the part-wise aggregation engine routes over, and (b) obtain the
// diameter bound D that the paper's Õ(D) claims are measured against.

#include "congest/network.hpp"

namespace plansep::congest {

struct BfsResult {
  NodeId root = planar::kNoNode;
  std::vector<DartId> parent_dart;  // dart v→parent; kNoDart for root/unreached
  std::vector<int> depth;           // -1 for unreached
  int height = 0;                   // max depth reached
  int rounds = 0;                   // rounds the distributed wave took
  long long messages = 0;
};

/// Runs the BFS wave from root over the whole graph.
BfsResult distributed_bfs(const EmbeddedGraph& g, NodeId root);

/// Two-sweep diameter estimate: BFS from root, then BFS from the deepest
/// node found. Returns the second tree's height — a lower bound on the
/// diameter that is within a factor 2 of it (exact on trees). The returned
/// cost is the rounds of the two waves.
struct DiameterEstimate {
  int diameter_lb = 0;  // eccentricity of the second root (<= D)
  int rounds = 0;
};
DiameterEstimate estimate_diameter(const EmbeddedGraph& g, NodeId root);

}  // namespace plansep::congest
