#include "congest/thread_pool.hpp"

#include "util/check.hpp"

namespace plansep::congest {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ensure_workers(int count) {
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_start_.wait(lk, [this] {
      return stopping_ || (task_ != nullptr && next_shard_ < shards_);
    });
    if (stopping_) return;
    const int shard = next_shard_++;
    const auto* fn = task_;
    lk.unlock();
    (*fn)(shard);
    lk.lock();
    if (--pending_ == 0) {
      task_ = nullptr;
      cv_done_.notify_all();
    }
  }
}

int ThreadPool::worker_count() {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::run_shards(int shards, const std::function<void(int)>& fn) {
  PLANSEP_CHECK(shards >= 1);
  if (shards == 1) {
    fn(0);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  PLANSEP_CHECK_MSG(task_ == nullptr,
                    "ThreadPool::run_shards is not reentrant");
  ensure_workers(shards - 1);
  task_ = &fn;
  shards_ = shards;
  next_shard_ = 0;
  pending_ = shards;
  cv_start_.notify_all();
  // The calling thread takes shards too instead of idling at the barrier.
  while (next_shard_ < shards_) {
    const int shard = next_shard_++;
    lk.unlock();
    fn(shard);
    lk.lock();
    if (--pending_ == 0) {
      task_ = nullptr;
      cv_done_.notify_all();
    }
  }
  cv_done_.wait(lk, [this] { return pending_ == 0; });
}

}  // namespace plansep::congest
