#pragma once

// Reusable worker pool for the parallel round executor (network.cpp).
//
// One process-wide pool, created lazily on the first parallel run and
// reused for every subsequent round, so a simulation pays thread start-up
// once, not per round. run_shards hands out shard indices 0..shards-1 to
// the workers plus the calling thread and blocks until every shard has
// finished — a full barrier, which is exactly the synchronous-round
// semantics the CONGEST simulator needs.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace plansep::congest {

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned on demand (up to the
  /// largest shard count ever requested) and joined at process exit.
  static ThreadPool& instance();

  /// Runs fn(shard) for every shard in [0, shards); the calling thread
  /// participates, so `shards` may exceed the worker count. Blocks until
  /// all shards completed. fn must not throw — callers stash exceptions in
  /// their shard state and rethrow after the barrier (network.cpp does).
  void run_shards(int shards, const std::function<void(int)>& fn);

  /// Workers spawned so far (grows on demand, never shrinks; the calling
  /// thread is not counted — k shards need k-1 workers).
  int worker_count();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;
  void ensure_workers(int count);  // callers hold mu_
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* task_ = nullptr;
  int next_shard_ = 0;
  int shards_ = 0;
  int pending_ = 0;
  bool stopping_ = false;
};

}  // namespace plansep::congest
