#pragma once

/// \file
/// Synchronous CONGEST network simulator: the round engine, its parallel
/// executor, and the opt-in trace-sink and fault-injection hooks.

// Synchronous CONGEST network simulator.
//
// The CONGEST model (§1): nodes run a synchronous, failure-free protocol;
// per round, each node may send one O(log n)-bit message over each incident
// link. A Message carries a tag plus three 64-bit words — a fixed small
// number of machine words, i.e. O(log n) bits; the per-edge per-round
// budget of a single message is enforced.
//
// Execution is event-driven: a node's round() handler runs only when it
// has incoming messages or explicitly requested a wake-up, so quiescent
// regions cost nothing. The network stops at global quiescence (no
// messages in flight, no wake-ups) or after max_rounds.
//
// Storage is structure-of-arrays: one flat delivery slab per round
// (contiguous Incoming records grouped by recipient, addressed by per-node
// offset/length arrays) instead of per-node inbox vectors, so a round's
// mail is two contiguous streams — one written at delivery, one read at
// the turns — with no per-node allocation anywhere on the hot path
// (DESIGN.md §7).
//
// Rounds with many active nodes can execute in parallel (set_threads /
// PLANSEP_THREADS): active nodes are sharded over a reusable thread pool,
// outgoing messages are staged in pooled per-shard arenas — grouped by
// destination bucket as they are written — and merged in the serial
// execution order, so a k-thread run is bit-identical to the serial
// engine — same traces, same costs, same exceptions (DESIGN.md §7).
//
// The clean model can be bent on purpose: an opt-in FaultInjector hook
// lets a deterministic fault plan drop, duplicate, stall or reorder
// deliveries and crash/restart nodes at chosen rounds (src/faults/,
// docs/FAULT_MODEL.md). With no injector installed the engine pays one
// branch per round; with one installed, fault decisions are applied on the
// coordinating thread in serial order, so runs stay bit-identical across
// thread counts even under an active plan. Rounds in which the network
// only waits out crash intervals (no active nodes, no stalled mail) can be
// round-fused: the engine advances the clock over the whole gap in one
// step while keeping sink callbacks and injector accounting exact
// (ThreadConfig::fuse_rounds, FaultInjector::next_alive_round).

#include <cstdint>
#include <exception>
#include <span>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::congest {

using planar::DartId;         ///< directed edge (dart) identifier
using planar::EmbeddedGraph;  ///< embedded planar graph
using planar::NodeId;         ///< node identifier

/// One CONGEST message: a tag plus three 64-bit words — a fixed small
/// number of machine words, i.e. O(log n) bits.
struct Message {
  std::uint8_t tag = 0;  ///< protocol-defined message kind
  std::int64_t a = 0;    ///< first payload word
  std::int64_t b = 0;    ///< second payload word
  std::int64_t c = 0;    ///< third payload word
};

/// A delivered message as the recipient sees it.
struct Incoming {
  NodeId from = planar::kNoNode;  ///< sending neighbor
  Message msg;                    ///< the message itself
};

/// A node's inbox for one round: a read-only contiguous slice of the
/// network's flat delivery slab. Valid only for the duration of the
/// round() call it is handed to.
using InboxView = std::span<const Incoming>;

class Network;

namespace detail {
/// Per-shard staging arena of one parallel round: outgoing messages in the
/// shard's execution order, per-destination-bucket index lists into that
/// arena (written in the same pass as the sends, so delivery can scatter
/// bucket-parallel without re-sorting), wake-ups, and the first exception
/// the shard hit. Pooled on the Network — cleared, never reallocated,
/// between rounds.
struct ShardBuf {
  std::vector<std::pair<NodeId, Incoming>> sends;
  std::vector<std::vector<std::uint32_t>> by_bucket;  // indices into sends
  std::vector<NodeId> wakes;
  std::exception_ptr error;
  std::size_t error_turn = 0;
  void reset(int buckets) {
    sends.clear();
    if (static_cast<int>(by_bucket.size()) < buckets) {
      by_bucket.resize(static_cast<std::size_t>(buckets));
    }
    for (auto& b : by_bucket) b.clear();
    wakes.clear();
    error = nullptr;
    error_turn = 0;
  }
};
}  // namespace detail

/// Observer of message-level execution (opt-in; the proptest harness's
/// trace recorder in src/testing/trace.hpp is the canonical sink). Hooks
/// fire synchronously inside Network::run; sinks must not mutate the
/// network. All callbacks are issued from the thread driving run() — the
/// parallel executor defers per-shard events and replays them on the
/// coordinating thread in deterministic order — so a sink needs no
/// internal locking as long as it observes a single network at a time.
class TraceSink {
 public:
  virtual ~TraceSink() = default;  ///< virtual: deleted through base

  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// A message was accepted for delivery (after the bandwidth check).
  virtual void on_send(int round, NodeId from, NodeId to,
                       const Message& msg) = 0;
  /// A round finished: `activated` nodes will run next round, `delivered`
  /// messages were staged this round. Round-fused gaps still report every
  /// fused round here (with 0/0), so round accounting stays exact.
  virtual void on_round_end(int round, int activated, long long delivered) {
    (void)round, (void)activated, (void)delivered;
  }
  /// The run reached quiescence (or max_rounds) after `rounds` rounds and
  /// `messages` accepted sends. Not called when the program throws — a
  /// sink that folds per-run state should treat the next on_run_begin as
  /// an implicit end (obs::MetricsSink does).
  virtual void on_run_end(int rounds, long long messages) {
    (void)rounds, (void)messages;
  }
};

/// Installs a process-wide sink that every Network picks up at run() time
/// unless it has its own (set_trace_sink). Returns the previous sink; pass
/// nullptr to detach. The pointer is published atomically, so installing or
/// detaching a sink is safe even while other threads construct or run
/// networks; callbacks themselves are sequenced by each run() as documented
/// on TraceSink.
TraceSink* set_global_trace_sink(TraceSink* sink);
/// The current process-wide trace sink (nullptr when tracing is disabled).
TraceSink* global_trace_sink();

/// Fault-injection hook consulted by Network::run (opt-in; the seeded
/// deterministic implementation is faults::FaultController, and the full
/// fault taxonomy is specified in docs/FAULT_MODEL.md).
///
/// All queries are issued from the coordinating thread in deterministic
/// serial order — crash decisions before the round's turns, delivery fates
/// and reorder seeds after all turns (at the delivery stage) — so a
/// k-thread run under an active injector stays bit-identical to the serial
/// engine. Implementations must answer as pure functions of their own
/// immutable state plus the query arguments (no wall clock, no per-call
/// randomness) for that guarantee to extend to the injected faults.
///
/// When no injector is installed the engine pays exactly one branch per
/// round for the feature.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;  ///< virtual: deleted through base

  /// Delivery fate of one accepted message (see fate()).
  enum class Fate : std::uint8_t {
    kDeliver,    ///< deliver normally (readable next round)
    kDrop,       ///< message is lost; the sender is not informed
    kDuplicate,  ///< two copies land in the recipient's inbox
    kStall,      ///< delivery is delayed by exactly one extra round
  };

  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// The run finished (quiescence or max_rounds). Not called when the
  /// program throws; treat the next on_run_begin as an implicit end.
  virtual void on_run_end() {}
  /// True when v is crashed in `round`: it loses its turn and any pending
  /// mail. The engine parks the node and grants it one wake-up turn (with
  /// an empty inbox) in the first round the injector reports it alive —
  /// the crash-restart contract of docs/FAULT_MODEL.md.
  virtual bool crashed(int round, NodeId v) = 0;
  /// Fate of the message accepted on from→to in `round`. Queried once per
  /// accepted message, at the delivery stage.
  virtual Fate fate(int round, NodeId from, NodeId to) = 0;
  /// Nonzero: deterministically shuffle the inbox `to` received this round
  /// with this seed (adversarial intra-round delivery order). Zero: keep
  /// the canonical serial delivery order.
  virtual std::uint64_t reorder_seed(int round, NodeId to) = 0;

  /// Pure lookahead for the round-fusion fast path: the first round
  /// r >= `round` in which the (currently parked) node v is not crashed.
  /// Must be side-effect-free — the engine separately replays crashed()
  /// for every fused round so injection accounting stays exact — and must
  /// never overshoot the true restart round; undershooting (returning
  /// `round` itself) is always safe and merely disables fusion for this
  /// node. The default disables fusion, so existing injectors keep their
  /// exact behavior without changes.
  virtual int next_alive_round(int round, NodeId v) {
    (void)v;
    return round;
  }
};

/// Installs a process-wide fault injector that every Network picks up at
/// run() time unless it has its own (set_fault_injector). Returns the
/// previous injector; pass nullptr to detach. Atomic publish, like
/// set_global_trace_sink.
FaultInjector* set_global_fault_injector(FaultInjector* injector);
/// The current process-wide injector (nullptr when faults are disabled).
FaultInjector* global_fault_injector();

/// Round-execution engine knobs.
struct ThreadConfig {
  /// Worker shards per round; 1 = the serial engine.
  int threads = 1;
  /// Rounds with fewer active nodes than this run serially even when
  /// threads > 1 (identical results either way; purely a latency knob —
  /// sharding a near-empty round costs more than it saves).
  int min_active_to_parallelize = 64;
  /// Round fusion: advance fault-gap rounds (no active nodes, no stalled
  /// mail, only parked crashed nodes) in one step instead of grinding the
  /// full round machinery per round. Observationally identical either way
  /// (sink callbacks and injector accounting are replayed per fused
  /// round); purely a throughput knob. PLANSEP_FUSION=0 disables.
  bool fuse_rounds = true;
};

/// Process-wide default every Network adopts at construction. Initialized
/// once from the environment: PLANSEP_THREADS (shards), PLANSEP_PAR_THRESHOLD
/// (min active nodes) and PLANSEP_FUSION (round fusion; "0" disables).
/// Returns the previous config.
ThreadConfig set_default_thread_config(const ThreadConfig& cfg);
/// The current process-wide default thread configuration.
ThreadConfig default_thread_config();

/// RAII override of the process default — the way tests force pipelines
/// whose networks are constructed internally onto the parallel (or serial)
/// path. Restores the previous default on destruction; scopes nest.
class ScopedThreadConfig {
 public:
  /// Installs cfg as the process default for the scope's lifetime.
  explicit ScopedThreadConfig(const ThreadConfig& cfg)
      : prev_(set_default_thread_config(cfg)) {}
  ~ScopedThreadConfig() { set_default_thread_config(prev_); }  ///< restores
  ScopedThreadConfig(const ScopedThreadConfig&) = delete;  ///< non-copyable
  ScopedThreadConfig& operator=(const ScopedThreadConfig&) = delete;  ///< non-copyable

 private:
  ThreadConfig prev_;
};

/// Per-node send/wake interface handed to NodeProgram::round.
class Ctx {
 public:
  /// Sends msg to the given neighbor this round. At most one message per
  /// neighbor per round (CONGEST bandwidth); violations throw.
  void send(NodeId neighbor, const Message& msg);

  /// Ensures this node's round() is invoked next round even without mail.
  void wake_next_round();

  /// This node's id.
  NodeId self() const { return self_; }
  /// The current round number (0-based).
  int round() const { return round_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  detail::ShardBuf* buf_ = nullptr;  // non-null on the parallel path
  NodeId self_ = planar::kNoNode;
  int round_ = 0;
};

/// A distributed protocol: per-node round handlers over shared-nothing
/// per-node state, exactly the CONGEST programming model.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;  ///< virtual: deleted through base

  /// Nodes that must act in round 0 (e.g. the BFS root). Runs on the
  /// coordinating thread; whole-program state is set up here.
  virtual std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) = 0;

  /// Invoked for every node that has mail or requested a wake-up. The
  /// inbox view aliases the network's delivery slab and dies with the
  /// call — copy out anything that must survive the turn.
  ///
  /// Concurrency contract: round(v, ...) may read shared immutable state
  /// (the graph, config) but must only *mutate* state keyed by v — the
  /// node's own slots of per-node arrays/maps. Distinct nodes' handlers run
  /// concurrently when the network executes with threads > 1; the CONGEST
  /// model itself demands this locality (nodes share no memory), so a
  /// conforming protocol satisfies it for free.
  virtual void round(NodeId v, InboxView inbox, Ctx& ctx) = 0;
};

/// The simulator: executes NodeProgram rounds over an embedded graph with
/// the one-message-per-edge-per-round budget enforced.
class Network {
 public:
  /// A network over g; g must outlive the network.
  explicit Network(const EmbeddedGraph& g);

  /// Runs prog until quiescence; returns the number of rounds executed.
  int run(NodeProgram& prog, int max_rounds = 1 << 26);

  /// Messages accepted during the last run().
  long long messages_sent() const { return messages_sent_; }
  /// The graph this network simulates on.
  const EmbeddedGraph& graph() const { return *g_; }

  /// Instance-level trace sink; overrides the global one. nullptr detaches.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  /// Instance-level fault injector; overrides the global one. nullptr
  /// detaches. Resolved (instance, then global) once at run() entry.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// Shards rounds over k threads (k >= 1; 1 = serial engine). Runs are
  /// bit-identical for every k. The construction-time default comes from
  /// default_thread_config().
  void set_threads(int k);
  /// The current shard count (1 = serial engine).
  int threads() const { return cfg_.threads; }
  /// Minimum active nodes for a round to go parallel (see ThreadConfig).
  void set_min_active_to_parallelize(int min_active);
  /// Enables/disables the round-fusion fast path (see ThreadConfig).
  void set_round_fusion(bool on) { cfg_.fuse_rounds = on; }
  /// Rounds the last run() advanced through the fused fast path (0 when
  /// fusion never fired or is disabled; always <= the returned rounds).
  long long fused_rounds() const { return fused_rounds_; }

 private:
  friend class Ctx;
  DartId checked_dart(NodeId from, NodeId to, int round);
  void do_send(NodeId from, NodeId to, const Message& msg, int round);
  void do_send_staged(detail::ShardBuf& buf, NodeId from, NodeId to,
                      const Message& msg, int round);
  int bucket_of(NodeId to) const {
    return static_cast<int>(static_cast<long long>(to) * buckets_ /
                            static_cast<long long>(num_nodes_));
  }
  InboxView take_inbox(NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    const InboxView mail(inbox_data_.data() + inbox_off_[i], inbox_len_[i]);
    inbox_len_[i] = 0;  // consumed; v is owned by exactly one shard
    return mail;
  }
  // Delivery-slab builders. count_delivery feeds one accepted message into
  // the per-node length counters + activation bookkeeping (pass 1);
  // finish_offsets turns the counters into slab offsets and write cursors.
  void count_delivery(NodeId to);
  std::uint32_t finish_offsets();
  void parallel_turns(NodeProgram& prog, int round,
                      const std::vector<NodeId>& active, int shards);
  long long run_round_parallel(NodeProgram& prog, int round,
                               const std::vector<NodeId>& active, int shards);
  long long deliver_serial();
  long long run_round_faulted(NodeProgram& prog, int round,
                              const std::vector<NodeId>& active);
  long long deliver_faulted(int round);
  int fuse_fault_gap(int round, int max_rounds);

  const EmbeddedGraph* g_;
  TraceSink* sink_ = nullptr;
  TraceSink* active_sink_ = nullptr;  // resolved at run() entry
  FaultInjector* fault_ = nullptr;
  FaultInjector* active_fault_ = nullptr;  // resolved at run() entry
  ThreadConfig cfg_;
  long long messages_sent_ = 0;
  long long fused_rounds_ = 0;
  long long num_nodes_ = 1;  // cached for bucket_of
  int buckets_ = 1;          // destination buckets of the current round
  // Flat delivery slabs (double-buffered): node v's mail this round is
  // inbox_data_[inbox_off_[v] .. +inbox_len_[v]). inbox_next_ is the slab
  // under construction at the delivery stage; the two swap each round.
  std::vector<Incoming> inbox_data_;
  std::vector<Incoming> inbox_next_;
  std::vector<std::uint32_t> inbox_off_;
  std::vector<std::uint32_t> inbox_len_;
  std::vector<std::uint32_t> cursor_;     // per-node scatter write positions
  std::vector<NodeId> recipients_;        // first-arrival order, this round
  std::vector<char> woken_;
  std::vector<NodeId> active_next_;
  std::vector<std::pair<NodeId, Incoming>> staged_;  // serial/fault staging
  std::vector<detail::ShardBuf> shard_bufs_;  // pooled parallel arenas
  // Per (from -> to) sent-this-round guard, keyed by dart id.
  std::vector<int> sent_round_;
  // Fault-path state (touched only while a FaultInjector is active).
  std::vector<std::pair<NodeId, Incoming>> deferred_;       // arriving this round
  std::vector<std::pair<NodeId, Incoming>> deferred_next_;  // stalled this round
  std::vector<std::pair<NodeId, Incoming>> fault_deliver_;  // post-fate sequence
  std::vector<NodeId> faulted_active_;  // this round's survivors + restarts
  std::vector<NodeId> crash_pending_;   // parked until their crash ends
  std::vector<char> crash_pending_flag_;
};

}  // namespace plansep::congest
