#pragma once

// Synchronous CONGEST network simulator.
//
// The CONGEST model (§1): nodes run a synchronous, failure-free protocol;
// per round, each node may send one O(log n)-bit message over each incident
// link. A Message carries a tag plus three 64-bit words — a fixed small
// number of machine words, i.e. O(log n) bits; the per-edge per-round
// budget of a single message is enforced.
//
// Execution is event-driven: a node's round() handler runs only when it
// has incoming messages or explicitly requested a wake-up, so quiescent
// regions cost nothing. The network stops at global quiescence (no
// messages in flight, no wake-ups) or after max_rounds.

#include <cstdint>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::congest {

using planar::DartId;
using planar::EmbeddedGraph;
using planar::NodeId;

struct Message {
  std::uint8_t tag = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

struct Incoming {
  NodeId from = planar::kNoNode;
  Message msg;
};

class Network;

/// Observer of message-level execution (opt-in; the proptest harness's
/// trace recorder in src/testing/trace.hpp is the canonical sink). Hooks
/// fire synchronously inside Network::run; sinks must not mutate the
/// network.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// A message was accepted for delivery (after the bandwidth check).
  virtual void on_send(int round, NodeId from, NodeId to,
                       const Message& msg) = 0;
  /// A round finished: `activated` nodes will run next round, `delivered`
  /// messages were staged this round.
  virtual void on_round_end(int round, int activated, long long delivered) {
    (void)round, (void)activated, (void)delivered;
  }
};

/// Installs a process-wide sink that every Network picks up at run() time
/// unless it has its own (set_trace_sink). Returns the previous sink; pass
/// nullptr to detach. The simulator is single-threaded, and so is this.
TraceSink* set_global_trace_sink(TraceSink* sink);
TraceSink* global_trace_sink();

/// Per-node send/wake interface handed to NodeProgram::round.
class Ctx {
 public:
  /// Sends msg to the given neighbor this round. At most one message per
  /// neighbor per round (CONGEST bandwidth); violations throw.
  void send(NodeId neighbor, const Message& msg);

  /// Ensures this node's round() is invoked next round even without mail.
  void wake_next_round();

  /// This node's id.
  NodeId self() const { return self_; }
  int round() const { return round_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId self_ = planar::kNoNode;
  int round_ = 0;
};

class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Nodes that must act in round 0 (e.g. the BFS root).
  virtual std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) = 0;

  /// Invoked for every node that has mail or requested a wake-up.
  virtual void round(NodeId v, const std::vector<Incoming>& inbox,
                     Ctx& ctx) = 0;
};

class Network {
 public:
  explicit Network(const EmbeddedGraph& g);

  /// Runs prog until quiescence; returns the number of rounds executed.
  int run(NodeProgram& prog, int max_rounds = 1 << 26);

  long long messages_sent() const { return messages_sent_; }
  const EmbeddedGraph& graph() const { return *g_; }

  /// Instance-level trace sink; overrides the global one. nullptr detaches.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

 private:
  friend class Ctx;
  void do_send(NodeId from, NodeId to, const Message& msg, int round);

  const EmbeddedGraph* g_;
  TraceSink* sink_ = nullptr;
  TraceSink* active_sink_ = nullptr;  // resolved at run() entry
  long long messages_sent_ = 0;
  // Per-round delivery state.
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<char> woken_;
  std::vector<NodeId> active_next_;
  std::vector<std::pair<NodeId, Incoming>> staged_;
  // Per (from -> to) sent-this-round guard, keyed by dart id.
  std::vector<int> sent_round_;
};

}  // namespace plansep::congest
