#pragma once

/// \file
/// Synchronous CONGEST network simulator: the round engine, its parallel
/// executor, and the opt-in trace-sink and fault-injection hooks.

// Synchronous CONGEST network simulator.
//
// The CONGEST model (§1): nodes run a synchronous, failure-free protocol;
// per round, each node may send one O(log n)-bit message over each incident
// link. A Message carries a tag plus three 64-bit words — a fixed small
// number of machine words, i.e. O(log n) bits; the per-edge per-round
// budget of a single message is enforced.
//
// Execution is event-driven: a node's round() handler runs only when it
// has incoming messages or explicitly requested a wake-up, so quiescent
// regions cost nothing. The network stops at global quiescence (no
// messages in flight, no wake-ups) or after max_rounds.
//
// Rounds with many active nodes can execute in parallel (set_threads /
// PLANSEP_THREADS): active nodes are sharded over a reusable thread pool,
// outgoing messages are staged in per-shard buffers and merged in the
// serial execution order, so a k-thread run is bit-identical to the serial
// engine — same traces, same costs, same exceptions (DESIGN.md §7).
//
// The clean model can be bent on purpose: an opt-in FaultInjector hook
// lets a deterministic fault plan drop, duplicate, stall or reorder
// deliveries and crash/restart nodes at chosen rounds (src/faults/,
// docs/FAULT_MODEL.md). With no injector installed the engine pays one
// branch per round; with one installed, fault decisions are applied on the
// coordinating thread in serial order, so runs stay bit-identical across
// thread counts even under an active plan.

#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::congest {

using planar::DartId;         ///< directed edge (dart) identifier
using planar::EmbeddedGraph;  ///< embedded planar graph
using planar::NodeId;         ///< node identifier

/// One CONGEST message: a tag plus three 64-bit words — a fixed small
/// number of machine words, i.e. O(log n) bits.
struct Message {
  std::uint8_t tag = 0;  ///< protocol-defined message kind
  std::int64_t a = 0;    ///< first payload word
  std::int64_t b = 0;    ///< second payload word
  std::int64_t c = 0;    ///< third payload word
};

/// A delivered message as the recipient sees it.
struct Incoming {
  NodeId from = planar::kNoNode;  ///< sending neighbor
  Message msg;                    ///< the message itself
};

class Network;

namespace detail {
/// Per-shard staging area of one parallel round: outgoing messages and
/// wake-ups in the shard's execution order, plus the first exception the
/// shard hit (and the global turn index it occurred at). Pooled on the
/// Network — cleared, never reallocated, between rounds.
struct ShardBuf {
  std::vector<std::pair<NodeId, Incoming>> sends;
  std::vector<NodeId> wakes;
  std::exception_ptr error;
  std::size_t error_turn = 0;
  void reset() {
    sends.clear();
    wakes.clear();
    error = nullptr;
    error_turn = 0;
  }
};
}  // namespace detail

/// Observer of message-level execution (opt-in; the proptest harness's
/// trace recorder in src/testing/trace.hpp is the canonical sink). Hooks
/// fire synchronously inside Network::run; sinks must not mutate the
/// network. All callbacks are issued from the thread driving run() — the
/// parallel executor defers per-shard events and replays them on the
/// coordinating thread in deterministic order — so a sink needs no
/// internal locking as long as it observes a single network at a time.
class TraceSink {
 public:
  virtual ~TraceSink() = default;  ///< virtual: deleted through base

  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// A message was accepted for delivery (after the bandwidth check).
  virtual void on_send(int round, NodeId from, NodeId to,
                       const Message& msg) = 0;
  /// A round finished: `activated` nodes will run next round, `delivered`
  /// messages were staged this round.
  virtual void on_round_end(int round, int activated, long long delivered) {
    (void)round, (void)activated, (void)delivered;
  }
  /// The run reached quiescence (or max_rounds) after `rounds` rounds and
  /// `messages` accepted sends. Not called when the program throws — a
  /// sink that folds per-run state should treat the next on_run_begin as
  /// an implicit end (obs::MetricsSink does).
  virtual void on_run_end(int rounds, long long messages) {
    (void)rounds, (void)messages;
  }
};

/// Installs a process-wide sink that every Network picks up at run() time
/// unless it has its own (set_trace_sink). Returns the previous sink; pass
/// nullptr to detach. The pointer is published atomically, so installing or
/// detaching a sink is safe even while other threads construct or run
/// networks; callbacks themselves are sequenced by each run() as documented
/// on TraceSink.
TraceSink* set_global_trace_sink(TraceSink* sink);
/// The current process-wide trace sink (nullptr when tracing is disabled).
TraceSink* global_trace_sink();

/// Fault-injection hook consulted by Network::run (opt-in; the seeded
/// deterministic implementation is faults::FaultController, and the full
/// fault taxonomy is specified in docs/FAULT_MODEL.md).
///
/// All queries are issued from the coordinating thread in deterministic
/// serial order — crash decisions before the round's turns, delivery fates
/// and reorder seeds after all turns (at the delivery stage) — so a
/// k-thread run under an active injector stays bit-identical to the serial
/// engine. Implementations must answer as pure functions of their own
/// immutable state plus the query arguments (no wall clock, no per-call
/// randomness) for that guarantee to extend to the injected faults.
///
/// When no injector is installed the engine pays exactly one branch per
/// round for the feature.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;  ///< virtual: deleted through base

  /// Delivery fate of one accepted message (see fate()).
  enum class Fate : std::uint8_t {
    kDeliver,    ///< deliver normally (readable next round)
    kDrop,       ///< message is lost; the sender is not informed
    kDuplicate,  ///< two copies land in the recipient's inbox
    kStall,      ///< delivery is delayed by exactly one extra round
  };

  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// The run finished (quiescence or max_rounds). Not called when the
  /// program throws; treat the next on_run_begin as an implicit end.
  virtual void on_run_end() {}
  /// True when v is crashed in `round`: it loses its turn and any pending
  /// mail. The engine parks the node and grants it one wake-up turn (with
  /// an empty inbox) in the first round the injector reports it alive —
  /// the crash-restart contract of docs/FAULT_MODEL.md.
  virtual bool crashed(int round, NodeId v) = 0;
  /// Fate of the message accepted on from→to in `round`. Queried once per
  /// accepted message, at the delivery stage.
  virtual Fate fate(int round, NodeId from, NodeId to) = 0;
  /// Nonzero: deterministically shuffle the inbox `to` received this round
  /// with this seed (adversarial intra-round delivery order). Zero: keep
  /// the canonical serial delivery order.
  virtual std::uint64_t reorder_seed(int round, NodeId to) = 0;
};

/// Installs a process-wide fault injector that every Network picks up at
/// run() time unless it has its own (set_fault_injector). Returns the
/// previous injector; pass nullptr to detach. Atomic publish, like
/// set_global_trace_sink.
FaultInjector* set_global_fault_injector(FaultInjector* injector);
/// The current process-wide injector (nullptr when faults are disabled).
FaultInjector* global_fault_injector();

/// Round-execution parallelism knobs.
struct ThreadConfig {
  /// Worker shards per round; 1 = the serial engine.
  int threads = 1;
  /// Rounds with fewer active nodes than this run serially even when
  /// threads > 1 (identical results either way; purely a latency knob —
  /// sharding a near-empty round costs more than it saves).
  int min_active_to_parallelize = 64;
};

/// Process-wide default every Network adopts at construction. Initialized
/// once from the environment: PLANSEP_THREADS (shards) and
/// PLANSEP_PAR_THRESHOLD (min active nodes). Returns the previous config.
ThreadConfig set_default_thread_config(const ThreadConfig& cfg);
/// The current process-wide default thread configuration.
ThreadConfig default_thread_config();

/// RAII override of the process default — the way tests force pipelines
/// whose networks are constructed internally onto the parallel (or serial)
/// path. Restores the previous default on destruction.
class ScopedThreadConfig {
 public:
  /// Installs cfg as the process default for the scope's lifetime.
  explicit ScopedThreadConfig(const ThreadConfig& cfg)
      : prev_(set_default_thread_config(cfg)) {}
  ~ScopedThreadConfig() { set_default_thread_config(prev_); }  ///< restores
  ScopedThreadConfig(const ScopedThreadConfig&) = delete;  ///< non-copyable
  ScopedThreadConfig& operator=(const ScopedThreadConfig&) = delete;  ///< non-copyable

 private:
  ThreadConfig prev_;
};

/// Per-node send/wake interface handed to NodeProgram::round.
class Ctx {
 public:
  /// Sends msg to the given neighbor this round. At most one message per
  /// neighbor per round (CONGEST bandwidth); violations throw.
  void send(NodeId neighbor, const Message& msg);

  /// Ensures this node's round() is invoked next round even without mail.
  void wake_next_round();

  /// This node's id.
  NodeId self() const { return self_; }
  /// The current round number (0-based).
  int round() const { return round_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  detail::ShardBuf* buf_ = nullptr;  // non-null on the parallel path
  NodeId self_ = planar::kNoNode;
  int round_ = 0;
};

/// A distributed protocol: per-node round handlers over shared-nothing
/// per-node state, exactly the CONGEST programming model.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;  ///< virtual: deleted through base

  /// Nodes that must act in round 0 (e.g. the BFS root). Runs on the
  /// coordinating thread; whole-program state is set up here.
  virtual std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) = 0;

  /// Invoked for every node that has mail or requested a wake-up.
  ///
  /// Concurrency contract: round(v, ...) may read shared immutable state
  /// (the graph, config) but must only *mutate* state keyed by v — the
  /// node's own slots of per-node arrays/maps. Distinct nodes' handlers run
  /// concurrently when the network executes with threads > 1; the CONGEST
  /// model itself demands this locality (nodes share no memory), so a
  /// conforming protocol satisfies it for free.
  virtual void round(NodeId v, const std::vector<Incoming>& inbox,
                     Ctx& ctx) = 0;
};

/// The simulator: executes NodeProgram rounds over an embedded graph with
/// the one-message-per-edge-per-round budget enforced.
class Network {
 public:
  /// A network over g; g must outlive the network.
  explicit Network(const EmbeddedGraph& g);

  /// Runs prog until quiescence; returns the number of rounds executed.
  int run(NodeProgram& prog, int max_rounds = 1 << 26);

  /// Messages accepted during the last run().
  long long messages_sent() const { return messages_sent_; }
  /// The graph this network simulates on.
  const EmbeddedGraph& graph() const { return *g_; }

  /// Instance-level trace sink; overrides the global one. nullptr detaches.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  /// Instance-level fault injector; overrides the global one. nullptr
  /// detaches. Resolved (instance, then global) once at run() entry.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// Shards rounds over k threads (k >= 1; 1 = serial engine). Runs are
  /// bit-identical for every k. The construction-time default comes from
  /// default_thread_config().
  void set_threads(int k);
  /// The current shard count (1 = serial engine).
  int threads() const { return cfg_.threads; }
  /// Minimum active nodes for a round to go parallel (see ThreadConfig).
  void set_min_active_to_parallelize(int min_active);

 private:
  friend class Ctx;
  DartId checked_dart(NodeId from, NodeId to, int round);
  void do_send(NodeId from, NodeId to, const Message& msg, int round);
  void do_send_staged(detail::ShardBuf& buf, NodeId from, NodeId to,
                      const Message& msg, int round);
  void parallel_turns(NodeProgram& prog, int round,
                      const std::vector<NodeId>& active, int shards);
  long long run_round_parallel(NodeProgram& prog, int round,
                               const std::vector<NodeId>& active, int shards);
  long long run_round_faulted(NodeProgram& prog, int round,
                              const std::vector<NodeId>& active);
  long long deliver_faulted(int round);

  const EmbeddedGraph* g_;
  TraceSink* sink_ = nullptr;
  TraceSink* active_sink_ = nullptr;  // resolved at run() entry
  FaultInjector* fault_ = nullptr;
  FaultInjector* active_fault_ = nullptr;  // resolved at run() entry
  ThreadConfig cfg_;
  long long messages_sent_ = 0;
  // Per-round delivery state.
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<char> woken_;
  std::vector<NodeId> active_next_;
  std::vector<std::pair<NodeId, Incoming>> staged_;
  std::vector<detail::ShardBuf> shard_bufs_;  // pooled parallel staging
  // Per (from -> to) sent-this-round guard, keyed by dart id.
  std::vector<int> sent_round_;
  // Fault-path state (touched only while a FaultInjector is active).
  std::vector<std::pair<NodeId, Incoming>> deferred_;       // arriving this round
  std::vector<std::pair<NodeId, Incoming>> deferred_next_;  // stalled this round
  std::vector<NodeId> faulted_active_;  // this round's survivors + restarts
  std::vector<NodeId> crash_pending_;   // parked until their crash ends
  std::vector<char> crash_pending_flag_;
  std::vector<NodeId> touched_;  // inboxes delivered to (reorder targets)
};

}  // namespace plansep::congest
