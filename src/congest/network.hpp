#pragma once

// Synchronous CONGEST network simulator.
//
// The CONGEST model (§1): nodes run a synchronous, failure-free protocol;
// per round, each node may send one O(log n)-bit message over each incident
// link. A Message carries a tag plus three 64-bit words — a fixed small
// number of machine words, i.e. O(log n) bits; the per-edge per-round
// budget of a single message is enforced.
//
// Execution is event-driven: a node's round() handler runs only when it
// has incoming messages or explicitly requested a wake-up, so quiescent
// regions cost nothing. The network stops at global quiescence (no
// messages in flight, no wake-ups) or after max_rounds.
//
// Rounds with many active nodes can execute in parallel (set_threads /
// PLANSEP_THREADS): active nodes are sharded over a reusable thread pool,
// outgoing messages are staged in per-shard buffers and merged in the
// serial execution order, so a k-thread run is bit-identical to the serial
// engine — same traces, same costs, same exceptions (DESIGN.md §7).

#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::congest {

using planar::DartId;
using planar::EmbeddedGraph;
using planar::NodeId;

struct Message {
  std::uint8_t tag = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

struct Incoming {
  NodeId from = planar::kNoNode;
  Message msg;
};

class Network;

namespace detail {
/// Per-shard staging area of one parallel round: outgoing messages and
/// wake-ups in the shard's execution order, plus the first exception the
/// shard hit (and the global turn index it occurred at). Pooled on the
/// Network — cleared, never reallocated, between rounds.
struct ShardBuf {
  std::vector<std::pair<NodeId, Incoming>> sends;
  std::vector<NodeId> wakes;
  std::exception_ptr error;
  std::size_t error_turn = 0;
  void reset() {
    sends.clear();
    wakes.clear();
    error = nullptr;
    error_turn = 0;
  }
};
}  // namespace detail

/// Observer of message-level execution (opt-in; the proptest harness's
/// trace recorder in src/testing/trace.hpp is the canonical sink). Hooks
/// fire synchronously inside Network::run; sinks must not mutate the
/// network. All callbacks are issued from the thread driving run() — the
/// parallel executor defers per-shard events and replays them on the
/// coordinating thread in deterministic order — so a sink needs no
/// internal locking as long as it observes a single network at a time.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A fresh run() started on a network over g.
  virtual void on_run_begin(const EmbeddedGraph& g) { (void)g; }
  /// A message was accepted for delivery (after the bandwidth check).
  virtual void on_send(int round, NodeId from, NodeId to,
                       const Message& msg) = 0;
  /// A round finished: `activated` nodes will run next round, `delivered`
  /// messages were staged this round.
  virtual void on_round_end(int round, int activated, long long delivered) {
    (void)round, (void)activated, (void)delivered;
  }
  /// The run reached quiescence (or max_rounds) after `rounds` rounds and
  /// `messages` accepted sends. Not called when the program throws — a
  /// sink that folds per-run state should treat the next on_run_begin as
  /// an implicit end (obs::MetricsSink does).
  virtual void on_run_end(int rounds, long long messages) {
    (void)rounds, (void)messages;
  }
};

/// Installs a process-wide sink that every Network picks up at run() time
/// unless it has its own (set_trace_sink). Returns the previous sink; pass
/// nullptr to detach. The pointer is published atomically, so installing or
/// detaching a sink is safe even while other threads construct or run
/// networks; callbacks themselves are sequenced by each run() as documented
/// on TraceSink.
TraceSink* set_global_trace_sink(TraceSink* sink);
TraceSink* global_trace_sink();

/// Round-execution parallelism knobs.
struct ThreadConfig {
  /// Worker shards per round; 1 = the serial engine.
  int threads = 1;
  /// Rounds with fewer active nodes than this run serially even when
  /// threads > 1 (identical results either way; purely a latency knob —
  /// sharding a near-empty round costs more than it saves).
  int min_active_to_parallelize = 64;
};

/// Process-wide default every Network adopts at construction. Initialized
/// once from the environment: PLANSEP_THREADS (shards) and
/// PLANSEP_PAR_THRESHOLD (min active nodes). Returns the previous config.
ThreadConfig set_default_thread_config(const ThreadConfig& cfg);
ThreadConfig default_thread_config();

/// RAII override of the process default — the way tests force pipelines
/// whose networks are constructed internally onto the parallel (or serial)
/// path. Restores the previous default on destruction.
class ScopedThreadConfig {
 public:
  explicit ScopedThreadConfig(const ThreadConfig& cfg)
      : prev_(set_default_thread_config(cfg)) {}
  ~ScopedThreadConfig() { set_default_thread_config(prev_); }
  ScopedThreadConfig(const ScopedThreadConfig&) = delete;
  ScopedThreadConfig& operator=(const ScopedThreadConfig&) = delete;

 private:
  ThreadConfig prev_;
};

/// Per-node send/wake interface handed to NodeProgram::round.
class Ctx {
 public:
  /// Sends msg to the given neighbor this round. At most one message per
  /// neighbor per round (CONGEST bandwidth); violations throw.
  void send(NodeId neighbor, const Message& msg);

  /// Ensures this node's round() is invoked next round even without mail.
  void wake_next_round();

  /// This node's id.
  NodeId self() const { return self_; }
  int round() const { return round_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  detail::ShardBuf* buf_ = nullptr;  // non-null on the parallel path
  NodeId self_ = planar::kNoNode;
  int round_ = 0;
};

class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Nodes that must act in round 0 (e.g. the BFS root). Runs on the
  /// coordinating thread; whole-program state is set up here.
  virtual std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) = 0;

  /// Invoked for every node that has mail or requested a wake-up.
  ///
  /// Concurrency contract: round(v, ...) may read shared immutable state
  /// (the graph, config) but must only *mutate* state keyed by v — the
  /// node's own slots of per-node arrays/maps. Distinct nodes' handlers run
  /// concurrently when the network executes with threads > 1; the CONGEST
  /// model itself demands this locality (nodes share no memory), so a
  /// conforming protocol satisfies it for free.
  virtual void round(NodeId v, const std::vector<Incoming>& inbox,
                     Ctx& ctx) = 0;
};

class Network {
 public:
  explicit Network(const EmbeddedGraph& g);

  /// Runs prog until quiescence; returns the number of rounds executed.
  int run(NodeProgram& prog, int max_rounds = 1 << 26);

  long long messages_sent() const { return messages_sent_; }
  const EmbeddedGraph& graph() const { return *g_; }

  /// Instance-level trace sink; overrides the global one. nullptr detaches.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  /// Shards rounds over k threads (k >= 1; 1 = serial engine). Runs are
  /// bit-identical for every k. The construction-time default comes from
  /// default_thread_config().
  void set_threads(int k);
  int threads() const { return cfg_.threads; }
  /// Minimum active nodes for a round to go parallel (see ThreadConfig).
  void set_min_active_to_parallelize(int min_active);

 private:
  friend class Ctx;
  DartId checked_dart(NodeId from, NodeId to, int round);
  void do_send(NodeId from, NodeId to, const Message& msg, int round);
  void do_send_staged(detail::ShardBuf& buf, NodeId from, NodeId to,
                      const Message& msg, int round);
  long long run_round_parallel(NodeProgram& prog, int round,
                               const std::vector<NodeId>& active, int shards);

  const EmbeddedGraph* g_;
  TraceSink* sink_ = nullptr;
  TraceSink* active_sink_ = nullptr;  // resolved at run() entry
  ThreadConfig cfg_;
  long long messages_sent_ = 0;
  // Per-round delivery state.
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<char> woken_;
  std::vector<NodeId> active_next_;
  std::vector<std::pair<NodeId, Incoming>> staged_;
  std::vector<detail::ShardBuf> shard_bufs_;  // pooled parallel staging
  // Per (from -> to) sent-this-round guard, keyed by dart id.
  std::vector<int> sent_round_;
};

}  // namespace plansep::congest
