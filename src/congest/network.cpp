#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "congest/thread_pool.hpp"
#include "obs/sink.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace plansep::congest {

namespace {

std::atomic<TraceSink*> g_trace_sink{nullptr};
std::atomic<FaultInjector*> g_fault_injector{nullptr};

// Below this many staged messages the bucket-parallel scatter costs more
// in pool wake-up than it saves; deliver serially instead (identical
// results either way — the scatter order per recipient is the same).
constexpr std::uint32_t kParallelScatterThreshold = 2048;

ThreadConfig read_env_config() {
  ThreadConfig cfg;
  if (const char* e = std::getenv("PLANSEP_THREADS")) {
    const int v = std::atoi(e);
    if (v >= 1) cfg.threads = std::min(v, 256);
  }
  if (const char* e = std::getenv("PLANSEP_PAR_THRESHOLD")) {
    const int v = std::atoi(e);
    if (v >= 0) cfg.min_active_to_parallelize = v;
  }
  if (const char* e = std::getenv("PLANSEP_FUSION")) {
    cfg.fuse_rounds = std::atoi(e) != 0;
  }
  return cfg;
}

// The process default; reads the environment once. Mutated only via
// set_default_thread_config (tests, benches) — from one thread at a time.
ThreadConfig& default_config_storage() {
  static ThreadConfig cfg = read_env_config();
  return cfg;
}

}  // namespace

TraceSink* set_global_trace_sink(TraceSink* sink) {
  return g_trace_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* global_trace_sink() {
  return g_trace_sink.load(std::memory_order_acquire);
}

FaultInjector* set_global_fault_injector(FaultInjector* injector) {
  return g_fault_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* global_fault_injector() {
  return g_fault_injector.load(std::memory_order_acquire);
}

ThreadConfig set_default_thread_config(const ThreadConfig& cfg) {
  PLANSEP_CHECK(cfg.threads >= 1 && cfg.min_active_to_parallelize >= 0);
  ThreadConfig prev = default_config_storage();
  default_config_storage() = cfg;
  return prev;
}

ThreadConfig default_thread_config() { return default_config_storage(); }

void Ctx::send(NodeId neighbor, const Message& msg) {
  if (buf_) {
    net_->do_send_staged(*buf_, self_, neighbor, msg, round_);
  } else {
    net_->do_send(self_, neighbor, msg, round_);
  }
}

void Ctx::wake_next_round() {
  if (buf_) {
    // Deferred: applied on the coordinating thread at merge time. A turn
    // may call this repeatedly; consecutive-duplicate suppression keeps the
    // buffer small (cross-node dedup happens against woken_ at merge).
    if (buf_->wakes.empty() || buf_->wakes.back() != self_) {
      buf_->wakes.push_back(self_);
    }
    return;
  }
  if (!net_->woken_[static_cast<std::size_t>(self_)]) {
    net_->woken_[static_cast<std::size_t>(self_)] = 1;
    net_->active_next_.push_back(self_);
  }
}

Network::Network(const EmbeddedGraph& g) : g_(&g), cfg_(default_thread_config()) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  num_nodes_ = std::max<long long>(1, g.num_nodes());
  inbox_off_.assign(n, 0);
  inbox_len_.assign(n, 0);
  cursor_.assign(n, 0);
  woken_.assign(n, 0);
  sent_round_.assign(static_cast<std::size_t>(g.num_darts()), -1);
  crash_pending_flag_.assign(n, 0);
}

void Network::set_threads(int k) {
  PLANSEP_CHECK_MSG(k >= 1, "set_threads requires k >= 1");
  cfg_.threads = std::min(k, 256);
}

void Network::set_min_active_to_parallelize(int min_active) {
  PLANSEP_CHECK(min_active >= 0);
  cfg_.min_active_to_parallelize = min_active;
}

// Bandwidth guard shared by the serial and parallel send paths (one
// throw site, so both engines fault with the identical message). The guard
// slot is keyed by the directed dart from→to, and `from` is owned by
// exactly one shard per round, so the write is race-free under threads.
DartId Network::checked_dart(NodeId from, NodeId to, int round) {
  const DartId d = g_->find_dart(from, to);
  PLANSEP_CHECK_MSG(d != planar::kNoDart, "message sent to a non-neighbor");
  PLANSEP_CHECK_MSG(sent_round_[static_cast<std::size_t>(d)] != round,
                    "CONGEST bandwidth exceeded: two messages on one edge");
  sent_round_[static_cast<std::size_t>(d)] = round;
  return d;
}

void Network::do_send(NodeId from, NodeId to, const Message& msg, int round) {
  checked_dart(from, to, round);
  ++messages_sent_;
  if (active_sink_) active_sink_->on_send(round, from, to, msg);
  // Staged for delivery after every node has taken its turn this round —
  // synchronous semantics: messages sent in round r are readable in r+1.
  staged_.push_back({to, Incoming{from, msg}});
}

void Network::do_send_staged(detail::ShardBuf& buf, NodeId from, NodeId to,
                             const Message& msg, int round) {
  // Sink notification and the messages_sent_ counter are deferred to the
  // deterministic merge on the coordinating thread. The destination-bucket
  // index is recorded in the same pass so delivery can scatter
  // bucket-parallel without sorting.
  checked_dart(from, to, round);
  buf.by_bucket[static_cast<std::size_t>(bucket_of(to))].push_back(
      static_cast<std::uint32_t>(buf.sends.size()));
  buf.sends.push_back({to, Incoming{from, msg}});
}

// Delivery pass 1: one accepted message for `to`. The first message a node
// receives this round registers it as a recipient (reserving its slab
// slice) and activates it unless a wake-up already did.
void Network::count_delivery(NodeId to) {
  const auto i = static_cast<std::size_t>(to);
  if (inbox_len_[i]++ == 0) {
    recipients_.push_back(to);
    if (!woken_[i]) {
      woken_[i] = 1;
      active_next_.push_back(to);
    }
  }
}

// Delivery pass 2 setup: prefix-sum the per-recipient counts into slab
// offsets and scatter cursors, and make room in the staging slab.
std::uint32_t Network::finish_offsets() {
  std::uint32_t total = 0;
  for (const NodeId to : recipients_) {
    const auto i = static_cast<std::size_t>(to);
    inbox_off_[i] = total;
    cursor_[i] = total;
    total += inbox_len_[i];
  }
  if (inbox_next_.size() < total) inbox_next_.resize(total);
  return total;
}

// Serial delivery: count + activate in staging order, then scatter into the
// next round's slab and swap it in. Per-node inbox order is exactly the
// staging (= send acceptance) order.
long long Network::deliver_serial() {
  recipients_.clear();
  for (const auto& [to, inc] : staged_) {
    count_delivery(to);
    (void)inc;
  }
  const std::uint32_t total = finish_offsets();
  for (const auto& [to, inc] : staged_) {
    inbox_next_[cursor_[static_cast<std::size_t>(to)]++] = inc;
  }
  inbox_data_.swap(inbox_next_);
  return static_cast<long long>(total);
}

// Executes one round's turns sharded over the pool and merges the staged
// effects' side channels in serial execution order: sink notifications and
// the message counter are replayed, the earliest turn's exception is
// rethrown (later shards' staged effects are discarded — serial would
// never have reached them), and wake-ups are applied before deliveries,
// mirroring the serial push order. On return the accepted sends sit in
// shard_bufs_[0..shards) in serial order, ready for delivery.
void Network::parallel_turns(NodeProgram& prog, int round,
                             const std::vector<NodeId>& active, int shards) {
  if (static_cast<int>(shard_bufs_.size()) < shards) {
    shard_bufs_.resize(static_cast<std::size_t>(shards));
  }
  buckets_ = shards;
  for (int s = 0; s < shards; ++s) {
    shard_bufs_[static_cast<std::size_t>(s)].reset(shards);
  }
  const std::size_t n_active = active.size();
  ThreadPool::instance().run_shards(shards, [&](int s) {
    // Contiguous slices of `active` preserve the serial execution order;
    // concatenating shard buffers 0..k-1 reproduces it exactly.
    const std::size_t lo = n_active * static_cast<std::size_t>(s) /
                           static_cast<std::size_t>(shards);
    const std::size_t hi = n_active * (static_cast<std::size_t>(s) + 1) /
                           static_cast<std::size_t>(shards);
    detail::ShardBuf& buf = shard_bufs_[static_cast<std::size_t>(s)];
    Ctx ctx;
    ctx.net_ = this;
    ctx.buf_ = &buf;
    ctx.round_ = round;
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = active[i];
      ctx.self_ = v;
      try {
        // take_inbox clears v's slab length — race-free: v is owned by
        // exactly one shard, and the slab itself is read-only this round.
        prog.round(v, take_inbox(v), ctx);
      } catch (...) {
        buf.error = std::current_exception();
        buf.error_turn = i;
        break;  // the serial engine would abort the run at this turn
      }
    }
  });

  // Shards own increasing turn ranges, so the first shard with an error
  // holds the earliest turn the serial engine would have faulted at.
  int stop = shards;
  for (int s = 0; s < shards; ++s) {
    if (shard_bufs_[static_cast<std::size_t>(s)].error) {
      stop = s;
      break;
    }
  }
  // Replay sink notifications in merged (= serial) order. On error, replay
  // up to and including the faulting shard's accepted sends — exactly the
  // prefix the serial engine would have emitted — then rethrow. With no
  // sink installed only the counter matters, and whole arenas fold in O(1).
  const int replay_shards = stop < shards ? stop + 1 : shards;
  for (int s = 0; s < replay_shards; ++s) {
    const auto& sends = shard_bufs_[static_cast<std::size_t>(s)].sends;
    messages_sent_ += static_cast<long long>(sends.size());
    if (active_sink_) {
      for (const auto& [to, inc] : sends) {
        active_sink_->on_send(round, inc.from, to, inc.msg);
      }
    }
  }
  if (stop < shards) {
    std::rethrow_exception(shard_bufs_[static_cast<std::size_t>(stop)].error);
  }
  // Wake-ups activate before deliveries, mirroring the serial push order
  // (wakes happen during turns, deliveries after all turns).
  for (int s = 0; s < shards; ++s) {
    for (const NodeId v : shard_bufs_[static_cast<std::size_t>(s)].wakes) {
      if (!woken_[static_cast<std::size_t>(v)]) {
        woken_[static_cast<std::size_t>(v)] = 1;
        active_next_.push_back(v);
      }
    }
  }
}

long long Network::run_round_parallel(NodeProgram& prog, int round,
                                      const std::vector<NodeId>& active,
                                      int shards) {
  parallel_turns(prog, round, active, shards);
  // Pass 1 (coordinator): counts and activations in serial staging order —
  // shard 0..k-1, arena order within each shard — so first-arrival
  // activation order matches the serial engine exactly.
  recipients_.clear();
  long long delivered = 0;
  for (int s = 0; s < shards; ++s) {
    const auto& sends = shard_bufs_[static_cast<std::size_t>(s)].sends;
    for (const auto& [to, inc] : sends) {
      count_delivery(to);
      (void)inc;
    }
    delivered += static_cast<long long>(sends.size());
  }
  const std::uint32_t total = finish_offsets();
  // Pass 2: scatter. Destination buckets partition the nodes, so bucket b's
  // writes touch disjoint cursors and slab slices — each worker walks the
  // shards in ascending order and its bucket's arena indices in turn order,
  // reproducing the serial per-node inbox order exactly.
  if (shards > 1 && total >= kParallelScatterThreshold) {
    ThreadPool::instance().run_shards(shards, [&](int b) {
      for (int s = 0; s < shards; ++s) {
        const detail::ShardBuf& buf = shard_bufs_[static_cast<std::size_t>(s)];
        for (const std::uint32_t idx : buf.by_bucket[static_cast<std::size_t>(b)]) {
          const auto& [to, inc] = buf.sends[idx];
          inbox_next_[cursor_[static_cast<std::size_t>(to)]++] = inc;
        }
      }
    });
  } else {
    for (int s = 0; s < shards; ++s) {
      for (const auto& [to, inc] : shard_bufs_[static_cast<std::size_t>(s)].sends) {
        inbox_next_[cursor_[static_cast<std::size_t>(to)]++] = inc;
      }
    }
  }
  inbox_data_.swap(inbox_next_);
  return delivered;
}

// One round under an active FaultInjector. Crash decisions are taken on
// the coordinating thread before turns (so serial and sharded execution
// filter the identical node list); delivery fates and reorders are applied
// after all turns, in serial staging order — the same merge discipline the
// parallel engine already guarantees, which keeps k-thread runs
// bit-identical to serial even under an active plan.
long long Network::run_round_faulted(NodeProgram& prog, int round,
                                     const std::vector<NodeId>& active) {
  FaultInjector& fi = *active_fault_;
  // Crash filter: crashed nodes lose this turn and any pending mail, and
  // are parked; parked nodes whose crash interval ended get one restart
  // turn (empty inbox) this round.
  faulted_active_.clear();
  for (const NodeId v : active) {
    if (fi.crashed(round, v)) {
      inbox_len_[static_cast<std::size_t>(v)] = 0;
      if (!crash_pending_flag_[static_cast<std::size_t>(v)]) {
        crash_pending_flag_[static_cast<std::size_t>(v)] = 1;
        crash_pending_.push_back(v);
      }
    } else {
      // A parked node that re-activated on its own (fresh mail) simply
      // rejoins; no separate restart turn is owed.
      crash_pending_flag_[static_cast<std::size_t>(v)] = 0;
      faulted_active_.push_back(v);
    }
  }
  if (!crash_pending_.empty()) {
    std::size_t keep = 0;
    for (const NodeId v : crash_pending_) {
      if (!crash_pending_flag_[static_cast<std::size_t>(v)]) continue;
      if (fi.crashed(round, v)) {
        crash_pending_[keep++] = v;
        continue;
      }
      crash_pending_flag_[static_cast<std::size_t>(v)] = 0;
      faulted_active_.push_back(v);  // restart turn
    }
    crash_pending_.resize(keep);
  }

  // Turns, staging accepted sends into staged_ in serial execution order.
  staged_.clear();
  const int shards =
      std::min<int>(cfg_.threads, static_cast<int>(faulted_active_.size()));
  if (shards > 1 && static_cast<int>(faulted_active_.size()) >=
                        cfg_.min_active_to_parallelize) {
    parallel_turns(prog, round, faulted_active_, shards);
    for (int s = 0; s < shards; ++s) {
      const auto& sends = shard_bufs_[static_cast<std::size_t>(s)].sends;
      staged_.insert(staged_.end(), sends.begin(), sends.end());
    }
  } else {
    Ctx ctx;
    ctx.net_ = this;
    ctx.round_ = round;
    for (const NodeId v : faulted_active_) {
      ctx.self_ = v;
      prog.round(v, take_inbox(v), ctx);
    }
  }
  return deliver_faulted(round);
}

// Delivery stage of a faulted round: flush last round's stalled messages,
// apply per-message fates to this round's staged sends to build the
// post-fate delivery sequence, slab-scatter it, then permute the inbox
// slices the injector wants reordered (before the slab is swapped in).
long long Network::deliver_faulted(int round) {
  FaultInjector& fi = *active_fault_;
  fault_deliver_.clear();
  // Messages stalled in the previous round arrive now, ahead of this
  // round's traffic, in their original staging order.
  fault_deliver_.insert(fault_deliver_.end(), deferred_.begin(),
                        deferred_.end());
  deferred_.clear();
  for (const auto& [to, inc] : staged_) {
    switch (fi.fate(round, inc.from, to)) {
      case FaultInjector::Fate::kDrop:
        break;
      case FaultInjector::Fate::kStall:
        deferred_next_.push_back({to, inc});
        break;
      case FaultInjector::Fate::kDuplicate:
        fault_deliver_.push_back({to, inc});
        fault_deliver_.push_back({to, inc});
        break;
      case FaultInjector::Fate::kDeliver:
        fault_deliver_.push_back({to, inc});
        break;
    }
  }
  deferred_.swap(deferred_next_);
  recipients_.clear();
  for (const auto& [to, inc] : fault_deliver_) {
    count_delivery(to);
    (void)inc;
  }
  const std::uint32_t total = finish_offsets();
  for (const auto& [to, inc] : fault_deliver_) {
    inbox_next_[cursor_[static_cast<std::size_t>(to)]++] = inc;
  }
  // Adversarial intra-round delivery order: deterministic permutation of
  // each recipient's slab slice (the slice holds exactly this round's
  // deliveries — turns consume mail by slab swap, so nothing older can be
  // shuffled in). The injector answers as a pure function, so querying in
  // first-arrival rather than sorted order changes nothing.
  for (const NodeId to : recipients_) {
    if (const std::uint64_t s = fi.reorder_seed(round, to)) {
      Rng rng(s);
      const auto i = static_cast<std::size_t>(to);
      rng.shuffle(inbox_next_.data() + inbox_off_[i], inbox_len_[i]);
    }
  }
  inbox_data_.swap(inbox_next_);
  return static_cast<long long>(total);
}

// Round-fusion fast path over a fault gap: every remaining event is a
// parked crashed node, so each unfused round would only re-query crashed()
// per parked node, deliver nothing, and tick the sinks. Look ahead with the
// injector's pure next_alive_round hint, then advance to the earliest
// restart in one step — replaying the exact per-round query sequence
// (every parked node, in crash_pending_ order) so injector accounting and
// sink round accounting stay byte-identical to the unfused engine.
// Returns the round to resume normal execution at (== round: no fusion).
int Network::fuse_fault_gap(int round, int max_rounds) {
  FaultInjector& fi = *active_fault_;
  int horizon = max_rounds;
  for (const NodeId v : crash_pending_) {
    horizon = std::min(horizon, fi.next_alive_round(round, v));
    // Default hint (or an imminent restart): nothing to fuse.
    if (horizon <= round) return round;
  }
  for (int r = round; r < horizon; ++r) {
    for (const NodeId v : crash_pending_) {
      const bool still_crashed = fi.crashed(r, v);
      PLANSEP_CHECK_MSG(still_crashed,
                        "FaultInjector::next_alive_round overshot the "
                        "restart round");
    }
    ++fused_rounds_;
    if (active_sink_) active_sink_->on_round_end(r, 0, 0);
  }
  return horizon;
}

int Network::run(NodeProgram& prog, int max_rounds) {
  std::fill(inbox_len_.begin(), inbox_len_.end(), 0);
  std::fill(woken_.begin(), woken_.end(), 0);
  std::fill(sent_round_.begin(), sent_round_.end(), -1);
  active_next_.clear();
  staged_.clear();
  recipients_.clear();
  messages_sent_ = 0;
  fused_rounds_ = 0;
  // Consider the PLANSEP_METRICS env bootstrap (obs/) before resolving the
  // global sink, so env-enabled metrics observe every run in the process
  // even when no other obs entry point was reached first. One static-guard
  // check after the first call.
  obs::ensure_env_metrics();
  active_sink_ = sink_ ? sink_ : global_trace_sink();
  if (active_sink_) active_sink_->on_run_begin(*g_);
  active_fault_ = fault_ ? fault_ : global_fault_injector();
  if (active_fault_) {
    deferred_.clear();
    deferred_next_.clear();
    for (const NodeId v : crash_pending_) {
      crash_pending_flag_[static_cast<std::size_t>(v)] = 0;
    }
    crash_pending_.clear();
    active_fault_->on_run_begin(*g_);
  }

  std::vector<NodeId> active = prog.initial_nodes(*g_);
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  Ctx ctx;
  ctx.net_ = this;

  int round = 0;
  // Under faults the run must also outlast in-flight stalled messages and
  // parked crashed nodes, which keep the network non-quiescent even with
  // no node active this round.
  while ((!active.empty() ||
          (active_fault_ && (!deferred_.empty() || !crash_pending_.empty()))) &&
         round < max_rounds) {
    if (active.empty() && active_fault_ && cfg_.fuse_rounds &&
        deferred_.empty() && !crash_pending_.empty()) {
      const int fused_to = fuse_fault_gap(round, max_rounds);
      if (fused_to > round) {
        round = fused_to;
        continue;
      }
    }
    active_next_.clear();
    long long delivered = 0;
    if (active_fault_) {
      delivered = run_round_faulted(prog, round, active);
    } else if (const int shards = std::min<int>(
                   cfg_.threads, static_cast<int>(active.size()));
               shards > 1 && static_cast<int>(active.size()) >=
                                 cfg_.min_active_to_parallelize) {
      delivered = run_round_parallel(prog, round, active, shards);
    } else {
      staged_.clear();
      ctx.round_ = round;
      for (NodeId v : active) {
        ctx.self_ = v;
        prog.round(v, take_inbox(v), ctx);
      }
      // Deliver staged messages; recipients become active next round.
      delivered = deliver_serial();
    }
    active.swap(active_next_);
    for (NodeId v : active) woken_[static_cast<std::size_t>(v)] = 0;
    if (active_sink_) {
      active_sink_->on_round_end(round, static_cast<int>(active.size()),
                                 delivered);
    }
    ++round;
  }
  if (active_sink_) active_sink_->on_run_end(round, messages_sent_);
  active_sink_ = nullptr;
  if (active_fault_) active_fault_->on_run_end();
  active_fault_ = nullptr;
  return round;
}

}  // namespace plansep::congest
