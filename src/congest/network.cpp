#include "congest/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace plansep::congest {

namespace {
TraceSink* g_trace_sink = nullptr;
}  // namespace

TraceSink* set_global_trace_sink(TraceSink* sink) {
  TraceSink* prev = g_trace_sink;
  g_trace_sink = sink;
  return prev;
}

TraceSink* global_trace_sink() { return g_trace_sink; }

void Ctx::send(NodeId neighbor, const Message& msg) {
  net_->do_send(self_, neighbor, msg, round_);
}

void Ctx::wake_next_round() {
  if (!net_->woken_[static_cast<std::size_t>(self_)]) {
    net_->woken_[static_cast<std::size_t>(self_)] = 1;
    net_->active_next_.push_back(self_);
  }
}

Network::Network(const EmbeddedGraph& g) : g_(&g) {
  inbox_.resize(static_cast<std::size_t>(g.num_nodes()));
  woken_.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  sent_round_.assign(static_cast<std::size_t>(g.num_darts()), -1);
}

void Network::do_send(NodeId from, NodeId to, const Message& msg, int round) {
  const DartId d = g_->find_dart(from, to);
  PLANSEP_CHECK_MSG(d != planar::kNoDart, "message sent to a non-neighbor");
  PLANSEP_CHECK_MSG(sent_round_[static_cast<std::size_t>(d)] != round,
                    "CONGEST bandwidth exceeded: two messages on one edge");
  sent_round_[static_cast<std::size_t>(d)] = round;
  ++messages_sent_;
  if (active_sink_) active_sink_->on_send(round, from, to, msg);
  // Staged for delivery after every node has taken its turn this round —
  // synchronous semantics: messages sent in round r are readable in r+1.
  staged_.push_back({to, Incoming{from, msg}});
}

int Network::run(NodeProgram& prog, int max_rounds) {
  for (auto& b : inbox_) b.clear();
  std::fill(woken_.begin(), woken_.end(), 0);
  std::fill(sent_round_.begin(), sent_round_.end(), -1);
  active_next_.clear();
  staged_.clear();
  messages_sent_ = 0;
  active_sink_ = sink_ ? sink_ : g_trace_sink;
  if (active_sink_) active_sink_->on_run_begin(*g_);

  std::vector<NodeId> active = prog.initial_nodes(*g_);
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  Ctx ctx;
  ctx.net_ = this;

  int round = 0;
  while (!active.empty() && round < max_rounds) {
    active_next_.clear();
    staged_.clear();
    for (NodeId v : active) {
      auto& box = inbox_[static_cast<std::size_t>(v)];
      std::vector<Incoming> mail;
      mail.swap(box);
      ctx.self_ = v;
      ctx.round_ = round;
      prog.round(v, mail, ctx);
    }
    // Deliver staged messages; recipients become active next round.
    for (auto& [to, inc] : staged_) {
      auto& box = inbox_[static_cast<std::size_t>(to)];
      if (box.empty() && !woken_[static_cast<std::size_t>(to)]) {
        woken_[static_cast<std::size_t>(to)] = 1;
        active_next_.push_back(to);
      }
      box.push_back(inc);
    }
    active = active_next_;
    for (NodeId v : active) woken_[static_cast<std::size_t>(v)] = 0;
    if (active_sink_) {
      active_sink_->on_round_end(round, static_cast<int>(active.size()),
                                 static_cast<long long>(staged_.size()));
    }
    ++round;
  }
  active_sink_ = nullptr;
  return round;
}

}  // namespace plansep::congest
