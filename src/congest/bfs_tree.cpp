#include "congest/bfs_tree.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::congest {

namespace {

/// BFS wave: the root sends "join" to all neighbors; the first message a
/// node receives sets its parent and depth, after which it forwards the
/// wave. Tags: 0 = join (a = sender depth).
class BfsProgram : public NodeProgram {
 public:
  explicit BfsProgram(NodeId root, BfsResult* out) : root_(root), out_(out) {}

  std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) override {
    out_->parent_dart.assign(static_cast<std::size_t>(g.num_nodes()),
                             planar::kNoDart);
    out_->depth.assign(static_cast<std::size_t>(g.num_nodes()), -1);
    out_->depth[static_cast<std::size_t>(root_)] = 0;
    g_ = &g;
    return {root_};
  }

  void round(NodeId v, InboxView inbox, Ctx& ctx) override {
    auto& depth = out_->depth[static_cast<std::size_t>(v)];
    NodeId parent = planar::kNoNode;
    if (v != root_) {
      if (depth >= 0) return;  // already joined; ignore duplicate waves
      // Adopt the first sender (ties broken by arrival order, which is
      // rotation-deterministic).
      PLANSEP_CHECK(!inbox.empty());
      const Incoming& first = inbox.front();
      depth = static_cast<int>(first.msg.a) + 1;
      out_->parent_dart[static_cast<std::size_t>(v)] =
          g_->find_dart(v, first.from);
      // height is folded from the depth array after the run: round() may
      // only mutate per-node state (NodeProgram's concurrency contract).
      parent = first.from;
    }
    for (DartId d : g_->rotation(v)) {
      const NodeId w = g_->head(d);
      if (w == parent) continue;
      Message m;
      m.tag = 0;
      m.a = depth;
      ctx.send(w, m);
    }
  }

 private:
  NodeId root_;
  BfsResult* out_;
  const EmbeddedGraph* g_ = nullptr;
};

}  // namespace

BfsResult distributed_bfs(const EmbeddedGraph& g, NodeId root) {
  PLANSEP_SPAN("congest/bfs");
  BfsResult out;
  out.root = root;
  BfsProgram prog(root, &out);
  Network net(g);
  out.rounds = net.run(prog);
  out.messages = net.messages_sent();
  for (const int d : out.depth) out.height = std::max(out.height, d);
  return out;
}

DiameterEstimate estimate_diameter(const EmbeddedGraph& g, NodeId root) {
  const BfsResult first = distributed_bfs(g, root);
  NodeId far = root;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (first.depth[static_cast<std::size_t>(v)] >
        first.depth[static_cast<std::size_t>(far)]) {
      far = v;
    }
  }
  const BfsResult second = distributed_bfs(g, far);
  DiameterEstimate est;
  est.diameter_lb = second.height;
  est.rounds = first.rounds + second.rounds;
  return est;
}

}  // namespace plansep::congest
