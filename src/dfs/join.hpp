#pragma once

// JOIN-PROBLEM (Lemma 2, §6.1.2): absorb every marked separator node into
// the partial DFS tree by the DFS-RULE.
//
// Per iteration, in every component of G − T_d that still holds marked
// nodes (all components proceed in parallel):
//   1. the attachment node r_C — a node with the deepest T_d-neighbor — is
//      found (one aggregation after a one-round neighbor exchange);
//   2. a 0/1-MST of the component is built (marked-marked edges weigh 0,
//      Lemma 9), rooted at r_C (RE-ROOT, Lemma 19), which keeps every
//      surviving marked fragment contiguous as a tree path;
//   3. the endpoints of the component's marked path are identified, their
//      LCA z1 taken, and the endpoint h farthest from z1 chosen — the tree
//      path r_C..h then contains at least half of the fragment's marked
//      nodes (the longer leg below z1);
//   4. the path r_C..h is marked (MARK-PATH, Lemma 13) and attached to T_d
//      below r_C's deepest tree neighbor.
// Each iteration halves the number of unabsorbed marked nodes per
// fragment, so O(log n) iterations suffice; each costs Õ(D).

#include "dfs/partial_tree.hpp"
#include "shortcuts/partwise.hpp"

namespace plansep::dfs {

using shortcuts::RoundCost;

struct JoinResult {
  int iterations = 0;
  long long nodes_added = 0;
  RoundCost cost;
};

/// Adds every node of `marked` (a union of per-component cycle separators
/// of the components of G − T_d) to T_d following the DFS-RULE. Other
/// component nodes may be added as well (the connecting paths).
JoinResult join_separators(PartialDfsTree& tree, const std::vector<char>& marked,
                           shortcuts::PartwiseEngine& engine);

}  // namespace plansep::dfs
