#pragma once

// Partial DFS trees (§3.2).
//
// A partial DFS tree T_d is a rooted subtree of G grown exclusively by the
// DFS-RULE: a new path is attached at a node r_C of a component C of
// G − T_d having the deepest T_d-neighbor, and runs from r_C into C. Nodes
// keep their parent and depth forever once added. The final tree is a DFS
// tree iff every edge of G joins an ancestor/descendant pair
// (dfs/validate.hpp).

#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::dfs {

using planar::EmbeddedGraph;
using planar::NodeId;

class PartialDfsTree {
 public:
  PartialDfsTree(const EmbeddedGraph& g, NodeId root);

  NodeId root() const { return root_; }
  bool contains(NodeId v) const { return depth_[static_cast<std::size_t>(v)] >= 0; }
  int depth(NodeId v) const { return depth_[static_cast<std::size_t>(v)]; }
  NodeId parent(NodeId v) const { return parent_[static_cast<std::size_t>(v)]; }
  int size() const { return size_; }
  const EmbeddedGraph& graph() const { return *g_; }

  /// Attaches `path` (ordered, starting at the attachment node r_C) below
  /// `anchor`, which must already be in the tree and adjacent to path[0].
  /// Every path node must be outside the tree and consecutive path nodes
  /// adjacent in G (the DFS-RULE).
  void attach_path(NodeId anchor, const std::vector<NodeId>& path);

  /// Deepest T_d-neighbor of v (kNoNode if none): the DFS-RULE anchor rule.
  NodeId deepest_tree_neighbor(NodeId v) const;

 private:
  const EmbeddedGraph* g_;
  NodeId root_;
  int size_ = 0;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
};

}  // namespace plansep::dfs
