#include "dfs/partial_tree.hpp"

#include "util/check.hpp"

namespace plansep::dfs {

PartialDfsTree::PartialDfsTree(const EmbeddedGraph& g, NodeId root)
    : g_(&g), root_(root) {
  parent_.assign(static_cast<std::size_t>(g.num_nodes()), planar::kNoNode);
  depth_.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  depth_[static_cast<std::size_t>(root)] = 0;
  size_ = 1;
}

void PartialDfsTree::attach_path(NodeId anchor,
                                 const std::vector<NodeId>& path) {
  PLANSEP_CHECK(!path.empty());
  PLANSEP_CHECK_MSG(contains(anchor), "anchor must be in the tree");
  PLANSEP_CHECK_MSG(g_->has_edge(anchor, path.front()),
                    "anchor must neighbor the path head");
  NodeId prev = anchor;
  for (NodeId v : path) {
    PLANSEP_CHECK_MSG(!contains(v), "path node already in the tree");
    PLANSEP_CHECK_MSG(g_->has_edge(prev, v), "path must follow graph edges");
    parent_[static_cast<std::size_t>(v)] = prev;
    depth_[static_cast<std::size_t>(v)] =
        depth_[static_cast<std::size_t>(prev)] + 1;
    ++size_;
    prev = v;
  }
}

NodeId PartialDfsTree::deepest_tree_neighbor(NodeId v) const {
  NodeId best = planar::kNoNode;
  for (planar::DartId d : g_->rotation(v)) {
    const NodeId w = g_->head(d);
    if (!contains(w)) continue;
    if (best == planar::kNoNode ||
        depth_[static_cast<std::size_t>(w)] >
            depth_[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return best;
}

}  // namespace plansep::dfs
