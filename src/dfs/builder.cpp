#include "dfs/builder.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "subroutines/components.hpp"
#include "subroutines/part_context.hpp"
#include "util/check.hpp"

namespace plansep::dfs {

DfsBuildResult build_dfs_tree(const planar::EmbeddedGraph& g, NodeId root,
                              shortcuts::PartwiseEngine& engine) {
  obs::Span build_span("dfs/build");
  DfsBuildResult out{PartialDfsTree(g, root), 0, {}, {}, {}};
  const NodeId n = g.num_nodes();

  // Precomputation: the planar embedding (Proposition 1, black box) plus
  // the engine's global BFS tree.
  out.cost += engine.setup_cost();
  out.cost += engine.blackbox_charge();

  separator::SeparatorEngine sep_engine(engine);

  while (out.tree.size() < n) {
    PLANSEP_CHECK_MSG(out.phases < 200, "DFS recursion did not converge");
    ++out.phases;
    PLANSEP_SPAN("dfs/phase");
    PhaseInfo info;

    // Components of G − T_d.
    const sub::Components comps = sub::connected_components(
        g, [&](NodeId v) { return !out.tree.contains(v); });
    out.cost += engine.blackbox_charge();
    info.components = comps.count;
    for (int s : comps.size) info.max_component = std::max(info.max_component, s);

    // Tiny components (≤ 3 nodes) are absorbed directly by the DFS-RULE:
    // attach a greedy path from the component's deepest-anchored node; any
    // leftover node is picked up in a later phase. This costs one shared
    // aggregation and avoids spinning up the full separator machinery for
    // components whose separator would be the whole component anyway.
    std::vector<char> tiny(static_cast<std::size_t>(comps.count), 0);
    int tiny_count = 0;
    for (int c2 = 0; c2 < comps.count; ++c2) {
      if (comps.size[static_cast<std::size_t>(c2)] <= 3) {
        tiny[static_cast<std::size_t>(c2)] = 1;
        ++tiny_count;
      }
    }
    if (tiny_count > 0) {
      std::vector<std::vector<NodeId>> members(
          static_cast<std::size_t>(comps.count));
      for (NodeId v = 0; v < n; ++v) {
        if (out.tree.contains(v)) continue;
        const int c2 = comps.label[static_cast<std::size_t>(v)];
        if (tiny[static_cast<std::size_t>(c2)]) {
          members[static_cast<std::size_t>(c2)].push_back(v);
        }
      }
      for (int c2 = 0; c2 < comps.count; ++c2) {
        if (!tiny[static_cast<std::size_t>(c2)]) continue;
        const auto& mem = members[static_cast<std::size_t>(c2)];
        // Anchor at the member with the deepest tree neighbor.
        NodeId rc = planar::kNoNode;
        int best = -1;
        for (NodeId v : mem) {
          const NodeId nb = out.tree.deepest_tree_neighbor(v);
          if (nb != planar::kNoNode && out.tree.depth(nb) > best) {
            best = out.tree.depth(nb);
            rc = v;
          }
        }
        PLANSEP_CHECK(rc != planar::kNoNode);
        // Greedy path from rc within the component.
        std::vector<NodeId> path{rc};
        for (;;) {
          NodeId next = planar::kNoNode;
          for (NodeId w : mem) {
            bool in_path = false;
            for (NodeId x : path) in_path |= (x == w);
            if (!in_path && g.has_edge(path.back(), w)) {
              next = w;
              break;
            }
          }
          if (next == planar::kNoNode) break;
          path.push_back(next);
        }
        out.tree.attach_path(out.tree.deepest_tree_neighbor(rc), path);
      }
      out.cost += engine.blackbox_charge();
      out.cost += shortcuts::local_exchange(1);
      if (out.tree.size() == n) {
        out.phase_info.push_back(info);
        break;
      }
    }

    std::vector<int> part(static_cast<std::size_t>(n), -1);
    std::vector<int> part_of_comp(static_cast<std::size_t>(comps.count), -1);
    int big_parts = 0;
    for (int c2 = 0; c2 < comps.count; ++c2) {
      if (!tiny[static_cast<std::size_t>(c2)]) {
        part_of_comp[static_cast<std::size_t>(c2)] = big_parts++;
      }
    }
    if (big_parts == 0) {
      out.phase_info.push_back(info);
      continue;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (!out.tree.contains(v)) {
        part[static_cast<std::size_t>(v)] = part_of_comp[static_cast<std::size_t>(
            comps.label[static_cast<std::size_t>(v)])];
      }
    }

    // Step 1: cycle separators of every component (Theorem 1).
    sub::PartSet ps = sub::build_part_set(g, part, big_parts, engine);
    separator::SeparatorResult sep = sep_engine.compute(ps);
    info.separator_cost = ps.cost;
    info.separator_cost += sep.cost;
    out.cost += info.separator_cost;
    for (std::size_t i = 0; i < sep.stats.phase_counts.size(); ++i) {
      out.separator_stats.phase_counts[i] += sep.stats.phase_counts[i];
    }
    out.separator_stats.parts += sep.stats.parts;
    out.separator_stats.candidates_tried += sep.stats.candidates_tried;
    out.separator_stats.first_candidate_hits += sep.stats.first_candidate_hits;

    // Step 2: join the separators to T_d (Lemma 2).
    info.join = join_separators(out.tree, sep.marked, engine);
    out.cost += info.join.cost;

    out.phase_info.push_back(info);
  }
  build_span.note("phases", out.phases);
  build_span.note("rounds_charged", out.cost.charged);
  build_span.note("pa_calls", out.cost.pa_calls);
  return out;
}

}  // namespace plansep::dfs
