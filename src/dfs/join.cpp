#include "dfs/join.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "subroutines/components.hpp"
#include "subroutines/part_context.hpp"
#include "util/check.hpp"

namespace plansep::dfs {

namespace {

using sub::PartSet;
using tree::RootedSpanningTree;

/// Endpoints of the marked fragments in t: marked nodes with no marked
/// child (every fragment is a tree path thanks to the 0/1 MST, so each
/// contributes at most two).
std::vector<NodeId> fragment_endpoints(const RootedSpanningTree& t,
                                       const std::vector<char>& marked) {
  std::vector<NodeId> out;
  for (NodeId v : t.nodes()) {
    if (!marked[static_cast<std::size_t>(v)]) continue;
    bool has_marked_child = false;
    for (NodeId c : t.children(v)) {
      if (marked[static_cast<std::size_t>(c)]) {
        has_marked_child = true;
        break;
      }
    }
    if (!has_marked_child) out.push_back(v);
  }
  return out;
}

}  // namespace

JoinResult join_separators(PartialDfsTree& tree, const std::vector<char>& marked,
                           shortcuts::PartwiseEngine& engine) {
  obs::Span span("dfs/join");
  const EmbeddedGraph& g = tree.graph();
  const NodeId n = g.num_nodes();
  JoinResult out;

  std::vector<char> remaining(marked);
  for (NodeId v = 0; v < n; ++v) {
    if (tree.contains(v)) remaining[static_cast<std::size_t>(v)] = 0;
  }

  for (;;) {
    long long left = 0;
    for (char c : remaining) left += c;
    if (left == 0) break;
    PLANSEP_CHECK_MSG(out.iterations < 1000, "JOIN did not converge");
    ++out.iterations;

    // Components of G − T_d; keep those holding marked nodes.
    const sub::Components comps = sub::connected_components(
        g, [&](NodeId v) { return !tree.contains(v); });
    std::vector<char> active(static_cast<std::size_t>(comps.count), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (remaining[static_cast<std::size_t>(v)]) {
        active[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])] = 1;
      }
    }
    // Re-index active components as parts.
    std::vector<int> part_of_comp(static_cast<std::size_t>(comps.count), -1);
    int num_parts = 0;
    for (int c = 0; c < comps.count; ++c) {
      if (active[static_cast<std::size_t>(c)]) {
        part_of_comp[static_cast<std::size_t>(c)] = num_parts++;
      }
    }
    std::vector<int> part(static_cast<std::size_t>(n), -1);
    for (NodeId v = 0; v < n; ++v) {
      if (tree.contains(v)) continue;
      part[static_cast<std::size_t>(v)] =
          part_of_comp[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])];
    }
    // Components pass: one Borůvka-style labelling, O(log n) aggregations.
    out.cost += engine.blackbox_charge();

    // Attachment nodes: per part, the node with the deepest tree neighbor
    // (one local exchange + one aggregation).
    out.cost += shortcuts::local_exchange(1);
    std::vector<NodeId> r_c(static_cast<std::size_t>(num_parts),
                            planar::kNoNode);
    std::vector<int> best_depth(static_cast<std::size_t>(num_parts), -1);
    for (NodeId v = 0; v < n; ++v) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p < 0) continue;
      const NodeId nb = tree.deepest_tree_neighbor(v);
      if (nb == planar::kNoNode) continue;
      const int d = tree.depth(nb);
      if (d > best_depth[static_cast<std::size_t>(p)] ||
          (d == best_depth[static_cast<std::size_t>(p)] &&
           v < r_c[static_cast<std::size_t>(p)])) {
        best_depth[static_cast<std::size_t>(p)] = d;
        r_c[static_cast<std::size_t>(p)] = v;
      }
    }
    for (int p = 0; p < num_parts; ++p) {
      PLANSEP_CHECK_MSG(r_c[static_cast<std::size_t>(p)] != planar::kNoNode,
                        "component has no attachment to the tree");
    }

    // 0/1 MST per part, rooted at r_C: marked-marked edges weigh 0 so the
    // surviving fragments are contiguous tree paths (Lemma 2).
    sub::SpanningForest forest = sub::boruvka_forest(
        g, part, num_parts,
        [&](planar::EdgeId e) {
          return (remaining[static_cast<std::size_t>(g.edge_u(e))] &&
                  remaining[static_cast<std::size_t>(g.edge_v(e))])
                     ? 0
                     : 1;
        },
        engine);
    out.cost += forest.cost;
    // Re-root each part's tree at r_C (Lemma 19).
    std::vector<planar::DartId> parent = forest.parent_dart;
    for (int p = 0; p < num_parts; ++p) {
      const NodeId want = r_c[static_cast<std::size_t>(p)];
      NodeId v = want;
      planar::DartId carry = planar::kNoDart;
      while (v != planar::kNoNode) {
        const planar::DartId old = parent[static_cast<std::size_t>(v)];
        parent[static_cast<std::size_t>(v)] = carry;
        if (old == planar::kNoDart) break;
        carry = EmbeddedGraph::rev(old);
        v = g.head(old);
      }
    }
    out.cost += engine.blackbox_charge();  // RE-ROOT
    PartSet ps = sub::part_set_from_forest(g, part, num_parts, parent, r_c,
                                           engine);
    out.cost += ps.cost;

    // Per part: pick the fragment endpoint whose root path absorbs the
    // most marked nodes, mark the path, attach.
    out.cost += engine.blackbox_charge();  // marked-ancestor counts
    for (int p = 0; p < num_parts; ++p) {
      const RootedSpanningTree& t = ps.tree_of_part(p);
      const std::vector<NodeId> ends = fragment_endpoints(t, remaining);
      PLANSEP_CHECK(!ends.empty());
      NodeId best = planar::kNoNode;
      long long best_cover = -1;
      for (NodeId h : ends) {
        long long cover = 0;
        for (NodeId x = h; x != planar::kNoNode; x = t.parent(x)) {
          if (remaining[static_cast<std::size_t>(x)]) ++cover;
        }
        if (cover > best_cover || (cover == best_cover && h < best)) {
          best_cover = cover;
          best = h;
        }
      }
      const std::vector<NodeId> path = t.path(t.root(), best);
      const NodeId anchor = tree.deepest_tree_neighbor(t.root());
      tree.attach_path(anchor, path);
      out.nodes_added += static_cast<long long>(path.size());
      for (NodeId v : path) remaining[static_cast<std::size_t>(v)] = 0;
    }
    // MARK-PATH + attachment broadcast.
    out.cost += engine.blackbox_charge();
    out.cost += shortcuts::local_exchange(1);
  }
  span.note("iterations", out.iterations);
  span.note("nodes_added", out.nodes_added);
  return out;
}

}  // namespace plansep::dfs
