#pragma once

// DFS tree validation. A rooted spanning tree T of an undirected graph G
// is a DFS tree iff every non-tree edge of G joins an ancestor/descendant
// pair — the classic characterization the tests rely on.

#include <string>

#include "dfs/partial_tree.hpp"

namespace plansep::dfs {

struct DfsCheck {
  bool spanning = false;           // every node reached, parents consistent
  bool depths_consistent = false;  // depth(v) == depth(parent)+1
  bool dfs_property = false;       // all edges ancestor-related
  long long violating_edges = 0;
  bool ok() const { return spanning && depths_consistent && dfs_property; }
  /// One-line failure description, e.g. "dfs_property (3 violating edges)".
  std::string summary() const;
};

DfsCheck check_dfs_tree(const planar::EmbeddedGraph& g,
                        const PartialDfsTree& tree);

}  // namespace plansep::dfs
