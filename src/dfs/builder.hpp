#pragma once

// Theorem 2: deterministic DFS tree construction in Õ(D) rounds.
//
// The main algorithm (§3.2, §6.2): starting from T_d = {r}, each outer
// phase computes, in parallel for every component C of G − T_d, a cycle
// separator (Theorem 1) and joins it to T_d by the DFS-RULE (Lemma 2).
// Separator balance shrinks the largest component by a factor ≥ 1/3 per
// phase, so O(log n) phases suffice; each phase costs Õ(D) rounds.

#include "dfs/join.hpp"
#include "dfs/partial_tree.hpp"
#include "separator/engine.hpp"

namespace plansep::dfs {

struct PhaseInfo {
  int components = 0;
  int max_component = 0;
  JoinResult join;
  RoundCost separator_cost;
};

struct DfsBuildResult {
  PartialDfsTree tree;
  int phases = 0;
  RoundCost cost;  // everything, including the embedding precomputation charge
  separator::SeparatorStats separator_stats;
  std::vector<PhaseInfo> phase_info;
};

/// Builds a DFS tree of g rooted at `root`. g must be connected and
/// carry a planar embedding (its rotation system).
DfsBuildResult build_dfs_tree(const planar::EmbeddedGraph& g, NodeId root,
                              shortcuts::PartwiseEngine& engine);

}  // namespace plansep::dfs
