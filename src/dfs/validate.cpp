#include "dfs/validate.hpp"

#include <vector>

namespace plansep::dfs {

std::string DfsCheck::summary() const {
  if (ok()) return "ok";
  std::string s;
  auto add = [&](const char* what) {
    if (!s.empty()) s += ", ";
    s += what;
  };
  if (!spanning) add("not spanning");
  if (!depths_consistent) add("inconsistent depths");
  if (!dfs_property) {
    add("dfs_property (");
    s += std::to_string(violating_edges) + " violating edges)";
  }
  return s;
}

DfsCheck check_dfs_tree(const planar::EmbeddedGraph& g,
                        const PartialDfsTree& tree) {
  DfsCheck out;
  const NodeId n = g.num_nodes();

  out.spanning = true;
  out.depths_consistent = true;
  std::vector<std::vector<NodeId>> children(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (!tree.contains(v)) {
      out.spanning = false;
      continue;
    }
    if (v == tree.root()) {
      if (tree.depth(v) != 0) out.depths_consistent = false;
      continue;
    }
    const NodeId p = tree.parent(v);
    if (p == planar::kNoNode || !tree.contains(p) || !g.has_edge(p, v)) {
      out.spanning = false;
      continue;
    }
    if (tree.depth(v) != tree.depth(p) + 1) out.depths_consistent = false;
    children[static_cast<std::size_t>(p)].push_back(v);
  }
  if (!out.spanning) return out;

  // Euler intervals for ancestor tests.
  std::vector<int> tin(static_cast<std::size_t>(n), -1);
  std::vector<int> tout(static_cast<std::size_t>(n), -1);
  int clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack{{tree.root(), 0}};
  tin[static_cast<std::size_t>(tree.root())] = clock++;
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    if (idx < children[static_cast<std::size_t>(v)].size()) {
      const NodeId c = children[static_cast<std::size_t>(v)][idx++];
      tin[static_cast<std::size_t>(c)] = clock++;
      stack.emplace_back(c, 0);
    } else {
      tout[static_cast<std::size_t>(v)] = clock++;
      stack.pop_back();
    }
  }
  auto ancestor = [&](NodeId a, NodeId d) {
    return tin[static_cast<std::size_t>(a)] <= tin[static_cast<std::size_t>(d)] &&
           tout[static_cast<std::size_t>(d)] <= tout[static_cast<std::size_t>(a)];
  };

  out.dfs_property = true;
  for (planar::EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId a = g.edge_u(e);
    const NodeId b = g.edge_v(e);
    if (!ancestor(a, b) && !ancestor(b, a)) {
      out.dfs_property = false;
      ++out.violating_edges;
    }
  }
  return out;
}

}  // namespace plansep::dfs
