#include "testing/chaos.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "testing/trace.hpp"

namespace plansep::testing {

namespace {

using planar::NodeId;

// Centralized, network-free balance check of a recovered separator:
// the marked path must be node-simple and every component of G − path
// must have at most 2n/3 nodes. Independent of the distributed state the
// recovery driver validated against, so a corrupted PartSet cannot vouch
// for itself.
void cross_check_separator(const planar::EmbeddedGraph& g,
                           const separator::PartSeparator& sep,
                           InvariantReport& rep) {
  const int n = g.num_nodes();
  std::vector<NodeId> path = sep.path;
  std::sort(path.begin(), path.end());
  if (std::adjacent_find(path.begin(), path.end()) != path.end()) {
    rep.fail("chaos/separator: recovered path repeats a node");
    return;
  }
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  for (const NodeId v : sep.path) removed[static_cast<std::size_t>(v)] = 1;
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (removed[static_cast<std::size_t>(s)] ||
        comp[static_cast<std::size_t>(s)] >= 0) {
      continue;
    }
    long long size = 0;
    comp[static_cast<std::size_t>(s)] = s;
    queue.assign(1, s);
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      ++size;
      for (const NodeId w : g.neighbors(v)) {
        if (removed[static_cast<std::size_t>(w)] ||
            comp[static_cast<std::size_t>(w)] >= 0) {
          continue;
        }
        comp[static_cast<std::size_t>(w)] = s;
        queue.push_back(w);
      }
    }
    if (3 * size > 2LL * n) {
      rep.fail("chaos/separator: component of " + std::to_string(size) +
               " nodes exceeds 2n/3 (n=" + std::to_string(n) + ")");
      return;
    }
  }
}

}  // namespace

faults::FaultSpec fault_spec_for(FaultFamily family) {
  faults::FaultSpec spec;
  switch (family) {
    case FaultFamily::kNone:
      break;
    case FaultFamily::kDrops:
      spec.drop_prob = 0.03;
      break;
    case FaultFamily::kDuplicates:
      spec.duplicate_prob = 0.1;
      break;
    case FaultFamily::kReorder:
      spec.reorder_prob = 1.0;
      break;
    case FaultFamily::kCrashes:
      spec.crash_prob = 0.05;
      break;
    case FaultFamily::kStalls:
      spec.stall_prob = 0.1;
      break;
    case FaultFamily::kOutages:
      spec.edge_outage_prob = 0.05;
      break;
    case FaultFamily::kChaos:
      spec.drop_prob = 0.015;
      spec.duplicate_prob = 0.05;
      spec.stall_prob = 0.05;
      spec.reorder_prob = 0.5;
      spec.crash_prob = 0.025;
      spec.edge_outage_prob = 0.025;
      break;
  }
  return spec;
}

ChaosStats run_pipeline_chaos(const Instance& inst, const ChaosOptions& opt,
                              InvariantReport& rep) {
  ChaosStats st;
  const auto& g = inst.gg.graph;
  const NodeId root = inst.gg.root_hint;

  // Precondition gate, not a property: the pipeline is only specified for
  // connected plane graphs, faults or not.
  {
    InvariantReport gate;
    check_embedding(g, /*require_connected=*/true, gate);
    if (!gate.ok()) return st;
  }

  faults::FaultController ctl(fault_spec_for(inst.spec.faults),
                              inst.spec.seed);
  TraceRecorder rec;
  {
    std::optional<ScopedTraceCapture> cap;
    if (opt.capture_trace) cap.emplace(rec);
    faults::ScopedFaultInjection inject(ctl);

    const faults::RecoveredSeparator sep =
        faults::compute_separator_with_recovery(g, root, opt.policy);
    st.separator_survived = sep.recovery.ok;
    st.separator_attempts = sep.recovery.attempts;
    if (sep.recovery.ok) {
      cross_check_separator(g, sep.result->parts.at(0), rep);
    } else if (sep.recovery.failure.empty()) {
      rep.fail("chaos/separator: failed without a diagnosis");
    }

    if (opt.run_dfs) {
      const faults::RecoveredDfs d =
          faults::build_dfs_tree_with_recovery(g, root, opt.policy);
      st.dfs_survived = d.recovery.ok;
      st.dfs_attempts = d.recovery.attempts;
      if (d.recovery.ok) {
        // Independent centralized DFS oracle over the recovered tree.
        check_dfs_tree_oracle(g, d.build->tree, rep);
      } else if (d.recovery.failure.empty()) {
        rep.fail("chaos/dfs: failed without a diagnosis");
      }
    }
  }
  st.injected = ctl.counters().injected();
  if (opt.capture_trace) {
    st.trace_messages = rec.total_messages();
    // Faults act on *accepted* sends, so the bandwidth discipline must
    // survive every plan.
    check_bandwidth(g, rec.events(), rep);
  }
  return st;
}

}  // namespace plansep::testing
