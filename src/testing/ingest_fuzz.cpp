#include "testing/ingest_fuzz.hpp"

#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace plansep::testing {

namespace {

using Edge = std::pair<long long, long long>;

// The caps the expectations are computed against (ingest_fuzz_options in
// the test harness mirrors these).
constexpr long long kFuzzMaxNodes = 5000;
constexpr long long kFuzzMaxEdges = 20000;
constexpr std::size_t kFuzzMaxLineBytes = 256;

/// Remaps dense ids into a sparse, shuffled long-long space so the
/// parser's compaction actually has work to do.
struct IdMap {
  long long mult;
  long long offset;
  long long operator()(long long v) const { return v * mult + offset; }
};

IdMap make_id_map(Rng& rng) {
  return {rng.next_in(1, 1'000'000), rng.next_in(0, 1'000'000'000)};
}

/// Edges of an r x c grid over dense ids [0, r*c).
std::vector<Edge> grid_edges(long long r, long long c) {
  std::vector<Edge> edges;
  for (long long y = 0; y < r; ++y) {
    for (long long x = 0; x < c; ++x) {
      const long long v = y * c + x;
      if (x + 1 < c) edges.push_back({v, v + 1});
      if (y + 1 < r) edges.push_back({v, v + c});
    }
  }
  return edges;
}

/// Renders edges as hostile-but-valid text: random CRLF, tabs, extra
/// spaces, interleaved comments, and (edge-list dialect) a shuffle.
std::string render_edges(Rng& rng, std::vector<Edge> edges, bool dimacs,
                         long long declared_nodes) {
  std::string out;
  const bool crlf = rng.next_bool(0.5);
  const char* eol = crlf ? "\r\n" : "\n";
  auto comment = [&] {
    out += dimacs ? "c fuzz comment" : "# fuzz comment";
    out += eol;
  };
  if (!dimacs) rng.shuffle(edges);
  if (dimacs) {
    if (rng.next_bool(0.5)) comment();
    out += "p edge " + std::to_string(declared_nodes) + " " +
           std::to_string(edges.size());
    out += eol;
  }
  for (const auto& [u, v] : edges) {
    if (rng.next_bool(0.05)) comment();
    if (rng.next_bool(0.05)) out += eol;  // blank line
    if (dimacs) out += "e ";
    if (rng.next_bool(0.1)) out += ' ';
    out += std::to_string(u);
    out += rng.next_bool(0.2) ? "\t" : " ";
    out += std::to_string(v);
    if (rng.next_bool(0.1)) out += "  ";
    out += eol;
  }
  return out;
}

/// A planar base (grid) with remapped sparse ids.
std::vector<Edge> planar_base(Rng& rng, const IdMap& map) {
  const long long r = rng.next_in(2, 8);
  const long long c = rng.next_in(2, 8);
  std::vector<Edge> edges;
  for (const auto& [u, v] : grid_edges(r, c)) {
    edges.push_back({map(u), map(v)});
  }
  return edges;
}

/// Glues a K5 (or K3,3) onto the base, sharing one base vertex. The
/// clique forms its own biconnected block — the expected witness.
void glue_nonplanar(Rng& rng, const IdMap& map, bool k33,
                    std::vector<Edge>& edges) {
  // Fresh ids far outside the base's remapped range.
  const long long hi = 2'000'000'000'000LL + rng.next_in(0, 1'000'000);
  std::vector<long long> nodes;
  nodes.push_back(map(0));  // the shared articulation vertex
  const int extra = k33 ? 5 : 4;
  for (int i = 0; i < extra; ++i) nodes.push_back(hi + i);
  if (k33) {
    for (int a = 0; a < 3; ++a) {
      for (int b = 3; b < 6; ++b) {
        edges.push_back({nodes[static_cast<std::size_t>(a)],
                         nodes[static_cast<std::size_t>(b)]});
      }
    }
  } else {
    for (int a = 0; a < 5; ++a) {
      for (int b = a + 1; b < 5; ++b) {
        edges.push_back({nodes[static_cast<std::size_t>(a)],
                         nodes[static_cast<std::size_t>(b)]});
      }
    }
  }
}

}  // namespace

ingest::IngestOptions ingest_fuzz_options() {
  ingest::IngestOptions opts;
  opts.max_nodes = kFuzzMaxNodes;
  opts.max_edges = kFuzzMaxEdges;
  opts.max_line_bytes = kFuzzMaxLineBytes;
  return opts;
}

IngestFuzzCase make_ingest_fuzz_case(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  IngestFuzzCase out;
  const IdMap map = make_id_map(rng);
  switch (seed % 16) {
    case 0: {  // valid planar edge list
      out.text = render_edges(rng, planar_base(rng, map), false, 0);
      out.expect = IngestExpectation::kAccept;
      out.label = "valid-edges";
      return out;
    }
    case 1: {  // valid planar DIMACS
      auto edges = planar_base(rng, map);
      // Declared node count only bounds from above; use a safe bound.
      out.text = render_edges(rng, std::move(edges), true, 1'000'000'000);
      out.expect = IngestExpectation::kAccept;
      out.label = "valid-dimacs";
      return out;
    }
    case 2: {  // malformed token
      auto edges = planar_base(rng, map);
      std::string text = render_edges(rng, std::move(edges), false, 0);
      text += "12 x" + std::to_string(rng.next_in(0, 99)) + "\n";
      out.text = std::move(text);
      out.expect = IngestExpectation::kReject;
      out.label = "malformed-token";
      return out;
    }
    case 3: {  // overflow id
      out.text = "1 2\n99999999999999999999 3\n";
      out.expect = IngestExpectation::kReject;
      out.label = "overflow-id";
      return out;
    }
    case 4: {  // negative id
      out.text = "1 2\n-7 3\n";
      out.expect = IngestExpectation::kReject;
      out.label = "negative-id";
      return out;
    }
    case 5: {  // line over the byte cap
      std::string text = "1 2\n1 ";
      text.append(kFuzzMaxLineBytes + 16, '3');
      text += "\n";
      out.text = std::move(text);
      out.expect = IngestExpectation::kReject;
      out.label = "long-line";
      return out;
    }
    case 6: {  // node cap: a path with kFuzzMaxNodes + 2 distinct nodes
      std::string text;
      for (long long v = 0; v <= kFuzzMaxNodes; ++v) {
        text += std::to_string(map(v)) + " " + std::to_string(map(v + 1)) +
                "\n";
      }
      out.text = std::move(text);
      out.expect = IngestExpectation::kReject;
      out.label = "node-cap";
      return out;
    }
    case 7: {  // self-loop under the reject policy
      auto edges = planar_base(rng, map);
      edges.push_back({map(1), map(1)});
      out.text = render_edges(rng, std::move(edges), false, 0);
      out.expect = IngestExpectation::kReject;
      out.label = "self-loop";
      return out;
    }
    case 8: {  // duplicate edge under the reject policy
      auto edges = planar_base(rng, map);
      edges.push_back(rng.next_bool(0.5)
                          ? edges.front()
                          : Edge{edges.front().second, edges.front().first});
      out.text = render_edges(rng, std::move(edges), false, 0);
      out.expect = IngestExpectation::kReject;
      out.label = "duplicate-edge";
      return out;
    }
    case 9: {  // nothing but comments and blanks
      out.text = "# nothing\n\n   \n# to see here\n";
      out.expect = IngestExpectation::kReject;
      out.label = "empty";
      return out;
    }
    case 10: {  // near-planar: grid + glued K5
      auto edges = planar_base(rng, map);
      glue_nonplanar(rng, map, false, edges);
      out.text = render_edges(rng, std::move(edges), false, 0);
      out.expect = IngestExpectation::kReject;
      out.label = "near-planar-k5";
      return out;
    }
    case 11: {  // near-planar: grid + glued K3,3
      auto edges = planar_base(rng, map);
      glue_nonplanar(rng, map, true, edges);
      out.text = render_edges(rng, std::move(edges), false, 0);
      out.expect = IngestExpectation::kReject;
      out.label = "near-planar-k33";
      return out;
    }
    case 12: {  // random printable garbage
      std::string text;
      const long long lines = rng.next_in(1, 30);
      for (long long i = 0; i < lines; ++i) {
        const long long len = rng.next_in(0, 40);
        for (long long j = 0; j < len; ++j) {
          text += static_cast<char>(' ' + rng.next_in(0, 94));
        }
        text += rng.next_bool(0.3) ? "\r\n" : "\n";
      }
      out.text = std::move(text);
      out.expect = IngestExpectation::kEither;
      out.label = "garbage";
      return out;
    }
    case 13: {  // random raw bytes (NULs, high bit, no final newline)
      std::string text;
      const long long len = rng.next_in(0, 400);
      for (long long j = 0; j < len; ++j) {
        text += static_cast<char>(rng.next_in(0, 255));
      }
      out.text = std::move(text);
      out.expect = IngestExpectation::kEither;
      out.label = "raw-bytes";
      return out;
    }
    case 14: {  // truncation of a valid input at a random byte
      std::string text = render_edges(rng, planar_base(rng, map), false, 0);
      text.resize(static_cast<std::size_t>(
          rng.next_in(0, static_cast<std::int64_t>(text.size()))));
      out.text = std::move(text);
      out.expect = IngestExpectation::kEither;
      out.label = "truncated";
      return out;
    }
    default: {  // dimacs header lying about the edge count
      auto edges = planar_base(rng, map);
      const long long wrong =
          static_cast<long long>(edges.size()) + rng.next_in(1, 9);
      std::string text = "p edge 1000000000 " + std::to_string(wrong) + "\n";
      for (const auto& [u, v] : edges) {
        text += "e " + std::to_string(u) + " " + std::to_string(v) + "\n";
      }
      out.text = std::move(text);
      out.expect = IngestExpectation::kReject;
      out.label = "dimacs-count-lie";
      return out;
    }
  }
}

}  // namespace plansep::testing
