#pragma once

/// \file
/// Seed-pure hostile-input generator for the ingest front door: one
/// seed, one adversarial text case with its expected admissibility.

// Each case is a pure function of the seed (the proptest replay
// contract): the same seed always yields the same bytes, so a fuzz
// failure replays from one number. The generator covers the taxonomy
// deliberately rather than uniformly — malformed tokens, overflow ids,
// CRLF/whitespace mixes, truncations, cap violations, duplicate/self-
// loop storms, valid planar graphs, and adversarial *near-planar*
// graphs (a planar base with a K5 / K3,3 glued on), which is the case
// class that stresses the DMP witness path.

#include <cstdint>
#include <string>

#include "ingest/pipeline.hpp"

namespace plansep::testing {

/// What the generator knows about a case's outcome.
enum class IngestExpectation {
  kAccept,     ///< must be admitted (valid planar input, caps generous)
  kReject,     ///< must be rejected (a specific violation was planted)
  kEither,     ///< mutated/truncated bytes: only "no crash" is promised
};

/// One generated hostile input.
struct IngestFuzzCase {
  std::string text;             ///< the input bytes (may contain CRLF)
  IngestExpectation expect = IngestExpectation::kEither;
  const char* label = "";       ///< case class, for failure messages
};

/// The case for `seed`. Deterministic; cases cycle through the class
/// list so any contiguous seed range covers every class.
IngestFuzzCase make_ingest_fuzz_case(std::uint64_t seed);

/// The pipeline options every expectation is computed against: tight
/// caps (5000 nodes, 20000 edges, 256-byte lines), reject policies for
/// self-loops and duplicates, no corpus write.
ingest::IngestOptions ingest_fuzz_options();

}  // namespace plansep::testing
