#pragma once

/// \file
/// Centralized invariant oracles: from-scratch re-checks of the paper's
/// structural guarantees, accumulated into an InvariantReport.

// Centralized invariant oracles for the property-based harness.
//
// Each oracle re-checks one of the paper's structural guarantees from
// scratch, with full knowledge of the graph (no distributed state):
//
//   * embedding      — the rotation system is a plane embedding (Euler
//                      genus 0) of a connected graph;
//   * triangulation  — apex triangulation leaves every face a triangle and
//                      stays planar;
//   * cycle separator (Theorem 1) — marked set is a simple tree path whose
//                      endpoints the closing edge joins, components of
//                      G[P]−S have ≤ 2/3 of the part (weighted variant:
//                      ≤ 2/3 of the total weight);
//   * DFS tree (Theorem 2) — spanning, depths consistent, every graph edge
//                      joins an ancestor/descendant pair;
//   * hierarchy      — pieces partition correctly, children shrink by the
//                      2/3 factor, leaves respect the size cutoff;
//   * bandwidth      — a captured CONGEST trace sends at most one message
//                      per directed edge per round, neighbors only;
//   * round envelope — measured/charged rounds stay within 2× of a budget
//                      calibrated to current behaviour, so regressions of
//                      more than 2× fail loudly.
//
// Violations accumulate in an InvariantReport rather than throwing, so one
// failing case reports every broken invariant at once and the proptest
// shrinker can re-evaluate cheaply.

#include <string>
#include <vector>

#include "dfs/partial_tree.hpp"
#include "planar/triangulate.hpp"
#include "separator/engine.hpp"
#include "separator/hierarchy.hpp"
#include "subroutines/part_context.hpp"
#include "testing/trace.hpp"

namespace plansep::testing {

/// Accumulates invariant violations instead of throwing, so one failing
/// case reports every broken invariant at once.
struct InvariantReport {
  std::vector<std::string> violations;  ///< one entry per violated invariant
  bool ok() const { return violations.empty(); }  ///< nothing violated?
  /// Records one violation.
  void fail(std::string what) { violations.push_back(std::move(what)); }
  /// Newline-joined violation list ("" when ok).
  std::string to_string() const;
};

/// Rotation system is a plane embedding (genus 0); connected when
/// `require_connected`.
void check_embedding(const planar::EmbeddedGraph& g, bool require_connected,
                     InvariantReport& rep);

/// Apex triangulation of g: planar, original ids preserved as a prefix,
/// every face a triangle (unless the graph is too small to have one).
void check_triangulation(const planar::EmbeddedGraph& g,
                         const planar::Triangulation& tri,
                         InvariantReport& rep);

/// Theorem 1 on part p of ps.
void check_cycle_separator(const sub::PartSet& ps, int p,
                           const separator::PartSeparator& sep,
                           InvariantReport& rep);

/// Weighted Theorem 1: components of G[P]−S weigh ≤ 2/3 of the part total.
void check_weighted_separator(const sub::PartSet& ps, int p,
                              const separator::PartSeparator& sep,
                              const std::vector<long long>& weight,
                              InvariantReport& rep);

/// Theorem 2 on the built tree.
void check_dfs_tree_oracle(const planar::EmbeddedGraph& g,
                           const dfs::PartialDfsTree& tree,
                           InvariantReport& rep);

/// Separator-hierarchy structure over connected g.
void check_hierarchy(const planar::EmbeddedGraph& g,
                     const separator::SeparatorHierarchy& h, int leaf_size,
                     InvariantReport& rep);

/// CONGEST discipline over a captured trace: per run, at most one message
/// per directed edge per round, and messages only between neighbors of g.
void check_bandwidth(const planar::EmbeddedGraph& g,
                     const std::vector<TraceEvent>& events,
                     InvariantReport& rep);

/// Round budget: rounds ≤ 2 · max(floor_rounds, per_d_log2n·(D+1)·log²(n+2)).
/// Constants are calibrated to current measurements (see the proptest
/// suites); the factor 2 is the allowed regression headroom.
struct RoundEnvelope {
  double per_d_log2n = 1.0;     ///< budget multiplier on (D+1)·log²(n+2)
  long long floor_rounds = 64;  ///< small-n constant floor
  /// The budget before the 2× regression headroom is applied.
  long long budget(int diameter, int n) const;
};

/// Fails the report when `rounds` exceeds twice the envelope's budget.
void check_round_envelope(const char* stage, long long rounds, int diameter,
                          int n, const RoundEnvelope& env,
                          InvariantReport& rep);

}  // namespace plansep::testing
