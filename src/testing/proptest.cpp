#include "testing/proptest.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <sstream>

#include "dfs/builder.hpp"
#include "planar/face_structure.hpp"
#include "separator/hierarchy.hpp"
#include "shortcuts/partwise_message.hpp"
#include "util/check.hpp"

namespace plansep::testing {

namespace {

using planar::NodeId;

// Seed-stream tags so generation, each mutation and the weight scheme draw
// from independent deterministic streams of the case seed.
constexpr std::uint64_t kPendantStream = 0x70656e64616e7401ULL;
constexpr std::uint64_t kSubdivStream = 0x7375626469760a02ULL;
constexpr std::uint64_t kWeightStream = 0x7765696768740a03ULL;

void add_pendant_trees(planar::EmbeddedGraph& g, std::uint64_t seed) {
  Rng rng(seed ^ kPendantStream);
  const NodeId base = g.num_nodes();
  const int hooks = std::max<int>(1, base / 8);
  for (int i = 0; i < hooks; ++i) {
    NodeId attach = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(base)));
    const int chain = static_cast<int>(rng.next_in(1, 3));
    for (int j = 0; j < chain; ++j) {
      const NodeId w = g.add_node();
      const int pos = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(g.degree(attach)) + 1));
      g.add_edge(attach, w, pos, 0);
      attach = w;
    }
  }
}

void subdivide_random_edges(planar::EmbeddedGraph& g, std::uint64_t seed) {
  Rng rng(seed ^ kSubdivStream);
  if (g.num_edges() == 0) return;
  std::vector<planar::EdgeId> edges(static_cast<std::size_t>(g.num_edges()));
  for (planar::EdgeId e = 0; e < g.num_edges(); ++e) edges[static_cast<std::size_t>(e)] = e;
  rng.shuffle(edges);
  const int take = std::max<int>(1, g.num_edges() / 8);
  // Rebuild by rotations: replacing neighbor v with the fresh midpoint w in
  // u's rotation (and vice versa) subdivides the edge in place, which
  // preserves the embedding's genus.
  std::vector<std::vector<NodeId>> rot(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) rot[static_cast<std::size_t>(v)] = g.neighbors(v);
  for (int i = 0; i < take; ++i) {
    const planar::EdgeId e = edges[static_cast<std::size_t>(i)];
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    const NodeId w = static_cast<NodeId>(rot.size());
    auto& ru = rot[static_cast<std::size_t>(u)];
    auto& rv = rot[static_cast<std::size_t>(v)];
    *std::find(ru.begin(), ru.end(), v) = w;
    *std::find(rv.begin(), rv.end(), u) = w;
    rot.push_back({u, v});
  }
  g = planar::EmbeddedGraph::from_rotations(rot);
}

std::vector<long long> degenerate_weights(int n, std::uint64_t seed) {
  Rng rng(seed ^ kWeightStream);
  std::vector<long long> w(static_cast<std::size_t>(n), 1);
  switch (rng.next_below(3)) {
    case 0: {  // one node carries > 2/3 of the total
      w[static_cast<std::size_t>(rng.next_below(
          static_cast<std::uint64_t>(n)))] = 100LL * n;
      break;
    }
    case 1:  // sparse 0/1
      for (auto& x : w) x = rng.next_bool(0.1) ? 1 : 0;
      break;
    default:  // huge skewed values (overflow discipline)
      for (auto& x : w) x = rng.next_in(0, 1'000'000'000);
      break;
  }
  return w;
}

}  // namespace

// ---------------------------------------------------------------- cases --

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kPendantTrees: return "pendant_trees";
    case Mutation::kSubdividedEdges: return "subdivided_edges";
    case Mutation::kDegenerateWeights: return "degenerate_weights";
    case Mutation::kCombined: return "combined";
  }
  return "?";
}

std::optional<Mutation> mutation_from_name(std::string_view name) {
  for (Mutation m : {Mutation::kNone, Mutation::kPendantTrees,
                     Mutation::kSubdividedEdges, Mutation::kDegenerateWeights,
                     Mutation::kCombined}) {
    if (name == mutation_name(m)) return m;
  }
  return std::nullopt;
}

const char* fault_family_name(FaultFamily f) {
  switch (f) {
    case FaultFamily::kNone: return "none";
    case FaultFamily::kDrops: return "drops";
    case FaultFamily::kDuplicates: return "dups";
    case FaultFamily::kReorder: return "reorder";
    case FaultFamily::kCrashes: return "crashes";
    case FaultFamily::kStalls: return "stalls";
    case FaultFamily::kOutages: return "outages";
    case FaultFamily::kChaos: return "chaos";
  }
  return "?";
}

std::optional<FaultFamily> fault_family_from_name(std::string_view name) {
  for (FaultFamily f :
       {FaultFamily::kNone, FaultFamily::kDrops, FaultFamily::kDuplicates,
        FaultFamily::kReorder, FaultFamily::kCrashes, FaultFamily::kStalls,
        FaultFamily::kOutages, FaultFamily::kChaos}) {
    if (name == fault_family_name(f)) return f;
  }
  return std::nullopt;
}

std::string CaseSpec::replay() const {
  std::ostringstream os;
  os << "--seed=" << seed << " --family=" << planar::family_name(family)
     << " --n=" << n;
  if (mutation != Mutation::kNone) {
    os << " --mutation=" << mutation_name(mutation);
  }
  if (faults != FaultFamily::kNone) {
    os << " --faults=" << fault_family_name(faults);
  }
  return os.str();
}

std::string replay_env_prefix() {
  // The env vars that change how a case executes (thread fan-out, round
  // fusion, DAG-vs-monolithic path) without changing what it computes —
  // a failure in any of those configurations must replay under it.
  static constexpr const char* kVars[] = {
      "PLANSEP_THREADS", "PLANSEP_PAR_THRESHOLD", "PLANSEP_FUSION",
      "PLANSEP_TASKGRAPH"};
  std::string prefix;
  for (const char* var : kVars) {
    const char* value = std::getenv(var);
    if (value == nullptr) continue;
    prefix += var;
    prefix += '=';
    prefix += value;
    prefix += ' ';
  }
  return prefix;
}

std::optional<CaseSpec> parse_replay(std::string_view line) {
  CaseSpec spec;
  bool have_seed = false, have_family = false, have_n = false;
  std::istringstream is{std::string(line)};
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (tok.rfind("--", 0) != 0 || eq == std::string::npos) return std::nullopt;
    const std::string_view key = std::string_view(tok).substr(2, eq - 2);
    const std::string_view val = std::string_view(tok).substr(eq + 1);
    if (key == "seed") {
      const auto [p, ec] =
          std::from_chars(val.data(), val.data() + val.size(), spec.seed);
      if (ec != std::errc() || p != val.data() + val.size()) return std::nullopt;
      have_seed = true;
    } else if (key == "n") {
      const auto [p, ec] =
          std::from_chars(val.data(), val.data() + val.size(), spec.n);
      if (ec != std::errc() || p != val.data() + val.size()) return std::nullopt;
      have_n = true;
    } else if (key == "family") {
      const auto f = planar::family_from_name(val);
      if (!f) return std::nullopt;
      spec.family = *f;
      have_family = true;
    } else if (key == "mutation") {
      const auto m = mutation_from_name(val);
      if (!m) return std::nullopt;
      spec.mutation = *m;
    } else if (key == "faults") {
      const auto f = fault_family_from_name(val);
      if (!f) return std::nullopt;
      spec.faults = *f;
    } else {
      return std::nullopt;
    }
  }
  if (!have_seed || !have_family || !have_n) return std::nullopt;
  return spec;
}

Instance build_instance(const CaseSpec& spec) {
  Instance inst;
  inst.spec = spec;
  inst.gg = planar::make_instance(spec.family, spec.n, spec.seed);
  auto& g = inst.gg.graph;
  const bool pendants = spec.mutation == Mutation::kPendantTrees ||
                        spec.mutation == Mutation::kCombined;
  const bool subdivide = spec.mutation == Mutation::kSubdividedEdges ||
                         spec.mutation == Mutation::kCombined;
  const bool weights = spec.mutation == Mutation::kDegenerateWeights ||
                       spec.mutation == Mutation::kCombined;
  if (pendants) add_pendant_trees(g, spec.seed);
  if (subdivide) subdivide_random_edges(g, spec.seed);
  if (pendants || subdivide) {
    // Coordinates and the outer dart describe the pre-mutation embedding.
    g.set_coordinates({});
    inst.gg.outer_dart = planar::kNoDart;
    inst.gg.name += std::string("+") + mutation_name(spec.mutation);
  }
  inst.weight = weights ? degenerate_weights(g.num_nodes(), spec.seed)
                        : std::vector<long long>(
                              static_cast<std::size_t>(g.num_nodes()), 1);
  return inst;
}

// ------------------------------------------------------------- pipeline --

PipelineStats run_pipeline_checked(const Instance& inst,
                                   const PipelineOptions& opt,
                                   InvariantReport& rep) {
  PipelineStats st;
  const auto& g = inst.gg.graph;
  const NodeId root = inst.gg.root_hint;
  st.n = g.num_nodes();

  check_embedding(g, /*require_connected=*/true, rep);
  if (!rep.ok()) return st;  // downstream stages require a connected plane graph

  // Apex triangulation is specified for 2-connected inputs only (a face
  // walk repeating a corner would force a parallel apex edge), so the
  // stage is gated on corner-simple face walks; the separator/DFS stages
  // run regardless.
  {
    const planar::FaceStructure fs(g);
    bool corner_simple = true;
    for (planar::FaceId f = 0; corner_simple && f < fs.num_faces(); ++f) {
      std::vector<NodeId> corners;
      for (planar::DartId d : fs.walk(f)) corners.push_back(g.head(d));
      std::sort(corners.begin(), corners.end());
      corner_simple =
          std::adjacent_find(corners.begin(), corners.end()) == corners.end();
    }
    if (corner_simple) {
      const planar::Triangulation tri = planar::triangulate_with_apexes(g);
      check_triangulation(g, tri, rep);
    }
  }

  TraceRecorder rec;
  {
    std::optional<ScopedTraceCapture> cap;
    if (opt.capture_trace) cap.emplace(rec);

    shortcuts::PartwiseEngine engine(g, root);
    st.diameter_bound = engine.diameter_bound();

    // Theorem 1 on the whole graph as a single part.
    std::vector<int> part(static_cast<std::size_t>(g.num_nodes()), 0);
    sub::PartSet ps = sub::build_part_set(g, part, 1, engine, {root});
    separator::SeparatorEngine se(engine);
    const separator::SeparatorResult res = se.compute(ps);
    check_cycle_separator(ps, 0, res.parts.at(0), rep);
    if (res.stats.phase_counts[7] != 0) {
      rep.fail("separator/last_resort: exhaustive fallback fired");
    }
    shortcuts::RoundCost sep_cost = engine.setup_cost();
    sep_cost += ps.cost;
    sep_cost += res.cost;
    st.separator_measured = sep_cost.measured;
    st.separator_charged = sep_cost.charged;
    st.separator_phase = res.parts.at(0).phase;
    check_round_envelope("separator_measured", sep_cost.measured,
                         st.diameter_bound, st.n, opt.separator_envelope, rep);
    check_round_envelope("separator_charged", sep_cost.charged,
                         st.diameter_bound, st.n, opt.separator_envelope, rep);

    // Weighted Theorem 1 whenever the case carries a degenerate vector.
    const bool uniform = std::all_of(inst.weight.begin(), inst.weight.end(),
                                     [](long long w) { return w == 1; });
    if (!uniform) {
      const separator::SeparatorResult wres =
          se.compute_weighted(ps, inst.weight);
      check_weighted_separator(ps, 0, wres.parts.at(0), inst.weight, rep);
      if (wres.stats.phase_counts[7] != 0) {
        rep.fail("wseparator/last_resort: exhaustive fallback fired");
      }
    }

    if (opt.run_hierarchy) {
      const separator::SeparatorHierarchy h =
          separator::build_hierarchy(g, engine, opt.leaf_size);
      check_hierarchy(g, h, opt.leaf_size, rep);
      st.hierarchy_levels = h.levels;
    }

    if (opt.run_dfs) {
      const dfs::DfsBuildResult build = dfs::build_dfs_tree(g, root, engine);
      check_dfs_tree_oracle(g, build.tree, rep);
      st.dfs_phases = build.phases;
      st.dfs_measured = build.cost.measured;
      st.dfs_charged = build.cost.charged;
      check_round_envelope("dfs_measured", build.cost.measured,
                           st.diameter_bound, st.n, opt.dfs_envelope, rep);
      check_round_envelope("dfs_charged", build.cost.charged,
                           st.diameter_bound, st.n, opt.dfs_envelope, rep);
    }

    if (opt.capture_trace) {
      // Exercise the message-level part-wise aggregation protocol so the
      // trace carries real combining traffic, and cross-check its values
      // against the analytic engine.
      std::vector<std::int64_t> value(static_cast<std::size_t>(g.num_nodes()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        value[static_cast<std::size_t>(v)] = (7 * v) % 23;
      }
      const shortcuts::MessageAggregateResult msg =
          shortcuts::message_level_aggregate(g, engine.global_tree(), part,
                                             value, shortcuts::AggOp::kSum);
      const shortcuts::AggregateResult ana =
          engine.aggregate(part, value, shortcuts::AggOp::kSum);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (msg.value[static_cast<std::size_t>(v)] !=
            ana.value[static_cast<std::size_t>(v)]) {
          rep.fail("aggregate/values: message-level != analytic at node " +
                   std::to_string(v));
          break;
        }
      }
    }
  }
  if (opt.capture_trace) {
    st.trace_messages = rec.total_messages();
    check_bandwidth(g, rec.events(), rep);
  }
  return st;
}

// -------------------------------------------------------------- runner --

std::vector<planar::Family> default_families() {
  using planar::Family;
  return {Family::kGrid,      Family::kGridDiagonals, Family::kCylinder,
          Family::kTriangulation, Family::kRandomPlanar, Family::kOuterplanar,
          Family::kCycle,     Family::kRandomTree,    Family::kWheel};
}

InvariantReport run_one(const CaseSpec& spec, const Property& prop) {
  InvariantReport rep;
  try {
    const Instance inst = build_instance(spec);
    prop(inst, rep);
  } catch (const std::exception& e) {
    rep.fail(std::string("exception: ") + e.what());
  }
  return rep;
}

namespace {

// Greedy shrink: keep adopting the first smaller variant that still fails
// (drop the faults, simplify chaos to a single fault kind, drop the
// mutation, then shrink n) until nothing smaller fails or the budget runs
// out. Deterministic — candidates keep the original seed.
CaseSpec shrink_failure(const CaseSpec& spec, const Property& prop, int budget,
                        std::string& report_out) {
  CaseSpec cur = spec;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    std::vector<CaseSpec> candidates;
    if (cur.faults != FaultFamily::kNone) {
      // A failure that persists without faults is an algorithmic bug, not
      // a fault-tolerance one — by far the more valuable reduction, so it
      // is tried first.
      CaseSpec c = cur;
      c.faults = FaultFamily::kNone;
      candidates.push_back(c);
      if (cur.faults == FaultFamily::kChaos) {
        for (FaultFamily f :
             {FaultFamily::kDrops, FaultFamily::kDuplicates,
              FaultFamily::kReorder, FaultFamily::kCrashes,
              FaultFamily::kStalls, FaultFamily::kOutages}) {
          c = cur;
          c.faults = f;
          candidates.push_back(c);
        }
      }
    }
    if (cur.mutation != Mutation::kNone) {
      CaseSpec c = cur;
      c.mutation = Mutation::kNone;
      candidates.push_back(c);
    }
    for (int nn : {cur.n / 2, (3 * cur.n) / 4, cur.n - 1}) {
      if (nn >= 4 && nn < cur.n) {
        CaseSpec c = cur;
        c.n = nn;
        candidates.push_back(c);
      }
    }
    for (const CaseSpec& cand : candidates) {
      if (budget-- <= 0) break;
      const InvariantReport rep = run_one(cand, prop);
      if (!rep.ok()) {
        cur = cand;
        report_out = rep.to_string();
        improved = true;
        break;
      }
    }
  }
  return cur;
}

}  // namespace

std::string PropResult::summary() const {
  if (ok()) return std::to_string(cases_run) + " cases ok";
  std::string s = std::to_string(failures.size()) + " failure(s) in " +
                  std::to_string(cases_run) + " cases:";
  const std::string env = replay_env_prefix();
  for (const Failure& f : failures) {
    s += "\n  replay: " + env + f.replay;
    std::istringstream lines(f.report);
    std::string line;
    while (std::getline(lines, line)) s += "\n    " + line;
  }
  return s;
}

PropResult run_property(const std::string& name, const PropConfig& cfg,
                        const Property& prop) {
  const std::vector<planar::Family> fams =
      cfg.families.empty() ? default_families() : cfg.families;
  PLANSEP_CHECK_MSG(!fams.empty(), "no families to draw cases from");
  PLANSEP_CHECK(cfg.min_n >= 4 && cfg.min_n <= cfg.max_n);
  Rng rng(cfg.base_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);

  PropResult out;
  for (int i = 0; i < cfg.cases; ++i) {
    if (static_cast<int>(out.failures.size()) >= cfg.max_failures) break;
    CaseSpec spec;
    spec.family = fams[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(fams.size())))];
    spec.n = static_cast<int>(rng.next_in(cfg.min_n, cfg.max_n));
    spec.seed = rng.next_u64();
    if (rng.next_bool(cfg.mutation_probability)) {
      const Mutation kinds[] = {Mutation::kPendantTrees,
                                Mutation::kSubdividedEdges,
                                Mutation::kDegenerateWeights,
                                Mutation::kCombined};
      spec.mutation = kinds[rng.next_below(4)];
    }
    // Drawn only for fault-aware suites: an empty fault_families leaves the
    // seed stream exactly as it was, so pre-existing suites replay
    // bit-for-bit.
    if (!cfg.fault_families.empty() && rng.next_bool(cfg.fault_probability)) {
      spec.faults = cfg.fault_families[static_cast<std::size_t>(rng.next_below(
          static_cast<std::uint64_t>(cfg.fault_families.size())))];
    }
    const InvariantReport rep = run_one(spec, prop);
    ++out.cases_run;
    if (rep.ok()) continue;

    Failure f;
    f.original = spec;
    f.report = rep.to_string();
    f.shrunk = shrink_failure(spec, prop, cfg.shrink_budget, f.report);
    f.replay = f.shrunk.replay();
    std::cerr << "[proptest] FAIL " << name
              << "; replay: " << replay_env_prefix() << f.replay << std::endl;
    out.failures.push_back(std::move(f));
  }
  return out;
}

}  // namespace plansep::testing
