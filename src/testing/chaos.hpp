#pragma once

/// \file
/// Chaos harness: the pipeline under seeded fault plans, checked for the
/// survive-or-fail-loudly property.

// Chaos harness: runs the separator/DFS pipeline under a seeded fault
// plan and checks the *survive-or-fail-loudly* property:
//
//   * if the recovery driver reports success, the recovered output must
//     pass an independent centralized cross-check (a silently corrupted
//     "success" is the one unacceptable outcome);
//   * if it reports failure, it must carry a non-empty diagnosis;
//   * either way the captured CONGEST trace must respect the per-edge
//     per-round bandwidth discipline (faults act on *accepted* sends, so
//     the discipline is fault-invariant).
//
// The fault plan is a pure function of the CaseSpec: the spec's fault
// family picks the intensity knobs (fault_spec_for) and the case seed
// seeds the plan, so a `--faults=` replay line reproduces the exact
// faulty execution.

#include "faults/controller.hpp"
#include "faults/recovery.hpp"
#include "testing/proptest.hpp"

namespace plansep::testing {

/// The fixed intensity knobs a fault family maps to. kNone maps to the
/// empty spec (a controller that attaches but never injects); kChaos
/// enables every kind at half its single-family intensity.
faults::FaultSpec fault_spec_for(FaultFamily family);

/// Knobs of one chaos run.
struct ChaosOptions {
  /// Run the DFS recovery driver (Theorem 2) on top of the separator one.
  bool run_dfs = true;
  /// Capture the CONGEST trace and check the bandwidth discipline on it.
  bool capture_trace = true;
  /// Retry/backoff policy handed to the recovery drivers.
  faults::RetryPolicy policy;
};

/// What a chaos run observed.
struct ChaosStats {
  bool separator_survived = false;  ///< separator recovery reported ok
  bool dfs_survived = false;        ///< DFS recovery reported ok
  int separator_attempts = 0;       ///< separator attempts consumed
  int dfs_attempts = 0;             ///< DFS attempts consumed
  long long injected = 0;  ///< total injections the controller performed
  long long trace_messages = 0;     ///< captured messages (if capturing)
};

/// Runs the pipeline under the instance's fault family, folding every
/// survive-or-fail-loudly violation into `rep`. Disconnected instances
/// (possible under mutations) are skipped — the pipeline's precondition
/// does not hold, faults or not.
ChaosStats run_pipeline_chaos(const Instance& inst, const ChaosOptions& opt,
                              InvariantReport& rep);

}  // namespace plansep::testing
