#include "testing/trace.hpp"

#include <algorithm>
#include <sstream>

namespace plansep::testing {

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.run == b.run && a.round == b.round && a.from == b.from &&
         a.to == b.to && a.msg.tag == b.msg.tag && a.msg.a == b.msg.a &&
         a.msg.b == b.msg.b && a.msg.c == b.msg.c;
}

void TraceRecorder::on_run_begin(const congest::EmbeddedGraph&) { ++runs_; }

void TraceRecorder::on_send(int round, congest::NodeId from,
                            congest::NodeId to, const congest::Message& msg) {
  events_.push_back({runs_ - 1, round, from, to, msg});
}

void TraceRecorder::clear() {
  events_.clear();
  runs_ = 0;
}

std::string TraceRecorder::format(const TraceEvent& e) {
  std::ostringstream os;
  os << "run=" << e.run << " r=" << e.round << " " << e.from << "->" << e.to
     << " tag=" << static_cast<int>(e.msg.tag) << " a=" << e.msg.a
     << " b=" << e.msg.b << " c=" << e.msg.c;
  return os.str();
}

int first_divergence(const std::vector<TraceEvent>& a,
                     const std::vector<TraceEvent>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a[i] == b[i])) return static_cast<int>(i);
  }
  if (a.size() != b.size()) return static_cast<int>(common);
  return -1;
}

std::string diff_traces(const std::vector<TraceEvent>& a,
                        const std::vector<TraceEvent>& b, int context) {
  const int at = first_divergence(a, b);
  if (at < 0) return "";
  std::ostringstream os;
  os << "traces diverge at event " << at << " (|a|=" << a.size()
     << ", |b|=" << b.size() << ")\n";
  const int lo = std::max(0, at - context);
  const int hi = at + context;
  for (int i = lo; i <= hi; ++i) {
    const bool in_a = i < static_cast<int>(a.size());
    const bool in_b = i < static_cast<int>(b.size());
    if (!in_a && !in_b) break;
    os << (i == at ? ">" : " ") << " [" << i << "] a: "
       << (in_a ? TraceRecorder::format(a[static_cast<std::size_t>(i)])
                : std::string("<end>"))
       << " | b: "
       << (in_b ? TraceRecorder::format(b[static_cast<std::size_t>(i)])
                : std::string("<end>"))
       << "\n";
  }
  return os.str();
}

ScopedTraceCapture::ScopedTraceCapture(TraceRecorder& rec)
    : prev_(congest::set_global_trace_sink(&rec)) {}

ScopedTraceCapture::~ScopedTraceCapture() {
  congest::set_global_trace_sink(prev_);
}

}  // namespace plansep::testing
