#pragma once

/// \file
/// CONGEST message-trace capture: TraceRecorder, trace diffing, and the
/// ScopedTraceCapture RAII installer.

// CONGEST message-trace capture.
//
// An opt-in recorder that hooks into congest::Network (TraceSink) and
// stores every message of every run it observes: (run, round, from, to,
// payload). The protocols are deterministic, so two captures of the same
// seeded instance must be byte-identical — diff_traces pinpoints the first
// divergence when a replay disagrees with the original failing run, and
// the recorded stream doubles as the ground truth for the per-edge
// per-round bandwidth oracle (oracles.hpp).
//
// ScopedTraceCapture installs a recorder as the process-global sink for
// the duration of a scope, so traffic of networks constructed deep inside
// the pipeline (the BFS wave of PartwiseEngine, message-level aggregates)
// is captured without plumbing.

#include <string>
#include <vector>

#include "congest/network.hpp"

namespace plansep::testing {

/// One captured message send.
struct TraceEvent {
  int run = 0;    ///< index of the Network::run this message belongs to
  int round = 0;  ///< round within that run
  congest::NodeId from = planar::kNoNode;  ///< sender
  congest::NodeId to = planar::kNoNode;    ///< recipient
  congest::Message msg;                    ///< the payload
};

/// Field-wise equality.
bool operator==(const TraceEvent& a, const TraceEvent& b);

/// TraceSink that stores every message of every run it observes, in the
/// deterministic acceptance order the engine replays.
class TraceRecorder : public congest::TraceSink {
 public:
  void on_run_begin(const congest::EmbeddedGraph& g) override;
  void on_send(int round, congest::NodeId from, congest::NodeId to,
               const congest::Message& msg) override;

  /// All captured events in acceptance order.
  const std::vector<TraceEvent>& events() const { return events_; }
  long long total_messages() const {  ///< captured event count
    return static_cast<long long>(events_.size());
  }
  int runs() const { return runs_; }  ///< Network::run calls observed
  void clear();                       ///< drops all captured state

  /// "run=0 r=12 3->4 tag=7 a=1 b=0 c=0"
  static std::string format(const TraceEvent& e);

 private:
  std::vector<TraceEvent> events_;
  int runs_ = 0;
};

/// Index of the first event where the traces differ (the shorter trace's
/// length when one is a prefix of the other), or -1 when identical.
int first_divergence(const std::vector<TraceEvent>& a,
                     const std::vector<TraceEvent>& b);

/// Human-readable diff around the first divergence; "" when identical.
std::string diff_traces(const std::vector<TraceEvent>& a,
                        const std::vector<TraceEvent>& b, int context = 3);

/// RAII: installs `rec` as the process-global trace sink, restoring the
/// previous sink on destruction.
class ScopedTraceCapture {
 public:
  explicit ScopedTraceCapture(TraceRecorder& rec);  ///< installs rec
  ~ScopedTraceCapture();                            ///< restores previous
  ScopedTraceCapture(const ScopedTraceCapture&) = delete;  ///< non-copyable
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;  ///< non-copyable

 private:
  congest::TraceSink* prev_;
};

}  // namespace plansep::testing
