#pragma once

// Property-based testing harness with seeded replay.
//
// Turns the paper's theorems into machine-checked properties over
// thousands of random planar instances:
//
//   * seeded generation across every family of planar/generators.hpp,
//     plus adversarial mutations (pendant trees, subdivided edges,
//     degenerate weight vectors) that preserve planarity;
//   * a pipeline runner (embedding → triangulation → separator engine →
//     hierarchy → DFS builder) that folds the centralized oracles of
//     oracles.hpp over every stage, with opt-in CONGEST trace capture;
//   * deterministic failure handling: a failing case is greedily shrunk
//     (smaller n, mutation dropped) and reported as a one-line replay
//     command `--seed=<N> --family=<F> --n=<K> [--mutation=<M>]` that
//     parse_replay/run_one reproduce bit-for-bit.
//
// Everything is a pure function of the CaseSpec — no global RNG, no time,
// no test-order dependence — so a replay command from a CI log reproduces
// the exact instance locally.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "planar/generators.hpp"
#include "testing/oracles.hpp"

namespace plansep::testing {

// ---------------------------------------------------------------- cases --

enum class Mutation {
  kNone,
  kPendantTrees,      // hang random small trees off random nodes
  kSubdividedEdges,   // replace random edges u–v by u–w–v
  kDegenerateWeights, // skewed weight vector (one-heavy / sparse 0-1 / huge)
  kCombined,          // all of the above
};

const char* mutation_name(Mutation m);
std::optional<Mutation> mutation_from_name(std::string_view name);

struct CaseSpec {
  planar::Family family = planar::Family::kGrid;
  int n = 0;
  std::uint64_t seed = 0;
  Mutation mutation = Mutation::kNone;

  /// The one-line replay command:
  /// "--seed=7 --family=grid --n=64 --mutation=pendant_trees".
  std::string replay() const;
};

/// Parses a replay command (tokens in any order; --mutation optional).
std::optional<CaseSpec> parse_replay(std::string_view line);

struct Instance {
  CaseSpec spec;
  planar::GeneratedGraph gg;
  /// Per-node weights for the weighted-separator property; all-ones unless
  /// the mutation installs a degenerate vector.
  std::vector<long long> weight;
};

/// Deterministically builds the instance for a spec (generation followed
/// by the spec's mutation, all driven by the spec's seed).
Instance build_instance(const CaseSpec& spec);

// ------------------------------------------------------------- pipeline --

struct PipelineOptions {
  bool run_hierarchy = true;
  bool run_dfs = true;
  int leaf_size = 8;
  /// Capture the CONGEST message trace of the run and check the per-edge
  /// per-round bandwidth discipline on it; also exercises the
  /// message-level part-wise aggregation protocol.
  bool capture_trace = false;
  /// Round envelopes (see oracles.hpp). Calibrated against the current
  /// engine over 500 cases across all families up to n=140: the observed
  /// maxima are ~6.6·(D+1)·log²n (separator) and ~24.4·(D+1)·log²n (DFS),
  /// with small-n constant floors of ~480 and ~950 rounds. The envelope
  /// already allows 2× on top of these budgets, so tripping it means the
  /// cost more than doubled against calibration.
  RoundEnvelope separator_envelope{8.0, 512};
  RoundEnvelope dfs_envelope{30.0, 1024};
};

struct PipelineStats {
  int n = 0;
  int diameter_bound = 0;
  long long separator_measured = 0;
  long long separator_charged = 0;
  int separator_phase = 0;
  int hierarchy_levels = 0;
  int dfs_phases = 0;
  long long dfs_measured = 0;
  long long dfs_charged = 0;
  long long trace_messages = 0;
};

/// Runs the full pipeline on the instance, folding every stage's oracle
/// into `rep`; returns measured statistics.
PipelineStats run_pipeline_checked(const Instance& inst,
                                   const PipelineOptions& opt,
                                   InvariantReport& rep);

// -------------------------------------------------------------- runner --

struct PropConfig {
  int cases = 200;
  /// Families to draw from; empty = a default diverse set spanning grids,
  /// triangulations, sparse random planar, outerplanar, cycles, trees and
  /// wheels.
  std::vector<planar::Family> families;
  int min_n = 12;
  int max_n = 96;
  /// Probability that a case carries a mutation.
  double mutation_probability = 0.35;
  std::uint64_t base_seed = 1;
  /// Max extra property evaluations spent shrinking one failure.
  int shrink_budget = 48;
  /// Stop after this many failures (each is shrunk, which costs runs).
  int max_failures = 3;
};

using Property = std::function<void(const Instance&, InvariantReport&)>;

struct Failure {
  CaseSpec original;
  CaseSpec shrunk;
  std::string replay;  // replay command of the shrunk case
  std::string report;  // violations of the shrunk case
};

struct PropResult {
  int cases_run = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
  /// "420 cases ok" or the replay commands of every failure.
  std::string summary() const;
};

/// Runs `cfg.cases` seeded instances of the property. Each failure is
/// greedily shrunk and reported as a single line on stderr:
///   [proptest] FAIL <name>; replay: --seed=... --family=... --n=...
PropResult run_property(const std::string& name, const PropConfig& cfg,
                        const Property& prop);

/// Re-runs the property on one spec — the replay entry point.
InvariantReport run_one(const CaseSpec& spec, const Property& prop);

/// The default family mix used when PropConfig::families is empty.
std::vector<planar::Family> default_families();

}  // namespace plansep::testing
