#pragma once

/// \file
/// Property-based testing harness: seeded case generation, the checked
/// pipeline runner, greedy shrinking, and one-line replay commands.

// Property-based testing harness with seeded replay.
//
// Turns the paper's theorems into machine-checked properties over
// thousands of random planar instances:
//
//   * seeded generation across every family of planar/generators.hpp,
//     plus adversarial mutations (pendant trees, subdivided edges,
//     degenerate weight vectors) that preserve planarity;
//   * a pipeline runner (embedding → triangulation → separator engine →
//     hierarchy → DFS builder) that folds the centralized oracles of
//     oracles.hpp over every stage, with opt-in CONGEST trace capture;
//   * deterministic failure handling: a failing case is greedily shrunk
//     (smaller n, mutation dropped) and reported as a one-line replay
//     command `--seed=<N> --family=<F> --n=<K> [--mutation=<M>]` that
//     parse_replay/run_one reproduce bit-for-bit.
//
// Everything is a pure function of the CaseSpec — no global RNG, no time,
// no test-order dependence — so a replay command from a CI log reproduces
// the exact instance locally.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "planar/generators.hpp"
#include "testing/oracles.hpp"

namespace plansep::testing {

// ---------------------------------------------------------------- cases --

/// Planarity-preserving adversarial mutation applied after generation.
enum class Mutation {
  kNone,              ///< no mutation
  kPendantTrees,      ///< hang random small trees off random nodes
  kSubdividedEdges,   ///< replace random edges u–v by u–w–v
  kDegenerateWeights, ///< skewed weights (one-heavy / sparse 0-1 / huge)
  kCombined,          ///< all of the above
};

/// Stable name used in replay commands (e.g. "pendant_trees").
const char* mutation_name(Mutation m);
/// Inverse of mutation_name; nullopt on unknown names.
std::optional<Mutation> mutation_from_name(std::string_view name);

/// Fault plan attached to a case (see faults/plan.hpp and
/// docs/FAULT_MODEL.md). Each family maps to a fixed FaultSpec via
/// testing::fault_spec_for (testing/chaos.hpp); the plan's seed is the
/// case seed, so the whole faulty execution replays from the CaseSpec.
enum class FaultFamily {
  kNone,        ///< failure-free CONGEST (the classic model)
  kDrops,       ///< iid message loss
  kDuplicates,  ///< iid message duplication
  kReorder,     ///< adversarial inbox permutations
  kCrashes,     ///< windowed crash/restart
  kStalls,      ///< one-round delivery delays (bandwidth perturbation)
  kOutages,     ///< whole-edge blackouts per scheduling window
  kChaos,       ///< all of the above at once
};

/// Stable name used in replay commands (e.g. "drops", "chaos").
const char* fault_family_name(FaultFamily f);
/// Inverse of fault_family_name; nullopt on unknown names.
std::optional<FaultFamily> fault_family_from_name(std::string_view name);

/// Everything needed to reproduce one test case bit-for-bit.
struct CaseSpec {
  planar::Family family = planar::Family::kGrid;  ///< generator family
  int n = 0;                                      ///< target node count
  std::uint64_t seed = 0;                         ///< master seed
  Mutation mutation = Mutation::kNone;            ///< adversarial mutation
  FaultFamily faults = FaultFamily::kNone;        ///< attached fault plan

  /// The one-line replay command:
  /// "--seed=7 --family=grid --n=64 --mutation=pendant_trees --faults=drops".
  std::string replay() const;
};

/// Parses a replay command (tokens in any order; --mutation and --faults
/// optional).
std::optional<CaseSpec> parse_replay(std::string_view line);

/// Shell-style prefix naming every execution-affecting PLANSEP_* env var
/// active in this process — PLANSEP_THREADS, PLANSEP_PAR_THRESHOLD,
/// PLANSEP_FUSION, PLANSEP_TASKGRAPH — e.g. "PLANSEP_THREADS=4
/// PLANSEP_FUSION=off " (note the trailing space), or "" when none is
/// set. Printed ahead of every replay command so a failure observed under
/// a parallel, fused, or monolithic-fallback configuration replays under
/// exactly that configuration, not the defaults.
std::string replay_env_prefix();

/// A materialized case: the spec plus the generated graph and weights.
struct Instance {
  CaseSpec spec;             ///< the spec this instance was built from
  planar::GeneratedGraph gg; ///< generated (and mutated) planar graph
  /// Per-node weights for the weighted-separator property; all-ones unless
  /// the mutation installs a degenerate vector.
  std::vector<long long> weight;
};

/// Deterministically builds the instance for a spec (generation followed
/// by the spec's mutation, all driven by the spec's seed).
Instance build_instance(const CaseSpec& spec);

// ------------------------------------------------------------- pipeline --

/// Switches for the checked pipeline runner.
struct PipelineOptions {
  bool run_hierarchy = true;  ///< also build the separator hierarchy
  bool run_dfs = true;        ///< also build and validate the DFS tree
  int leaf_size = 8;          ///< hierarchy recursion stops at this size
  /// Capture the CONGEST message trace of the run and check the per-edge
  /// per-round bandwidth discipline on it; also exercises the
  /// message-level part-wise aggregation protocol.
  bool capture_trace = false;
  /// Round envelopes (see oracles.hpp). Calibrated against the current
  /// engine over 500 cases across all families up to n=140: the observed
  /// maxima are ~6.6·(D+1)·log²n (separator) and ~24.4·(D+1)·log²n (DFS),
  /// with small-n constant floors of ~480 and ~950 rounds. The envelope
  /// already allows 2× on top of these budgets, so tripping it means the
  /// cost more than doubled against calibration.
  RoundEnvelope separator_envelope{8.0, 512};
  RoundEnvelope dfs_envelope{30.0, 1024};
};

/// Measured statistics of one checked pipeline run.
struct PipelineStats {
  int n = 0;                         ///< node count after triangulation
  int diameter_bound = 0;            ///< BFS diameter bound used in budgets
  long long separator_measured = 0;  ///< separator measured rounds
  long long separator_charged = 0;   ///< separator charged (analytic) rounds
  int separator_phase = 0;           ///< phase the separator came from
  int hierarchy_levels = 0;          ///< levels built by the hierarchy
  int dfs_phases = 0;                ///< DFS builder phase count
  long long dfs_measured = 0;        ///< DFS measured rounds
  long long dfs_charged = 0;         ///< DFS charged (analytic) rounds
  long long trace_messages = 0;      ///< captured messages (if capturing)
};

/// Runs the full pipeline on the instance, folding every stage's oracle
/// into `rep`; returns measured statistics.
PipelineStats run_pipeline_checked(const Instance& inst,
                                   const PipelineOptions& opt,
                                   InvariantReport& rep);

// -------------------------------------------------------------- runner --

/// Knobs of the property runner.
struct PropConfig {
  int cases = 200;  ///< seeded cases to run
  /// Families to draw from; empty = a default diverse set spanning grids,
  /// triangulations, sparse random planar, outerplanar, cycles, trees and
  /// wheels.
  std::vector<planar::Family> families;
  int min_n = 12;  ///< smallest target node count
  int max_n = 96;  ///< largest target node count
  /// Probability that a case carries a mutation.
  double mutation_probability = 0.35;
  /// Fault families to draw from; empty (the default) keeps every case
  /// failure-free and leaves the case-seed stream untouched, so existing
  /// suites reproduce bit-for-bit.
  std::vector<FaultFamily> fault_families;
  /// Probability that a case carries a fault family (only consulted when
  /// fault_families is non-empty).
  double fault_probability = 0.75;
  std::uint64_t base_seed = 1;  ///< seed of the whole run (case seeds derive)
  /// Max extra property evaluations spent shrinking one failure.
  int shrink_budget = 48;
  /// Stop after this many failures (each is shrunk, which costs runs).
  int max_failures = 3;
};

/// A property: checks one instance, recording violations in the report.
using Property = std::function<void(const Instance&, InvariantReport&)>;

/// One failing case, before and after shrinking.
struct Failure {
  CaseSpec original;   ///< the case as originally drawn
  CaseSpec shrunk;     ///< the minimized failing case
  std::string replay;  ///< replay command of the shrunk case
  std::string report;  ///< violations of the shrunk case
};

/// Outcome of a run_property sweep.
struct PropResult {
  int cases_run = 0;              ///< total property evaluations
  std::vector<Failure> failures;  ///< shrunk failures (empty = pass)
  bool ok() const { return failures.empty(); }  ///< no failures?
  /// "420 cases ok" or the replay commands of every failure.
  std::string summary() const;
};

/// Runs `cfg.cases` seeded instances of the property. Each failure is
/// greedily shrunk and reported as a single line on stderr:
///   [proptest] FAIL <name>; replay: --seed=... --family=... --n=...
PropResult run_property(const std::string& name, const PropConfig& cfg,
                        const Property& prop);

/// Re-runs the property on one spec — the replay entry point.
InvariantReport run_one(const CaseSpec& spec, const Property& prop);

/// The default family mix used when PropConfig::families is empty.
std::vector<planar::Family> default_families();

}  // namespace plansep::testing
