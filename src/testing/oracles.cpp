#include "testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "dfs/validate.hpp"
#include "planar/face_structure.hpp"
#include "separator/validate.hpp"
#include "subroutines/components.hpp"

namespace plansep::testing {

namespace {

using planar::NodeId;

std::string fmt(const char* what, const std::string& detail) {
  std::string s = what;
  if (!detail.empty()) s += ": " + detail;
  return s;
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::string s;
  for (const auto& v : violations) {
    if (!s.empty()) s += "\n";
    s += v;
  }
  return s;
}

void check_embedding(const planar::EmbeddedGraph& g, bool require_connected,
                     InvariantReport& rep) {
  if (require_connected && g.num_components() != 1) {
    rep.fail(fmt("embedding/connected",
                 std::to_string(g.num_components()) + " components"));
  }
  if (g.num_edges() > 0) {
    const planar::FaceStructure faces(g);
    const int genus = faces.euler_genus(g);
    if (genus != 0) {
      rep.fail(fmt("embedding/genus",
                   "euler genus " + std::to_string(genus) + " != 0"));
    }
  }
}

void check_triangulation(const planar::EmbeddedGraph& g,
                         const planar::Triangulation& tri,
                         InvariantReport& rep) {
  if (tri.graph.num_nodes() < g.num_nodes() ||
      static_cast<int>(tri.is_apex.size()) != tri.graph.num_nodes()) {
    rep.fail("triangulation/shape: node counts inconsistent");
    return;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (tri.is_apex[static_cast<std::size_t>(v)]) {
      rep.fail(fmt("triangulation/prefix",
                   "original node " + std::to_string(v) + " marked apex"));
      return;
    }
  }
  check_embedding(tri.graph, false, rep);
  // Graphs with at least one cycle must come out fully triangulated; a
  // graph whose only face is the outer walk of a tree gets one apex face
  // per corner, which is also a triangle — so the check is uniform.
  if (tri.graph.num_edges() >= 3) {
    const planar::FaceStructure faces(tri.graph);
    for (planar::FaceId f = 0; f < faces.num_faces(); ++f) {
      if (faces.walk(f).size() != 3) {
        rep.fail(fmt("triangulation/face",
                     "face " + std::to_string(f) + " has walk length " +
                         std::to_string(faces.walk(f).size())));
        return;
      }
    }
  }
}

void check_cycle_separator(const sub::PartSet& ps, int p,
                           const separator::PartSeparator& sep,
                           InvariantReport& rep) {
  if (sep.path.empty()) {
    rep.fail("separator/empty: no path marked");
    return;
  }
  const separator::SeparatorCheck chk = separator::check_separator(ps, p, sep);
  if (!chk.is_tree_path) rep.fail("separator/tree_path: marked set is not the tree path between its endpoints");
  if (!chk.simple_path) rep.fail("separator/simple: a node repeats on the marked path");
  if (!chk.closure_ok) rep.fail("separator/closure: closing edge does not join the endpoints");
  if (!chk.balanced) {
    std::ostringstream os;
    os << "separator/balance: max component fraction " << chk.balance
       << " > 2/3 (phase " << sep.phase << ")";
    rep.fail(os.str());
  }
}

void check_weighted_separator(const sub::PartSet& ps, int p,
                              const separator::PartSeparator& sep,
                              const std::vector<long long>& weight,
                              InvariantReport& rep) {
  if (sep.path.empty()) {
    rep.fail("wseparator/empty: no path marked");
    return;
  }
  const auto& g = *ps.g;
  std::vector<char> marked(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : sep.path) marked[static_cast<std::size_t>(v)] = 1;
  const sub::Components comps = sub::connected_components(g, [&](NodeId v) {
    return ps.part_of(v) == p && !marked[static_cast<std::size_t>(v)];
  });
  std::vector<long long> sums(static_cast<std::size_t>(comps.count), 0);
  long long total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ps.part_of(v) != p) continue;
    total += weight[static_cast<std::size_t>(v)];
    const int c = comps.label[static_cast<std::size_t>(v)];
    if (c >= 0) sums[static_cast<std::size_t>(c)] += weight[static_cast<std::size_t>(v)];
  }
  long long mx = 0;
  for (long long s : sums) mx = std::max(mx, s);
  if (3 * mx > 2 * total) {
    std::ostringstream os;
    os << "wseparator/balance: max component weight " << mx << " > 2/3 of "
       << total << " (phase " << sep.phase << ")";
    rep.fail(os.str());
  }
}

void check_dfs_tree_oracle(const planar::EmbeddedGraph& g,
                           const dfs::PartialDfsTree& tree,
                           InvariantReport& rep) {
  const dfs::DfsCheck chk = dfs::check_dfs_tree(g, tree);
  if (!chk.ok()) rep.fail(fmt("dfs/tree", chk.summary()));
}

void check_hierarchy(const planar::EmbeddedGraph& g,
                     const separator::SeparatorHierarchy& h, int leaf_size,
                     InvariantReport& rep) {
  const NodeId n = g.num_nodes();
  if (h.pieces.empty()) {
    if (n > 0) rep.fail("hierarchy/empty: no pieces over a nonempty graph");
    return;
  }
  for (std::size_t i = 0; i < h.pieces.size(); ++i) {
    const auto& piece = h.pieces[i];
    const auto tag = [&] { return "piece " + std::to_string(i); };
    if (piece.parent >= 0) {
      const auto& par = h.pieces[static_cast<std::size_t>(piece.parent)];
      if (piece.level != par.level + 1) {
        rep.fail(fmt("hierarchy/level", tag()));
      }
    }
    std::vector<char> in_piece(static_cast<std::size_t>(n), 0);
    for (NodeId v : piece.nodes) in_piece[static_cast<std::size_t>(v)] = 1;
    if (piece.is_leaf()) {
      if (static_cast<int>(piece.nodes.size()) > leaf_size) {
        rep.fail(fmt("hierarchy/leaf_size",
                     tag() + " has " + std::to_string(piece.nodes.size()) +
                         " > " + std::to_string(leaf_size) + " nodes"));
      }
      continue;
    }
    // Separator nodes belong to the piece; children partition the rest
    // into connected chunks of ≤ 2/3 the piece.
    std::vector<char> in_sep(static_cast<std::size_t>(n), 0);
    for (NodeId v : piece.separator) {
      if (!in_piece[static_cast<std::size_t>(v)]) {
        rep.fail(fmt("hierarchy/separator_subset", tag()));
        return;
      }
      in_sep[static_cast<std::size_t>(v)] = 1;
    }
    std::vector<char> covered(static_cast<std::size_t>(n), 0);
    std::size_t child_total = 0;
    for (int c : piece.children) {
      const auto& child = h.pieces[static_cast<std::size_t>(c)];
      if (3 * child.nodes.size() > 2 * piece.nodes.size()) {
        rep.fail(fmt("hierarchy/shrink",
                     tag() + " child of " + std::to_string(child.nodes.size()) +
                         "/" + std::to_string(piece.nodes.size())));
      }
      for (NodeId v : child.nodes) {
        if (!in_piece[static_cast<std::size_t>(v)] ||
            in_sep[static_cast<std::size_t>(v)] ||
            covered[static_cast<std::size_t>(v)]) {
          rep.fail(fmt("hierarchy/partition", tag()));
          return;
        }
        covered[static_cast<std::size_t>(v)] = 1;
      }
      child_total += child.nodes.size();
    }
    if (child_total + piece.separator.size() != piece.nodes.size()) {
      rep.fail(fmt("hierarchy/cover",
                   tag() + ": children + separator != piece"));
    }
  }
}

void check_bandwidth(const planar::EmbeddedGraph& g,
                     const std::vector<TraceEvent>& events,
                     InvariantReport& rep) {
  // Sort (run, round, dart) and look for adjacent duplicates.
  std::vector<std::tuple<int, int, planar::DartId>> keys;
  keys.reserve(events.size());
  for (const TraceEvent& e : events) {
    const planar::DartId d = g.find_dart(e.from, e.to);
    if (d == planar::kNoDart) {
      rep.fail(fmt("bandwidth/neighbor", TraceRecorder::format(e)));
      return;
    }
    keys.emplace_back(e.run, e.round, d);
  }
  std::sort(keys.begin(), keys.end());
  const auto dup = std::adjacent_find(keys.begin(), keys.end());
  if (dup != keys.end()) {
    std::ostringstream os;
    os << "bandwidth/duplicate: two messages on dart " << std::get<2>(*dup)
       << " in run " << std::get<0>(*dup) << " round " << std::get<1>(*dup);
    rep.fail(os.str());
  }
}

long long RoundEnvelope::budget(int diameter, int n) const {
  const double log2n = std::log2(static_cast<double>(n) + 2.0);
  const double scaled = per_d_log2n * (diameter + 1.0) * log2n * log2n;
  return std::max(floor_rounds, static_cast<long long>(std::ceil(scaled)));
}

void check_round_envelope(const char* stage, long long rounds, int diameter,
                          int n, const RoundEnvelope& env,
                          InvariantReport& rep) {
  const long long budget = env.budget(diameter, n);
  if (rounds > 2 * budget) {
    std::ostringstream os;
    os << "rounds/" << stage << ": " << rounds << " rounds > 2x budget "
       << budget << " (D=" << diameter << ", n=" << n << ")";
    rep.fail(os.str());
  }
}

}  // namespace plansep::testing
