#pragma once

// Awerbuch's distributed DFS (Information Processing Letters 1985) — the
// classic O(n)-round baseline the paper improves on (§1.1).
//
// A token performs the DFS. On its first arrival at a node v, v notifies
// all neighbors that it is visited and waits one round for the notices to
// land; the token then moves to a neighbor not known to be visited, or
// returns to the parent. Every node is visited once and each visit costs
// O(1) rounds, for Θ(n) rounds total — independent of the diameter.
// Fully message-level on the CONGEST simulator.

#include "congest/network.hpp"

namespace plansep::baselines {

struct AwerbuchResult {
  congest::NodeId root = planar::kNoNode;
  std::vector<congest::NodeId> parent;
  std::vector<int> depth;
  int rounds = 0;
  long long messages = 0;
};

AwerbuchResult awerbuch_dfs(const congest::EmbeddedGraph& g,
                            congest::NodeId root);

}  // namespace plansep::baselines
