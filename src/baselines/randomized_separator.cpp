#include "baselines/randomized_separator.hpp"

#include <algorithm>
#include <cmath>

#include "faces/membership.hpp"
#include "faces/weights.hpp"
#include "subroutines/components.hpp"
#include "util/check.hpp"

namespace plansep::baselines {

namespace {

using faces::FundamentalEdge;
using planar::NodeId;
using sub::PartSet;
using tree::RootedSpanningTree;

bool balanced(const PartSet& ps, int p, const std::vector<NodeId>& path) {
  const auto& g = *ps.g;
  const int n = ps.part_size(p);
  std::vector<char> marked(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : path) marked[static_cast<std::size_t>(v)] = 1;
  const sub::Components comps = sub::connected_components(
      g, [&](NodeId v) {
        return ps.part_of(v) == p && !marked[static_cast<std::size_t>(v)];
      });
  for (int size : comps.size) {
    if (3 * size > 2 * n) return false;
  }
  return true;
}

}  // namespace

RandomizedSeparatorResult RandomizedSeparatorEngine::compute(
    const PartSet& ps, Rng& rng) {
  RandomizedSeparatorResult out;
  auto& res = out.result;
  res.parts.resize(static_cast<std::size_t>(ps.num_parts));
  res.marked.assign(static_cast<std::size_t>(ps.g->num_nodes()), 0);

  // Cost model: per attempt, one sampling broadcast plus the estimate
  // aggregation and the verification pass — all Õ(D).
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(ps.g->num_nodes()),
                                  0);
  auto pa_unit = engine_->aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  auto charge_pa = [&](long long k) {
    shortcuts::RoundCost c = pa_unit.cost;
    c.measured *= k;
    c.charged *= k;
    c.pa_calls = k;
    res.cost += c;
  };

  std::vector<char> unresolved(static_cast<std::size_t>(ps.num_parts), 1);
  for (int attempt = 1; attempt <= max_attempts_; ++attempt) {
    bool any_unresolved = false;
    for (char u : unresolved) any_unresolved |= (u != 0);
    if (!any_unresolved) break;
    out.attempts = attempt;

    // Fresh public sample.
    std::vector<char> sampled(static_cast<std::size_t>(ps.g->num_nodes()), 0);
    for (NodeId v = 0; v < ps.g->num_nodes(); ++v) {
      sampled[static_cast<std::size_t>(v)] = rng.next_bool(sample_rate_);
    }
    charge_pa(3);  // sample announcement + estimate aggregation + range

    for (int p = 0; p < ps.num_parts; ++p) {
      if (!unresolved[static_cast<std::size_t>(p)]) continue;
      if (!ps.trees[static_cast<std::size_t>(p)]) continue;
      const RootedSpanningTree& t = ps.tree_of_part(p);
      const long long n = t.size();
      std::vector<NodeId> path;
      planar::EdgeId closing = planar::kNoEdge;

      if (n <= 3) {
        path = {t.root()};
      } else {
        const auto fund = faces::real_fundamental_edges(t);
        if (fund.empty()) {
          path = t.path(t.root(), t.centroid());
        } else {
          // Estimated weights; pick the estimate closest to n/2.
          long long best_dist = std::numeric_limits<long long>::max();
          FundamentalEdge best_fe;
          for (planar::EdgeId e : fund) {
            const FundamentalEdge fe = faces::analyze_fundamental_edge(t, e);
            const faces::FaceData fd = faces::face_data(t, fe);
            long long hits = 0;
            for (NodeId z : t.nodes()) {
              if (!sampled[static_cast<std::size_t>(z)]) continue;
              if (faces::classify_node(fd, faces::node_data(t, z)) !=
                  faces::FaceSide::kOutside) {
                ++hits;
              }
            }
            const long long est = sample_rate_ > 0
                                      ? static_cast<long long>(
                                            std::llround(hits / sample_rate_))
                                      : 0;
            const long long dist = std::llabs(2 * est - n);
            if (3 * est >= n && 3 * est <= 2 * n && dist < best_dist) {
              best_dist = dist;
              best_fe = fe;
            }
          }
          if (best_dist != std::numeric_limits<long long>::max()) {
            path = t.path(best_fe.u, best_fe.v);
            closing = best_fe.edge;
          }
        }
      }
      charge_pa(2);  // candidate broadcast + verification sizes
      if (!path.empty() && balanced(ps, p, path)) {
        auto& sep = res.parts[static_cast<std::size_t>(p)];
        sep.path = path;
        sep.endpoint_a = path.front();
        sep.endpoint_b = path.back();
        sep.closing_edge = closing;
        sep.phase = 3;
        res.stats.record(3);
        for (NodeId v : path) res.marked[static_cast<std::size_t>(v)] = 1;
        unresolved[static_cast<std::size_t>(p)] = 0;
      } else if (attempt == 1) {
        ++out.parts_needing_retry;
      }
    }
  }

  // Deterministic fallback for anything sampling could not resolve (e.g.
  // instances whose separator needs the augmentation machinery, which the
  // estimate-only search cannot reach).
  bool any_unresolved = false;
  for (char u : unresolved) any_unresolved |= (u != 0);
  if (any_unresolved) {
    separator::SeparatorEngine det(*engine_);
    separator::SeparatorResult fallback = det.compute(ps);
    res.cost += fallback.cost;
    for (int p = 0; p < ps.num_parts; ++p) {
      if (!unresolved[static_cast<std::size_t>(p)]) continue;
      ++out.deterministic_fallbacks;
      res.parts[static_cast<std::size_t>(p)] =
          fallback.parts[static_cast<std::size_t>(p)];
      for (NodeId v : res.parts[static_cast<std::size_t>(p)].path) {
        res.marked[static_cast<std::size_t>(v)] = 1;
      }
      res.stats.record(res.parts[static_cast<std::size_t>(p)].phase);
    }
  }
  return out;
}

}  // namespace plansep::baselines
