#pragma once

// BFS-level separators — the "levels" half of Lipton–Tarjan's classic
// construction, as a size/quality comparator for cycle separators.
//
// A BFS level whose removal leaves balanced components is a separator;
// Lipton–Tarjan combine two thin levels around the median with a
// fundamental-cycle step on a triangulation to force O(√n) size. This
// baseline implements the level search (single best level, then thin
// level pairs around the median); when no level-based separator balances
// — typical for low-diameter graphs, where single levels are huge — it
// reports failure. The cycle step it lacks is exactly what the paper's
// Theorem 1 machinery provides, which is the comparison bench_lt draws.

#include "congest/bfs_tree.hpp"
#include "planar/embedded_graph.hpp"

namespace plansep::baselines {

struct LevelSeparatorResult {
  bool found = false;
  std::vector<planar::NodeId> separator;
  double balance = 0;  // max remaining component / n (valid when found)
  int levels_used = 0; // 1 or 2
};

/// Best balanced BFS-level separator from `root` (smallest separator among
/// all balanced single levels and median-straddling level pairs).
LevelSeparatorResult bfs_level_separator(const planar::EmbeddedGraph& g,
                                         planar::NodeId root);

/// Same search over a precomputed BFS tree (e.g. the task graph's shared
/// spanning-tree artifact): the level structure is exactly bfs.depth, so
/// the result is byte-identical to the root-taking overload.
LevelSeparatorResult bfs_level_separator(const planar::EmbeddedGraph& g,
                                         const congest::BfsResult& bfs);

}  // namespace plansep::baselines
