#pragma once

// Randomized separator baseline — a stand-in for the randomized face-weight
// estimation of Ghaffari–Parter (DISC 2017), DESIGN.md substitution 3.
//
// The deterministic engine evaluates Definition 2 exactly. GP instead
// *approximate* face weights with randomized sketches. This baseline keeps
// our search skeleton but replaces every exact weight by a sampling
// estimate: each node joins a public sample with probability p, and the
// weight of a face is estimated as (#sampled members of F̃_e)/p via the
// Remark 1 membership test. A candidate separator is then verified
// (balance check, Õ(D)); failures retry with fresh randomness and the
// attempt count is reported. With p ≈ c·log(n)/ (ε²·n)·… the estimates
// concentrate and one attempt almost always suffices — the experiment in
// bench_det_vs_random quantifies the tradeoff.

#include "separator/engine.hpp"
#include "util/rng.hpp"

namespace plansep::baselines {

struct RandomizedSeparatorResult {
  separator::SeparatorResult result;
  int attempts = 0;                 // sampling attempts used (>=1)
  int parts_needing_retry = 0;      // parts whose first candidate failed
  int deterministic_fallbacks = 0;  // parts resolved by the exact engine
};

class RandomizedSeparatorEngine {
 public:
  /// sample_rate: expected fraction of nodes in the sample (the paper's
  /// ε-accuracy knob). max_attempts: sampling retries before falling back
  /// to the deterministic engine for the failing part.
  RandomizedSeparatorEngine(shortcuts::PartwiseEngine& engine,
                            double sample_rate, int max_attempts = 8)
      : engine_(&engine),
        sample_rate_(sample_rate),
        max_attempts_(max_attempts) {}

  RandomizedSeparatorResult compute(const sub::PartSet& ps, Rng& rng);

 private:
  shortcuts::PartwiseEngine* engine_;
  double sample_rate_;
  int max_attempts_;
};

}  // namespace plansep::baselines
