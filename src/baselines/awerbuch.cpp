#include "baselines/awerbuch.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::baselines {

namespace {

using congest::Ctx;
using congest::EmbeddedGraph;
using congest::Incoming;
using congest::InboxView;
using congest::Message;
using congest::NodeId;

// Message tags.
constexpr std::uint8_t kVisited = 1;  // "I joined the DFS tree"
constexpr std::uint8_t kToken = 2;    // forward token; a = sender depth
constexpr std::uint8_t kReturn = 3;   // token returns to parent

class AwerbuchProgram : public congest::NodeProgram {
 public:
  AwerbuchProgram(NodeId root, AwerbuchResult* out) : root_(root), out_(out) {}

  std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) override {
    g_ = &g;
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());
    out_->parent.assign(n, planar::kNoNode);
    out_->depth.assign(n, -1);
    out_->depth[static_cast<std::size_t>(root_)] = 0;
    visited_.assign(n, 0);
    neighbor_visited_.assign(n, {});
    holding_token_.assign(n, 0);
    announced_.assign(n, 0);
    visited_[static_cast<std::size_t>(root_)] = 1;
    holding_token_[static_cast<std::size_t>(root_)] = 1;
    return {root_};
  }

  void round(NodeId v, InboxView inbox, Ctx& ctx) override {
    auto& known = neighbor_visited_[static_cast<std::size_t>(v)];
    if (known.empty()) {
      known.assign(static_cast<std::size_t>(g_->degree(v)), 0);
    }
    bool token_arrived = false;
    for (const Incoming& in : inbox) {
      if (in.msg.tag == kVisited) {
        mark_known(v, in.from);
      } else if (in.msg.tag == kToken) {
        PLANSEP_CHECK(!visited_[static_cast<std::size_t>(v)]);
        visited_[static_cast<std::size_t>(v)] = 1;
        out_->parent[static_cast<std::size_t>(v)] = in.from;
        out_->depth[static_cast<std::size_t>(v)] =
            static_cast<int>(in.msg.a) + 1;
        mark_known(v, in.from);
        holding_token_[static_cast<std::size_t>(v)] = 1;
        token_arrived = true;
      } else if (in.msg.tag == kReturn) {
        mark_known(v, in.from);
        holding_token_[static_cast<std::size_t>(v)] = 1;
      }
    }
    if (!holding_token_[static_cast<std::size_t>(v)]) return;

    // First: announce "visited" to all neighbors and pause one round so
    // the notices land before the token moves on (Awerbuch's trick).
    if (!announced_[static_cast<std::size_t>(v)]) {
      announced_[static_cast<std::size_t>(v)] = 1;
      Message m;
      m.tag = kVisited;
      const NodeId p = out_->parent[static_cast<std::size_t>(v)];
      for (planar::DartId d : g_->rotation(v)) {
        if (g_->head(d) != p) ctx.send(g_->head(d), m);
      }
      ctx.wake_next_round();
      return;
    }
    if (token_arrived) {
      // Notices sent on a previous visit are already out; but notices from
      // concurrent neighbors may arrive this very round — move next round.
      ctx.wake_next_round();
      return;
    }

    // Move the token: to the first neighbor not known visited, else back.
    const auto rot = g_->rotation(v);
    for (int i = 0; i < static_cast<int>(rot.size()); ++i) {
      if (known[static_cast<std::size_t>(i)]) continue;
      Message m;
      m.tag = kToken;
      m.a = out_->depth[static_cast<std::size_t>(v)];
      holding_token_[static_cast<std::size_t>(v)] = 0;
      ctx.send(g_->head(rot[static_cast<std::size_t>(i)]), m);
      return;
    }
    const NodeId p = out_->parent[static_cast<std::size_t>(v)];
    holding_token_[static_cast<std::size_t>(v)] = 0;
    if (p != planar::kNoNode) {
      Message m;
      m.tag = kReturn;
      ctx.send(p, m);
    }
    // Root with no unvisited neighbors: DFS complete (quiescence).
  }

 private:
  void mark_known(NodeId v, NodeId w) {
    const auto rot = g_->rotation(v);
    for (int i = 0; i < static_cast<int>(rot.size()); ++i) {
      if (g_->head(rot[static_cast<std::size_t>(i)]) == w) {
        neighbor_visited_[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)] = 1;
        return;
      }
    }
    PLANSEP_CHECK_MSG(false, "unknown neighbor");
  }

  NodeId root_;
  AwerbuchResult* out_;
  const EmbeddedGraph* g_ = nullptr;
  std::vector<char> visited_;
  std::vector<std::vector<char>> neighbor_visited_;
  std::vector<char> holding_token_;
  std::vector<char> announced_;
};

}  // namespace

AwerbuchResult awerbuch_dfs(const EmbeddedGraph& g, NodeId root) {
  PLANSEP_SPAN("baselines/awerbuch");
  AwerbuchResult out;
  out.root = root;
  AwerbuchProgram prog(root, &out);
  congest::Network net(g);
  out.rounds = net.run(prog);
  out.messages = net.messages_sent();
  return out;
}

}  // namespace plansep::baselines
