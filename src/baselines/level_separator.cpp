#include "baselines/level_separator.hpp"

#include <algorithm>

#include "congest/bfs_tree.hpp"
#include "subroutines/components.hpp"

namespace plansep::baselines {

namespace {

using planar::NodeId;

double balance_of(const planar::EmbeddedGraph& g,
                  const std::vector<char>& in_sep) {
  const sub::Components comps = sub::connected_components(
      g, [&](NodeId v) { return !in_sep[static_cast<std::size_t>(v)]; });
  int max_size = 0;
  for (int s : comps.size) max_size = std::max(max_size, s);
  return static_cast<double>(max_size) / g.num_nodes();
}

}  // namespace

LevelSeparatorResult bfs_level_separator(const planar::EmbeddedGraph& g,
                                         NodeId root) {
  return bfs_level_separator(g, congest::distributed_bfs(g, root));
}

LevelSeparatorResult bfs_level_separator(const planar::EmbeddedGraph& g,
                                         const congest::BfsResult& bfs) {
  const int h = bfs.height;
  std::vector<std::vector<NodeId>> level(static_cast<std::size_t>(h + 1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    level[static_cast<std::size_t>(bfs.depth[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  LevelSeparatorResult best;
  auto consider = [&](const std::vector<int>& which) {
    std::vector<char> in_sep(static_cast<std::size_t>(g.num_nodes()), 0);
    std::size_t size = 0;
    for (int l : which) {
      for (NodeId v : level[static_cast<std::size_t>(l)]) {
        in_sep[static_cast<std::size_t>(v)] = 1;
        ++size;
      }
    }
    if (size == 0 ||
        size == static_cast<std::size_t>(g.num_nodes())) {
      return;
    }
    const double bal = balance_of(g, in_sep);
    if (3 * bal > 2.0) return;  // not balanced
    if (!best.found || size < best.separator.size()) {
      best.found = true;
      best.separator.clear();
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (in_sep[static_cast<std::size_t>(v)]) best.separator.push_back(v);
      }
      best.balance = bal;
      best.levels_used = static_cast<int>(which.size());
    }
  };

  // All single levels.
  for (int l = 0; l <= h; ++l) consider({l});
  // Median-straddling thin pairs (the Lipton–Tarjan shape): the median
  // level m, paired with every level below/above.
  int m = 0;
  long long cum = 0;
  for (int l = 0; l <= h; ++l) {
    cum += static_cast<long long>(level[static_cast<std::size_t>(l)].size());
    if (2 * cum >= g.num_nodes()) {
      m = l;
      break;
    }
  }
  for (int lo = std::max(0, m - 3); lo < m; ++lo) {
    for (int hi = m; hi <= std::min(h, m + 3); ++hi) {
      if (lo != hi) consider({lo, hi});
    }
  }
  return best;
}

}  // namespace plansep::baselines
