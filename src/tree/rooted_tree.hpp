#pragma once

// Rooted spanning trees over (subsets of) an embedded graph.
//
// A RootedSpanningTree represents the paper's planar configuration
// (G, E, T) restricted to a member set P ⊆ V: a spanning tree of G[P]
// rooted at r, with children ordered by the clockwise rotation t_v starting
// right after the parent edge (the paper's convention t_v(parent) = 0; §2,
// §5.1). At the root the "parent" is the virtual dart to the virtual root
// r0 (§4), represented by a rotation gap index (`root_stub_pos`).
//
// The constructor precomputes depths, subtree sizes n_T(v), and the
// LEFT/RIGHT-DFS-ORDERs π_ℓ, π_r (§3.1.1). Orders are 1-based within the
// member set, so subtree intervals are [π(v), π(v)+n_T(v)−1].

#include <span>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::tree {

using planar::DartId;
using planar::EdgeId;
using planar::EmbeddedGraph;
using planar::kNoDart;
using planar::kNoNode;
using planar::NodeId;

class RootedSpanningTree {
 public:
  /// Builds from explicit parent darts: parent_dart[v] is the dart v→parent
  /// for every member v except the root (kNoDart). Nodes with kNoDart other
  /// than the root are non-members. `root_stub_pos` is the rotation gap at
  /// the root where the virtual-root dart is conceptually inserted
  /// (0 <= pos <= degree(root)): the stub sits before rotation index pos.
  RootedSpanningTree(const EmbeddedGraph& g, NodeId root,
                     std::vector<DartId> parent_dart, int root_stub_pos = 0);

  /// BFS spanning tree of the whole graph (must be connected).
  static RootedSpanningTree bfs(const EmbeddedGraph& g, NodeId root,
                                int root_stub_pos = 0);

  /// BFS spanning tree of the member set (G[in_set] containing root must be
  /// connected and cover all of in_set).
  static RootedSpanningTree bfs_subset(const EmbeddedGraph& g, NodeId root,
                                       const std::vector<char>& in_set,
                                       int root_stub_pos = 0);

  const EmbeddedGraph& graph() const { return *g_; }
  NodeId root() const { return root_; }
  int root_stub_pos() const { return root_stub_pos_; }

  /// Number of member nodes.
  int size() const { return static_cast<int>(nodes_.size()); }
  /// Member nodes (unspecified order).
  const std::vector<NodeId>& nodes() const { return nodes_; }
  bool contains(NodeId v) const { return v == root_ || parent_dart_[v] != kNoDart; }

  NodeId parent(NodeId v) const;
  DartId parent_dart(NodeId v) const { return parent_dart_[v]; }
  int depth(NodeId v) const { return depth_[v]; }
  int subtree_size(NodeId v) const { return subtree_size_[v]; }
  /// Children in clockwise rotation order starting after the parent dart.
  std::span<const NodeId> children(NodeId v) const {
    return {child_data_.data() + child_off_[v],
            child_data_.data() + child_off_[v + 1]};
  }

  bool is_tree_edge(EdgeId e) const { return tree_edge_[e] != 0; }

  /// Clockwise offset of dart d (tail must be a member) from the parent
  /// dart of tail(d); the parent dart has offset 0, every other member dart
  /// offset >= 1. Darts to non-members still get an offset (they are simply
  /// never compared by callers working inside G[P]).
  int t_offset(DartId d) const;

  /// LEFT-DFS-ORDER / RIGHT-DFS-ORDER positions (1-based, members only).
  int pi_left(NodeId v) const { return pi_left_[v]; }
  int pi_right(NodeId v) const { return pi_right_[v]; }

  /// True iff a is an ancestor of d (inclusive: is_ancestor(v, v) == true).
  bool is_ancestor(NodeId a, NodeId d) const;

  NodeId lca(NodeId u, NodeId v) const;

  /// Node sequence of the tree path from u to v (inclusive).
  std::vector<NodeId> path(NodeId u, NodeId v) const;

  /// The tree centroid: every component of T − v has at most n/2 nodes.
  /// The path root→centroid is the Phase-2 separator for tree components.
  NodeId centroid() const;

 private:
  void build();

  const EmbeddedGraph* g_;
  NodeId root_;
  int root_stub_pos_;
  std::vector<DartId> parent_dart_;
  std::vector<NodeId> nodes_;
  std::vector<int> depth_;
  std::vector<int> subtree_size_;
  // Children in CSR layout (flat data + per-node offsets) to avoid a
  // per-node vector allocation in every per-part tree.
  std::vector<NodeId> child_data_;
  std::vector<int> child_off_;
  std::vector<char> tree_edge_;
  std::vector<int> pi_left_;
  std::vector<int> pi_right_;
};

}  // namespace plansep::tree
