#include "tree/rooted_tree.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace plansep::tree {

RootedSpanningTree::RootedSpanningTree(const EmbeddedGraph& g, NodeId root,
                                       std::vector<DartId> parent_dart,
                                       int root_stub_pos)
    : g_(&g),
      root_(root),
      root_stub_pos_(root_stub_pos),
      parent_dart_(std::move(parent_dart)) {
  PLANSEP_CHECK(root >= 0 && root < g.num_nodes());
  PLANSEP_CHECK(static_cast<NodeId>(parent_dart_.size()) == g.num_nodes());
  PLANSEP_CHECK(root_stub_pos >= 0 && root_stub_pos <= g.degree(root));
  PLANSEP_CHECK_MSG(parent_dart_[root_] == kNoDart,
                    "root must not have a parent dart");
  build();
}

RootedSpanningTree RootedSpanningTree::bfs(const EmbeddedGraph& g, NodeId root,
                                           int root_stub_pos) {
  std::vector<char> all(static_cast<std::size_t>(g.num_nodes()), 1);
  return bfs_subset(g, root, all, root_stub_pos);
}

RootedSpanningTree RootedSpanningTree::bfs_subset(const EmbeddedGraph& g,
                                                  NodeId root,
                                                  const std::vector<char>& in_set,
                                                  int root_stub_pos) {
  PLANSEP_CHECK(root >= 0 && root < g.num_nodes());
  PLANSEP_CHECK(in_set[static_cast<std::size_t>(root)]);
  std::vector<DartId> parent(static_cast<std::size_t>(g.num_nodes()), kNoDart);
  std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
  std::deque<NodeId> queue{root};
  seen[static_cast<std::size_t>(root)] = 1;
  int reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (DartId d : g.rotation(v)) {
      const NodeId w = g.head(d);
      if (!in_set[static_cast<std::size_t>(w)] ||
          seen[static_cast<std::size_t>(w)]) {
        continue;
      }
      seen[static_cast<std::size_t>(w)] = 1;
      parent[static_cast<std::size_t>(w)] = EmbeddedGraph::rev(d);
      queue.push_back(w);
      ++reached;
    }
  }
  int want = 0;
  for (char c : in_set) want += c;
  PLANSEP_CHECK_MSG(reached == want, "member set is not connected");
  return RootedSpanningTree(g, root, std::move(parent), root_stub_pos);
}

void RootedSpanningTree::build() {
  const EmbeddedGraph& g = *g_;
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  depth_.assign(n, -1);
  subtree_size_.assign(n, 0);
  tree_edge_.assign(static_cast<std::size_t>(g.num_edges()), 0);
  pi_left_.assign(n, 0);
  pi_right_.assign(n, 0);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const DartId pd = parent_dart_[static_cast<std::size_t>(v)];
    if (pd == kNoDart) continue;
    PLANSEP_CHECK_MSG(g.tail(pd) == v, "parent dart must leave its node");
    tree_edge_[static_cast<std::size_t>(EmbeddedGraph::edge_of(pd))] = 1;
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (contains(v)) nodes_.push_back(v);
  }

  // Children of each member in CSR layout, ordered clockwise starting
  // after the parent dart (flat storage avoids a per-node allocation in
  // every per-part tree).
  child_off_.assign(n + 1, 0);
  for (NodeId v : nodes_) {
    if (v == root_) continue;
    const NodeId p = g.head(parent_dart_[static_cast<std::size_t>(v)]);
    PLANSEP_CHECK_MSG(contains(p), "parent of a member must be a member");
    ++child_off_[static_cast<std::size_t>(p) + 1];
  }
  for (std::size_t i = 1; i < child_off_.size(); ++i) {
    child_off_[i] += child_off_[i - 1];
  }
  child_data_.assign(nodes_.empty() ? 0 : nodes_.size() - 1, kNoNode);
  {
    std::vector<int> cursor(child_off_.begin(), child_off_.end() - 1);
    for (NodeId v : nodes_) {
      if (v == root_) continue;
      const NodeId p = g.head(parent_dart_[static_cast<std::size_t>(v)]);
      child_data_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p)]++)] = v;
    }
  }
  for (NodeId v : nodes_) {
    auto begin = child_data_.begin() + child_off_[static_cast<std::size_t>(v)];
    auto end = child_data_.begin() + child_off_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end, [&](NodeId a, NodeId b) {
      return t_offset(EmbeddedGraph::rev(
                 parent_dart_[static_cast<std::size_t>(a)])) <
             t_offset(EmbeddedGraph::rev(
                 parent_dart_[static_cast<std::size_t>(b)]));
    });
  }

  // Depths and subtree sizes by iterative traversal from the root.
  depth_[static_cast<std::size_t>(root_)] = 0;
  std::vector<NodeId> order;  // preorder
  order.reserve(nodes_.size());
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (NodeId c : children(v)) {
      depth_[static_cast<std::size_t>(c)] = depth_[static_cast<std::size_t>(v)] + 1;
      stack.push_back(c);
    }
  }
  PLANSEP_CHECK_MSG(order.size() == nodes_.size(),
                    "parent darts do not form a tree over the members");
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    int size = 1;
    for (NodeId c : children(v)) {
      size += subtree_size_[static_cast<std::size_t>(c)];
    }
    subtree_size_[static_cast<std::size_t>(v)] = size;
  }

  // DFS orders. RIGHT-DFS-ORDER visits children in increasing t-offset
  // (clockwise); LEFT-DFS-ORDER in decreasing t-offset (counterclockwise).
  auto assign_order = [&](std::vector<int>& pi, bool left) {
    int counter = 0;
    std::vector<NodeId> st{root_};
    while (!st.empty()) {
      const NodeId v = st.back();
      st.pop_back();
      pi[static_cast<std::size_t>(v)] = ++counter;
      const auto ch = children(v);
      // Stack is LIFO: push in reverse of the desired visit order.
      if (left) {
        for (auto it = ch.begin(); it != ch.end(); ++it) st.push_back(*it);
      } else {
        for (auto it = ch.rbegin(); it != ch.rend(); ++it) st.push_back(*it);
      }
    }
  };
  assign_order(pi_left_, /*left=*/true);
  assign_order(pi_right_, /*left=*/false);
}

NodeId RootedSpanningTree::parent(NodeId v) const {
  const DartId pd = parent_dart_[static_cast<std::size_t>(v)];
  return pd == kNoDart ? kNoNode : g_->head(pd);
}

int RootedSpanningTree::t_offset(DartId d) const {
  const NodeId v = g_->tail(d);
  const int deg = g_->degree(v);
  if (v == root_) {
    // Conceptual rotation: stub at gap root_stub_pos_, then the real darts
    // clockwise. Offsets start at 1 for the dart at index root_stub_pos_.
    return ((g_->position(d) - root_stub_pos_ + deg) % deg) + 1;
  }
  const DartId pd = parent_dart_[static_cast<std::size_t>(v)];
  PLANSEP_CHECK_MSG(pd != kNoDart, "t_offset of a non-member node");
  return (g_->position(d) - g_->position(pd) + deg) % deg;
}

bool RootedSpanningTree::is_ancestor(NodeId a, NodeId d) const {
  const int pa = pi_left_[static_cast<std::size_t>(a)];
  const int pd = pi_left_[static_cast<std::size_t>(d)];
  return pd >= pa && pd < pa + subtree_size_[static_cast<std::size_t>(a)];
}

NodeId RootedSpanningTree::lca(NodeId u, NodeId v) const {
  while (u != v) {
    if (depth_[static_cast<std::size_t>(u)] >= depth_[static_cast<std::size_t>(v)]) {
      u = parent(u);
    } else {
      v = parent(v);
    }
  }
  return u;
}

std::vector<NodeId> RootedSpanningTree::path(NodeId u, NodeId v) const {
  const NodeId w = lca(u, v);
  std::vector<NodeId> up;
  for (NodeId x = u; x != w; x = parent(x)) up.push_back(x);
  up.push_back(w);
  std::vector<NodeId> down;
  for (NodeId x = v; x != w; x = parent(x)) down.push_back(x);
  up.insert(up.end(), down.rbegin(), down.rend());
  return up;
}

NodeId RootedSpanningTree::centroid() const {
  // Walk from the root towards the child with the heaviest subtree while
  // that subtree exceeds n/2. At the stop node every hanging component
  // (child subtrees and the part above) has at most n/2 nodes, so the tree
  // path root→centroid is a separator whose removal leaves components of
  // size <= n/2 (used by Phase 2 of the separator algorithm; the paper's
  // claim that some subtree size lies in [n/3, 2n/3] fails on stars, but
  // the root→centroid path is always a valid cycle separator).
  const int n = size();
  NodeId v = root_;
  for (;;) {
    NodeId heavy = kNoNode;
    for (NodeId c : children(v)) {
      if (2 * subtree_size_[static_cast<std::size_t>(c)] > n) {
        heavy = c;
        break;
      }
    }
    if (heavy == kNoNode) return v;
    v = heavy;
  }
}

}  // namespace plansep::tree
