#pragma once

/// \file
/// Centralized verification of persisted artifacts: separator balance and
/// DFS ancestor checks that work on decoded arrays, not live engine state.

// Artifact verifiers for the batch pipeline's "verify" stage.
//
// The engine-side validators (separator/validate.hpp, dfs/validate.hpp)
// consume live engine structures (PartSet, PartialDfsTree) that a
// warm-cache batch never builds — a cache hit hands back decoded arrays.
// These verifiers check the same mathematical properties directly on the
// artifact + graph, so cold and warm runs verify (and report) through one
// code path, which is what makes warm-run result rows byte-identical to
// cold-run rows.

#include "io/artifact.hpp"
#include "planar/embedded_graph.hpp"

namespace plansep::serve {

/// Verification outcome for a persisted separator (whole graph as one
/// part): the cycle-separator properties of Theorem 1, re-derived
/// centrally.
struct SeparatorVerify {
  bool nodes_valid = false;   ///< all path nodes in range, no repeats
  bool path_connected = false;  ///< consecutive path nodes adjacent in g
  bool balanced = false;      ///< every component of g − path has ≤ 2n/3 nodes
  double balance = 0;         ///< max component size / n
  int components = 0;         ///< components of g − path
  /// All properties hold.
  bool ok() const { return nodes_valid && path_connected && balanced; }
};

/// Verifies a separator artifact against the graph it was computed on.
SeparatorVerify verify_separator_artifact(const planar::EmbeddedGraph& g,
                                          const io::SeparatorArtifact& s);

/// Verification outcome for a persisted DFS tree: the classic
/// characterization (every graph edge joins an ancestor/descendant pair),
/// re-derived from the parent/depth arrays.
struct DfsVerify {
  bool spanning = false;           ///< every node has a consistent parent
  bool depths_consistent = false;  ///< depth(v) == depth(parent(v)) + 1
  bool dfs_property = false;       ///< all edges ancestor-related
  long long violating_edges = 0;   ///< edges breaking the DFS property
  int max_depth = 0;               ///< deepest node (reporting)
  /// All properties hold.
  bool ok() const { return spanning && depths_consistent && dfs_property; }
};

/// Verifies a DFS artifact against the graph it was computed on.
DfsVerify verify_dfs_artifact(const planar::EmbeddedGraph& g,
                              const io::DfsArtifact& d);

}  // namespace plansep::serve
