#pragma once

/// \file
/// Batch serving: job-file parsing and the concurrent, cache-backed,
/// deadline-aware scheduler behind the plansep_batch CLI.

// The batch scheduler: admits pipeline jobs (generate-or-load → separator
// → DFS → verify), executes them on congest::ThreadPool, and streams one
// JSON row per job.
//
// Determinism contract (argued in DESIGN.md §9): for a fixed job file and
// cache configuration, the emitted row stream is byte-identical across
//   * thread counts (serial vs k workers),
//   * cold vs warm caches (memory, disk, or both).
// The ingredients:
//   * rows are emitted in admission order through a reorder buffer, never
//     in completion order;
//   * every row field derives from the canonical artifact bytes — a cold
//     run encodes, then decodes its own artifact; a warm run decodes the
//     cached bytes; both verify the decoded arrays through serve/verify —
//     so there is one code path from bytes to row;
//   * rows carry no wall-clock fields and no per-job cache disposition
//     (those live in the obs metrics, where single-flight makes the
//     aggregate hit/miss counts thread-count-invariant too);
//   * fault-injected jobs bypass the cache and always run serially on the
//     admitting thread in admission order (the fault injector hook is
//     process-global), so their retry histories are reproducible.
//
// Inside the parallel section the scheduler forces the CONGEST round
// engine serial (ScopedThreadConfig{threads = 1}) — ThreadPool::run_shards
// is not reentrant, and job-level parallelism already saturates the pool —
// and detaches the process-global metrics registry / trace sink / fault
// injector, folding a local counter set back into the restored registry
// afterwards, so PLANSEP_METRICS=1 stays race-free under concurrent jobs.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "faults/plan.hpp"
#include "faults/recovery.hpp"
#include "serve/cache.hpp"
#include "taskgraph/graph.hpp"
#include "taskgraph/pipeline.hpp"

namespace plansep::serve {

/// Which stages a job runs.
enum class Algo {
  kSeparator,  ///< cycle separator only (Theorem 1)
  kDfs,        ///< DFS tree only (Theorem 2)
  kPipeline,   ///< separator, then DFS
  /// BFS-level baseline separator (Lipton–Tarjan levels half). Shares the
  /// spanning-tree sub-artifact with the deterministic separator when the
  /// task graph executes both on one fingerprint.
  kBaselineSeparator,
};

/// Stable name of an algo ("separator", "dfs", "pipeline",
/// "baseline-separator").
const char* algo_name(Algo a);
/// Inverse of algo_name; nullopt for unknown names.
std::optional<Algo> algo_from_name(const std::string& name);

/// One admitted job, as parsed from a job-file line.
struct JobSpec {
  std::string family = "grid";     ///< generator family (family_from_name)
  int n = 64;                      ///< target instance size
  std::uint64_t seed = 1;          ///< generation seed
  Algo algo = Algo::kPipeline;     ///< stages to run
  /// Wall-clock budget in milliseconds, checked between stages; negative
  /// means none. 0 is "already expired" — the deterministic way tests
  /// exercise the deadline path.
  long long deadline_ms = -1;
  faults::FaultSpec faults;        ///< injected fault intensities
  std::uint64_t fault_seed = 0;    ///< base seed for the fault plan
  /// Load this .psg artifact instead of generating (family/n/seed are
  /// then provenance only).
  std::string graph_path;
  int line = 0;                    ///< 1-based job-file line (diagnostics)
};

/// Parses one job-file line of `--key=value` flags (see docs: --family,
/// --n, --seed, --algo, --deadline-ms, --graph, --drop, --dup, --stall,
/// --reorder, --crash, --outage, --fault-seed). Returns nullopt for blank
/// or '#'-comment lines; throws std::runtime_error (with the line number)
/// on unknown flags or malformed values.
std::optional<JobSpec> parse_job_line(const std::string& text, int line_no);

/// Parses a whole job file via parse_job_line.
std::vector<JobSpec> parse_job_file(std::istream& in);

/// Scheduler configuration.
struct BatchOptions {
  int threads = 1;             ///< worker shards for fault-free jobs
  std::string corpus_dir;      ///< store generated instances here ("" = off)
  faults::RetryPolicy retry;   ///< recovery policy for fault-injected jobs
  /// Execute fault-free jobs through the recorded task graph
  /// (taskgraph::pipeline_graph()): sub-artifact caching, cross-job
  /// spanning-tree sharing, corpus IO overlapped with compute. Rows and
  /// artifacts are byte-identical either way; the default follows
  /// PLANSEP_TASKGRAPH (on unless =0/off). Fault-injected jobs always
  /// take the monolithic recovery path.
  bool taskgraph = taskgraph::taskgraph_enabled();
};

/// Outcome of one job, in admission order.
struct JobResult {
  /// "ok", "check_failed" (a verifier rejected a stage's output),
  /// "deadline" (budget exhausted between stages; completed stages still
  /// reported), or "error" (see `error`).
  std::string status;
  std::string row;    ///< the emitted JSON row (no trailing newline)
  std::string error;  ///< diagnosis when status == "error"
  int attempts = 1;   ///< pipeline attempts (> 1 only under faults)
  /// Task-graph execution counters for this job (all zero on the
  /// monolithic path). Never rendered into the row — the row stays
  /// byte-identical across execution modes.
  taskgraph::TaskGraphCounters taskgraph;
};

/// Aggregate outcome of a batch.
struct BatchReport {
  long long jobs = 0;             ///< admitted jobs
  long long ok = 0;               ///< status "ok"
  long long check_failed = 0;     ///< status "check_failed"
  long long deadline_missed = 0;  ///< status "deadline"
  long long errors = 0;           ///< status "error"
  CacheCounters cache;            ///< cache counter delta over this batch
  /// Merged task-graph counters across the batch's jobs. The totals
  /// (tasks_run, cache_served, per-task runs) are thread-count invariant
  /// by single-flight; overlapped_io_ms is wall clock.
  taskgraph::TaskGraphCounters taskgraph;
  std::vector<JobResult> results; ///< per-job outcomes, admission order
};

/// Runs the batch. Rows stream to `rows_out` (JSONL, admission order) as
/// completion allows; pass nullptr to collect them only in the report.
/// The cache is caller-owned so consecutive batches share warmth.
BatchReport run_batch(const std::vector<JobSpec>& jobs,
                      const BatchOptions& opts, ResultCache& cache,
                      std::ostream* rows_out = nullptr);

/// Executes one job outside the batch scheduler — the daemon's execution
/// path. Same bytes→row contract as run_batch (the row is a pure function
/// of the job spec, `index`, and the canonical artifact bytes; no
/// wall-clock fields), so a daemon response is byte-identical to the
/// batch row for the same spec and index. `index` lands in the row's
/// "job" field — daemon sessions pass the client's request id.
///
/// Caller obligations mirror run_batch's parallel section: the CONGEST
/// round engine must be configured serial (ScopedThreadConfig), the
/// process-global metrics registry / trace sink / fault injector must be
/// detached, and jobs whose spec enables faults must not run concurrently
/// with any other job (their fault injector hook is process-global). The
/// daemon dispatcher enforces all three.
JobResult run_single_job(const JobSpec& spec, std::uint64_t index,
                         const BatchOptions& opts, ArtifactCache& cache);

}  // namespace plansep::serve
