#pragma once

/// \file
/// Content-addressed result cache: byte-capacity LRU over serialized
/// artifacts, single-flight deduplication, optional on-disk store.

// The serving layer's result cache.
//
// Keys are (topology fingerprint, algorithm id, config hash) — the full
// identity of a deterministic computation, so a cached value is exactly
// the bytes the computation would produce (io/artifact.hpp encodings are
// canonical). Three tiers:
//
//   * in-memory LRU, bounded by total payload bytes (capacity_bytes);
//     values are shared_ptrs, so an evicted entry stays alive for readers
//     already holding it;
//   * optional on-disk store (disk_dir): every computed value is written
//     to <disk_dir>/<address>.psa and memory misses consult it before
//     computing — this is what makes a second `plansep_batch` process run
//     warm. Disk payloads are container-parsed before being trusted; a
//     corrupted file is recomputed, never served.
//   * single-flight: concurrent get_or_compute calls for one key block on
//     a shared flight instead of computing in parallel — exactly one
//     compute per key ever runs, so aggregate hit/miss counts are a pure
//     function of the request multiset, independent of thread count (the
//     scheduler's determinism argument, DESIGN.md §9, leans on this).
//
// All methods are thread-safe. A compute callback runs outside the cache
// lock; if it throws, every waiter of that flight rethrows and nothing is
// cached.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace plansep::serve {

/// Identity of a cached computation.
struct CacheKey {
  std::uint64_t fingerprint = 0;  ///< core::topology_fingerprint of the input
  std::string algorithm;          ///< versioned algorithm id, e.g. "dfs@v1"
  std::uint64_t config_hash = 0;  ///< hash of every remaining config knob

  /// Field-wise equality.
  bool operator==(const CacheKey& o) const {
    return fingerprint == o.fingerprint && config_hash == o.config_hash &&
           algorithm == o.algorithm;
  }
};

/// The 64-bit content address of a key (mix of all three components) —
/// the disk file name and the in-memory bucket identity.
std::uint64_t cache_address(const CacheKey& key);

/// Monotonic counters describing cache behaviour. Thread-count invariant
/// by single-flight (see the file comment): for a fixed request multiset,
/// hits + disk_hits and misses are the same whether requests arrive
/// serially or concurrently.
struct CacheCounters {
  long long hits = 0;        ///< served from memory (coalesced joins included)
  long long disk_hits = 0;   ///< served from the on-disk store
  long long misses = 0;      ///< computes actually run
  long long evictions = 0;   ///< entries dropped for capacity
  long long inserted_bytes = 0;   ///< payload bytes ever inserted
  long long disk_corrupt = 0;     ///< disk payloads rejected by parsing
  long long disk_write_failed = 0;  ///< best-effort disk writes that failed
  /// The subset of `hits` that joined another caller's in-progress flight
  /// — the cross-job sub-result shares the task graph is after.
  long long flight_joins = 0;
  /// Entries preloaded from disk by warm() (boot warm-up; not hits).
  long long warmed = 0;

  /// Total lookups answered without running a compute.
  long long served_without_compute() const { return hits + disk_hits; }
  /// Component-wise difference (for before/after snapshots).
  CacheCounters operator-(const CacheCounters& o) const;
};

/// Interface shared by the flat and sharded caches: everything a job
/// executor needs (lookup-or-compute plus counters). serve::run_batch and
/// the daemon dispatcher are written against this, so either tier plugs
/// in.
class ArtifactCache {
 public:
  /// The value type: immutable shared artifact bytes.
  using Value = std::shared_ptr<const std::vector<std::uint8_t>>;
  /// A compute callback producing the value for a key on miss.
  using Compute = std::function<std::vector<std::uint8_t>()>;

  virtual ~ArtifactCache() = default;

  /// Returns the cached value for key, computing (or disk-loading) it at
  /// most once across all concurrent callers (single-flight). Exceptions
  /// from compute propagate to every caller of that flight; nothing is
  /// cached then.
  virtual Value get_or_compute(const CacheKey& key,
                               const Compute& compute) = 0;
  /// Preloads the key from the disk tier into memory without ever
  /// computing. Returns true when the key is now resident (already in
  /// memory, or loaded from a verified disk payload). Never counts a hit
  /// or miss; a disk load bumps `warmed`. Default: not supported.
  virtual bool warm(const CacheKey& key) { (void)key; return false; }
  /// Counter snapshot (aggregated over shards for the sharded tier).
  virtual CacheCounters counters() const = 0;
  /// Single-flight entries currently in progress. Zero whenever no
  /// get_or_compute call is executing — a nonzero value at quiescence is
  /// a leaked flight (the drain/soak tests assert this).
  virtual std::size_t inflight_flights() const = 0;
};

/// Byte-bounded LRU + single-flight cache over serialized artifacts.
class ResultCache : public ArtifactCache {
 public:
  /// Construction knobs.
  struct Options {
    /// In-memory payload budget; eviction is LRU once exceeded. A value
    /// larger than the budget is returned but not retained.
    std::size_t capacity_bytes = 64u << 20;
    /// On-disk store directory; empty disables the disk tier.
    std::string disk_dir;
  };

  /// An empty cache with the given options.
  explicit ResultCache(Options opts);

  /// Returns the cached value for key, computing (or disk-loading) it at
  /// most once across all concurrent callers. Exceptions from compute
  /// propagate to every caller of that flight; nothing is cached then.
  Value get_or_compute(const CacheKey& key, const Compute& compute) override;

  /// Disk-tier preload (see ArtifactCache::warm).
  bool warm(const CacheKey& key) override;

  /// Memory-only peek (counts neither hit nor miss); null when absent.
  Value peek(const CacheKey& key) const;

  /// Drops every in-memory entry (the disk tier is untouched).
  void clear_memory();

  /// Current in-memory payload bytes.
  std::size_t size_bytes() const;
  /// Current in-memory entry count.
  std::size_t entries() const;
  /// Counter snapshot.
  CacheCounters counters() const override;
  /// In-progress single-flight entries (see ArtifactCache).
  std::size_t inflight_flights() const override;
  /// The configured options.
  const Options& options() const { return opts_; }

 private:
  struct Entry {
    std::uint64_t address;
    CacheKey key;
    Value value;
  };
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Value value;
    std::exception_ptr error;
  };

  std::string disk_path(std::uint64_t address) const;
  // callers hold mu_
  Value find_locked(std::uint64_t address, const CacheKey& key);
  void insert_locked(std::uint64_t address, const CacheKey& key, Value v);

  Options opts_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  std::size_t bytes_ = 0;
  CacheCounters counters_;
};

/// Sharded in-memory tier over N independent ResultCache shards, in front
/// of one shared disk tier. Keys map to shards by their content address
/// (shard_of), so two lookups of one key always meet in the same shard —
/// single-flight dedup keeps working — while lookups of distinct keys
/// mostly take distinct shard locks. A disk-tier hit is loaded by the
/// owning shard and therefore repopulates exactly that shard's memory.
/// The memory budget is split evenly; a value larger than one shard's
/// slice is served but not retained, like the flat cache's oversize rule.
class ShardedResultCache : public ArtifactCache {
 public:
  /// Construction knobs.
  struct Options {
    /// Total in-memory payload budget, split evenly across shards.
    std::size_t capacity_bytes = 64u << 20;
    /// Shard count (clamped to >= 1). Keep it a small power of two.
    int shards = 8;
    /// On-disk store directory shared by every shard; "" disables the
    /// disk tier. File names are content addresses, so shards never
    /// collide on disk.
    std::string disk_dir;
  };

  /// An empty sharded cache with the given options.
  explicit ShardedResultCache(Options opts);

  /// Delegates to the owning shard's get_or_compute.
  Value get_or_compute(const CacheKey& key, const Compute& compute) override;
  /// Delegates to the owning shard's warm.
  bool warm(const CacheKey& key) override;
  /// Memory-only peek into the owning shard.
  Value peek(const CacheKey& key) const;
  /// Drops every shard's in-memory entries (disk tier untouched).
  void clear_memory();

  /// The shard index key maps to: a stable function of cache_address(key)
  /// and the shard count only.
  int shard_of(const CacheKey& key) const;
  /// Number of shards.
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Direct shard access (tests assert per-shard placement).
  ResultCache& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }

  /// Sum of every shard's in-memory payload bytes.
  std::size_t size_bytes() const;
  /// Sum of every shard's in-memory entry count.
  std::size_t entries() const;
  /// Component-wise sum of every shard's counters.
  CacheCounters counters() const override;
  /// Sum of every shard's in-progress flights (see ArtifactCache).
  std::size_t inflight_flights() const override;
  /// The configured options.
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  std::vector<std::unique_ptr<ResultCache>> shards_;
};

}  // namespace plansep::serve
