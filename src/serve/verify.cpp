#include "serve/verify.hpp"

#include <algorithm>
#include <vector>

namespace plansep::serve {

using planar::EmbeddedGraph;
using planar::NodeId;

SeparatorVerify verify_separator_artifact(const EmbeddedGraph& g,
                                          const io::SeparatorArtifact& s) {
  SeparatorVerify out;
  const NodeId n = g.num_nodes();
  const auto& path = s.part.path;

  std::vector<char> on_path(static_cast<std::size_t>(n), 0);
  out.nodes_valid = !path.empty();
  for (const NodeId v : path) {
    if (v < 0 || v >= n || on_path[static_cast<std::size_t>(v)]) {
      out.nodes_valid = false;
      break;
    }
    on_path[static_cast<std::size_t>(v)] = 1;
  }
  if (!out.nodes_valid) return out;

  out.path_connected = true;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!g.has_edge(path[i - 1], path[i])) {
      out.path_connected = false;
      break;
    }
  }

  // Components of g − path by BFS over the untouched nodes.
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> queue;
  long long max_comp = 0;
  for (NodeId s0 = 0; s0 < n; ++s0) {
    if (on_path[static_cast<std::size_t>(s0)] ||
        comp[static_cast<std::size_t>(s0)] >= 0) {
      continue;
    }
    queue.assign(1, s0);
    comp[static_cast<std::size_t>(s0)] = out.components;
    long long size = 0;
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      ++size;
      for (const planar::DartId d : g.rotation(v)) {
        const NodeId u = g.head(d);
        if (on_path[static_cast<std::size_t>(u)] ||
            comp[static_cast<std::size_t>(u)] >= 0) {
          continue;
        }
        comp[static_cast<std::size_t>(u)] = out.components;
        queue.push_back(u);
      }
    }
    max_comp = std::max(max_comp, size);
    ++out.components;
  }
  out.balance = n > 0 ? static_cast<double>(max_comp) / n : 0;
  out.balanced = 3 * max_comp <= 2LL * n;
  return out;
}

DfsVerify verify_dfs_artifact(const EmbeddedGraph& g,
                              const io::DfsArtifact& d) {
  DfsVerify out;
  const NodeId n = g.num_nodes();
  if (d.parent.size() != static_cast<std::size_t>(n) ||
      d.depth.size() != static_cast<std::size_t>(n) || d.root < 0 ||
      d.root >= n) {
    return out;  // wrong shape: nothing holds
  }

  out.spanning = d.parent[static_cast<std::size_t>(d.root)] == planar::kNoNode;
  out.depths_consistent = d.depth[static_cast<std::size_t>(d.root)] == 0;
  for (NodeId v = 0; v < n && (out.spanning || out.depths_consistent); ++v) {
    if (v == d.root) continue;
    const NodeId p = d.parent[static_cast<std::size_t>(v)];
    if (p < 0 || p >= n || !g.has_edge(p, v)) {
      out.spanning = false;
      break;
    }
    if (d.depth[static_cast<std::size_t>(v)] !=
        d.depth[static_cast<std::size_t>(p)] + 1) {
      out.depths_consistent = false;
    }
    out.max_depth =
        std::max(out.max_depth, static_cast<int>(d.depth[static_cast<std::size_t>(v)]));
  }
  if (!out.spanning || !out.depths_consistent) return out;

  // Ancestor test by parent walks from the deeper endpoint: with depths
  // consistent this is O(depth) per edge, and batches run on modest n.
  const auto is_ancestor_pair = [&](NodeId a, NodeId b) {
    NodeId lo = d.depth[static_cast<std::size_t>(a)] >=
                        d.depth[static_cast<std::size_t>(b)]
                    ? a
                    : b;
    const NodeId hi = lo == a ? b : a;
    while (d.depth[static_cast<std::size_t>(lo)] >
           d.depth[static_cast<std::size_t>(hi)]) {
      lo = d.parent[static_cast<std::size_t>(lo)];
    }
    return lo == hi;
  };
  out.dfs_property = true;
  for (planar::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!is_ancestor_pair(g.edge_u(e), g.edge_v(e))) {
      out.dfs_property = false;
      ++out.violating_edges;
    }
  }
  return out;
}

}  // namespace plansep::serve
