#include "serve/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "congest/thread_pool.hpp"
#include "core/fingerprint.hpp"
#include "core/plansep.hpp"
#include "faults/controller.hpp"
#include "io/artifact.hpp"
#include "io/corpus.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "serve/verify.hpp"

namespace plansep::serve {

namespace {

using Clock = std::chrono::steady_clock;

long long elapsed_ms(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

// ------------------------------------------------------------- job rows --

/// Deterministic separator row fields, all derived from the decoded
/// artifact (never from live engine state — see the file comment).
struct SepRow {
  int phase = 0;
  long long path = 0;
  double balance = 0;
  int components = 0;
  bool verified = false;
  long long measured = 0;
  long long charged = 0;
};

/// Deterministic DFS row fields, likewise artifact-derived.
struct DfsRow {
  int phases = 0;
  int depth = 0;
  bool verified = false;
  long long measured = 0;
  long long charged = 0;
};

/// Deterministic baseline-separator row fields, artifact-derived.
struct BaselineRow {
  bool found = false;
  long long size = 0;
  double balance = 0;
  int levels = 0;
  bool verified = false;
};

// Everything a job accumulates before its row is rendered.
struct JobRun {
  const JobSpec* spec = nullptr;
  std::uint64_t index = 0;
  std::string status = "ok";
  std::string error;
  int attempts = 1;
  bool have_graph = false;
  std::string family;
  planar::NodeId nodes = 0;
  planar::EdgeId edges = 0;
  std::uint64_t fingerprint = 0;
  std::optional<SepRow> sep;
  std::optional<DfsRow> dfs;
  std::optional<BaselineRow> baseline;
  taskgraph::TaskGraphCounters tg;
};

std::string render_row(const JobRun& r) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("job").value(static_cast<long long>(r.index));
  w.key("family").value(r.family.empty() ? r.spec->family : r.family);
  w.key("algo").value(algo_name(r.spec->algo));
  w.key("seed").value(static_cast<long long>(r.spec->seed));
  w.key("faults").value(r.spec->faults.enabled());
  if (r.have_graph) {
    w.key("n").value(static_cast<long long>(r.nodes));
    w.key("edges").value(static_cast<long long>(r.edges));
    w.key("fingerprint").value(core::fingerprint_hex(r.fingerprint));
  } else {
    w.key("n").value(static_cast<long long>(r.spec->n));
  }
  w.key("status").value(r.status);
  w.key("attempts").value(r.attempts);
  if (r.sep) {
    w.key("separator").begin_object();
    w.key("phase").value(r.sep->phase);
    w.key("path").value(r.sep->path);
    w.key("balance").value(r.sep->balance);
    w.key("components").value(r.sep->components);
    w.key("verified").value(r.sep->verified);
    w.key("measured").value(r.sep->measured);
    w.key("charged").value(r.sep->charged);
    w.end_object();
  }
  if (r.dfs) {
    w.key("dfs").begin_object();
    w.key("phases").value(r.dfs->phases);
    w.key("depth").value(r.dfs->depth);
    w.key("verified").value(r.dfs->verified);
    w.key("measured").value(r.dfs->measured);
    w.key("charged").value(r.dfs->charged);
    w.end_object();
  }
  if (r.baseline) {
    w.key("baseline").begin_object();
    w.key("found").value(r.baseline->found);
    w.key("size").value(r.baseline->size);
    w.key("balance").value(r.baseline->balance);
    w.key("levels").value(r.baseline->levels);
    w.key("verified").value(r.baseline->verified);
    w.end_object();
  }
  if (!r.error.empty()) w.key("error").value(r.error);
  w.end_object();
  return w.str();
}

// -------------------------------------------------------- job execution --

std::vector<std::uint8_t> single_section(io::SectionId id,
                                         std::vector<std::uint8_t> payload) {
  io::Artifact a;
  a.add(id, std::move(payload));
  return io::assemble(a);
}

// Decodes a cached/computed separator artifact and fills the row — the one
// bytes→row path shared by cold and warm runs.
SepRow sep_row_from_bytes(const planar::EmbeddedGraph& g,
                          const std::vector<std::uint8_t>& bytes) {
  const io::Artifact a = io::parse(bytes);
  const io::Section* sec = a.find(io::SectionId::kSeparator);
  if (sec == nullptr) throw io::FormatError("artifact lacks kSeparator");
  const io::SeparatorArtifact sa = io::decode_separator(sec->bytes);
  const SeparatorVerify v = verify_separator_artifact(g, sa);
  SepRow row;
  row.phase = sa.part.phase;
  row.path = static_cast<long long>(sa.part.path.size());
  row.balance = v.balance;
  row.components = v.components;
  row.verified = v.ok();
  row.measured = sa.cost.measured;
  row.charged = sa.cost.charged;
  return row;
}

DfsRow dfs_row_from_bytes(const planar::EmbeddedGraph& g,
                          const std::vector<std::uint8_t>& bytes) {
  const io::Artifact a = io::parse(bytes);
  const io::Section* sec = a.find(io::SectionId::kDfsTree);
  if (sec == nullptr) throw io::FormatError("artifact lacks kDfsTree");
  const io::DfsArtifact da = io::decode_dfs(sec->bytes);
  const DfsVerify v = verify_dfs_artifact(g, da);
  DfsRow row;
  row.phases = da.phases;
  row.depth = v.max_depth;
  row.verified = v.ok();
  row.measured = da.cost.measured;
  row.charged = da.cost.charged;
  return row;
}

BaselineRow baseline_row_from_bytes(const planar::EmbeddedGraph& g,
                                    const std::vector<std::uint8_t>& bytes) {
  const io::Artifact a = io::parse(bytes);
  const io::Section* sec = a.find(io::SectionId::kLevelSeparator);
  if (sec == nullptr) throw io::FormatError("artifact lacks kLevelSeparator");
  const io::LevelSeparatorArtifact la = io::decode_level_separator(sec->bytes);
  BaselineRow row;
  row.found = la.result.found;
  row.size = static_cast<long long>(la.result.separator.size());
  row.balance = la.result.balance;
  row.levels = la.result.levels_used;
  if (!la.result.found) {
    row.verified = la.result.separator.empty();
    return row;
  }
  // Re-derive the balance from the decoded node set: ids in range, no
  // duplicates, stored balance exact, and the 2/3 bound actually held.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<char> in_sep(n, 0);
  bool ok = !la.result.separator.empty() && la.result.separator.size() < n;
  for (const planar::NodeId v : la.result.separator) {
    if (v < 0 || static_cast<std::size_t>(v) >= n ||
        in_sep[static_cast<std::size_t>(v)]) {
      ok = false;
      break;
    }
    in_sep[static_cast<std::size_t>(v)] = 1;
  }
  if (ok) {
    const sub::Components comps = sub::connected_components(
        g, [&](planar::NodeId v) { return !in_sep[static_cast<std::size_t>(v)]; });
    int max_size = 0;
    for (const int s : comps.size) max_size = std::max(max_size, s);
    const double bal = static_cast<double>(max_size) / g.num_nodes();
    ok = bal == la.result.balance && 3 * bal <= 2.0;
  }
  row.verified = ok;
  return row;
}

JobRun execute_job(const JobSpec& spec, std::uint64_t index,
                   const BatchOptions& opts, ArtifactCache& cache) {
  JobRun run;
  run.spec = &spec;
  run.index = index;
  const auto start = Clock::now();
  const auto expired = [&] {
    return spec.deadline_ms >= 0 && elapsed_ms(start) >= spec.deadline_ms;
  };

  try {
    // --- acquire the instance (generate-or-load) -------------------------
    // Fault-injected jobs always take the monolithic recovery path; the
    // task graph serves every fault-free job (unless PLANSEP_TASKGRAPH=0).
    const bool faulty = spec.faults.enabled();
    const bool dag = opts.taskgraph && !faulty;

    planar::EmbeddedGraph g;
    planar::NodeId root = 0;
    bool generated = false;
    if (!spec.graph_path.empty()) {
      io::LoadedGraph loaded = io::load_graph(spec.graph_path);
      g = std::move(loaded.graph);
      run.family = loaded.meta.family;
    } else {
      const auto fam = planar::family_from_name(spec.family);
      if (!fam) {
        throw std::runtime_error("unknown family '" + spec.family + "'");
      }
      planar::GeneratedGraph gg =
          planar::make_instance(*fam, spec.n, spec.seed);
      g = std::move(gg.graph);
      root = gg.root_hint;
      generated = true;
      // The DAG path stores through its IO task instead, overlapped with
      // the compute stages.
      if (!opts.corpus_dir.empty() && !dag) {
        io::store_in_corpus(opts.corpus_dir, spec.family, g, spec.seed);
      }
    }
    run.have_graph = true;
    run.nodes = g.num_nodes();
    run.edges = g.num_edges();
    run.fingerprint = core::topology_fingerprint(g);
    const std::uint64_t config_hash =
        core::mix_seed(0x726f6f7400000000ULL /* "root" */,
                       static_cast<std::uint64_t>(root));

    // Faulty jobs install their controller for the whole job: both stages
    // draw from one deterministic epoch sequence, and retries see fresh
    // faults. run_batch guarantees such jobs execute serially, so the
    // process-global injector never leaks into a concurrent job.
    std::optional<faults::FaultController> ctl;
    std::optional<faults::ScopedFaultInjection> inj;
    if (faulty) {
      ctl.emplace(spec.faults, spec.fault_seed);
      inj.emplace(*ctl);
    }

    // One task-graph execution per job: the memo shares the spanning tree
    // between this job's stages; the cache's single-flight shares it with
    // concurrent jobs on the same fingerprint. IO (the corpus store)
    // starts now, overlapped with the stages below.
    std::optional<taskgraph::Execution> exec;
    if (dag) {
      taskgraph::JobInputs tin;
      tin.graph = &g;
      tin.root = root;
      tin.fingerprint = run.fingerprint;
      tin.config_hash = config_hash;
      tin.corpus_dir = opts.corpus_dir;
      tin.family = spec.family;
      tin.seed = spec.seed;
      tin.store_corpus = generated && !opts.corpus_dir.empty();
      taskgraph::ExecOptions topts;
      topts.cache = &cache;
      exec.emplace(taskgraph::pipeline_graph(), tin, topts);
    }

    // --- separator stage -------------------------------------------------
    if (spec.algo == Algo::kSeparator || spec.algo == Algo::kPipeline) {
      if (expired()) {
        run.status = "deadline";
      } else {
        std::vector<std::uint8_t> bytes;
        if (faulty) {
          faults::RecoveredSeparator rec =
              faults::compute_separator_with_recovery(g, root, opts.retry);
          run.attempts = std::max(run.attempts, rec.recovery.attempts);
          if (!rec.recovery.ok) {
            throw std::runtime_error("separator recovery failed: " +
                                     rec.recovery.failure);
          }
          io::SeparatorArtifact sa{rec.result->parts.at(0), rec.cost};
          bytes = single_section(io::SectionId::kSeparator,
                                 io::encode_separator(sa));
        } else if (dag) {
          bytes = *exec->request(taskgraph::kSeparatorTask);
        } else {
          const CacheKey key{run.fingerprint, "separator@v1", config_hash};
          bytes = *cache.get_or_compute(key, [&] {
            SeparatorRun sr = compute_cycle_separator(g, root);
            io::SeparatorArtifact sa{sr.separator, sr.cost};
            return single_section(io::SectionId::kSeparator,
                                  io::encode_separator(sa));
          });
        }
        run.sep = sep_row_from_bytes(g, bytes);
      }
    }

    // --- DFS stage -------------------------------------------------------
    if ((spec.algo == Algo::kDfs || spec.algo == Algo::kPipeline) &&
        run.status != "deadline") {
      if (expired()) {
        run.status = "deadline";
      } else {
        std::vector<std::uint8_t> bytes;
        if (faulty) {
          faults::RecoveredDfs rec =
              faults::build_dfs_tree_with_recovery(g, root, opts.retry);
          run.attempts = std::max(run.attempts, rec.recovery.attempts);
          if (!rec.recovery.ok) {
            throw std::runtime_error("dfs recovery failed: " +
                                     rec.recovery.failure);
          }
          io::DfsArtifact da = io::dfs_artifact_from_tree(rec.build->tree);
          da.phases = rec.build->phases;
          da.cost = rec.cost;
          bytes = single_section(io::SectionId::kDfsTree, io::encode_dfs(da));
        } else if (dag) {
          bytes = *exec->request(taskgraph::kDfsTask);
        } else {
          const CacheKey key{run.fingerprint, "dfs@v1", config_hash};
          bytes = *cache.get_or_compute(key, [&] {
            DfsRun dr = compute_dfs_tree(g, root);
            io::DfsArtifact da = io::dfs_artifact_from_tree(dr.build.tree);
            da.phases = dr.build.phases;
            da.cost = dr.build.cost;
            return single_section(io::SectionId::kDfsTree, io::encode_dfs(da));
          });
        }
        run.dfs = dfs_row_from_bytes(g, bytes);
      }
    }

    // --- baseline separator stage ---------------------------------------
    if (spec.algo == Algo::kBaselineSeparator && run.status != "deadline") {
      if (expired()) {
        run.status = "deadline";
      } else {
        std::vector<std::uint8_t> bytes;
        if (faulty) {
          // The level search is a pure function of the BFS wave, which is
          // deterministic under a fault plan — no recovery driver needed.
          io::LevelSeparatorArtifact la{baselines::bfs_level_separator(g, root)};
          bytes = single_section(io::SectionId::kLevelSeparator,
                                 io::encode_level_separator(la));
        } else if (dag) {
          bytes = *exec->request(taskgraph::kBaselineTask);
        } else {
          const CacheKey key{run.fingerprint,
                             taskgraph::kLevelSeparatorArtifactId, config_hash};
          bytes = *cache.get_or_compute(key, [&] {
            io::LevelSeparatorArtifact la{
                baselines::bfs_level_separator(g, root)};
            return single_section(io::SectionId::kLevelSeparator,
                                  io::encode_level_separator(la));
          });
        }
        run.baseline = baseline_row_from_bytes(g, bytes);
      }
    }

    if (exec) {
      exec->finish_io();  // join the corpus store; rethrows its failure
      run.tg = exec->counters();
    }

    if (run.status == "ok") {
      const bool sep_bad = run.sep && !run.sep->verified;
      const bool dfs_bad = run.dfs && !run.dfs->verified;
      const bool base_bad = run.baseline && !run.baseline->verified;
      if (sep_bad || dfs_bad || base_bad) run.status = "check_failed";
    }
  } catch (const std::exception& e) {
    run.status = "error";
    run.error = e.what();
  }
  return run;
}

JobResult result_of(JobRun run) {
  JobResult res;
  res.status = run.status;
  res.error = run.error;
  res.attempts = run.attempts;
  res.taskgraph = std::move(run.tg);
  res.row = render_row(run);
  return res;
}

}  // namespace

JobResult run_single_job(const JobSpec& spec, std::uint64_t index,
                         const BatchOptions& opts, ArtifactCache& cache) {
  return result_of(execute_job(spec, index, opts, cache));
}

// ---------------------------------------------------------------- names --

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kSeparator:
      return "separator";
    case Algo::kDfs:
      return "dfs";
    case Algo::kPipeline:
      return "pipeline";
    case Algo::kBaselineSeparator:
      return "baseline-separator";
  }
  return "?";
}

std::optional<Algo> algo_from_name(const std::string& name) {
  if (name == "separator") return Algo::kSeparator;
  if (name == "dfs") return Algo::kDfs;
  if (name == "pipeline") return Algo::kPipeline;
  if (name == "baseline-separator") return Algo::kBaselineSeparator;
  return std::nullopt;
}

// -------------------------------------------------------------- parsing --

namespace {

[[noreturn]] void bad_line(int line_no, const std::string& what) {
  throw std::runtime_error("job file line " + std::to_string(line_no) + ": " +
                           what);
}

double parse_prob(int line_no, const std::string& key,
                  const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || v < 0 || v > 1) {
    bad_line(line_no, "--" + key + " wants a probability in [0,1], got '" +
                          value + "'");
  }
  return v;
}

long long parse_int(int line_no, const std::string& key,
                    const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    bad_line(line_no, "--" + key + " wants an integer, got '" + value + "'");
  }
  return v;
}

std::uint64_t parse_u64(int line_no, const std::string& key,
                        const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    bad_line(line_no, "--" + key + " wants an unsigned integer, got '" +
                          value + "'");
  }
  return v;
}

}  // namespace

std::optional<JobSpec> parse_job_line(const std::string& text, int line_no) {
  std::istringstream in(text);
  std::string token;
  JobSpec spec;
  spec.line = line_no;
  bool any = false;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    any = true;
    if (token.rfind("--", 0) != 0) {
      bad_line(line_no, "expected --key=value, got '" + token + "'");
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      bad_line(line_no, "flag '" + token + "' lacks =value");
    }
    const std::string key = token.substr(2, eq - 2);
    const std::string value = token.substr(eq + 1);
    if (key == "family") {
      spec.family = value;
    } else if (key == "n") {
      spec.n = static_cast<int>(parse_int(line_no, key, value));
    } else if (key == "seed") {
      spec.seed = parse_u64(line_no, key, value);
    } else if (key == "algo") {
      const auto a = algo_from_name(value);
      if (!a) bad_line(line_no, "unknown algo '" + value + "'");
      spec.algo = *a;
    } else if (key == "deadline-ms") {
      spec.deadline_ms = parse_int(line_no, key, value);
    } else if (key == "graph") {
      spec.graph_path = value;
    } else if (key == "drop") {
      spec.faults.drop_prob = parse_prob(line_no, key, value);
    } else if (key == "dup") {
      spec.faults.duplicate_prob = parse_prob(line_no, key, value);
    } else if (key == "stall") {
      spec.faults.stall_prob = parse_prob(line_no, key, value);
    } else if (key == "reorder") {
      spec.faults.reorder_prob = parse_prob(line_no, key, value);
    } else if (key == "crash") {
      spec.faults.crash_prob = parse_prob(line_no, key, value);
    } else if (key == "outage") {
      spec.faults.edge_outage_prob = parse_prob(line_no, key, value);
    } else if (key == "fault-seed") {
      spec.fault_seed = parse_u64(line_no, key, value);
    } else {
      bad_line(line_no, "unknown flag --" + key);
    }
  }
  if (!any) return std::nullopt;
  return spec;
}

std::vector<JobSpec> parse_job_file(std::istream& in) {
  std::vector<JobSpec> jobs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto spec = parse_job_line(line, line_no)) {
      jobs.push_back(std::move(*spec));
    }
  }
  return jobs;
}

// ------------------------------------------------------------ scheduler --

BatchReport run_batch(const std::vector<JobSpec>& jobs,
                      const BatchOptions& opts, ResultCache& cache,
                      std::ostream* rows_out) {
  obs::ensure_env_metrics();  // settle the env bootstrap before detaching
  const CacheCounters before = cache.counters();

  BatchReport rep;
  rep.jobs = static_cast<long long>(jobs.size());
  rep.results.resize(jobs.size());
  std::vector<long long> latency_ms(jobs.size(), 0);
  std::vector<char> done(jobs.size(), 0);

  // Reorder buffer: rows stream in admission order, never completion
  // order. Whichever thread completes a job flushes the ready prefix.
  std::mutex emit_mu;
  std::size_t next_emit = 0;
  const auto complete = [&](std::size_t i, JobRun run, long long ms) {
    JobResult res = result_of(std::move(run));
    std::lock_guard<std::mutex> lk(emit_mu);
    rep.results[i] = std::move(res);
    latency_ms[i] = ms;
    done[i] = 1;
    while (next_emit < jobs.size() && done[next_emit]) {
      if (rows_out != nullptr) {
        (*rows_out) << rep.results[next_emit].row << '\n';
        rows_out->flush();
      }
      ++next_emit;
    }
  };
  const auto timed = [&](std::size_t i) {
    const auto t0 = Clock::now();
    JobRun run = execute_job(jobs[i], i, opts, cache);
    complete(i, std::move(run), elapsed_ms(t0));
  };

  // Detach every process-global hook for the parallel section: the
  // metrics registry and trace sink demand single-threaded mutation, and
  // a fault injector must never observe two concurrent networks. Local
  // counters are folded back into the restored registry below.
  obs::MetricsRegistry* const saved_reg = obs::set_global_registry(nullptr);
  congest::TraceSink* const saved_sink =
      congest::set_global_trace_sink(nullptr);
  congest::FaultInjector* const saved_inj =
      congest::set_global_fault_injector(nullptr);
  {
    // Jobs are the unit of parallelism; the round engine inside each job
    // runs serially (ThreadPool::run_shards is not reentrant).
    congest::ScopedThreadConfig serial_rounds(congest::ThreadConfig{});

    // Fault-injected jobs first, serially, in admission order: their
    // ScopedFaultInjection installs a process-global injector.
    std::vector<std::size_t> fault_free;
    fault_free.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].faults.enabled()) {
        timed(i);
      } else {
        fault_free.push_back(i);
      }
    }

    const int shards = static_cast<int>(
        std::min<std::size_t>(std::max(opts.threads, 1), fault_free.size()));
    if (shards <= 1) {
      for (const std::size_t i : fault_free) timed(i);
    } else {
      std::atomic<std::size_t> cursor{0};
      congest::ThreadPool::instance().run_shards(shards, [&](int) {
        // run_shards requires a non-throwing fn; execute_job converts all
        // job failures into "error" rows, so nothing escapes here.
        for (;;) {
          const std::size_t slot = cursor.fetch_add(1);
          if (slot >= fault_free.size()) break;
          timed(fault_free[slot]);
        }
      });
    }
  }
  congest::set_global_fault_injector(saved_inj);
  congest::set_global_trace_sink(saved_sink);
  obs::set_global_registry(saved_reg);

  rep.cache = cache.counters() - before;
  for (const JobResult& r : rep.results) {
    rep.taskgraph.merge(r.taskgraph);
    if (r.status == "ok") {
      ++rep.ok;
    } else if (r.status == "check_failed") {
      ++rep.check_failed;
    } else if (r.status == "deadline") {
      ++rep.deadline_missed;
    } else {
      ++rep.errors;
    }
  }

  if (obs::MetricsRegistry* reg = obs::global_registry()) {
    reg->add("serve/jobs", rep.jobs);
    reg->add("serve/jobs_ok", rep.ok);
    reg->add("serve/check_failed", rep.check_failed);
    reg->add("serve/deadline_missed", rep.deadline_missed);
    reg->add("serve/errors", rep.errors);
    reg->add("serve/cache_hits", rep.cache.hits);
    reg->add("serve/cache_disk_hits", rep.cache.disk_hits);
    reg->add("serve/cache_misses", rep.cache.misses);
    reg->add("serve/cache_served_warm", rep.cache.served_without_compute());
    reg->add("serve/cache_evictions", rep.cache.evictions);
    reg->add("serve/cache_flight_joins", rep.cache.flight_joins);
    // Task-graph counters, folded post-execution (the executor itself
    // never touches obs globals). All thread-count invariant except the
    // IO overlap, which is wall clock and lands in a histogram like the
    // latency profile.
    reg->add("taskgraph/tasks_run", rep.taskgraph.tasks_run);
    reg->add("taskgraph/cache_served", rep.taskgraph.cache_served);
    reg->add("taskgraph/io_tasks", rep.taskgraph.io_tasks);
    for (const auto& [name, n] : rep.taskgraph.runs) {
      reg->add("taskgraph/runs/" + name, n);
    }
    reg->histogram("taskgraph/overlapped_io_ms")
        .add(rep.taskgraph.overlapped_io_ms);
    obs::HistogramData& lat = reg->histogram("serve/job_latency_ms");
    for (const long long ms : latency_ms) lat.add(ms);
    // Deterministic backlog profile: the queue depth each job observed at
    // admission (jobs behind it included), independent of scheduling.
    obs::HistogramData& depth = reg->histogram("serve/queue_depth");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      depth.add(static_cast<long long>(jobs.size() - i));
    }
  }
  return rep;
}

}  // namespace plansep::serve
