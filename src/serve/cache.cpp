#include "serve/cache.hpp"

#include <algorithm>
#include <filesystem>

#include "core/fingerprint.hpp"
#include "io/artifact.hpp"
#include "util/check.hpp"

namespace plansep::serve {

namespace fs = std::filesystem;

std::uint64_t cache_address(const CacheKey& key) {
  // Fold the algorithm id through the same avalanche primitive as the
  // numeric components, 8 bytes at a time.
  std::uint64_t alg = 0xa16f0a1d00000000ULL ^ key.algorithm.size();
  std::uint64_t word = 0;
  int in_word = 0;
  for (const char c : key.algorithm) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++in_word == 8) {
      alg = core::mix_seed(alg, word);
      word = 0;
      in_word = 0;
    }
  }
  if (in_word > 0) alg = core::mix_seed(alg, word, in_word);
  return core::mix_seed(key.fingerprint, alg, key.config_hash,
                        0x7365727665ULL /* "serve" */);
}

CacheCounters CacheCounters::operator-(const CacheCounters& o) const {
  CacheCounters d;
  d.hits = hits - o.hits;
  d.disk_hits = disk_hits - o.disk_hits;
  d.misses = misses - o.misses;
  d.evictions = evictions - o.evictions;
  d.inserted_bytes = inserted_bytes - o.inserted_bytes;
  d.disk_corrupt = disk_corrupt - o.disk_corrupt;
  d.disk_write_failed = disk_write_failed - o.disk_write_failed;
  d.flight_joins = flight_joins - o.flight_joins;
  d.warmed = warmed - o.warmed;
  return d;
}

ResultCache::ResultCache(Options opts) : opts_(std::move(opts)) {}

std::string ResultCache::disk_path(std::uint64_t address) const {
  return (fs::path(opts_.disk_dir) / (core::fingerprint_hex(address) + ".psa"))
      .string();
}

ResultCache::Value ResultCache::find_locked(std::uint64_t address,
                                            const CacheKey& key) {
  const auto it = index_.find(address);
  if (it == index_.end()) return nullptr;
  if (!(it->second->key == key)) return nullptr;  // address collision
  lru_.splice(lru_.begin(), lru_, it->second);    // touch
  return it->second->value;
}

void ResultCache::insert_locked(std::uint64_t address, const CacheKey& key,
                                Value v) {
  if (index_.count(address) != 0) return;  // racer already inserted
  const std::size_t size = v->size();
  counters_.inserted_bytes += static_cast<long long>(size);
  if (size > opts_.capacity_bytes) return;  // would evict everything else
  lru_.push_front(Entry{address, key, std::move(v)});
  index_[address] = lru_.begin();
  bytes_ += size;
  while (bytes_ > opts_.capacity_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.value->size();
    index_.erase(victim.address);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

ResultCache::Value ResultCache::get_or_compute(const CacheKey& key,
                                               const Compute& compute) {
  const std::uint64_t address = cache_address(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (Value v = find_locked(address, key)) {
      ++counters_.hits;
      return v;
    }
    auto [it, inserted] = flights_.try_emplace(address);
    if (inserted) {
      it->second = std::make_shared<Flight>();
      leader = true;
    }
    flight = it->second;
  }

  if (!leader) {
    std::unique_lock<std::mutex> lk(flight->mu);
    flight->cv.wait(lk, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    std::lock_guard<std::mutex> clk(mu_);
    ++counters_.hits;  // coalesced join: served without a compute
    ++counters_.flight_joins;
    return flight->value;
  }

  // Leader: disk tier first, then the compute, outside the cache lock.
  Value value;
  std::exception_ptr error;
  bool from_disk = false;
  try {
    if (!opts_.disk_dir.empty()) {
      const std::string path = disk_path(address);
      std::error_code ec;
      if (fs::exists(path, ec)) {
        try {
          auto bytes = io::read_file(path);
          io::parse(bytes);  // CRC-verify before trusting the disk tier
          value = std::make_shared<const std::vector<std::uint8_t>>(
              std::move(bytes));
          from_disk = true;
        } catch (const io::FormatError&) {
          std::lock_guard<std::mutex> lk(mu_);
          ++counters_.disk_corrupt;  // fall through to a fresh compute
        }
      }
    }
    if (value == nullptr) {
      value = std::make_shared<const std::vector<std::uint8_t>>(compute());
      if (!opts_.disk_dir.empty()) {
        std::error_code ec;
        fs::create_directories(opts_.disk_dir, ec);
        try {
          io::write_file(disk_path(address), *value);
        } catch (const io::FormatError&) {
          std::lock_guard<std::mutex> lk(mu_);
          ++counters_.disk_write_failed;  // the disk tier is best-effort
        }
      }
    }
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (error == nullptr) {
      if (from_disk) {
        ++counters_.disk_hits;
      } else {
        ++counters_.misses;
      }
      insert_locked(address, key, value);
    }
    flights_.erase(address);
  }
  {
    std::lock_guard<std::mutex> lk(flight->mu);
    flight->done = true;
    flight->value = value;
    flight->error = error;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return value;
}

bool ResultCache::warm(const CacheKey& key) {
  const std::uint64_t address = cache_address(key);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (find_locked(address, key) != nullptr) return true;
  }
  if (opts_.disk_dir.empty()) return false;
  const std::string path = disk_path(address);
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  Value value;
  try {
    auto bytes = io::read_file(path);
    io::parse(bytes);  // CRC-verify before trusting the disk tier
    value = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  } catch (const io::FormatError&) {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.disk_corrupt;
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (find_locked(address, key) == nullptr) {
    insert_locked(address, key, std::move(value));
    ++counters_.warmed;
  }
  return true;
}

ResultCache::Value ResultCache::peek(const CacheKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(cache_address(key));
  if (it == index_.end() || !(it->second->key == key)) return nullptr;
  return it->second->value;
}

void ResultCache::clear_memory() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

std::size_t ResultCache::size_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

CacheCounters ResultCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t ResultCache::inflight_flights() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flights_.size();
}

// -------------------------------------------------------- sharded tier --

ShardedResultCache::ShardedResultCache(Options opts) : opts_(std::move(opts)) {
  const int n = std::max(1, opts_.shards);
  opts_.shards = n;
  const std::size_t slice =
      std::max<std::size_t>(1, opts_.capacity_bytes / static_cast<std::size_t>(n));
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<ResultCache>(
        ResultCache::Options{slice, opts_.disk_dir}));
  }
}

int ShardedResultCache::shard_of(const CacheKey& key) const {
  // The address is avalanche-mixed, so any bit slice selects uniformly;
  // the high bits keep shard choice independent of the low bits each
  // shard's unordered_map buckets on.
  return static_cast<int>((cache_address(key) >> 48) %
                          static_cast<std::uint64_t>(shards_.size()));
}

ShardedResultCache::Value ShardedResultCache::get_or_compute(
    const CacheKey& key, const Compute& compute) {
  return shards_[static_cast<std::size_t>(shard_of(key))]->get_or_compute(
      key, compute);
}

bool ShardedResultCache::warm(const CacheKey& key) {
  return shards_[static_cast<std::size_t>(shard_of(key))]->warm(key);
}

ShardedResultCache::Value ShardedResultCache::peek(const CacheKey& key) const {
  return shards_[static_cast<std::size_t>(shard_of(key))]->peek(key);
}

void ShardedResultCache::clear_memory() {
  for (auto& s : shards_) s->clear_memory();
}

std::size_t ShardedResultCache::size_bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->size_bytes();
  return total;
}

std::size_t ShardedResultCache::entries() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->entries();
  return total;
}

CacheCounters ShardedResultCache::counters() const {
  CacheCounters sum;
  for (const auto& s : shards_) {
    const CacheCounters c = s->counters();
    sum.hits += c.hits;
    sum.disk_hits += c.disk_hits;
    sum.misses += c.misses;
    sum.evictions += c.evictions;
    sum.inserted_bytes += c.inserted_bytes;
    sum.disk_corrupt += c.disk_corrupt;
    sum.disk_write_failed += c.disk_write_failed;
    sum.flight_joins += c.flight_joins;
    sum.warmed += c.warmed;
  }
  return sum;
}

std::size_t ShardedResultCache::inflight_flights() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->inflight_flights();
  return total;
}

}  // namespace plansep::serve
