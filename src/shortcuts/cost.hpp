#pragma once

// Round accounting (see DESIGN.md, "Round accounting").
//
// Every distributed operation reports two numbers:
//   * measured — rounds actually spent by our simulation (message-level
//     for the part-wise aggregation engine, analytic for congestion-free
//     intra-part trees);
//   * charged  — the cost the paper's lemmas assign, in rounds, taking the
//     deterministic low-congestion shortcut framework of Haeupler et al.
//     as a black box: each part-wise aggregation / broadcast / black-boxed
//     Proposition-5 call costs O(D) (polylogs suppressed), each local
//     neighbor exchange costs O(1).
// Benchmarks report both, so the Õ(D) claims can be verified under the
// paper's accounting while exposing the substitute's real behavior.

#include "obs/metrics.hpp"

namespace plansep::shortcuts {

struct RoundCost {
  long long measured = 0;
  long long charged = 0;
  long long pa_calls = 0;       // part-wise aggregation invocations
  long long local_rounds = 0;   // single-round neighbor exchanges

  RoundCost& operator+=(const RoundCost& o) {
    measured += o.measured;
    charged += o.charged;
    pa_calls += o.pa_calls;
    local_rounds += o.local_rounds;
    return *this;
  }
};

/// Cost of one O(1)-round local exchange. Charge sites like this one also
/// drive the observability round clock (obs/metrics.hpp): the measured
/// ledger and the obs timeline advance together, so phase spans get
/// durations under the same accounting the benches report.
inline RoundCost local_exchange(int rounds = 1) {
  RoundCost c;
  c.measured = rounds;
  c.charged = rounds;
  c.local_rounds = rounds;
  obs::advance_rounds(rounds);
  return c;
}

}  // namespace plansep::shortcuts
