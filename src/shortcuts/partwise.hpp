#pragma once

// Part-wise aggregation (Definition 6) — the workhorse primitive.
//
// The paper performs essentially all communication through part-wise
// aggregation, solved in Õ(D) rounds by deterministic low-congestion
// shortcuts (Propositions 2 and 4, Haeupler–Hershkowitz–Wajc). We do not
// reimplement the HHW scheduling machinery (DESIGN.md, substitution 1);
// instead each aggregate runs BOTH of:
//
//   1. *Intra-part trees*: every part aggregates over a BFS tree of its own
//      induced subgraph. Parts are vertex-disjoint, so all parts proceed in
//      parallel with zero cross-part congestion; the cost is
//      2·(max part BFS height) + O(1) rounds. This is exact and
//      congestion-free but can exceed O(D) for snake-shaped parts — the
//      very case shortcuts were invented for.
//
//   2. *Global-tree pipelining* (message-level simulation): values stream
//      up a global BFS tree with per-part combining at internal nodes, one
//      message per edge per round, then results stream back down. Cost
//      O(D + congestion), where congestion is the maximum number of
//      distinct parts whose streams share a tree edge.
//
// The measured cost of an aggregate is the cheaper of the two (a scheduler
// would run both concurrently and stop at the first to finish); the
// charged cost is the paper's O(D) per invocation.

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/bfs_tree.hpp"
#include "shortcuts/cost.hpp"

namespace plansep::shortcuts {

using congest::EmbeddedGraph;
using congest::NodeId;

enum class AggOp { kMin, kMax, kSum };

struct AggregateResult {
  /// Per node: the aggregate over its part (undefined for part -1 nodes).
  std::vector<std::int64_t> value;
  RoundCost cost;
};

class PartwiseEngine {
 public:
  /// Builds the global BFS tree from `root` via the message-level wave.
  /// The construction cost is recorded in setup_cost().
  PartwiseEngine(const EmbeddedGraph& g, NodeId root);

  /// Adopts a precomputed global BFS tree (e.g. the task graph's
  /// spanning-tree artifact). setup_cost() and every derived structure are
  /// pure functions of `bfs`, so an engine built this way is
  /// indistinguishable from one that ran distributed_bfs itself.
  PartwiseEngine(const EmbeddedGraph& g, congest::BfsResult bfs);

  /// Part-wise aggregate: part[v] in {-1 (absent), 0, 1, ...}; value[v] is
  /// v's input. Every node of a part learns the aggregate of its part.
  /// Parts must induce connected subgraphs of g.
  AggregateResult aggregate(const std::vector<int>& part,
                            const std::vector<std::int64_t>& value, AggOp op);

  /// Broadcast within parts: exactly the aggregate with kMax where
  /// non-source nodes contribute the minimum value. Provided for intent.
  AggregateResult broadcast(const std::vector<int>& part,
                            const std::vector<std::int64_t>& source_value,
                            const std::vector<char>& is_source);

  int diameter_bound() const { return bfs_.height; }
  RoundCost setup_cost() const { return setup_cost_; }
  const congest::BfsResult& global_tree() const { return bfs_; }
  const EmbeddedGraph& graph() const { return *g_; }

  /// Paper-accounting charge for one Õ(D)-round black-box call (used for
  /// Proposition 5 ancestor/descendant sums and similar primitives the
  /// paper cites as prior work).
  RoundCost blackbox_charge() const;

  /// The analytic round schedule of the global-tree pipelining strategy
  /// alone (diagnostics; cross-validated against the message-level
  /// protocol in shortcuts/partwise_message.hpp).
  long long global_schedule_rounds(const std::vector<int>& part) const {
    return global_tree_rounds(part);
  }

 private:
  void init_derived();

  long long intra_part_rounds(const std::vector<int>& part) const;
  long long global_tree_rounds(const std::vector<int>& part) const;

  const EmbeddedGraph* g_;
  congest::BfsResult bfs_;
  RoundCost setup_cost_;
  std::vector<std::vector<NodeId>> bfs_children_;
  std::vector<NodeId> bfs_order_;  // by increasing depth
};

}  // namespace plansep::shortcuts
