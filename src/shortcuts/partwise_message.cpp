#include "shortcuts/partwise_message.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::shortcuts {

namespace {

using congest::Ctx;
using congest::EmbeddedGraph;
using congest::Incoming;
using congest::InboxView;
using congest::Message;
using congest::NodeId;

constexpr std::uint8_t kUp = 1;    // a = part, b = aggregate
constexpr std::uint8_t kDone = 2;  // stream closed
constexpr std::uint8_t kDown = 3;  // a = part, b = result
constexpr int kInfPart = std::numeric_limits<int>::max();

std::int64_t combine(AggOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case AggOp::kMin: return std::min(a, b);
    case AggOp::kMax: return std::max(a, b);
    case AggOp::kSum: return a + b;
  }
  return 0;
}

class PartwiseProgram : public congest::NodeProgram {
 public:
  PartwiseProgram(const congest::BfsResult& bfs, const std::vector<int>& part,
                  const std::vector<std::int64_t>& value, AggOp op,
                  MessageAggregateResult* out)
      : bfs_(&bfs), part_(&part), value_(&value), op_(op), out_(&out->value) {}

  std::vector<NodeId> initial_nodes(const EmbeddedGraph& g) override {
    g_ = &g;
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());
    state_.assign(n, {});
    out_->assign(n, 0);
    std::vector<NodeId> all(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      all[static_cast<std::size_t>(v)] = v;
      auto& s = state_[static_cast<std::size_t>(v)];
      const planar::DartId pd = bfs_->parent_dart[static_cast<std::size_t>(v)];
      s.parent = pd == planar::kNoDart ? planar::kNoNode : g.head(pd);
      if ((*part_)[static_cast<std::size_t>(v)] >= 0) {
        s.buffer[(*part_)[static_cast<std::size_t>(v)]] =
            (*value_)[static_cast<std::size_t>(v)];
      }
    }
    // Children and watermarks.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId p = state_[static_cast<std::size_t>(v)].parent;
      if (p != planar::kNoNode) {
        state_[static_cast<std::size_t>(p)].child_index[v] =
            static_cast<int>(state_[static_cast<std::size_t>(p)].children.size());
        state_[static_cast<std::size_t>(p)].children.push_back(v);
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto& s = state_[static_cast<std::size_t>(v)];
      s.watermark.assign(s.children.size(), -1);
      s.child_parts.assign(s.children.size(), {});
    }
    return all;
  }

  void round(NodeId v, InboxView inbox, Ctx& ctx) override {
    auto& s = state_[static_cast<std::size_t>(v)];
    bool progress = false;
    for (const Incoming& in : inbox) {
      if (in.msg.tag == kUp) {
        const int ci = s.child_index.at(in.from);
        const int p = static_cast<int>(in.msg.a);
        s.watermark[static_cast<std::size_t>(ci)] = p;
        s.child_parts[static_cast<std::size_t>(ci)].push_back(p);
        auto it = s.buffer.find(p);
        if (it == s.buffer.end()) {
          s.buffer[p] = in.msg.b;
        } else {
          it->second = combine(op_, it->second, in.msg.b);
        }
        progress = true;
      } else if (in.msg.tag == kDone) {
        const int ci = s.child_index.at(in.from);
        s.watermark[static_cast<std::size_t>(ci)] = kInfPart;
        progress = true;
      } else if (in.msg.tag == kDown) {
        handle_down(v, static_cast<int>(in.msg.a), in.msg.b);
        progress = true;
      }
    }
    (void)progress;
    pump(v, ctx);
  }

 private:
  struct NodeState {
    NodeId parent = planar::kNoNode;
    std::vector<NodeId> children;
    std::map<NodeId, int> child_index;
    std::vector<int> watermark;               // per child; kInfPart = done
    std::vector<std::vector<int>> child_parts;  // parts each child reported
    std::map<int, std::int64_t> buffer;       // unsent merged aggregates
    int emitted_up_to = -1;
    bool done_sent = false;
    bool down_started = false;
    // Down phase: results received (root: computed), and per-child queue
    // positions into child_parts.
    std::map<int, std::int64_t> results;
    std::vector<std::size_t> down_ptr;
    std::vector<char> down_blocked;  // result not yet known
  };

  void handle_down(NodeId v, int part, std::int64_t result) {
    auto& s = state_[static_cast<std::size_t>(v)];
    s.results[part] = result;
    if ((*part_)[static_cast<std::size_t>(v)] == part) {
      (*out_)[static_cast<std::size_t>(v)] = result;
    }
  }

  void pump(NodeId v, Ctx& ctx) {
    auto& s = state_[static_cast<std::size_t>(v)];
    // --- Up phase: forward the smallest certified, unemitted part.
    if (!s.done_sent) {
      int certified = kInfPart;
      for (int w : s.watermark) certified = std::min(certified, w);
      // The smallest buffered part > emitted_up_to.
      auto it = s.buffer.upper_bound(s.emitted_up_to);
      if (it != s.buffer.end() && it->first <= certified) {
        const int p = it->first;
        const std::int64_t agg = it->second;
        s.emitted_up_to = p;
        s.buffer.erase(it);
        if (s.parent != planar::kNoNode) {
          Message m;
          m.tag = kUp;
          m.a = p;
          m.b = agg;
          ctx.send(s.parent, m);
        } else {
          s.results[p] = agg;  // root: final result
          if ((*part_)[static_cast<std::size_t>(v)] == p) {
            (*out_)[static_cast<std::size_t>(v)] = agg;
          }
        }
        ctx.wake_next_round();
        return;
      }
      // Stream exhausted once every child is done and the buffer is empty.
      const bool all_children_done =
          std::all_of(s.watermark.begin(), s.watermark.end(),
                      [](int w) { return w == kInfPart; });
      if (all_children_done && s.buffer.empty()) {
        s.done_sent = true;
        if (s.parent != planar::kNoNode) {
          Message m;
          m.tag = kDone;
          ctx.send(s.parent, m);
        }
        ctx.wake_next_round();  // fall through to the down phase next round
      }
      return;
    }
    // --- Down phase: forward known results to children that want them.
    if (!s.down_started) {
      s.down_started = true;
      s.down_ptr.assign(s.children.size(), 0);
    }
    bool pending = false;
    for (std::size_t c = 0; c < s.children.size(); ++c) {
      const auto& wants = s.child_parts[c];
      if (s.down_ptr[c] >= wants.size()) continue;
      const int p = wants[s.down_ptr[c]];
      const auto rit = s.results.find(p);
      if (rit == s.results.end()) {
        pending = true;  // result not here yet; retry when it arrives
        continue;
      }
      Message m;
      m.tag = kDown;
      m.a = p;
      m.b = rit->second;
      ctx.send(s.children[c], m);
      ++s.down_ptr[c];
      if (s.down_ptr[c] < wants.size()) pending = true;
    }
    if (pending) ctx.wake_next_round();
  }

  const congest::BfsResult* bfs_;
  const std::vector<int>* part_;
  const std::vector<std::int64_t>* value_;
  AggOp op_;
  std::vector<std::int64_t>* out_;
  const EmbeddedGraph* g_ = nullptr;
  std::vector<NodeState> state_;
};

}  // namespace

MessageAggregateResult message_level_aggregate(
    const EmbeddedGraph& g, const congest::BfsResult& bfs,
    const std::vector<int>& part, const std::vector<std::int64_t>& value,
    AggOp op) {
  PLANSEP_SPAN("pa/message_aggregate");
  MessageAggregateResult out;
  PartwiseProgram prog(bfs, part, value, op, &out);
  congest::Network net(g);
  out.rounds = net.run(prog);
  out.messages = net.messages_sent();
  return out;
}

}  // namespace plansep::shortcuts
