#include "shortcuts/partwise.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::shortcuts {

namespace {

constexpr std::int64_t kIdentityMin = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kIdentityMax = std::numeric_limits<std::int64_t>::min();

std::int64_t combine(AggOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case AggOp::kMin: return std::min(a, b);
    case AggOp::kMax: return std::max(a, b);
    case AggOp::kSum: return a + b;
  }
  return 0;
}

std::int64_t identity(AggOp op) {
  switch (op) {
    case AggOp::kMin: return kIdentityMin;
    case AggOp::kMax: return kIdentityMax;
    case AggOp::kSum: return 0;
  }
  return 0;
}

// Budget on the total number of (node, part) stream entries the global
// simulation materializes; beyond it the intra-part strategy dominates
// anyway and the simulation is skipped.
constexpr long long kGlobalSimBudget = 20'000'000;

}  // namespace

PartwiseEngine::PartwiseEngine(const EmbeddedGraph& g, NodeId root) : g_(&g) {
  PLANSEP_SPAN("pa/setup_bfs");
  bfs_ = congest::distributed_bfs(g, root);
  init_derived();
}

PartwiseEngine::PartwiseEngine(const EmbeddedGraph& g, congest::BfsResult bfs)
    : g_(&g), bfs_(std::move(bfs)) {
  PLANSEP_CHECK(static_cast<NodeId>(bfs_.depth.size()) == g.num_nodes());
  init_derived();
}

void PartwiseEngine::init_derived() {
  const EmbeddedGraph& g = *g_;
  for (int d : bfs_.depth) {
    PLANSEP_CHECK_MSG(d >= 0, "graph must be connected");
  }
  setup_cost_.measured = bfs_.rounds;
  setup_cost_.charged = std::max(1, bfs_.height);
  bfs_children_.assign(static_cast<std::size_t>(g.num_nodes()), {});
  bfs_order_.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) bfs_order_.push_back(v);
  std::sort(bfs_order_.begin(), bfs_order_.end(), [&](NodeId a, NodeId b) {
    return bfs_.depth[static_cast<std::size_t>(a)] <
           bfs_.depth[static_cast<std::size_t>(b)];
  });
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const planar::DartId pd = bfs_.parent_dart[static_cast<std::size_t>(v)];
    if (pd != planar::kNoDart) {
      // Guards adopted trees (the dart ids of a decoded spanning-tree
      // artifact are untrusted until bound to this graph).
      PLANSEP_CHECK_MSG(pd >= 0 && pd < g.num_darts(),
                        "spanning tree dart out of range");
      bfs_children_[static_cast<std::size_t>(g.head(pd))].push_back(v);
    }
  }
}

RoundCost PartwiseEngine::blackbox_charge() const {
  RoundCost c;
  c.measured = 2 * std::max(1, bfs_.height);
  c.charged = std::max(1, bfs_.height);
  c.pa_calls = 1;
  obs::advance_rounds(c.measured);
  return c;
}

long long PartwiseEngine::intra_part_rounds(const std::vector<int>& part) const {
  // Per-part BFS height over the induced subgraph; parts are disjoint so
  // they proceed fully in parallel. Aggregation = convergecast + broadcast.
  const EmbeddedGraph& g = *g_;
  const NodeId n = g.num_nodes();
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  long long max_height = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (part[static_cast<std::size_t>(s)] < 0 || seen[static_cast<std::size_t>(s)]) {
      continue;
    }
    const int p = part[static_cast<std::size_t>(s)];
    seen[static_cast<std::size_t>(s)] = 1;
    level[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      max_height = std::max<long long>(max_height,
                                       level[static_cast<std::size_t>(v)]);
      for (planar::DartId d : g.rotation(v)) {
        const NodeId w = g.head(d);
        if (part[static_cast<std::size_t>(w)] != p ||
            seen[static_cast<std::size_t>(w)]) {
          continue;
        }
        seen[static_cast<std::size_t>(w)] = 1;
        level[static_cast<std::size_t>(w)] = level[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  return 2 * max_height + 2;
}

long long PartwiseEngine::global_tree_rounds(const std::vector<int>& part) const {
  // Analytic schedule of the pipelined combining convergecast + downcast
  // over the global BFS tree (see header). Streams are per-part sorted;
  // a node forwards one part per round once every child's stream has
  // advanced past it.
  const EmbeddedGraph& g = *g_;
  const NodeId n = g.num_nodes();

  struct Entry {
    int part;
    long long emit = 0;  // up-phase emission round
  };
  // parts_of[v]: sorted distinct parts in v's BFS subtree, with emit times.
  std::vector<std::vector<Entry>> parts_of(static_cast<std::size_t>(n));
  std::vector<long long> done_time(static_cast<std::size_t>(n), 0);
  long long budget = kGlobalSimBudget;

  for (auto it = bfs_order_.rbegin(); it != bfs_order_.rend(); ++it) {
    const NodeId v = *it;
    const auto& children = bfs_children_[static_cast<std::size_t>(v)];
    // k-way merge of children's part lists plus v's own part.
    std::vector<std::size_t> ptr(children.size(), 0);
    auto& mine = parts_of[static_cast<std::size_t>(v)];
    const int own = part[static_cast<std::size_t>(v)];
    bool own_used = false;
    long long prev_emit = 0;
    for (;;) {
      int next = std::numeric_limits<int>::max();
      for (std::size_t i = 0; i < children.size(); ++i) {
        const auto& cl = parts_of[static_cast<std::size_t>(children[i])];
        if (ptr[i] < cl.size()) next = std::min(next, cl[ptr[i]].part);
      }
      if (!own_used && own >= 0) next = std::min(next, own);
      if (next == std::numeric_limits<int>::max()) break;
      // Readiness: every child must have advanced past `next`.
      long long ready = 0;
      for (std::size_t i = 0; i < children.size(); ++i) {
        const auto& cl = parts_of[static_cast<std::size_t>(children[i])];
        // Child certifies "no more parts <= next" when it emits its first
        // part > next, or when its stream is done.
        std::size_t j = ptr[i];
        long long cert;
        if (j < cl.size() && cl[j].part == next) {
          cert = cl[j].emit;
          // Advance certainty to the next emission (or done marker): the
          // parent knows child finished `next` when it was emitted.
          ptr[i] = j + 1;
        } else {
          // Child has no `next`; certainty comes from its next emission or
          // its done marker.
          cert = (j < cl.size())
                     ? cl[j].emit
                     : done_time[static_cast<std::size_t>(children[i])];
        }
        ready = std::max(ready, cert + 1);
      }
      if (own >= 0 && next == own) own_used = true;
      const long long emit = std::max(prev_emit + 1, ready);
      mine.push_back(Entry{next, emit});
      prev_emit = emit;
      budget -= 1;
      if (budget <= 0) return std::numeric_limits<long long>::max() / 4;
    }
    done_time[static_cast<std::size_t>(v)] = prev_emit + 1;  // done marker
  }

  const NodeId root = bfs_.root;
  long long up_rounds = done_time[static_cast<std::size_t>(root)];

  // Down phase: results stream from the root; each child receives the
  // parts of its subtree in order, one per round, after the parent has
  // them. Children of one node proceed in parallel (distinct edges).
  std::vector<std::vector<long long>> recv(static_cast<std::size_t>(n));
  long long finish = up_rounds;
  for (NodeId v : bfs_order_) {
    const auto& mine = parts_of[static_cast<std::size_t>(v)];
    auto& rv = recv[static_cast<std::size_t>(v)];
    if (v == root) {
      rv.assign(mine.size(), 0);
      continue;
    }
    const planar::DartId pd = bfs_.parent_dart[static_cast<std::size_t>(v)];
    const NodeId parent = g.head(pd);
    const auto& plist = parts_of[static_cast<std::size_t>(parent)];
    const auto& precv = recv[static_cast<std::size_t>(parent)];
    rv.resize(mine.size());
    std::size_t j = 0;
    long long prev = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      while (plist[j].part != mine[i].part) ++j;  // parent has a superset
      prev = std::max(prev + 1, precv[j] + 1);
      rv[i] = prev;
      finish = std::max(finish, up_rounds + prev);
    }
  }
  return finish;
}

AggregateResult PartwiseEngine::aggregate(const std::vector<int>& part,
                                          const std::vector<std::int64_t>& value,
                                          AggOp op) {
  obs::Span span("pa/aggregate");
  const NodeId n = g_->num_nodes();
  PLANSEP_CHECK(static_cast<NodeId>(part.size()) == n);
  PLANSEP_CHECK(static_cast<NodeId>(value.size()) == n);

  // Values: per-part reduction, then fan back out.
  int max_part = -1;
  for (int p : part) max_part = std::max(max_part, p);
  std::vector<std::int64_t> acc(static_cast<std::size_t>(max_part + 1),
                                identity(op));
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p < 0) continue;
    acc[static_cast<std::size_t>(p)] =
        combine(op, acc[static_cast<std::size_t>(p)], value[static_cast<std::size_t>(v)]);
  }
  AggregateResult out;
  out.value.assign(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p >= 0) {
      out.value[static_cast<std::size_t>(v)] = acc[static_cast<std::size_t>(p)];
    }
  }

  const long long intra = intra_part_rounds(part);
  const long long global = global_tree_rounds(part);
  out.cost.measured = std::min(intra, global);
  out.cost.charged = std::max(1, bfs_.height);
  out.cost.pa_calls = 1;
  span.note("measured", out.cost.measured);
  span.note("intra", intra);
  if (global < std::numeric_limits<long long>::max() / 8) {
    span.note("global_tree", global);
  }
  obs::advance_rounds(out.cost.measured);
  return out;
}

AggregateResult PartwiseEngine::broadcast(const std::vector<int>& part,
                                          const std::vector<std::int64_t>& source_value,
                                          const std::vector<char>& is_source) {
  std::vector<std::int64_t> value(source_value.size(), kIdentityMax);
  for (std::size_t i = 0; i < source_value.size(); ++i) {
    if (is_source[i]) value[i] = source_value[i];
  }
  return aggregate(part, value, AggOp::kMax);
}

}  // namespace plansep::shortcuts
