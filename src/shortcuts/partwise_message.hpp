#pragma once

// Message-level part-wise aggregation — the global-tree pipelining
// strategy of PartwiseEngine executed as an actual CONGEST protocol on the
// Network simulator (one message per edge per round, enforced).
//
// Protocol. Up phase: every node streams its subtree's per-part aggregates
// to its BFS parent in increasing part order with combining; a part may be
// forwarded once every child's stream has certified it will send nothing
// smaller (watermarks), and a DONE marker closes each stream. Down phase:
// the root streams each part's result back down, each node forwarding a
// part only to the children whose subtrees reported it.
//
// This module exists to validate PartwiseEngine's analytic round schedule:
// tests assert that the values agree exactly and the simulated round count
// brackets the analytic one (the analytic model is the same schedule
// without per-message bookkeeping).

#include "congest/network.hpp"
#include "shortcuts/partwise.hpp"

namespace plansep::shortcuts {

struct MessageAggregateResult {
  std::vector<std::int64_t> value;  // per node: aggregate of its part
  int rounds = 0;
  long long messages = 0;
};

/// Runs the protocol over the BFS tree in `bfs` (which must span g).
MessageAggregateResult message_level_aggregate(
    const congest::EmbeddedGraph& g, const congest::BfsResult& bfs,
    const std::vector<int>& part, const std::vector<std::int64_t>& value,
    AggOp op);

}  // namespace plansep::shortcuts
