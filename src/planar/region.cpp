#include "planar/region.hpp"

#include <deque>

#include "util/check.hpp"

namespace plansep::planar {

RegionClassification classify_cycle_region(const EmbeddedGraph& g,
                                           const FaceStructure& fs,
                                           const std::vector<DartId>& cycle,
                                           FaceId outer) {
  PLANSEP_CHECK_MSG(!cycle.empty(), "cycle must be non-empty");
  PLANSEP_CHECK(outer >= 0 && outer < fs.num_faces());

  // Validate the walk is closed and over distinct edges.
  std::vector<char> on_cycle_edge(static_cast<std::size_t>(g.num_edges()), 0);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const DartId d = cycle[i];
    const DartId next = cycle[(i + 1) % cycle.size()];
    PLANSEP_CHECK_MSG(g.head(d) == g.tail(next), "cycle walk is not closed");
    const EdgeId e = EmbeddedGraph::edge_of(d);
    PLANSEP_CHECK_MSG(!on_cycle_edge[static_cast<std::size_t>(e)],
                      "cycle repeats an edge");
    on_cycle_edge[static_cast<std::size_t>(e)] = 1;
  }

  RegionClassification rc;
  rc.face_side.assign(static_cast<std::size_t>(fs.num_faces()), Side::kInside);

  // Dual BFS from the outer face, not crossing cycle edges.
  std::vector<char> seen(static_cast<std::size_t>(fs.num_faces()), 0);
  std::deque<FaceId> queue;
  seen[static_cast<std::size_t>(outer)] = 1;
  rc.face_side[static_cast<std::size_t>(outer)] = Side::kOutside;
  queue.push_back(outer);
  while (!queue.empty()) {
    const FaceId f = queue.front();
    queue.pop_front();
    for (DartId d : fs.walk(f)) {
      if (on_cycle_edge[static_cast<std::size_t>(EmbeddedGraph::edge_of(d))]) {
        continue;
      }
      const FaceId nf = fs.face_of(EmbeddedGraph::rev(d));
      if (!seen[static_cast<std::size_t>(nf)]) {
        seen[static_cast<std::size_t>(nf)] = 1;
        rc.face_side[static_cast<std::size_t>(nf)] = Side::kOutside;
        queue.push_back(nf);
      }
    }
  }

  // Node classification.
  rc.node_side.assign(static_cast<std::size_t>(g.num_nodes()), Side::kOutside);
  std::vector<char> on_cycle_node(static_cast<std::size_t>(g.num_nodes()), 0);
  for (DartId d : cycle) {
    on_cycle_node[static_cast<std::size_t>(g.tail(d))] = 1;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (on_cycle_node[static_cast<std::size_t>(v)]) {
      rc.node_side[static_cast<std::size_t>(v)] = Side::kOnCycle;
      continue;
    }
    PLANSEP_CHECK_MSG(g.degree(v) > 0,
                      "isolated vertices cannot be classified");
    Side side = Side::kOutside;
    bool first = true;
    for (DartId d : g.rotation(v)) {
      const Side fs_side = rc.face_side[static_cast<std::size_t>(fs.face_of(d))];
      if (first) {
        side = fs_side;
        first = false;
      } else {
        PLANSEP_CHECK_MSG(side == fs_side,
                          "vertex touches both sides of the cycle");
      }
    }
    rc.node_side[static_cast<std::size_t>(v)] = side;
  }
  return rc;
}

std::vector<DartId> darts_of_node_cycle(const EmbeddedGraph& g,
                                        const std::vector<NodeId>& nodes) {
  PLANSEP_CHECK(nodes.size() >= 3);
  std::vector<DartId> out;
  out.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId a = nodes[i];
    const NodeId b = nodes[(i + 1) % nodes.size()];
    const DartId d = g.find_dart(a, b);
    PLANSEP_CHECK_MSG(d != kNoDart, "cycle edge missing from graph");
    out.push_back(d);
  }
  return out;
}

}  // namespace plansep::planar
