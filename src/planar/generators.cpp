#include "planar/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <numeric>

#include "util/check.hpp"

namespace plansep::planar {

namespace {

constexpr double kPi = 3.14159265358979323846;

GeneratedGraph from_coords(std::string name, std::vector<Point> pts,
                           std::vector<std::pair<NodeId, NodeId>> edges,
                           NodeId root_hint) {
  GeneratedGraph out;
  out.graph = EmbeddedGraph::from_coordinates(pts, edges);
  out.root_hint = root_hint;
  out.name = std::move(name);
  return out;
}

}  // namespace

GeneratedGraph grid(int rows, int cols) {
  PLANSEP_CHECK(rows >= 1 && cols >= 1);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(rows) * cols);
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [&](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({static_cast<double>(c), static_cast<double>(-r)});
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return from_coords("grid", std::move(pts), std::move(edges), 0);
}

GeneratedGraph grid_with_diagonals(int rows, int cols, double p, Rng& rng) {
  PLANSEP_CHECK(rows >= 1 && cols >= 1);
  std::vector<Point> pts;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [&](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({static_cast<double>(c), static_cast<double>(-r)});
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      if (c + 1 < cols && r + 1 < rows && rng.next_bool(p)) {
        if (rng.next_bool()) {
          edges.emplace_back(id(r, c), id(r + 1, c + 1));
        } else {
          edges.emplace_back(id(r, c + 1), id(r + 1, c));
        }
      }
    }
  }
  return from_coords("grid+diag", std::move(pts), std::move(edges), 0);
}

GeneratedGraph cylinder(int rings, int cols) {
  PLANSEP_CHECK(rings >= 1 && cols >= 3);
  std::vector<Point> pts;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [&](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rings; ++r) {
    const double radius = 1.0 + r;
    for (int c = 0; c < cols; ++c) {
      const double a = 2 * kPi * c / cols;
      pts.push_back({radius * std::cos(a), radius * std::sin(a)});
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      if (r + 1 < rings) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  // Outer-most ring nodes touch the outer face.
  return from_coords("cylinder", std::move(pts), std::move(edges),
                     id(rings - 1, 0));
}

GeneratedGraph cycle(int n) {
  PLANSEP_CHECK(n >= 3);
  std::vector<Point> pts;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < n; ++i) {
    const double a = 2 * kPi * i / n;
    pts.push_back({std::cos(a), std::sin(a)});
    edges.emplace_back(i, (i + 1) % n);
  }
  return from_coords("cycle", std::move(pts), std::move(edges), 0);
}

GeneratedGraph path(int n) {
  PLANSEP_CHECK(n >= 1);
  std::vector<Point> pts;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i), 0.0});
    if (i + 1 < n) edges.emplace_back(i, i + 1);
  }
  return from_coords("path", std::move(pts), std::move(edges), 0);
}

GeneratedGraph star(int n) {
  PLANSEP_CHECK(n >= 2);
  std::vector<Point> pts{{0.0, 0.0}};
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 1; i < n; ++i) {
    const double a = 2 * kPi * i / (n - 1);
    pts.push_back({std::cos(a), std::sin(a)});
    edges.emplace_back(0, i);
  }
  return from_coords("star", std::move(pts), std::move(edges), 1);
}

GeneratedGraph wheel(int n) {
  PLANSEP_CHECK(n >= 4);
  const int rim = n - 1;
  std::vector<Point> pts{{0.0, 0.0}};
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < rim; ++i) {
    const double a = 2 * kPi * i / rim;
    pts.push_back({std::cos(a), std::sin(a)});
    edges.emplace_back(0, 1 + i);
    edges.emplace_back(1 + i, 1 + (i + 1) % rim);
  }
  return from_coords("wheel", std::move(pts), std::move(edges), 1);
}

GeneratedGraph binary_tree(int depth) {
  PLANSEP_CHECK(depth >= 0);
  const int n = (1 << (depth + 1)) - 1;
  std::vector<std::vector<NodeId>> rot(static_cast<std::size_t>(n));
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = (v - 1) / 2;
    rot[static_cast<std::size_t>(v)].push_back(p);
    rot[static_cast<std::size_t>(p)].push_back(v);
  }
  GeneratedGraph out;
  out.graph = EmbeddedGraph::from_rotations(rot);
  out.root_hint = 0;
  out.name = "binary_tree";
  return out;
}

GeneratedGraph random_tree(int n, Rng& rng) {
  PLANSEP_CHECK(n >= 1);
  std::vector<std::vector<NodeId>> rot(static_cast<std::size_t>(n));
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    rot[static_cast<std::size_t>(v)].push_back(p);
    rot[static_cast<std::size_t>(p)].push_back(v);
  }
  GeneratedGraph out;
  out.graph = EmbeddedGraph::from_rotations(rot);
  out.root_hint = 0;
  out.name = "random_tree";
  return out;
}

GeneratedGraph stacked_triangulation(int n, Rng& rng) {
  PLANSEP_CHECK(n >= 3);
  // Initial triangle with two faces; we stack into the internal one.
  // Rotations: 0:[1,2] 1:[2,0] 2:[0,1]; internal face (0→1, 1→2, 2→0).
  EmbeddedGraph g = EmbeddedGraph::from_rotations({{1, 2}, {2, 0}, {0, 1}});
  std::vector<Point> pts{{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.0}};
  // Internal faces as dart triples (walk order). Edge ids: 0={0,1}, 1={0,2},
  // 2={1,2}. Dart u→v for edge e is 2e if u was the first endpoint.
  struct Tri {
    DartId ab, bc, ca;  // walk darts a→b, b→c, c→a
  };
  const DartId d01 = g.find_dart(0, 1);
  const DartId d12 = g.find_dart(1, 2);
  const DartId d20 = g.find_dart(2, 0);
  std::vector<Tri> faces{{d01, d12, d20}};
  while (g.num_nodes() < n) {
    const std::size_t fi = static_cast<std::size_t>(rng.next_below(faces.size()));
    const Tri t = faces[fi];
    const NodeId a = g.tail(t.ab);
    const NodeId b = g.tail(t.bc);
    const NodeId c = g.tail(t.ca);
    const NodeId x = g.add_node();
    pts.push_back({(pts[a].x + pts[b].x + pts[c].x) / 3,
                   (pts[a].y + pts[b].y + pts[c].y) / 3});
    // Insert x→a (corner at a between a→c and a→b), x→c, x→b so that the
    // face tracing yields the three sub-triangles (see derivation in tests).
    const EdgeId exa = g.add_edge(x, a, 0, g.position(t.ab));
    const EdgeId exc = g.add_edge(x, c, 1, g.position(t.ca));
    const EdgeId exb = g.add_edge(x, b, 2, g.position(t.bc));
    const DartId xa = 2 * exa, ax = 2 * exa + 1;
    const DartId xc = 2 * exc, cx = 2 * exc + 1;
    const DartId xb = 2 * exb, bx = 2 * exb + 1;
    faces[fi] = Tri{t.ab, bx, xa};
    faces.push_back(Tri{t.bc, cx, xb});
    faces.push_back(Tri{t.ca, ax, xc});
  }
  GeneratedGraph out;
  out.graph = std::move(g);
  out.graph.set_coordinates(std::move(pts));
  // The outer face is the reverse triangle (1→0, 0→2, 2→1).
  out.outer_dart = out.graph.find_dart(1, 0);
  out.root_hint = 0;
  out.name = "triangulation";
  return out;
}

namespace {

/// True iff edge e is a bridge of g restricted to `alive` edges.
bool is_bridge(const EmbeddedGraph& g, const std::vector<char>& alive,
               EdgeId e) {
  const NodeId s = g.edge_u(e);
  const NodeId t = g.edge_v(e);
  std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
  std::deque<NodeId> queue{s};
  seen[static_cast<std::size_t>(s)] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (v == t) return false;
    for (DartId d : g.rotation(v)) {
      const EdgeId de = EmbeddedGraph::edge_of(d);
      if (de == e || !alive[static_cast<std::size_t>(de)]) continue;
      const NodeId w = g.head(d);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }
  return true;
}

}  // namespace

GeneratedGraph random_planar(int n, int m, Rng& rng) {
  PLANSEP_CHECK(n >= 3);
  GeneratedGraph tri = stacked_triangulation(n, rng);
  const EmbeddedGraph& g = tri.graph;
  const int max_m = g.num_edges();
  m = std::clamp(m, n - 1, max_m);
  std::vector<char> alive(static_cast<std::size_t>(max_m), 1);
  std::vector<EdgeId> order(static_cast<std::size_t>(max_m));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  int remaining = max_m;
  for (EdgeId e : order) {
    if (remaining <= m) break;
    if (is_bridge(g, alive, e)) continue;
    alive[static_cast<std::size_t>(e)] = 0;
    --remaining;
  }
  // Rebuild with induced rotations (relative order preserved → planar).
  std::vector<std::vector<NodeId>> rot(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (DartId d : g.rotation(v)) {
      if (alive[static_cast<std::size_t>(EmbeddedGraph::edge_of(d))]) {
        rot[static_cast<std::size_t>(v)].push_back(g.head(d));
      }
    }
  }
  GeneratedGraph out;
  out.graph = EmbeddedGraph::from_rotations(rot);
  if (g.has_coordinates()) out.graph.set_coordinates(g.coordinates());
  out.root_hint = tri.root_hint;
  out.name = "random_planar";
  return out;
}

GeneratedGraph outerplanar(int n, int chords, Rng& rng) {
  PLANSEP_CHECK(n >= 3);
  std::vector<Point> pts;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < n; ++i) {
    const double a = 2 * kPi * i / n;
    pts.push_back({std::cos(a), std::sin(a)});
    edges.emplace_back(i, (i + 1) % n);
  }
  // Random triangulation of the polygon yields n−3 non-crossing chords.
  std::vector<std::pair<NodeId, NodeId>> all_chords;
  std::vector<std::pair<int, int>> stack{{0, n - 1}};  // polygon arcs [i..j]
  while (!stack.empty()) {
    auto [i, j] = stack.back();
    stack.pop_back();
    if (j - i < 2) continue;
    const int k =
        i + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j - i - 1)));
    if (k - i >= 2) all_chords.emplace_back(i, k);
    if (j - k >= 2) all_chords.emplace_back(k, j);
    stack.emplace_back(i, k);
    stack.emplace_back(k, j);
  }
  // Deduplicate and drop chords that coincide with polygon edges.
  std::sort(all_chords.begin(), all_chords.end());
  all_chords.erase(std::unique(all_chords.begin(), all_chords.end()),
                   all_chords.end());
  std::erase_if(all_chords, [&](const auto& c) {
    const int d = std::abs(c.second - c.first);
    return d == 1 || d == n - 1;
  });
  rng.shuffle(all_chords);
  const int take = std::min<int>(chords, static_cast<int>(all_chords.size()));
  for (int i = 0; i < take; ++i) edges.push_back(all_chords[static_cast<std::size_t>(i)]);
  return from_coords("outerplanar", std::move(pts), std::move(edges), 0);
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kGridDiagonals: return "grid+diag";
    case Family::kCylinder: return "cylinder";
    case Family::kTriangulation: return "triangulation";
    case Family::kRandomPlanar: return "random_planar";
    case Family::kOuterplanar: return "outerplanar";
    case Family::kCycle: return "cycle";
    case Family::kRandomTree: return "random_tree";
    case Family::kStar: return "star";
    case Family::kWheel: return "wheel";
  }
  return "?";
}

std::optional<Family> family_from_name(std::string_view name) {
  for (Family f : all_families()) {
    if (name == family_name(f)) return f;
  }
  return std::nullopt;
}

GeneratedGraph make_instance(Family f, int n, std::uint64_t seed) {
  Rng rng(seed);
  switch (f) {
    case Family::kGrid: {
      const int side = std::max(1, static_cast<int>(std::lround(std::sqrt(n))));
      return grid(side, std::max(1, n / side));
    }
    case Family::kGridDiagonals: {
      const int side = std::max(1, static_cast<int>(std::lround(std::sqrt(n))));
      return grid_with_diagonals(side, std::max(1, n / side), 0.5, rng);
    }
    case Family::kCylinder: {
      const int cols = std::max(3, static_cast<int>(std::lround(std::sqrt(n))));
      return cylinder(std::max(1, n / cols), cols);
    }
    case Family::kTriangulation:
      return stacked_triangulation(std::max(3, n), rng);
    case Family::kRandomPlanar:
      return random_planar(std::max(3, n), (3 * n) / 2, rng);
    case Family::kOuterplanar:
      return outerplanar(std::max(3, n), n / 4, rng);
    case Family::kCycle:
      return cycle(std::max(3, n));
    case Family::kRandomTree:
      return random_tree(std::max(1, n), rng);
    case Family::kStar:
      return star(std::max(2, n));
    case Family::kWheel:
      return wheel(std::max(4, n));
  }
  PLANSEP_CHECK_MSG(false, "unknown family");
  GeneratedGraph out;
  return out;
}

std::vector<Family> all_families() {
  return {Family::kGrid,         Family::kGridDiagonals, Family::kCylinder,
          Family::kTriangulation, Family::kRandomPlanar,  Family::kOuterplanar,
          Family::kCycle,        Family::kRandomTree,    Family::kStar,
          Family::kWheel};
}

}  // namespace plansep::planar
