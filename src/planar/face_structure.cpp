#include "planar/face_structure.hpp"

#include <limits>

#include "util/check.hpp"

namespace plansep::planar {

FaceStructure::FaceStructure(const EmbeddedGraph& g)
    : face_of_(static_cast<std::size_t>(g.num_darts()), kNoFace) {
  for (DartId start = 0; start < g.num_darts(); ++start) {
    if (face_of_[start] != kNoFace) continue;
    const FaceId f = static_cast<FaceId>(walks_.size());
    walks_.emplace_back();
    DartId d = start;
    do {
      PLANSEP_CHECK_MSG(face_of_[d] == kNoFace, "face tracing revisited dart");
      face_of_[d] = f;
      walks_.back().push_back(d);
      d = g.rot_next(EmbeddedGraph::rev(d));
    } while (d != start);
  }
}

FaceId FaceStructure::corner_face_after(const EmbeddedGraph& g,
                                        DartId d) const {
  // A face walk arriving at v via dart a leaves via rot_next(rev(a)); the
  // corner it sweeps at v is the one clockwise after rev(a). Hence the
  // corner after dart d (tail v) belongs to the face of rev(d).
  (void)g;
  return face_of_[EmbeddedGraph::rev(d)];
}

int FaceStructure::euler_genus(const EmbeddedGraph& g) const {
  const int c = g.num_components();
  // For each component embedded in the sphere: V - E + F = 2. Isolated
  // vertices have no darts and hence no faces; treat each as contributing
  // V=1, E=0, F=1. Globally: F_total counts each component's faces, but
  // the traced faces only exist where darts exist.
  int isolated = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) ++isolated;
  }
  const int v = g.num_nodes() - isolated;
  const int e = g.num_edges();
  const int f = num_faces();
  const int comps = c - isolated;
  if (comps == 0) return 0;
  // Sum over components of (2 - 2*genus_i) = V - E + F  ==>
  // total_genus = (2*comps - (V - E + F)) / 2.
  const int two_genus = 2 * comps - (v - e + f);
  PLANSEP_CHECK_MSG(two_genus % 2 == 0, "inconsistent face trace");
  return two_genus / 2;
}

FaceId FaceStructure::outer_face(const EmbeddedGraph& g) const {
  PLANSEP_CHECK_MSG(g.has_coordinates(),
                    "outer_face requires a straight-line embedding");
  PLANSEP_CHECK_MSG(g.num_components() == 1,
                    "outer_face requires a connected graph");
  if (num_faces() == 1) return 0;
  const auto& pts = g.coordinates();
  FaceId best = kNoFace;
  double best_area = std::numeric_limits<double>::infinity();
  for (FaceId f = 0; f < num_faces(); ++f) {
    double area2 = 0;  // twice the signed area of the face walk
    for (DartId d : walks_[f]) {
      const Point& a = pts[static_cast<std::size_t>(g.tail(d))];
      const Point& b = pts[static_cast<std::size_t>(g.head(d))];
      area2 += a.x * b.y - b.x * a.y;
    }
    if (area2 < best_area) {
      best_area = area2;
      best = f;
    }
  }
  return best;
}

}  // namespace plansep::planar
