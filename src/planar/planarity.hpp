#pragma once

// Validation helpers for embeddings.
//
// `validate_embedding` certifies that a rotation system is a plane
// embedding via Euler's formula (genus 0). `validate_straight_line`
// additionally checks, geometrically, that no two edges of a coordinate
// embedding cross (O(m^2); intended for tests on small instances).

#include "planar/embedded_graph.hpp"

namespace plansep::planar {

/// True iff the rotation system has Euler genus 0 (i.e., is planar).
bool validate_embedding(const EmbeddedGraph& g);

/// True iff no two edges properly intersect and no vertex lies in the
/// interior of a non-incident edge. Requires coordinates.
bool validate_straight_line(const EmbeddedGraph& g);

}  // namespace plansep::planar
