#include "planar/planarity.hpp"

#include <algorithm>
#include <cmath>

#include "planar/face_structure.hpp"
#include "util/check.hpp"

namespace plansep::planar {

bool validate_embedding(const EmbeddedGraph& g) {
  const FaceStructure fs(g);
  return fs.euler_genus(g) == 0;
}

namespace {

double cross(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool on_segment(const Point& a, const Point& b, const Point& p) {
  if (std::abs(cross(a, b, p)) > 1e-9) return false;
  return p.x >= std::min(a.x, b.x) - 1e-12 &&
         p.x <= std::max(a.x, b.x) + 1e-12 &&
         p.y >= std::min(a.y, b.y) - 1e-12 &&
         p.y <= std::max(a.y, b.y) + 1e-12;
}

bool segments_properly_intersect(const Point& a, const Point& b,
                                 const Point& c, const Point& d) {
  const double d1 = cross(c, d, a);
  const double d2 = cross(c, d, b);
  const double d3 = cross(a, b, c);
  const double d4 = cross(a, b, d);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

}  // namespace

bool validate_straight_line(const EmbeddedGraph& g) {
  PLANSEP_CHECK(g.has_coordinates());
  const auto& pts = g.coordinates();
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId a = g.edge_u(e);
    const NodeId b = g.edge_v(e);
    for (EdgeId f = e + 1; f < m; ++f) {
      const NodeId c = g.edge_u(f);
      const NodeId d = g.edge_v(f);
      if (a == c || a == d || b == c || b == d) continue;
      if (segments_properly_intersect(pts[a], pts[b], pts[c], pts[d])) {
        return false;
      }
    }
    // No vertex inside a non-incident edge.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == a || v == b) continue;
      if (on_segment(pts[a], pts[b], pts[v])) return false;
    }
  }
  return true;
}

}  // namespace plansep::planar
