#pragma once

// Jordan-curve region classification on an embedded graph.
//
// Given a simple cycle C (as a closed dart walk) in an embedded graph and a
// designated outer face, every face lies inside or outside C, and every
// vertex is on C, inside, or outside. This is the combinatorial ground
// truth used throughout the library for the paper's notions of "nodes
// inside a fundamental face" (§2, §4): the brute-force oracles classify
// regions this way and the distributed formulas (Definition 2, Remark 1)
// are property-tested against them.

#include <vector>

#include "planar/embedded_graph.hpp"
#include "planar/face_structure.hpp"

namespace plansep::planar {

enum class Side : char { kOnCycle = 0, kInside = 1, kOutside = 2 };

struct RegionClassification {
  std::vector<Side> node_side;  // indexed by node
  std::vector<Side> face_side;  // indexed by face; never kOnCycle
};

/// Classifies all nodes and faces of `g` with respect to the simple cycle
/// given as a closed dart walk (head(cycle[i]) == tail(cycle[i+1]),
/// cyclically; all edges distinct). Faces connected to `outer` in the dual
/// without crossing a cycle edge are outside; the rest are inside. Vertices
/// not on the cycle must have all incident faces on one side (checked).
RegionClassification classify_cycle_region(const EmbeddedGraph& g,
                                           const FaceStructure& fs,
                                           const std::vector<DartId>& cycle,
                                           FaceId outer);

/// Builds the closed dart walk for a node cycle v0 v1 ... vk v0 using the
/// first dart found between consecutive nodes. All edges must exist.
std::vector<DartId> darts_of_node_cycle(const EmbeddedGraph& g,
                                        const std::vector<NodeId>& nodes);

}  // namespace plansep::planar
