#include "planar/dmp_embedder.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "planar/face_structure.hpp"
#include "util/check.hpp"

namespace plansep::planar {

namespace {

using Edge = std::pair<NodeId, NodeId>;

// ---------------------------------------------------------------------
// Biconnected blocks (iterative Hopcroft–Tarjan with an edge stack).
// ---------------------------------------------------------------------

std::vector<std::vector<Edge>> biconnected_blocks(
    NodeId n, const std::vector<std::vector<std::pair<NodeId, int>>>& adj,
    int num_edges) {
  std::vector<std::vector<Edge>> blocks;
  std::vector<int> tin(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> edge_used(static_cast<std::size_t>(num_edges), 0);
  std::vector<Edge> edge_stack;
  int timer = 0;

  struct Frame {
    NodeId v;
    NodeId parent;
    std::size_t i;
  };
  for (NodeId s = 0; s < n; ++s) {
    if (tin[static_cast<std::size_t>(s)] >= 0) continue;
    std::vector<Frame> stack{{s, kNoNode, 0}};
    tin[static_cast<std::size_t>(s)] = low[static_cast<std::size_t>(s)] =
        timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nb = adj[static_cast<std::size_t>(f.v)];
      if (f.i < nb.size()) {
        const auto [w, eid] = nb[f.i++];
        if (edge_used[static_cast<std::size_t>(eid)]) continue;
        edge_used[static_cast<std::size_t>(eid)] = 1;
        edge_stack.push_back({f.v, w});
        if (tin[static_cast<std::size_t>(w)] < 0) {
          tin[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] =
              timer++;
          stack.push_back({w, f.v, 0});
        } else {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       tin[static_cast<std::size_t>(w)]);
        }
      } else {
        const NodeId v = f.v;
        const NodeId p = f.parent;
        stack.pop_back();
        if (p == kNoNode) continue;
        low[static_cast<std::size_t>(p)] = std::min(
            low[static_cast<std::size_t>(p)], low[static_cast<std::size_t>(v)]);
        if (low[static_cast<std::size_t>(v)] >=
            tin[static_cast<std::size_t>(p)]) {
          // p closes a block: pop edges down to (p, v).
          std::vector<Edge> block;
          for (;;) {
            PLANSEP_CHECK(!edge_stack.empty());
            const Edge e = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(e);
            if (e.first == p && e.second == v) break;
          }
          blocks.push_back(std::move(block));
        }
      }
    }
    PLANSEP_CHECK(edge_stack.empty());
  }
  return blocks;
}

// ---------------------------------------------------------------------
// DMP embedding of one biconnected block.
// ---------------------------------------------------------------------

struct Fragment {
  std::vector<NodeId> attachments;  // H-vertices, sorted
  // A path between two attachments through the fragment, endpoints
  // included: either a chord (two nodes) or a..interior..b.
  std::vector<NodeId> path;
};

/// Finds a cycle in a biconnected graph (local ids) by walking the DFS
/// tree to the first back edge.
std::vector<NodeId> find_cycle(
    int n, const std::vector<std::vector<std::pair<NodeId, int>>>& adj) {
  // Proper iterative DFS (frame stack): a back edge to an ancestor on the
  // recursion stack closes a cycle along parent pointers.
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<int> state(static_cast<std::size_t>(n), 0);  // 0/1=on stack/2
  struct Frame {
    NodeId v;
    std::size_t i;
  };
  std::vector<Frame> stack{{0, 0}};
  state[0] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& nb = adj[static_cast<std::size_t>(f.v)];
    if (f.i >= nb.size()) {
      state[static_cast<std::size_t>(f.v)] = 2;
      stack.pop_back();
      continue;
    }
    const NodeId w = nb[f.i++].first;
    if (w == parent[static_cast<std::size_t>(f.v)]) continue;
    if (state[static_cast<std::size_t>(w)] == 1) {
      // w is an ancestor of v on the recursion stack.
      std::vector<NodeId> cycle;
      for (NodeId x = f.v; x != w; x = parent[static_cast<std::size_t>(x)]) {
        cycle.push_back(x);
      }
      cycle.push_back(w);
      PLANSEP_CHECK(cycle.size() >= 3);
      return cycle;
    }
    if (state[static_cast<std::size_t>(w)] == 0) {
      state[static_cast<std::size_t>(w)] = 1;
      parent[static_cast<std::size_t>(w)] = f.v;
      stack.push_back({w, 0});
    }
  }
  PLANSEP_CHECK_MSG(false, "biconnected block without a cycle");
  return {};
}

/// Embeds one biconnected block given by local-id edges over n_local
/// vertices; returns rotations or nullopt when non-planar.
std::optional<std::vector<std::vector<NodeId>>> embed_block(
    int n_local, const std::vector<Edge>& edges) {
  // Adjacency with edge ids.
  std::vector<std::vector<std::pair<NodeId, int>>> adj(
      static_cast<std::size_t>(n_local));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[static_cast<std::size_t>(edges[i].first)].push_back(
        {edges[i].second, static_cast<int>(i)});
    adj[static_cast<std::size_t>(edges[i].second)].push_back(
        {edges[i].first, static_cast<int>(i)});
  }
  if (static_cast<int>(edges.size()) > 3 * n_local - 6) return std::nullopt;

  const std::vector<NodeId> cycle = find_cycle(n_local, adj);

  EmbeddedGraph h(n_local);
  std::vector<char> in_h_vertex(static_cast<std::size_t>(n_local), 0);
  std::vector<char> in_h_edge(edges.size(), 0);
  std::map<Edge, int> edge_id;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    auto [a, b] = edges[i];
    if (a > b) std::swap(a, b);
    edge_id[{a, b}] = static_cast<int>(i);
  }
  auto mark_edge = [&](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    in_h_edge[static_cast<std::size_t>(edge_id.at({a, b}))] = 1;
  };
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const NodeId a = cycle[i];
    const NodeId b = cycle[(i + 1) % cycle.size()];
    h.add_edge_back(a, b);
    in_h_vertex[static_cast<std::size_t>(a)] = 1;
    mark_edge(a, b);
  }

  int embedded = static_cast<int>(cycle.size());
  const int total = static_cast<int>(edges.size());

  while (embedded < total) {
    const FaceStructure fs(h);
    // Vertex sets per face (H stays 2-connected, so faces are simple
    // cycles and each vertex occurs at most once per face).
    std::vector<std::vector<NodeId>> face_vertices(
        static_cast<std::size_t>(fs.num_faces()));
    for (FaceId f = 0; f < fs.num_faces(); ++f) {
      for (DartId d : fs.walk(f)) {
        face_vertices[static_cast<std::size_t>(f)].push_back(h.tail(d));
      }
      auto& fv = face_vertices[static_cast<std::size_t>(f)];
      std::sort(fv.begin(), fv.end());
    }

    // Fragments: chords plus components of G − V(H).
    std::vector<Fragment> fragments;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (in_h_edge[i]) continue;
      const auto [a, b] = edges[i];
      if (in_h_vertex[static_cast<std::size_t>(a)] &&
          in_h_vertex[static_cast<std::size_t>(b)]) {
        Fragment frag;
        frag.attachments = {std::min(a, b), std::max(a, b)};
        frag.path = {a, b};
        fragments.push_back(std::move(frag));
      }
    }
    {
      std::vector<int> comp(static_cast<std::size_t>(n_local), -1);
      for (NodeId s = 0; s < n_local; ++s) {
        if (in_h_vertex[static_cast<std::size_t>(s)] ||
            comp[static_cast<std::size_t>(s)] >= 0 ||
            adj[static_cast<std::size_t>(s)].empty()) {
          continue;
        }
        // BFS over interior vertices; collect attachments.
        Fragment frag;
        std::vector<NodeId> interior;
        std::deque<NodeId> queue{s};
        comp[static_cast<std::size_t>(s)] = s;
        while (!queue.empty()) {
          const NodeId v = queue.front();
          queue.pop_front();
          interior.push_back(v);
          for (const auto& [w, eid] : adj[static_cast<std::size_t>(v)]) {
            (void)eid;
            if (in_h_vertex[static_cast<std::size_t>(w)]) {
              frag.attachments.push_back(w);
            } else if (comp[static_cast<std::size_t>(w)] < 0) {
              comp[static_cast<std::size_t>(w)] = s;
              queue.push_back(w);
            }
          }
        }
        std::sort(frag.attachments.begin(), frag.attachments.end());
        frag.attachments.erase(
            std::unique(frag.attachments.begin(), frag.attachments.end()),
            frag.attachments.end());
        PLANSEP_CHECK_MSG(frag.attachments.size() >= 2,
                          "fragment of a biconnected block must have >= 2 "
                          "attachments");
        // A path between two attachments through the interior: BFS from
        // attachment a through interior only, stopping at attachment b.
        const NodeId a = frag.attachments[0];
        std::vector<NodeId> prev(static_cast<std::size_t>(n_local), kNoNode);
        std::vector<char> seen(static_cast<std::size_t>(n_local), 0);
        std::deque<NodeId> q2;
        NodeId reached_b = kNoNode;
        for (const auto& [w, eid] : adj[static_cast<std::size_t>(a)]) {
          (void)eid;
          if (!in_h_vertex[static_cast<std::size_t>(w)] &&
              comp[static_cast<std::size_t>(w)] == s && !seen[static_cast<std::size_t>(w)]) {
            seen[static_cast<std::size_t>(w)] = 1;
            prev[static_cast<std::size_t>(w)] = a;
            q2.push_back(w);
          }
        }
        while (!q2.empty() && reached_b == kNoNode) {
          const NodeId v = q2.front();
          q2.pop_front();
          for (const auto& [w, eid] : adj[static_cast<std::size_t>(v)]) {
            (void)eid;
            if (in_h_vertex[static_cast<std::size_t>(w)]) {
              if (w != a) {
                prev[static_cast<std::size_t>(w)] = v;
                reached_b = w;
                break;
              }
              continue;
            }
            if (!seen[static_cast<std::size_t>(w)]) {
              seen[static_cast<std::size_t>(w)] = 1;
              prev[static_cast<std::size_t>(w)] = v;
              q2.push_back(w);
            }
          }
        }
        PLANSEP_CHECK_MSG(reached_b != kNoNode,
                          "fragment path search failed");
        std::vector<NodeId> rpath;
        for (NodeId x = reached_b; x != kNoNode; x = prev[static_cast<std::size_t>(x)]) {
          rpath.push_back(x);
          if (x == a) break;
        }
        std::reverse(rpath.begin(), rpath.end());
        frag.path = std::move(rpath);
        fragments.push_back(std::move(frag));
      }
    }
    PLANSEP_CHECK_MSG(!fragments.empty(), "no fragments but edges remain");

    // Admissible faces per fragment; pick the most constrained fragment.
    int best_frag = -1;
    FaceId best_face = kNoFace;
    int best_count = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      int count = 0;
      FaceId some = kNoFace;
      for (FaceId f = 0; f < fs.num_faces(); ++f) {
        const auto& fv = face_vertices[static_cast<std::size_t>(f)];
        if (std::includes(fv.begin(), fv.end(),
                          fragments[i].attachments.begin(),
                          fragments[i].attachments.end())) {
          ++count;
          some = f;
        }
      }
      if (count == 0) return std::nullopt;  // non-planar certificate
      if (count < best_count) {
        best_count = count;
        best_frag = static_cast<int>(i);
        best_face = some;
        if (count == 1) break;
      }
    }

    // Embed the chosen fragment's path into the chosen face: insert the
    // end darts at the face corners of the endpoints (the corner after the
    // arriving walk dart), interior vertices appended in order.
    const Fragment& frag = fragments[static_cast<std::size_t>(best_frag)];
    const std::vector<NodeId>& path = frag.path;
    const NodeId a = path.front();
    const NodeId b = path.back();
    int pos_a = -1, pos_b = -1;
    for (DartId d : fs.walk(best_face)) {
      const NodeId head = h.head(d);
      // Corner at `head` between rev(d) and rot_next(rev(d)); inserting
      // before rot_next(rev(d)) places the new dart inside this face.
      if (head == a && pos_a < 0) {
        pos_a = h.position(h.rot_next(EmbeddedGraph::rev(d)));
      }
      if (head == b && pos_b < 0) {
        pos_b = h.position(h.rot_next(EmbeddedGraph::rev(d)));
      }
    }
    PLANSEP_CHECK(pos_a >= 0 && pos_b >= 0);
    if (path.size() == 2) {
      h.add_edge(a, b, pos_a, pos_b);
      mark_edge(a, b);
      ++embedded;
    } else {
      // a – x1 ... xk – b.
      h.add_edge(a, path[1], pos_a, 0);
      mark_edge(a, path[1]);
      in_h_vertex[static_cast<std::size_t>(path[1])] = 1;
      ++embedded;
      for (std::size_t i = 1; i + 2 < path.size(); ++i) {
        h.add_edge_back(path[i], path[i + 1]);
        mark_edge(path[i], path[i + 1]);
        in_h_vertex[static_cast<std::size_t>(path[i + 1])] = 1;
        ++embedded;
      }
      h.add_edge(path[path.size() - 2], b, h.degree(path[path.size() - 2]),
                 pos_b);
      mark_edge(path[path.size() - 2], b);
      ++embedded;
    }
  }

  std::vector<std::vector<NodeId>> rotations(
      static_cast<std::size_t>(n_local));
  for (NodeId v = 0; v < n_local; ++v) {
    rotations[static_cast<std::size_t>(v)] = h.neighbors(v);
  }
  return rotations;
}

}  // namespace

PlanarityResult planar_embedding_with_witness(
    NodeId n, const std::vector<Edge>& edges) {
  // Validate input and build adjacency.
  std::map<Edge, int> seen;
  std::vector<std::vector<std::pair<NodeId, int>>> adj(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    auto [a, b] = edges[i];
    PLANSEP_CHECK(a >= 0 && a < n && b >= 0 && b < n);
    PLANSEP_CHECK_MSG(a != b, "self-loops are not supported");
    if (a > b) std::swap(a, b);
    PLANSEP_CHECK_MSG(!seen.count({a, b}), "duplicate edge in input");
    seen[{a, b}] = static_cast<int>(i);
    adj[static_cast<std::size_t>(a)].push_back({b, static_cast<int>(i)});
    adj[static_cast<std::size_t>(b)].push_back({a, static_cast<int>(i)});
  }
  if (n >= 3 && static_cast<int>(edges.size()) > 3 * n - 6) {
    // Euler bound: the whole edge set is the witness (any subgraph with
    // m > 3n - 6 over its support would do; the caller gets the full set).
    return {std::nullopt, edges};
  }

  // Per-block embedding, glued at articulation vertices.
  std::vector<std::vector<NodeId>> rotations(static_cast<std::size_t>(n));
  for (const auto& block : biconnected_blocks(n, adj, static_cast<int>(edges.size()))) {
    if (block.size() == 1) {
      rotations[static_cast<std::size_t>(block[0].first)].push_back(
          block[0].second);
      rotations[static_cast<std::size_t>(block[0].second)].push_back(
          block[0].first);
      continue;
    }
    // Local ids.
    std::vector<NodeId> to_global;
    std::map<NodeId, NodeId> to_local;
    std::vector<Edge> local_edges;
    for (const auto& [a, b] : block) {
      for (NodeId x : {a, b}) {
        if (!to_local.count(x)) {
          to_local[x] = static_cast<NodeId>(to_global.size());
          to_global.push_back(x);
        }
      }
      local_edges.push_back({to_local[a], to_local[b]});
    }
    auto rot = embed_block(static_cast<int>(to_global.size()), local_edges);
    if (!rot.has_value()) {
      // The block itself is non-planar (a block-level DMP failure is a
      // certificate, unlike a fragment-placement dead end in a planar
      // graph, which cannot happen: DMP always extends a planar block).
      // Its edge list, normalized (min, max) and sorted, is the witness.
      std::vector<Edge> witness = block;
      for (auto& [a, b] : witness) {
        if (a > b) std::swap(a, b);
      }
      std::sort(witness.begin(), witness.end());
      return {std::nullopt, std::move(witness)};
    }
    for (NodeId lv = 0; lv < static_cast<NodeId>(to_global.size()); ++lv) {
      auto& out = rotations[static_cast<std::size_t>(to_global[static_cast<std::size_t>(lv)])];
      for (NodeId lw : (*rot)[static_cast<std::size_t>(lv)]) {
        out.push_back(to_global[static_cast<std::size_t>(lw)]);
      }
    }
  }

  EmbeddedGraph g = EmbeddedGraph::from_rotations(rotations);
  const FaceStructure fs(g);
  PLANSEP_CHECK_MSG(fs.euler_genus(g) == 0, "DMP produced a bad embedding");
  return {std::move(g), {}};
}

std::optional<EmbeddedGraph> planar_embedding(
    NodeId n, const std::vector<Edge>& edges) {
  return planar_embedding_with_witness(n, edges).embedding;
}

bool is_planar(NodeId n, const std::vector<Edge>& edges) {
  return planar_embedding(n, edges).has_value();
}

}  // namespace plansep::planar
