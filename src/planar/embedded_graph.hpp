#pragma once

// Combinatorial planar embeddings (rotation systems).
//
// An EmbeddedGraph stores, for every vertex, the cyclic *clockwise* order of
// its incident darts — the t_v ordering of the paper (§2). Each undirected
// edge e is represented by two darts 2e (u→v) and 2e+1 (v→u); rev flips the
// low bit. Faces, duals and region classification build on this structure
// (face_structure.hpp, region.hpp).
//
// Embeddings come either from explicit rotations, or from straight-line
// coordinates (neighbors angularly sorted). The paper's Proposition 1
// computes embeddings distributively in Õ(D) rounds; we treat that prior
// work as a black box and account its cost in the separator engine's
// precomputation phase (see DESIGN.md, substitution 2).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace plansep::planar {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using DartId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;
inline constexpr DartId kNoDart = -1;

/// 2D point for straight-line embeddings; used by generators and geometric
/// validation only — algorithms consume the rotation system exclusively.
struct Point {
  double x = 0;
  double y = 0;
};

class EmbeddedGraph {
 public:
  /// Empty graph with n isolated vertices.
  explicit EmbeddedGraph(NodeId n = 0);

  /// Builds an embedding from vertex coordinates: each vertex's incident
  /// darts are sorted clockwise by angle. Edges must not repeat; self-loops
  /// are rejected. Coordinates are retained for geometric validation.
  static EmbeddedGraph from_coordinates(
      const std::vector<Point>& coords,
      const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Builds from explicit clockwise rotations: rotations[v] lists the
  /// neighbors of v in clockwise order. The implied edge set must be
  /// symmetric.
  static EmbeddedGraph from_rotations(
      const std::vector<std::vector<NodeId>>& rotations);

  NodeId num_nodes() const { return static_cast<NodeId>(rot_.size()); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edge_u_.size()); }
  DartId num_darts() const { return static_cast<DartId>(2 * edge_u_.size()); }

  NodeId tail(DartId d) const { return (d & 1) ? edge_v_[d >> 1] : edge_u_[d >> 1]; }
  NodeId head(DartId d) const { return (d & 1) ? edge_u_[d >> 1] : edge_v_[d >> 1]; }
  static DartId rev(DartId d) { return d ^ 1; }
  static EdgeId edge_of(DartId d) { return d >> 1; }
  /// The dart of edge e leaving endpoint `from` (which must be an endpoint).
  DartId dart_from(EdgeId e, NodeId from) const;

  NodeId edge_u(EdgeId e) const { return edge_u_[e]; }
  NodeId edge_v(EdgeId e) const { return edge_v_[e]; }

  int degree(NodeId v) const { return static_cast<int>(rot_[v].size()); }

  /// Clockwise rotation of v: the darts with tail v, in clockwise order.
  std::span<const DartId> rotation(NodeId v) const { return rot_[v]; }

  /// Index of dart d within rotation(tail(d)).
  int position(DartId d) const { return pos_[d]; }

  /// Next/previous dart clockwise around tail(d).
  DartId rot_next(DartId d) const;
  DartId rot_prev(DartId d) const;

  /// First dart u→v if the edge exists, else kNoDart. O(deg(u)).
  DartId find_dart(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_dart(u, v) != kNoDart; }

  /// Inserts edge {u,v}; its dart at u is placed at rotation index pos_u
  /// (existing entries at >= pos_u shift right), likewise at v. Returns the
  /// new edge id. Positions must be in [0, degree]. O(deg(u)+deg(v)).
  EdgeId add_edge(NodeId u, NodeId v, int pos_u, int pos_v);

  /// Appends edge {u,v} at the end of both rotations (only meaningful while
  /// constructing a graph whose rotation order is fixed afterwards).
  EdgeId add_edge_back(NodeId u, NodeId v);

  /// Adds a fresh isolated vertex, returning its id.
  NodeId add_node();

  bool has_coordinates() const { return !coords_.empty(); }
  const std::vector<Point>& coordinates() const { return coords_; }
  /// One point per node; an empty vector drops the coordinates (used when a
  /// mutation invalidates the straight-line embedding).
  void set_coordinates(std::vector<Point> coords);

  /// Neighbors of v in rotation order (convenience; allocates).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// Number of connected components.
  int num_components() const;

  std::string debug_string() const;

 private:
  void check_node(NodeId v) const;

  // rot_[v]: darts with tail v, clockwise. pos_[d]: index of d in rot_[tail].
  std::vector<std::vector<DartId>> rot_;
  std::vector<int> pos_;
  std::vector<NodeId> edge_u_;
  std::vector<NodeId> edge_v_;
  std::vector<Point> coords_;
};

}  // namespace plansep::planar
