#include "planar/triangulate.hpp"

#include <algorithm>

#include "planar/face_structure.hpp"
#include "util/check.hpp"

namespace plansep::planar {

Triangulation triangulate_with_apexes(const EmbeddedGraph& g) {
  const FaceStructure fs(g);
  Triangulation out;
  out.graph = g;
  out.is_apex.assign(static_cast<std::size_t>(g.num_nodes()), 0);

  for (FaceId f = 0; f < fs.num_faces(); ++f) {
    const auto& walk = fs.walk(f);
    if (walk.size() <= 3) continue;
    // Simple face walks only (2-connected input): a repeated corner would
    // force a parallel apex edge.
    {
      std::vector<NodeId> corners;
      for (DartId d : walk) corners.push_back(g.head(d));
      std::sort(corners.begin(), corners.end());
      PLANSEP_CHECK_MSG(
          std::adjacent_find(corners.begin(), corners.end()) == corners.end(),
          "triangulate_with_apexes requires 2-connected input");
    }
    const NodeId apex = out.graph.add_node();
    out.is_apex.push_back(1);
    ++out.apexes;
    // Connect the apex to every corner of the face walk, inserting each
    // dart at the corner's position: the corner swept after dart d sits at
    // head(d), between rev(d) and rot_next(rev(d)). Positions are taken
    // live because earlier insertions at the same vertex shift them; walk
    // corners are processed in walk order so each new dart lands between
    // the previous insertion and the next walk edge, preserving planarity.
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const DartId d = walk[i];
      const NodeId corner = out.graph.head(d);
      // rot_next of rev(d) in the *current* graph (rev(d) keeps its id:
      // dart ids are stable under add_edge).
      const DartId leaving = out.graph.rot_next(EmbeddedGraph::rev(d));
      const int pos = out.graph.position(leaving);
      out.graph.add_edge(apex, corner, 0, pos);
    }
  }
  const FaceStructure after(out.graph);
  PLANSEP_CHECK_MSG(after.euler_genus(out.graph) == 0,
                    "triangulation broke planarity");
  for (FaceId f = 0; f < after.num_faces(); ++f) {
    PLANSEP_CHECK_MSG(after.walk(f).size() == 3, "face left untriangulated");
  }
  return out;
}

}  // namespace plansep::planar
