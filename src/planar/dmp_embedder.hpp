#pragma once

// Planarity testing + combinatorial embedding from an edge list — the
// Demoucron–Malgrange–Pertuiset (DMP) algorithm, O(n²).
//
// The paper assumes a planar combinatorial embedding is available
// (Proposition 1, computed distributively by Ghaffari–Haeupler in Õ(D)
// rounds). Our generators build embeddings directly; this module provides
// the general entry point: given any graph as an edge list, produce a
// genus-0 rotation system or report non-planarity. It lets the library
// accept arbitrary user graphs, and doubles as an independent validator
// for the generators.
//
// Method: decompose into biconnected blocks; embed each block by DMP
// (start from a cycle, repeatedly compute the bridges/fragments of the
// embedded subgraph, place a fragment with the fewest admissible faces by
// routing one of its paths through such a face); glue the blocks at the
// articulation vertices (any interleaving of block rotations at a shared
// vertex is planar). A fragment with no admissible face certifies
// non-planarity.

#include <optional>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::planar {

/// Result of a planarity check. Exactly one of the two members is
/// populated: a successful check carries the embedding and an empty
/// witness; a failed check carries a non-planarity witness — the edge
/// list of an offending subgraph (a biconnected block that could not be
/// embedded, which by Kuratowski contains a K5 or K3,3 subdivision; for
/// the global Euler-bound rejection, the whole edge set).
struct PlanarityResult {
  std::optional<EmbeddedGraph> embedding;
  std::vector<std::pair<NodeId, NodeId>> witness;

  bool planar() const { return embedding.has_value(); }
};

/// Computes a planar combinatorial embedding of the simple graph given by
/// (n, edges), or a non-planarity witness if the graph is not planar.
/// Self-loops are rejected; duplicate edges are an error. The graph need
/// not be connected.
PlanarityResult planar_embedding_with_witness(
    NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Embedding-or-nullopt convenience wrapper (drops the witness).
std::optional<EmbeddedGraph> planar_embedding(
    NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

/// True iff the graph is planar (convenience wrapper).
bool is_planar(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace plansep::planar
