#include "planar/embedded_graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace plansep::planar {

EmbeddedGraph::EmbeddedGraph(NodeId n) : rot_(static_cast<std::size_t>(n)) {
  PLANSEP_CHECK(n >= 0);
}

void EmbeddedGraph::check_node(NodeId v) const {
  PLANSEP_CHECK_MSG(v >= 0 && v < num_nodes(), "node id out of range");
}

DartId EmbeddedGraph::dart_from(EdgeId e, NodeId from) const {
  PLANSEP_CHECK(e >= 0 && e < num_edges());
  if (edge_u_[e] == from) return 2 * e;
  PLANSEP_CHECK_MSG(edge_v_[e] == from, "node is not an endpoint of edge");
  return 2 * e + 1;
}

DartId EmbeddedGraph::rot_next(DartId d) const {
  const NodeId v = tail(d);
  const auto& r = rot_[v];
  const int i = pos_[d];
  return r[(i + 1) % static_cast<int>(r.size())];
}

DartId EmbeddedGraph::rot_prev(DartId d) const {
  const NodeId v = tail(d);
  const auto& r = rot_[v];
  const int i = pos_[d];
  return r[(i + static_cast<int>(r.size()) - 1) % static_cast<int>(r.size())];
}

DartId EmbeddedGraph::find_dart(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (DartId d : rot_[u]) {
    if (head(d) == v) return d;
  }
  return kNoDart;
}

EdgeId EmbeddedGraph::add_edge(NodeId u, NodeId v, int pos_u, int pos_v) {
  check_node(u);
  check_node(v);
  PLANSEP_CHECK_MSG(u != v, "self-loops are not supported");
  PLANSEP_CHECK(pos_u >= 0 && pos_u <= degree(u));
  PLANSEP_CHECK(pos_v >= 0 && pos_v <= degree(v));
  const EdgeId e = num_edges();
  edge_u_.push_back(u);
  edge_v_.push_back(v);
  pos_.push_back(0);
  pos_.push_back(0);
  rot_[u].insert(rot_[u].begin() + pos_u, 2 * e);
  rot_[v].insert(rot_[v].begin() + pos_v, 2 * e + 1);
  for (int i = pos_u; i < degree(u); ++i) pos_[rot_[u][i]] = i;
  for (int i = pos_v; i < degree(v); ++i) pos_[rot_[v][i]] = i;
  return e;
}

EdgeId EmbeddedGraph::add_edge_back(NodeId u, NodeId v) {
  return add_edge(u, v, degree(u), degree(v));
}

NodeId EmbeddedGraph::add_node() {
  rot_.emplace_back();
  if (!coords_.empty()) coords_.push_back(Point{});
  return num_nodes() - 1;
}

void EmbeddedGraph::set_coordinates(std::vector<Point> coords) {
  PLANSEP_CHECK(coords.empty() ||
                static_cast<NodeId>(coords.size()) == num_nodes());
  coords_ = std::move(coords);
}

std::vector<NodeId> EmbeddedGraph::neighbors(NodeId v) const {
  check_node(v);
  std::vector<NodeId> out;
  out.reserve(rot_[v].size());
  for (DartId d : rot_[v]) out.push_back(head(d));
  return out;
}

int EmbeddedGraph::num_components() const {
  const NodeId n = num_nodes();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack;
  int components = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (DartId d : rot_[v]) {
        const NodeId w = head(d);
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

EmbeddedGraph EmbeddedGraph::from_coordinates(
    const std::vector<Point>& coords,
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  EmbeddedGraph g(static_cast<NodeId>(coords.size()));
  for (const auto& [u, v] : edges) {
    PLANSEP_CHECK_MSG(!g.has_edge(u, v), "duplicate edge in input");
    g.add_edge_back(u, v);
  }
  // Sort each rotation clockwise by angle: standard orientation (y up),
  // clockwise means decreasing atan2.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& r = g.rot_[v];
    std::sort(r.begin(), r.end(), [&](DartId a, DartId b) {
      const Point& p = coords[static_cast<std::size_t>(v)];
      const Point& pa = coords[static_cast<std::size_t>(g.head(a))];
      const Point& pb = coords[static_cast<std::size_t>(g.head(b))];
      const double ta = std::atan2(pa.y - p.y, pa.x - p.x);
      const double tb = std::atan2(pb.y - p.y, pb.x - p.x);
      if (ta != tb) return ta > tb;
      return a < b;  // deterministic tiebreak (collinear points)
    });
    for (int i = 0; i < static_cast<int>(r.size()); ++i) g.pos_[r[i]] = i;
  }
  g.coords_ = coords;
  return g;
}

EmbeddedGraph EmbeddedGraph::from_rotations(
    const std::vector<std::vector<NodeId>>& rotations) {
  const NodeId n = static_cast<NodeId>(rotations.size());
  EmbeddedGraph g(n);
  // First pass: create edges (u < v order of discovery), tracking darts.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : rotations[static_cast<std::size_t>(u)]) {
      PLANSEP_CHECK_MSG(v >= 0 && v < n, "rotation references invalid node");
      PLANSEP_CHECK_MSG(u != v, "self-loops are not supported");
      if (u < v) {
        PLANSEP_CHECK_MSG(!g.has_edge(u, v), "duplicate edge in rotations");
        g.add_edge_back(u, v);
      }
    }
  }
  // Second pass: order rotations as specified.
  for (NodeId u = 0; u < n; ++u) {
    const auto& want = rotations[static_cast<std::size_t>(u)];
    PLANSEP_CHECK_MSG(static_cast<int>(want.size()) == g.degree(u),
                      "asymmetric rotation input");
    std::vector<DartId> ordered;
    ordered.reserve(want.size());
    for (NodeId v : want) {
      const DartId d = g.find_dart(u, v);
      PLANSEP_CHECK_MSG(d != kNoDart, "asymmetric rotation input");
      ordered.push_back(d);
    }
    // Check no duplicates (parallel edges unsupported).
    auto sorted = ordered;
    std::sort(sorted.begin(), sorted.end());
    PLANSEP_CHECK_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "parallel edges are not supported");
    g.rot_[u] = std::move(ordered);
    for (int i = 0; i < g.degree(u); ++i) g.pos_[g.rot_[u][i]] = i;
  }
  return g;
}

std::string EmbeddedGraph::debug_string() const {
  std::ostringstream os;
  os << "EmbeddedGraph(n=" << num_nodes() << ", m=" << num_edges() << ")\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    os << "  " << v << ":";
    for (DartId d : rot_[v]) os << ' ' << head(d);
    os << '\n';
  }
  return os.str();
}

}  // namespace plansep::planar
