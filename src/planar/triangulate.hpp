#pragma once

// Face triangulation by apex insertion.
//
// Several planar-graph algorithms (Lipton–Tarjan's cycle step, parts of
// Ghaffari–Parter) assume a triangulated input. Triangulating by adding
// chords can create parallel edges; the standard safe construction adds a
// fresh *apex* vertex inside every face of size > 3, connected to every
// corner of that face's walk — the result is simple, planar, and every
// face is a triangle. Apexes are flagged so algorithms can weight them 0
// or drop them from outputs.

#include "planar/embedded_graph.hpp"

namespace plansep::planar {

struct Triangulation {
  EmbeddedGraph graph;
  /// is_apex[v] for every node of `graph`; original ids are preserved as a
  /// prefix.
  std::vector<char> is_apex;
  int apexes = 0;
};

/// Triangulates every face of the (connected, embedded) graph by apex
/// insertion. Faces that are already triangles are left untouched.
Triangulation triangulate_with_apexes(const EmbeddedGraph& g);

}  // namespace plansep::planar
