#pragma once

// Face tracing over a rotation system.
//
// Faces are the orbits of the permutation  d ↦ rot_next(rev(d)) : each dart
// belongs to exactly one face walk. For a rotation system that corresponds
// to a plane embedding, Euler's formula V − E + F = 1 + C holds (C = number
// of connected components, all sharing the outer face); `euler_genus() == 0`
// certifies planarity of the rotation system.

#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::planar {

using FaceId = std::int32_t;
inline constexpr FaceId kNoFace = -1;

class FaceStructure {
 public:
  explicit FaceStructure(const EmbeddedGraph& g);

  int num_faces() const { return static_cast<int>(walks_.size()); }

  /// Face containing dart d (the face traced through d).
  FaceId face_of(DartId d) const { return face_of_[d]; }

  /// The closed dart walk of face f, in tracing order.
  const std::vector<DartId>& walk(FaceId f) const { return walks_[f]; }

  /// The face incident to the *corner* at tail(d) that lies clockwise
  /// immediately after dart d (between d and rot_next(d)).
  FaceId corner_face_after(const EmbeddedGraph& g, DartId d) const;

  /// Euler genus of the rotation system: 0 iff it is a plane embedding.
  /// Computed as (2·C − V + E − F) / 2 over the whole graph.
  int euler_genus(const EmbeddedGraph& g) const;

  /// The outer face of a straight-line embedding (requires coordinates):
  /// the unique face whose walk has negative signed area. For graphs with
  /// no cycle (forests) there is a single face, which is returned.
  FaceId outer_face(const EmbeddedGraph& g) const;

 private:
  std::vector<FaceId> face_of_;
  std::vector<std::vector<DartId>> walks_;
};

}  // namespace plansep::planar
