#pragma once

// Planar graph generators with embeddings.
//
// Every generator returns an embedded planar graph; combinatorial
// constructions (stacked triangulations) build exact rotation systems, while
// geometric ones derive rotations from straight-line coordinates. Families
// span the diameter spectrum the experiments need: grids (D ≈ 2√n),
// stacked triangulations (D ≈ log n), outerplanar/cycles (D ≈ n/2) and
// trees (no fundamental edges — Phase 2 of the separator algorithm).

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"
#include "util/rng.hpp"

namespace plansep::planar {

struct GeneratedGraph {
  EmbeddedGraph graph;
  /// A dart on the outer-face walk, when the construction knows one
  /// (kNoDart for trees, whose unique face is the outer face).
  DartId outer_dart = kNoDart;
  /// A node incident to the outer face; a natural root choice.
  NodeId root_hint = 0;
  std::string name;
};

/// rows × cols grid; D = rows + cols − 2.
GeneratedGraph grid(int rows, int cols);

/// Grid with a random diagonal added to each cell with probability p.
GeneratedGraph grid_with_diagonals(int rows, int cols, double p, Rng& rng);

/// Annulus grid: `rings` concentric cycles of length `cols` plus radial
/// spokes (requires cols >= 3, rings >= 1).
GeneratedGraph cylinder(int rings, int cols);

/// Simple cycle on n >= 3 nodes.
GeneratedGraph cycle(int n);

/// Path on n >= 1 nodes.
GeneratedGraph path(int n);

/// Star: center 0 plus n−1 leaves.
GeneratedGraph star(int n);

/// Wheel: hub 0 plus a cycle of n−1 rim nodes (n >= 4).
GeneratedGraph wheel(int n);

/// Complete binary tree of the given depth (depth 0 = single node).
GeneratedGraph binary_tree(int depth);

/// Random tree: node i attaches to a uniform node < i.
GeneratedGraph random_tree(int n, Rng& rng);

/// Random *stacked* triangulation (Apollonian network): repeatedly insert a
/// vertex into a uniformly random internal triangular face. Maximal planar
/// on n >= 3 nodes; diameter typically O(log n).
GeneratedGraph stacked_triangulation(int n, Rng& rng);

/// Random planar graph: stacked triangulation with random non-bridge edges
/// deleted until `m` edges remain (clamped to feasible range), keeping the
/// graph connected and the embedding induced.
GeneratedGraph random_planar(int n, int m, Rng& rng);

/// Convex polygon on n nodes with `chords` random non-crossing chords drawn
/// from a random triangulation of the polygon.
GeneratedGraph outerplanar(int n, int chords, Rng& rng);

/// Named families, used by the test/bench sweeps.
enum class Family {
  kGrid,
  kGridDiagonals,
  kCylinder,
  kTriangulation,
  kRandomPlanar,
  kOuterplanar,
  kCycle,
  kRandomTree,
  kStar,
  kWheel,
};

const char* family_name(Family f);

/// Inverse of family_name (used by the proptest replay commands);
/// nullopt for unknown names.
std::optional<Family> family_from_name(std::string_view name);

/// Builds an instance of the family with about n nodes (exact for most
/// families) using the given seed.
GeneratedGraph make_instance(Family f, int n, std::uint64_t seed);

/// All families, for sweeps.
std::vector<Family> all_families();

}  // namespace plansep::planar
