#pragma once

/// \file
/// The distance-oracle index over a separator hierarchy: flattened
/// per-node ancestor chains with distance blocks to every ancestor's
/// separator nodes, plus exact intra-leaf tables.

// The query index (ROADMAP: "serve answers, not runs").
//
// For every node v the index stores v's root-to-terminal piece chain —
// the pieces of the hierarchy that contain v, from v's component root
// down to either v's leaf or the piece whose separator absorbed v — and,
// aligned with the chain, one distance block per ancestor piece: the
// BFS-within-that-piece distance from v to each of the piece's separator
// nodes (-1 when unreachable inside the piece). Leaves additionally get a
// row-major all-pairs table of BFS-within-leaf distances.
//
// A distance query dist(u, v) then walks the common prefix of the two
// chains (pieces are appended in BFS order by build_hierarchy, so the
// position of a piece in a chain equals its level) and minimizes
// d_p(u, s) + d_p(v, s) over every separator node s of every common
// ancestor piece p, falling back to the intra-leaf table when u and v
// share a leaf. Exactness: a shortest u–v path π lies entirely inside the
// deepest piece p* containing both endpoints' chains' common prefix — by
// construction distinct children of a piece are non-adjacent, so π cannot
// leave p* without touching sep(p*). Either π meets some s ∈ sep(p*)
// (then the p* term is exact, since π ⊆ p* means d_p*(·, s) agrees with
// the true distance along π), or p* is a leaf containing u and v and the
// leaf table is exact. Space is Σ_p |sep(p)|·|p| + Σ_leaf |leaf|² —
// O(√n · log n)-style for separator-friendly families — and a query costs
// the total separator size along one chain, O(sep · log n).
//
// Determinism: the index is a pure function of (graph, hierarchy). Piece
// BFS visits neighbors in rotation order from a node-id-ordered local
// CSR, so rebuilding any piece reproduces its block bytes exactly;
// builds with different thread counts write disjoint ranges of the same
// arrays and are byte-identical (pinned by tests/query_test.cpp).

#include <cstdint>
#include <vector>

#include "separator/hierarchy.hpp"

namespace plansep::query {

using planar::NodeId;

/// Distance value for "unreachable within the piece / graph".
inline constexpr std::int32_t kUnreachable = -1;

/// The flattened oracle arrays. All offsets index the array named in the
/// comment; every field is part of the kQueryIndex persistence format.
struct QueryIndex {
  std::int32_t leaf_size = 0;  ///< hierarchy leaf bound (cache identity)
  NodeId num_nodes = 0;        ///< graph size the index covers

  // Piece tables, indexed by hierarchy piece id.
  std::vector<std::int32_t> piece_level;  ///< level per piece
  std::vector<std::int64_t> sep_off;      ///< pieces+1 offsets into sep_nodes
  std::vector<NodeId> sep_nodes;          ///< concatenated separator lists

  // Per-node ancestor chains, root first. path_off has n+1 entries;
  // path_piece[path_off[v] + l] is v's level-l ancestor piece.
  std::vector<std::int64_t> path_off;
  std::vector<std::int32_t> path_piece;
  /// Aligned with path_piece: start of that ancestor's distance block in
  /// `dist` (the block has sep count of that piece entries).
  std::vector<std::int64_t> block_off;
  /// All distance blocks, concatenated; kUnreachable = not reachable
  /// inside the piece.
  std::vector<std::int32_t> dist;

  // Intra-leaf all-pairs tables.
  std::vector<std::int32_t> leaf_pos;      ///< index within own leaf; -1 for
                                           ///< separator nodes
  std::vector<std::int64_t> leaf_tab_off;  ///< pieces+1; empty range for
                                           ///< non-leaf pieces
  std::vector<std::int32_t> leaf_tab;      ///< row-major |leaf|² blocks

  /// Separator-node count of piece p.
  std::int32_t sep_count(int p) const {
    return static_cast<std::int32_t>(sep_off[static_cast<std::size_t>(p) + 1] -
                                     sep_off[static_cast<std::size_t>(p)]);
  }
  /// Chain length (ancestor pieces) of node v.
  std::int32_t path_len(NodeId v) const {
    return static_cast<std::int32_t>(path_off[static_cast<std::size_t>(v) + 1] -
                                     path_off[static_cast<std::size_t>(v)]);
  }
  /// Total bytes across all index arrays (footprint reporting).
  std::size_t byte_size() const;
};

/// An optional set of killed undirected edges, keyed min(u,v)<<32|max.
/// Null/empty means "no edges killed".
struct EdgeSet {
  std::vector<std::uint64_t> sorted_keys;  ///< ascending, unique

  /// Canonical key of the undirected edge {u, v}.
  static std::uint64_t key(NodeId u, NodeId v);
  /// Membership test (binary search).
  bool contains(NodeId u, NodeId v) const;
  /// Inserts the edge (keeps the keys sorted; duplicate is a no-op).
  void insert(NodeId u, NodeId v);
  bool empty() const { return sorted_keys.empty(); }
};

/// Reused scratch buffers for piece BFS (one per worker thread).
struct PieceWorkspace {
  std::vector<std::int32_t> local_of;  ///< node → local id (piece-scoped)
  std::vector<std::int32_t> adj_off;   ///< local CSR offsets
  std::vector<std::int32_t> adj;       ///< local CSR neighbor ids
  std::vector<std::int32_t> ldist;     ///< BFS distances (local ids)
  std::vector<std::int32_t> queue;     ///< BFS queue (local ids)
};

/// Recomputes piece p's distance blocks in place: for every member node,
/// BFS-within-the-piece distances to each of p's separator nodes, written
/// at the member's block for p. `killed` (nullable) suppresses edges —
/// the invalidation rebuild path; the builder passes null. Writes only
/// p's blocks, so concurrent calls on distinct pieces are race-free.
void solve_piece(const planar::EmbeddedGraph& g,
                 const separator::SeparatorHierarchy& h, int p, QueryIndex& qi,
                 const EdgeSet* killed, PieceWorkspace& ws);

/// Recomputes leaf piece p's all-pairs table in place (same contract as
/// solve_piece).
void solve_leaf(const planar::EmbeddedGraph& g,
                const separator::SeparatorHierarchy& h, int p, QueryIndex& qi,
                const EdgeSet* killed, PieceWorkspace& ws);

/// Builds the full index from a built hierarchy. `threads` > 1 fans the
/// per-piece solves over that many std::threads (disjoint writes — the
/// result is byte-identical to the serial build). Pure function of
/// (g, h, leaf_size).
QueryIndex build_query_index(const planar::EmbeddedGraph& g,
                             const separator::SeparatorHierarchy& h,
                             int leaf_size, int threads = 1);

}  // namespace plansep::query
