#include "query/engine.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::query {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

QueryEngine::QueryEngine(planar::EmbeddedGraph g,
                         separator::SeparatorHierarchy h, QueryIndex qi)
    : g_(std::move(g)), h_(std::move(h)), qi_(std::move(qi)) {
  PLANSEP_CHECK(qi_.num_nodes == g_.num_nodes());
  PLANSEP_CHECK(h_.num_nodes() == g_.num_nodes());
  PLANSEP_CHECK(qi_.piece_level.size() == h_.pieces.size());
  dirty_.assign(h_.pieces.size(), 0);
}

std::int64_t QueryEngine::distance(NodeId u, NodeId v) {
  const NodeId n = qi_.num_nodes;
  PLANSEP_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n,
                    "query endpoints outside [0, n)");
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (u == v) return 0;
  if (dirty_count_.load(std::memory_order_relaxed) > 0) {
    rebuild_dirty_on_paths(u, v);
  }

  const std::int64_t au = qi_.path_off[static_cast<std::size_t>(u)];
  const std::int64_t av = qi_.path_off[static_cast<std::size_t>(v)];
  const std::int32_t lu = qi_.path_len(u);
  const std::int32_t lv = qi_.path_len(v);
  const std::int32_t common_max = std::min(lu, lv);
  std::int64_t best = kInf;
  long long scanned = 0;
  long long terms = 0;
  for (std::int32_t i = 0; i < common_max; ++i) {
    const std::int32_t p = qi_.path_piece[static_cast<std::size_t>(au + i)];
    if (p != qi_.path_piece[static_cast<std::size_t>(av + i)]) break;
    ++scanned;
    const std::int32_t sc = qi_.sep_count(p);
    terms += sc;
    const std::int32_t* du =
        qi_.dist.data() + qi_.block_off[static_cast<std::size_t>(au + i)];
    const std::int32_t* dv =
        qi_.dist.data() + qi_.block_off[static_cast<std::size_t>(av + i)];
    for (std::int32_t s = 0; s < sc; ++s) {
      if (du[s] >= 0 && dv[s] >= 0) {
        best = std::min(best,
                        static_cast<std::int64_t>(du[s]) + dv[s]);
      }
    }
  }
  if (qi_.leaf_pos[static_cast<std::size_t>(u)] >= 0 &&
      qi_.leaf_pos[static_cast<std::size_t>(v)] >= 0) {
    const std::int32_t pu =
        qi_.path_piece[static_cast<std::size_t>(au + lu - 1)];
    const std::int32_t pv =
        qi_.path_piece[static_cast<std::size_t>(av + lv - 1)];
    if (pu == pv) {
      leaf_pairs_.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t base =
          qi_.leaf_tab_off[static_cast<std::size_t>(pu)];
      const std::int64_t sz = static_cast<std::int64_t>(
          h_.pieces[static_cast<std::size_t>(pu)].nodes.size());
      const std::int32_t t = qi_.leaf_tab[static_cast<std::size_t>(
          base + qi_.leaf_pos[static_cast<std::size_t>(u)] * sz +
          qi_.leaf_pos[static_cast<std::size_t>(v)])];
      if (t >= 0) best = std::min(best, static_cast<std::int64_t>(t));
    }
  }
  pieces_scanned_.fetch_add(scanned, std::memory_order_relaxed);
  sep_terms_.fetch_add(terms, std::memory_order_relaxed);
  return best >= kInf ? static_cast<std::int64_t>(kUnreachable) : best;
}

bool QueryEngine::reachable(NodeId u, NodeId v) {
  return distance(u, v) >= 0;
}

std::vector<std::int64_t> QueryEngine::distances(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::vector<std::int64_t> out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) out.push_back(distance(u, v));
  return out;
}

void QueryEngine::kill_edge(NodeId a, NodeId b) {
  const NodeId n = qi_.num_nodes;
  PLANSEP_CHECK_MSG(a >= 0 && a < n && b >= 0 && b < n,
                    "kill_edge endpoints outside [0, n)");
  if (a == b || !g_.has_edge(a, b) || killed_.contains(a, b)) return;
  std::lock_guard<std::mutex> lk(rebuild_mu_);
  killed_.insert(a, b);
  ++edges_killed_;
  obs::add_counter("query/edges_killed");
  // Only pieces containing both endpoints can have BFS'd across the
  // edge: exactly the common prefix of the two ancestor chains.
  const std::int64_t aa = qi_.path_off[static_cast<std::size_t>(a)];
  const std::int64_t ab = qi_.path_off[static_cast<std::size_t>(b)];
  const std::int32_t common = std::min(qi_.path_len(a), qi_.path_len(b));
  for (std::int32_t i = 0; i < common; ++i) {
    const std::int32_t p = qi_.path_piece[static_cast<std::size_t>(aa + i)];
    if (p != qi_.path_piece[static_cast<std::size_t>(ab + i)]) break;
    if (!dirty_[static_cast<std::size_t>(p)]) {
      dirty_[static_cast<std::size_t>(p)] = 1;
      dirty_count_.fetch_add(1, std::memory_order_relaxed);
      ++pieces_dirtied_;
      obs::add_counter("query/pieces_dirtied");
    }
  }
}

void QueryEngine::rebuild_piece_locked(int p) {
  solve_piece(g_, h_, p, qi_, &killed_, ws_);
  solve_leaf(g_, h_, p, qi_, &killed_, ws_);
  dirty_[static_cast<std::size_t>(p)] = 0;
  dirty_count_.fetch_sub(1, std::memory_order_relaxed);
  ++pieces_rebuilt_;
  obs::add_counter("query/pieces_rebuilt");
}

void QueryEngine::rebuild_dirty_on_paths(NodeId u, NodeId v) {
  std::lock_guard<std::mutex> lk(rebuild_mu_);
  if (dirty_count_.load(std::memory_order_relaxed) == 0) return;
  const std::int64_t au = qi_.path_off[static_cast<std::size_t>(u)];
  const std::int64_t av = qi_.path_off[static_cast<std::size_t>(v)];
  const std::int32_t common = std::min(qi_.path_len(u), qi_.path_len(v));
  for (std::int32_t i = 0; i < common; ++i) {
    const std::int32_t p = qi_.path_piece[static_cast<std::size_t>(au + i)];
    if (p != qi_.path_piece[static_cast<std::size_t>(av + i)]) break;
    if (dirty_[static_cast<std::size_t>(p)]) rebuild_piece_locked(p);
  }
}

QueryCounters QueryEngine::counters() const {
  QueryCounters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.pieces_scanned = pieces_scanned_.load(std::memory_order_relaxed);
  c.sep_terms = sep_terms_.load(std::memory_order_relaxed);
  c.leaf_pairs = leaf_pairs_.load(std::memory_order_relaxed);
  c.edges_killed = edges_killed_;
  c.pieces_dirtied = pieces_dirtied_;
  c.pieces_rebuilt = pieces_rebuilt_;
  return c;
}

}  // namespace plansep::query
