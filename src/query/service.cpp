#include "query/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/fingerprint.hpp"
#include "io/artifact.hpp"
#include "io/corpus.hpp"
#include "obs/metrics.hpp"
#include "planar/generators.hpp"
#include "shortcuts/partwise.hpp"
#include "taskgraph/graph.hpp"
#include "taskgraph/pipeline.hpp"

namespace plansep::query {

serve::CacheKey index_cache_key(std::uint64_t fingerprint, NodeId root,
                                int leaf_size) {
  const std::uint64_t config_hash =
      core::mix_seed(0x726f6f7400000000ULL /* "root" */,
                     static_cast<std::uint64_t>(root),
                     static_cast<std::uint64_t>(leaf_size));
  return serve::CacheKey{fingerprint, kIndexAlgorithmId, config_hash};
}

EngineCache::EngineCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<QueryEngine> EngineCache::get_or_build(std::uint64_t address,
                                                       const Builder& build,
                                                       bool* was_hit) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(address);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.hits;
    if (was_hit != nullptr) *was_hit = true;
    return it->second->second;
  }
  ++counters_.misses;
  if (was_hit != nullptr) *was_hit = false;
  std::shared_ptr<QueryEngine> eng = build();
  lru_.emplace_front(address, eng);
  index_[address] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
  }
  return eng;
}

EngineCache::Counters EngineCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t EngineCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

std::shared_ptr<QueryEngine> engine_from_artifact_bytes(
    const planar::EmbeddedGraph& g, const std::vector<std::uint8_t>& bytes) {
  const io::Artifact a = io::parse(bytes);
  const io::Section* hs = a.find(io::SectionId::kHierarchy);
  if (hs == nullptr) throw io::FormatError("artifact lacks kHierarchy");
  const io::Section* qs = a.find(io::SectionId::kQueryIndex);
  if (qs == nullptr) throw io::FormatError("artifact lacks kQueryIndex");
  io::HierarchyArtifact ha = io::decode_hierarchy(hs->bytes);
  QueryIndex qi = io::decode_query_index(qs->bytes);
  if (ha.num_nodes != g.num_nodes() || qi.num_nodes != g.num_nodes()) {
    throw io::FormatError("hierarchy/index node count does not match graph");
  }
  return std::make_shared<QueryEngine>(g, std::move(ha.hierarchy),
                                       std::move(qi));
}

namespace {

void check_pairs(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                 NodeId n, const char* what) {
  for (const auto& [u, v] : pairs) {
    if (u < 0 || u >= n || v < 0 || v >= n) {
      throw std::runtime_error(std::string(what) + " (" + std::to_string(u) +
                               ", " + std::to_string(v) +
                               ") outside [0, " + std::to_string(n) + ")");
    }
  }
}

}  // namespace

QueryOutcome run_query_job(const QueryJob& job,
                           const serve::BatchOptions& opts,
                           serve::ArtifactCache& cache, EngineCache* engines) {
  QueryOutcome out;
  try {
    if (job.leaf_size < 1 || job.leaf_size > (1 << 20)) {
      throw std::runtime_error("leaf size " + std::to_string(job.leaf_size) +
                               " outside [1, 2^20]");
    }

    // --- acquire the instance (generate-or-load, as execute_job does) ----
    planar::EmbeddedGraph g;
    planar::NodeId root = 0;
    std::string family = job.instance.family;
    if (!job.instance.graph_path.empty()) {
      io::LoadedGraph loaded = io::load_graph(job.instance.graph_path);
      g = std::move(loaded.graph);
      if (!loaded.meta.family.empty()) family = loaded.meta.family;
    } else {
      const auto fam = planar::family_from_name(job.instance.family);
      if (!fam) {
        throw std::runtime_error("unknown family '" + job.instance.family +
                                 "'");
      }
      planar::GeneratedGraph gg =
          planar::make_instance(*fam, job.instance.n, job.instance.seed);
      g = std::move(gg.graph);
      root = gg.root_hint;
      if (!opts.corpus_dir.empty()) {
        io::store_in_corpus(opts.corpus_dir, job.instance.family, g,
                            job.instance.seed);
      }
    }
    const NodeId n = g.num_nodes();
    check_pairs(job.pairs, n, "query pair");
    check_pairs(job.dead_edges, n, "dead edge");

    // --- the persisted index, through the shared result cache -----------
    const std::uint64_t fingerprint = core::topology_fingerprint(g);
    const serve::CacheKey key =
        index_cache_key(fingerprint, root, job.leaf_size);
    serve::ArtifactCache::Value bytes;
    if (opts.taskgraph) {
      // The recorded query graph replays the closure below stage by stage
      // (spanning tree → engine → hierarchy → index). Its query_index
      // task overrides the key config with index_cache_key's mix, so the
      // persisted index artifact lands under exactly `key`; the
      // spanning-tree sub-artifact keys on the plain root mix, shared
      // with batch jobs on the same fingerprint.
      taskgraph::JobInputs in;
      in.graph = &g;
      in.root = root;
      in.fingerprint = fingerprint;
      in.config_hash =
          core::mix_seed(0x726f6f7400000000ULL /* "root" */,
                         static_cast<std::uint64_t>(root));
      in.family = family;
      in.seed = job.instance.seed;
      in.leaf_size = job.leaf_size;
      in.build_threads = std::max(1, opts.threads);
      taskgraph::ExecOptions eo;
      eo.cache = &cache;
      taskgraph::Execution exec(taskgraph::query_graph(), in, eo);
      bytes = exec.request(taskgraph::kQueryIndexTask);
      exec.finish_io();
    } else {
      bytes = cache.get_or_compute(key, [&] {
        shortcuts::PartwiseEngine part_engine(g, root);
        const separator::SeparatorHierarchy h =
            separator::build_hierarchy(g, part_engine, job.leaf_size);
        // Fanning the per-piece solves over opts.threads is byte-identical
        // to the serial build (disjoint writes), so the cached artifact is
        // the same no matter who computed it.
        const QueryIndex qi =
            build_query_index(g, h, job.leaf_size, std::max(1, opts.threads));
        io::Artifact a;
        a.add(io::SectionId::kMeta,
              io::encode_meta({family, job.instance.seed, fingerprint}));
        a.add(io::SectionId::kHierarchy, io::encode_hierarchy({n, h}));
        a.add(io::SectionId::kQueryIndex, io::encode_query_index(qi));
        return io::assemble(a);
      });
    }

    // --- one bytes→answers path, warm or cold ----------------------------
    std::shared_ptr<QueryEngine> engine;
    if (job.dead_edges.empty() && engines != nullptr) {
      engine = engines->get_or_build(
          serve::cache_address(key),
          [&] { return engine_from_artifact_bytes(g, *bytes); },
          &out.engine_cache_hit);
    } else {
      // Dead-edge jobs get a private engine: kill state is session-scoped
      // and must never leak into a shared oracle.
      engine = engine_from_artifact_bytes(g, *bytes);
      for (const auto& [a, b] : job.dead_edges) engine->kill_edge(a, b);
    }
    out.distances = engine->distances(job.pairs);
    if (obs::MetricsRegistry* reg = obs::global_registry()) {
      reg->add("query/jobs");
      reg->add("query/answers",
               static_cast<long long>(out.distances.size()));
    }
  } catch (const std::exception& e) {
    out.status = "error";
    out.error = e.what();
    out.distances.clear();
  }
  return out;
}

}  // namespace plansep::query
