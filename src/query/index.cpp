#include "query/index.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::query {

std::size_t QueryIndex::byte_size() const {
  return sizeof(std::int32_t) *
             (piece_level.size() + sep_nodes.size() + path_piece.size() +
              dist.size() + leaf_pos.size() + leaf_tab.size()) +
         sizeof(std::int64_t) *
             (sep_off.size() + path_off.size() + block_off.size() +
              leaf_tab_off.size());
}

std::uint64_t EdgeSet::key(NodeId u, NodeId v) {
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(u, v));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(u, v));
  return (lo << 32) | hi;
}

bool EdgeSet::contains(NodeId u, NodeId v) const {
  return std::binary_search(sorted_keys.begin(), sorted_keys.end(), key(u, v));
}

void EdgeSet::insert(NodeId u, NodeId v) {
  const std::uint64_t k = key(u, v);
  const auto it =
      std::lower_bound(sorted_keys.begin(), sorted_keys.end(), k);
  if (it == sorted_keys.end() || *it != k) sorted_keys.insert(it, k);
}

namespace {

// Builds the piece-local CSR over `members` (node-id order) into ws and
// returns the member count. ws.local_of must be n-sized and all -1 on
// entry; the caller resets the touched entries afterwards.
int build_local_csr(const planar::EmbeddedGraph& g,
                    const std::vector<NodeId>& members, const EdgeSet* killed,
                    PieceWorkspace& ws) {
  const int sz = static_cast<int>(members.size());
  for (int i = 0; i < sz; ++i) {
    ws.local_of[static_cast<std::size_t>(members[static_cast<std::size_t>(i)])] =
        i;
  }
  ws.adj_off.assign(static_cast<std::size_t>(sz) + 1, 0);
  ws.adj.clear();
  for (int i = 0; i < sz; ++i) {
    const NodeId u = members[static_cast<std::size_t>(i)];
    for (const planar::DartId d : g.rotation(u)) {
      const NodeId w = g.head(d);
      const std::int32_t lw = ws.local_of[static_cast<std::size_t>(w)];
      if (lw < 0) continue;
      if (killed != nullptr && killed->contains(u, w)) continue;
      ws.adj.push_back(lw);
    }
    ws.adj_off[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(ws.adj.size());
  }
  return sz;
}

// BFS from local source `src` over the workspace CSR; fills ws.ldist
// (kUnreachable where not reached).
void bfs_local(int sz, int src, PieceWorkspace& ws) {
  ws.ldist.assign(static_cast<std::size_t>(sz), kUnreachable);
  ws.queue.clear();
  ws.ldist[static_cast<std::size_t>(src)] = 0;
  ws.queue.push_back(src);
  for (std::size_t qh = 0; qh < ws.queue.size(); ++qh) {
    const std::int32_t u = ws.queue[qh];
    const std::int32_t du = ws.ldist[static_cast<std::size_t>(u)];
    for (std::int32_t a = ws.adj_off[static_cast<std::size_t>(u)];
         a < ws.adj_off[static_cast<std::size_t>(u) + 1]; ++a) {
      const std::int32_t w = ws.adj[static_cast<std::size_t>(a)];
      if (ws.ldist[static_cast<std::size_t>(w)] != kUnreachable) continue;
      ws.ldist[static_cast<std::size_t>(w)] = du + 1;
      ws.queue.push_back(w);
    }
  }
}

void reset_local(const std::vector<NodeId>& members, PieceWorkspace& ws) {
  for (const NodeId v : members) {
    ws.local_of[static_cast<std::size_t>(v)] = -1;
  }
}

void ensure_workspace(NodeId n, PieceWorkspace& ws) {
  if (ws.local_of.size() != static_cast<std::size_t>(n)) {
    ws.local_of.assign(static_cast<std::size_t>(n), -1);
  }
}

}  // namespace

void solve_piece(const planar::EmbeddedGraph& g,
                 const separator::SeparatorHierarchy& h, int p, QueryIndex& qi,
                 const EdgeSet* killed, PieceWorkspace& ws) {
  const separator::HierarchyPiece& piece =
      h.pieces[static_cast<std::size_t>(p)];
  const std::int32_t scount = qi.sep_count(p);
  if (scount == 0) return;
  ensure_workspace(g.num_nodes(), ws);
  const int sz = build_local_csr(g, piece.nodes, killed, ws);
  const std::int64_t sbase = qi.sep_off[static_cast<std::size_t>(p)];
  const std::int32_t level = qi.piece_level[static_cast<std::size_t>(p)];
  for (std::int32_t si = 0; si < scount; ++si) {
    const NodeId s = qi.sep_nodes[static_cast<std::size_t>(sbase + si)];
    bfs_local(sz, ws.local_of[static_cast<std::size_t>(s)], ws);
    for (int i = 0; i < sz; ++i) {
      const NodeId m = piece.nodes[static_cast<std::size_t>(i)];
      const std::int64_t block =
          qi.block_off[static_cast<std::size_t>(
              qi.path_off[static_cast<std::size_t>(m)] + level)];
      qi.dist[static_cast<std::size_t>(block + si)] =
          ws.ldist[static_cast<std::size_t>(i)];
    }
  }
  reset_local(piece.nodes, ws);
}

void solve_leaf(const planar::EmbeddedGraph& g,
                const separator::SeparatorHierarchy& h, int p, QueryIndex& qi,
                const EdgeSet* killed, PieceWorkspace& ws) {
  const separator::HierarchyPiece& piece =
      h.pieces[static_cast<std::size_t>(p)];
  if (!piece.is_leaf()) return;
  ensure_workspace(g.num_nodes(), ws);
  const int sz = build_local_csr(g, piece.nodes, killed, ws);
  const std::int64_t base = qi.leaf_tab_off[static_cast<std::size_t>(p)];
  for (int i = 0; i < sz; ++i) {
    bfs_local(sz, i, ws);
    std::copy(ws.ldist.begin(), ws.ldist.end(),
              qi.leaf_tab.begin() +
                  static_cast<std::ptrdiff_t>(base) +
                  static_cast<std::ptrdiff_t>(i) * sz);
  }
  reset_local(piece.nodes, ws);
}

QueryIndex build_query_index(const planar::EmbeddedGraph& g,
                             const separator::SeparatorHierarchy& h,
                             int leaf_size, int threads) {
  PLANSEP_SPAN("query/build_index");
  const NodeId n = g.num_nodes();
  const std::size_t pieces = h.pieces.size();
  PLANSEP_CHECK(h.num_nodes() == n);
  QueryIndex qi;
  qi.leaf_size = leaf_size;
  qi.num_nodes = n;

  // Piece tables.
  qi.piece_level.resize(pieces);
  qi.sep_off.assign(pieces + 1, 0);
  qi.leaf_tab_off.assign(pieces + 1, 0);
  for (std::size_t p = 0; p < pieces; ++p) {
    const separator::HierarchyPiece& piece = h.pieces[p];
    qi.piece_level[p] = piece.level;
    qi.sep_off[p + 1] =
        qi.sep_off[p] + static_cast<std::int64_t>(piece.separator.size());
    const std::int64_t tab =
        piece.is_leaf()
            ? static_cast<std::int64_t>(piece.nodes.size()) *
                  static_cast<std::int64_t>(piece.nodes.size())
            : 0;
    qi.leaf_tab_off[p + 1] = qi.leaf_tab_off[p] + tab;
  }
  qi.sep_nodes.reserve(static_cast<std::size_t>(qi.sep_off[pieces]));
  for (std::size_t p = 0; p < pieces; ++p) {
    for (const NodeId s : h.pieces[p].separator) qi.sep_nodes.push_back(s);
  }

  // Terminal piece per node: the leaf, or the piece whose separator
  // absorbed the node.
  std::vector<std::int32_t> term(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> leaf_pos(static_cast<std::size_t>(n), -1);
  for (std::size_t p = 0; p < pieces; ++p) {
    const separator::HierarchyPiece& piece = h.pieces[p];
    for (const NodeId s : piece.separator) {
      term[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(p);
    }
    if (piece.is_leaf()) {
      for (std::size_t i = 0; i < piece.nodes.size(); ++i) {
        const NodeId v = piece.nodes[i];
        term[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(p);
        leaf_pos[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
      }
    }
  }
  qi.leaf_pos = std::move(leaf_pos);

  // Ancestor chains (root first; position of a piece == its level, since
  // child levels are parent+1 and roots sit at level 0).
  qi.path_off.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::int32_t t = term[static_cast<std::size_t>(v)];
    PLANSEP_CHECK_MSG(t >= 0, "node without a terminal piece");
    qi.path_off[static_cast<std::size_t>(v) + 1] =
        qi.path_off[static_cast<std::size_t>(v)] +
        qi.piece_level[static_cast<std::size_t>(t)] + 1;
  }
  const std::int64_t chain_total =
      qi.path_off[static_cast<std::size_t>(n)];
  qi.path_piece.resize(static_cast<std::size_t>(chain_total));
  qi.block_off.resize(static_cast<std::size_t>(chain_total));
  std::int64_t dist_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    std::int32_t p = term[static_cast<std::size_t>(v)];
    const std::int64_t base = qi.path_off[static_cast<std::size_t>(v)];
    const std::int32_t len = qi.path_len(v);
    for (std::int32_t i = len - 1; i >= 0; --i) {
      qi.path_piece[static_cast<std::size_t>(base + i)] = p;
      p = h.pieces[static_cast<std::size_t>(p)].parent;
    }
    PLANSEP_CHECK_MSG(p == -1, "chain did not end at a root piece");
    for (std::int32_t i = 0; i < len; ++i) {
      qi.block_off[static_cast<std::size_t>(base + i)] = dist_total;
      dist_total +=
          qi.sep_count(qi.path_piece[static_cast<std::size_t>(base + i)]);
    }
  }
  qi.dist.assign(static_cast<std::size_t>(dist_total), kUnreachable);
  qi.leaf_tab.assign(static_cast<std::size_t>(qi.leaf_tab_off[pieces]),
                     kUnreachable);

  // Per-piece solves. Writes are disjoint (each piece owns its members'
  // blocks for that piece, and its own leaf table), so fanning pieces
  // over threads reproduces the serial bytes exactly.
  const auto solve_range = [&](PieceWorkspace& ws, std::atomic<std::size_t>& cursor) {
    for (;;) {
      const std::size_t p = cursor.fetch_add(1);
      if (p >= pieces) break;
      solve_piece(g, h, static_cast<int>(p), qi, nullptr, ws);
      solve_leaf(g, h, static_cast<int>(p), qi, nullptr, ws);
    }
  };
  const int workers = std::max(1, std::min<int>(threads, static_cast<int>(pieces)));
  std::atomic<std::size_t> cursor{0};
  if (workers <= 1) {
    PieceWorkspace ws;
    solve_range(ws, cursor);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        PieceWorkspace ws;
        solve_range(ws, cursor);
      });
    }
    for (std::thread& t : pool) t.join();
  }
  if (obs::MetricsRegistry* reg = obs::global_registry()) {
    reg->add("query/index_builds");
    reg->add("query/index_dist_entries", dist_total);
  }
  return qi;
}

}  // namespace plansep::query
