#pragma once

/// \file
/// QueryEngine: batch point-to-point distance/reachability answers over a
/// QueryIndex, with edge-kill invalidation that lazily rebuilds only the
/// affected hierarchy pieces.

// The servable oracle. An engine owns (graph, hierarchy, index) — usually
// decoded from one cached .psg artifact — and answers:
//
//   distance(u, v)   exact unweighted shortest-path distance, -1 when
//                    unreachable;
//   reachable(u, v)  distance(u, v) >= 0 without the arithmetic.
//
// Invalidation (the fault layer's edge-kill hook): kill_edge(a, b) marks
// dirty exactly the pieces containing both endpoints — the common prefix
// of the two nodes' ancestor chains, the only pieces whose within-piece
// BFS could traverse the edge — and queries lazily rebuild a dirty piece
// the first time they scan it (solve_piece/solve_leaf with the killed
// set). Child pieces of a split stay mutually non-adjacent when edges are
// only removed, so the oracle stays exact over the *old* hierarchy
// structure; no re-split is needed (pinned against a fresh rebuild on the
// edge-deleted graph by tests/query_test.cpp).
//
// Threading: concurrent distance() calls are safe on an engine with no
// kills outstanding (the hot path only reads; counters are relaxed
// atomics). After kill_edge the engine mutates lazily — rebuilds are
// mutex-guarded, but callers should treat a killed engine as
// session-private (query::EngineCache never shares one).

#include <cstdint>
#include <mutex>
#include <atomic>
#include <utility>
#include <vector>

#include "planar/embedded_graph.hpp"
#include "query/index.hpp"
#include "separator/hierarchy.hpp"

namespace plansep::query {

/// Monotonic engine counters (a snapshot; see QueryEngine::counters).
struct QueryCounters {
  long long queries = 0;         ///< distance/reachable calls answered
  long long pieces_scanned = 0;  ///< common-ancestor pieces visited
  long long sep_terms = 0;       ///< separator min-terms evaluated
  long long leaf_pairs = 0;      ///< queries resolved via an intra-leaf table
  long long edges_killed = 0;    ///< kill_edge calls that removed an edge
  long long pieces_dirtied = 0;  ///< pieces newly marked dirty by kills
  long long pieces_rebuilt = 0;  ///< lazy piece rebuilds actually run
};

/// Batch distance/reachability oracle over a separator-hierarchy index.
class QueryEngine {
 public:
  /// Takes ownership of a matching (graph, hierarchy, index) triple.
  QueryEngine(planar::EmbeddedGraph g, separator::SeparatorHierarchy h,
              QueryIndex qi);

  /// Exact unweighted distance from u to v; kUnreachable (-1) when no
  /// path exists. Throws CheckError on out-of-range nodes.
  std::int64_t distance(NodeId u, NodeId v);
  /// distance(u, v) >= 0.
  bool reachable(NodeId u, NodeId v);
  /// Batch form: one distance per input pair, in order.
  std::vector<std::int64_t> distances(
      const std::vector<std::pair<NodeId, NodeId>>& pairs);

  /// Kills the undirected edge {a, b}: future queries behave as if the
  /// edge were deleted. Marks dirty only the pieces containing both
  /// endpoints; queries rebuild those lazily. Unknown or already-killed
  /// edges are no-ops.
  void kill_edge(NodeId a, NodeId b);

  /// Counter snapshot (consistent enough for tests; relaxed reads).
  QueryCounters counters() const;
  /// Pieces currently marked dirty (0 on a kill-free engine).
  long long dirty_pieces() const { return dirty_count_.load(std::memory_order_relaxed); }

  const planar::EmbeddedGraph& graph() const { return g_; }
  const separator::SeparatorHierarchy& hierarchy() const { return h_; }
  const QueryIndex& index() const { return qi_; }
  /// Killed-edge set (session-private fault state).
  const EdgeSet& killed_edges() const { return killed_; }

 private:
  // Rebuilds piece p against the killed set (caller holds rebuild_mu_).
  void rebuild_piece_locked(int p);
  // Scans dirty pieces along the common chain prefix and rebuilds them.
  void rebuild_dirty_on_paths(NodeId u, NodeId v);

  planar::EmbeddedGraph g_;
  separator::SeparatorHierarchy h_;
  QueryIndex qi_;
  EdgeSet killed_;
  std::vector<char> dirty_;              // per piece
  std::atomic<long long> dirty_count_{0};
  std::mutex rebuild_mu_;
  PieceWorkspace ws_;  // guarded by rebuild_mu_

  std::atomic<long long> queries_{0};
  std::atomic<long long> pieces_scanned_{0};
  std::atomic<long long> sep_terms_{0};
  std::atomic<long long> leaf_pairs_{0};
  long long edges_killed_ = 0;    // kill path is single-threaded
  long long pieces_dirtied_ = 0;
  long long pieces_rebuilt_ = 0;
};

}  // namespace plansep::query
