#pragma once

/// \file
/// Query serving glue: the cache-backed job runner shared by the daemon
/// and direct callers, plus the prepared-engine cache.

// One query job = one instance spec (the serve::JobSpec grammar — family,
// n, seed, or an explicit .psg path), a hierarchy leaf size, a batch of
// (u, v) pairs, and an optional list of dead edges. run_query_job:
//
//   1. acquires the instance exactly like serve::execute_job
//      (generate-or-load, corpus store);
//   2. get_or_computes the persisted hierarchy+index artifact through the
//      shared serve::ArtifactCache under the key
//      (fingerprint, "hier-index@v1", hash(root, leaf_size)) — a .psg
//      container with kMeta + kHierarchy + kQueryIndex sections, so a
//      disk-tier cache warm-loads the oracle across process restarts;
//   3. decodes the artifact bytes into a QueryEngine — cold and warm runs
//      share this one bytes→answers path, which is why answers are
//      byte-identical across cache temperature — optionally memoized in
//      an EngineCache keyed by the artifact's content address;
//   4. applies dead edges (such jobs always build a private engine: kill
//      state must never leak into a shared one) and answers the batch.
//
// Caller obligations are run_single_job's (batch.hpp): serial round
// engine, detached process-global hooks. The daemon dispatcher enforces
// both; tests calling run_query_job directly run single-threaded.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/engine.hpp"
#include "serve/batch.hpp"
#include "serve/cache.hpp"

namespace plansep::query {

/// Versioned algorithm id of the persisted hierarchy+index artifact.
inline constexpr const char* kIndexAlgorithmId = "hier-index@v1";

/// Cache key of the persisted index for one instance + configuration.
serve::CacheKey index_cache_key(std::uint64_t fingerprint, NodeId root,
                                int leaf_size);

/// One query job.
struct QueryJob {
  serve::JobSpec instance;  ///< family/n/seed or graph path (algo ignored)
  int leaf_size = 128;      ///< hierarchy leaf bound (part of cache identity)
  std::vector<std::pair<NodeId, NodeId>> pairs;       ///< queried pairs
  std::vector<std::pair<NodeId, NodeId>> dead_edges;  ///< killed edges
};

/// Outcome of one query job.
struct QueryOutcome {
  std::string status = "ok";  ///< "ok" or "error"
  std::string error;          ///< diagnosis when status == "error"
  /// One distance per input pair, in order; -1 = unreachable.
  std::vector<std::int64_t> distances;
  bool engine_cache_hit = false;  ///< served from a prepared engine
};

/// Small LRU of prepared engines keyed by the index artifact's content
/// address, so repeated queries against one instance skip the decode.
/// Only kill-free engines are cached (see the file comment). The builder
/// runs under the cache lock — a deliberate single-flight-by-serialization
/// so one decode ever runs per address.
class EngineCache {
 public:
  /// Cache statistics.
  struct Counters {
    long long hits = 0;       ///< served an already-prepared engine
    long long misses = 0;     ///< builder runs
    long long evictions = 0;  ///< engines dropped for capacity
  };
  /// Builds the engine for an address on miss.
  using Builder = std::function<std::shared_ptr<QueryEngine>()>;

  /// A cache holding at most `capacity` prepared engines.
  explicit EngineCache(std::size_t capacity = 4);

  /// The prepared engine for the address, building it at most once while
  /// cached (LRU eviction). `was_hit` (nullable) reports whether this
  /// call was served without running the builder.
  std::shared_ptr<QueryEngine> get_or_build(std::uint64_t address,
                                            const Builder& build,
                                            bool* was_hit = nullptr);
  /// Counter snapshot.
  Counters counters() const;
  /// Engines currently held.
  std::size_t entries() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  // front = most recent
  std::list<std::pair<std::uint64_t, std::shared_ptr<QueryEngine>>> lru_;
  std::unordered_map<
      std::uint64_t,
      std::list<std::pair<std::uint64_t, std::shared_ptr<QueryEngine>>>::iterator>
      index_;
  Counters counters_;
};

/// Decodes a persisted hierarchy+index artifact into a ready engine for
/// the given graph. Throws io::FormatError when sections are missing or
/// inconsistent with the graph.
std::shared_ptr<QueryEngine> engine_from_artifact_bytes(
    const planar::EmbeddedGraph& g, const std::vector<std::uint8_t>& bytes);

/// Runs one query job (see the file comment). `engines` may be null —
/// every answer is then served straight from the decoded bytes.
QueryOutcome run_query_job(const QueryJob& job,
                           const serve::BatchOptions& opts,
                           serve::ArtifactCache& cache, EngineCache* engines);

}  // namespace plansep::query
