#pragma once

/// \file
/// Blocking plansepd client: connect-with-retry, typed submit/control
/// helpers, and a stashing frame reader (used by tests and the loadgen).

// A small blocking client for the plansepd protocol, shared by
// tests/daemon_test.cpp and bench/bench_loadgen.cpp.
//
// Reads go through a stash: read_matching() scans for a frame of the
// wanted type(s)/id, parking every other frame for later next_frame()
// calls, so control handshakes (ping, pause, drain) work while responses
// are still streaming in. All methods are blocking with a timeout and
// must be called from one thread. send_raw() exposes the socket for the
// protocol fuzz tests, which need to write deliberately broken bytes.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "daemon/protocol.hpp"
#include "io/frame.hpp"

namespace plansep::daemon {

/// Blocking protocol client over a UNIX stream socket.
class Client {
 public:
  Client() = default;  ///< unconnected client
  ~Client();           ///< closes the socket
  Client(const Client&) = delete;             ///< non-copyable
  Client& operator=(const Client&) = delete;  ///< non-copyable
  /// Movable: the source is left unconnected.
  Client(Client&& o) noexcept
      : fd_(o.fd_),
        decoder_(std::move(o.decoder_)),
        stash_(std::move(o.stash_)) {
    o.fd_ = -1;
  }
  /// Move assignment; closes any current socket first.
  Client& operator=(Client&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      decoder_ = std::move(o.decoder_);
      stash_ = std::move(o.stash_);
      o.fd_ = -1;
    }
    return *this;
  }

  /// Connects, retrying until the daemon binds the socket or timeout_ms
  /// elapses. Returns false on timeout.
  bool connect(const std::string& socket_path, int timeout_ms = 5000);
  /// True while the socket is open.
  bool connected() const { return fd_ >= 0; }
  /// Closes the socket (idempotent).
  void close();

  /// Sends one encoded frame. Throws std::runtime_error on a dead socket.
  void send_frame(FrameType type, std::uint64_t id,
                  std::vector<std::uint8_t> payload = {});
  /// Sends raw bytes verbatim — the fuzz tests' corrupt-frame hatch.
  void send_raw(const std::vector<std::uint8_t>& bytes);

  /// Submits one job line with the given correlation id.
  void submit(std::uint64_t id, Priority priority,
              const std::string& spec_line);

  /// Submits one batched distance-query job (kQueryReq).
  void submit_query(std::uint64_t id, const QueryRequestPayload& req);
  /// submit_query + blocking wait for its kQueryResp; nullopt on timeout,
  /// a reject or an error frame for the id.
  std::optional<QueryResponsePayload> query(std::uint64_t id,
                                            const QueryRequestPayload& req,
                                            int timeout_ms = 30000);

  /// Submits one edge-list admission (kIngestReq).
  void submit_ingest(std::uint64_t id, const IngestRequestPayload& req);
  /// submit_ingest + blocking wait for its kIngestResp; nullopt on
  /// timeout, a reject or an error frame for the id.
  std::optional<IngestResponsePayload> ingest(std::uint64_t id,
                                              const IngestRequestPayload& req,
                                              int timeout_ms = 30000);

  /// Next frame (stash first, then the socket). nullopt on timeout or
  /// EOF; throws io::FormatError if the daemon's byte stream is
  /// malformed.
  std::optional<io::Frame> next_frame(int timeout_ms = 10000);
  /// Next frame of the wanted type with the wanted id, parking every
  /// other frame in the stash. nullopt on timeout/EOF.
  std::optional<io::Frame> read_matching(FrameType type, std::uint64_t id,
                                         int timeout_ms = 10000);

  /// Ping round-trip; false on timeout.
  bool ping(std::uint64_t id, int timeout_ms = 10000);
  /// Pauses dispatch (waits for the ack); false on timeout.
  bool pause(std::uint64_t id, int timeout_ms = 10000);
  /// Resumes dispatch (waits for the ack); false on timeout.
  bool resume(std::uint64_t id, int timeout_ms = 10000);
  /// Metrics snapshot JSON; nullopt on timeout.
  std::optional<std::string> metrics(std::uint64_t id, int timeout_ms = 10000);
  /// Graceful drain; returns the kDrained summary JSON, nullopt on
  /// timeout.
  std::optional<std::string> drain(std::uint64_t id, int timeout_ms = 30000);

 private:
  std::optional<io::Frame> read_socket_frame(int timeout_ms);

  int fd_ = -1;
  io::FrameDecoder decoder_;
  std::deque<io::Frame> stash_;
};

}  // namespace plansep::daemon
