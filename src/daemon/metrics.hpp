#pragma once

/// \file
/// Thread-safe metrics facade of the serving daemon: a mutex-guarded
/// obs::MetricsRegistry plus cache counters folded into one JSON snapshot.

// The daemon's metrics facade.
//
// obs::MetricsRegistry demands single-threaded mutation; a daemon has
// worker and session threads bumping counters concurrently. DaemonMetrics
// wraps one registry behind a mutex and exposes only whole operations
// (bump a counter, sample a histogram, record a completed job span), so
// every registry mutation is serialized without the callers coordinating.
//
// Everything recorded here is deterministic given the request stream and
// admission decisions: counters, the queue-depth histogram, and per-job
// spans on the analytic clock (1 completed job = 1 round, so the Perfetto
// dump shows jobs as unit slices in completion-callback order). Wall-clock
// latency is deliberately absent — it lives only in the load generator's
// bench rows, keeping metrics snapshots diffable across runs.
//
// snapshot_json() folds the serving cache's CacheCounters in as
// daemon/cache_* counters (including daemon/cache_served_warm, the
// warm-hit signal the CI smoke asserts on), so one document answers both
// "what did the daemon do" and "how warm was the cache".

#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "taskgraph/graph.hpp"

namespace plansep::daemon {

/// Mutex-guarded metrics registry shared by the daemon's threads.
class DaemonMetrics {
 public:
  /// Adds delta to the named counter.
  void add(const char* name, long long delta = 1) {
    std::lock_guard<std::mutex> lk(mu_);
    reg_.add(name, delta);
  }

  /// Records one sample into the named histogram.
  void sample(const char* name, long long v) {
    std::lock_guard<std::mutex> lk(mu_);
    reg_.histogram(name).add(v);
  }

  /// Records one completed job: a unit span named "daemon/job" on the
  /// analytic clock, annotated with the client-assigned id and attempt
  /// count. Called from the completion path, so the Perfetto dump shows
  /// jobs in delivery order.
  void job_completed(std::uint64_t id, int attempts) {
    std::lock_guard<std::mutex> lk(mu_);
    const int token = reg_.begin_span("daemon/job");
    reg_.note(token, "id", static_cast<long long>(id));
    reg_.note(token, "attempts", attempts);
    reg_.advance_analytic(1);
    reg_.end_span(token);
  }

  /// Folds one completed job's task-graph execution counters in as
  /// daemon/taskgraph_tasks_run, daemon/taskgraph_cache_served,
  /// daemon/taskgraph_io_tasks, the daemon/taskgraph_overlapped_io_ms
  /// histogram, and per-task run counts under daemon/taskgraph_runs/<task>.
  /// No-op for monolithic-path jobs (all counters zero).
  void taskgraph_completed(const taskgraph::TaskGraphCounters& tg) {
    if (tg.tasks_run == 0 && tg.cache_served == 0 && tg.io_tasks == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    reg_.add("daemon/taskgraph_tasks_run", tg.tasks_run);
    reg_.add("daemon/taskgraph_cache_served", tg.cache_served);
    reg_.add("daemon/taskgraph_io_tasks", tg.io_tasks);
    reg_.histogram("daemon/taskgraph_overlapped_io_ms").add(tg.overlapped_io_ms);
    for (const auto& [task, runs] : tg.runs) {
      reg_.add("daemon/taskgraph_runs/" + task, runs);
    }
  }

  /// Current value of a counter (0 when never touched).
  long long counter(const char* name) const {
    std::lock_guard<std::mutex> lk(mu_);
    return reg_.counter(name);
  }

  /// A copy of the registry (for trace export).
  obs::MetricsRegistry snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reg_;
  }

  /// JSON snapshot of the registry with the cache's counters folded in as
  /// daemon/cache_hits, daemon/cache_disk_hits, daemon/cache_misses,
  /// daemon/cache_evictions and daemon/cache_served_warm.
  std::string snapshot_json(const serve::ArtifactCache& cache) const {
    const serve::CacheCounters c = cache.counters();
    std::lock_guard<std::mutex> lk(mu_);
    obs::MetricsRegistry copy = reg_;
    copy.add("daemon/cache_hits", c.hits);
    copy.add("daemon/cache_disk_hits", c.disk_hits);
    copy.add("daemon/cache_misses", c.misses);
    copy.add("daemon/cache_evictions", c.evictions);
    copy.add("daemon/cache_served_warm", c.served_without_compute());
    copy.add("daemon/cache_flight_joins", c.flight_joins);
    copy.add("daemon/cache_warmed", c.warmed);
    return copy.to_json();
  }

 private:
  mutable std::mutex mu_;
  obs::MetricsRegistry reg_;
};

}  // namespace plansep::daemon
