#include "daemon/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "taskgraph/pipeline.hpp"

namespace plansep::daemon {

namespace {

// Writes all of buf to fd, MSG_NOSIGNAL so a dead peer surfaces as EPIPE
// instead of killing the process. Returns false on any write failure.
bool send_all(int fd, const std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// One connected client. The write mutex guards the fd's write side, the
// closed flag and the reorder buffer; the session thread owns the read
// side exclusively.
struct Server::Session {
  std::uint64_t client = 0;  ///< dispatcher client identity
  int fd = -1;

  std::mutex write_mu;
  bool closed = false;  // write side gone (disconnect or server stop)
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending;  // seq → frame
  std::uint64_t next_seq = 0;  // next admission sequence to flush

  std::thread thread;

  /// Immediate write (rejects, errors, pongs, ...). False if closed/broken.
  bool send_now(const std::vector<std::uint8_t>& frame) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (closed) return false;
    if (!send_all(fd, frame)) {
      closed = true;
      return false;
    }
    return true;
  }

  /// Reorder-buffered response delivery: stash at seq, flush the ready
  /// prefix. Returns false when the client is gone (response orphaned).
  bool deliver(std::uint64_t seq, std::vector<std::uint8_t> frame) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (closed) return false;
    pending.emplace(seq, std::move(frame));
    while (true) {
      const auto it = pending.find(next_seq);
      if (it == pending.end()) break;
      if (!send_all(fd, it->second)) {
        closed = true;
        return false;
      }
      pending.erase(it);
      ++next_seq;
    }
    return true;
  }

  /// Severs the connection (both directions); the session thread's recv
  /// unblocks with EOF.
  void sever() {
    std::lock_guard<std::mutex> lk(write_mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    closed = true;
  }
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  cache_ = std::make_unique<serve::ShardedResultCache>(
      serve::ShardedResultCache::Options{opts_.cache_bytes, opts_.cache_shards,
                                         opts_.cache_disk_dir});
  dispatcher_ =
      std::make_unique<Dispatcher>(opts_.dispatcher, *cache_, metrics_);
}

Server::~Server() { stop(); }

void Server::start() {
  if (opts_.warm_from_corpus) {
    // Preload before the socket exists: every connection ever accepted
    // sees the warmed cache, so "warm hits before any submit" holds by
    // construction.
    const taskgraph::WarmReport rep = taskgraph::warm_from_corpus(
        *cache_, opts_.dispatcher.batch.corpus_dir);
    metrics_.add("daemon/warm_instances", rep.instances);
    metrics_.add("daemon/warm_artifacts", rep.artifacts);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + opts_.socket_path);
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    throw std::runtime_error("bind " + opts_.socket_path + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  accepting_.store(true);
  listener_ = std::thread([this] { listener_loop(); });
  if (opts_.dump_every_ms > 0 &&
      (!opts_.metrics_out.empty() || !opts_.trace_out.empty())) {
    dumper_ = std::thread([this] { dump_loop(); });
  }
}

void Server::listener_loop() {
  while (accepting_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto s = std::make_shared<Session>();
    s->fd = fd;
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      if (!accepting_.load()) {
        ::close(fd);
        break;
      }
      s->client = next_client_++;
      sessions_.push_back(s);
    }
    metrics_.add("daemon/connections");
    s->thread = std::thread([this, s] { session_loop(s); });
  }
}

void Server::dump_loop() {
  std::unique_lock<std::mutex> lk(state_mu_);
  while (!stop_requested_ && !stopped_) {
    state_cv_.wait_for(lk, std::chrono::milliseconds(opts_.dump_every_ms));
    if (stop_requested_ || stopped_) break;
    lk.unlock();
    write_dumps();
    lk.lock();
  }
}

void Server::write_dumps() {
  const obs::MetricsRegistry snap = metrics_.snapshot();
  if (!opts_.metrics_out.empty()) {
    std::ofstream out(opts_.metrics_out);
    out << metrics_.snapshot_json(*cache_) << '\n';
  }
  if (!opts_.trace_out.empty()) {
    obs::write_chrome_trace(snap, opts_.trace_out, /*announce=*/false);
  }
}

std::string Server::drain_summary_json() const {
  const serve::CacheCounters c = cache_->counters();
  obs::JsonWriter w;
  w.begin_object();
  w.key("submitted").value(metrics_.counter("daemon/submitted"));
  w.key("admitted").value(metrics_.counter("daemon/admitted"));
  w.key("completed").value(metrics_.counter("daemon/completed"));
  w.key("rejected_backpressure")
      .value(metrics_.counter("daemon/rejected_backpressure"));
  w.key("rejected_quota").value(metrics_.counter("daemon/rejected_quota"));
  w.key("rejected_draining")
      .value(metrics_.counter("daemon/rejected_draining"));
  w.key("orphaned_responses")
      .value(metrics_.counter("daemon/orphaned_responses"));
  w.key("cache_served_warm").value(c.served_without_compute());
  w.key("inflight_flights").value(static_cast<long long>(
      cache_->inflight_flights()));
  w.end_object();
  return w.str();
}

void Server::session_loop(const std::shared_ptr<Session>& s) {
  io::FrameDecoder decoder;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(s->fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect (or sever() during stop)
    try {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (auto f = decoder.next()) handle_frame(s, *f);
    } catch (const io::FormatError& e) {
      // The byte stream lost sync; one typed error, then the connection
      // dies (the decoder is poisoned — nothing after it can be trusted).
      metrics_.add("daemon/malformed_frames");
      s->send_now(make_frame(
          FrameType::kError, 0,
          encode_status({StatusCode::kMalformedFrame, e.what()})));
      break;
    }
  }
  if (decoder.partial_bytes() > 0 && !decoder.poisoned()) {
    metrics_.add("daemon/partial_disconnects");
  }
  s->sever();
}

void Server::handle_frame(const std::shared_ptr<Session>& s,
                          const io::Frame& f) {
  switch (static_cast<FrameType>(f.type)) {
    case FrameType::kSubmit:
      handle_submit(s, f);
      return;
    case FrameType::kQueryReq:
      handle_query(s, f);
      return;
    case FrameType::kIngestReq:
      handle_ingest(s, f);
      return;
    case FrameType::kPing:
      s->send_now(make_frame(FrameType::kPong, f.id));
      return;
    case FrameType::kPause:
      dispatcher_->pause();
      s->send_now(make_frame(FrameType::kPong, f.id));
      return;
    case FrameType::kResume:
      dispatcher_->resume();
      s->send_now(make_frame(FrameType::kPong, f.id));
      return;
    case FrameType::kMetricsQuery:
      s->send_now(make_frame(FrameType::kMetricsReply, f.id,
                             encode_text({metrics_.snapshot_json(*cache_)})));
      return;
    case FrameType::kDrain:
      handle_drain(s, f.id);
      return;
    default:
      metrics_.add("daemon/malformed_frames");
      s->send_now(make_frame(
          FrameType::kError, f.id,
          encode_status({StatusCode::kMalformedFrame,
                         "unexpected frame type " +
                             std::to_string(static_cast<int>(f.type))})));
      return;
  }
}

void Server::handle_submit(const std::shared_ptr<Session>& s,
                           const io::Frame& f) {
  SubmitPayload sub;
  try {
    sub = decode_submit(f.payload);
  } catch (const io::FormatError& e) {
    // The frame itself was sound (CRC passed), so the stream is still in
    // sync — reject the submission, keep the session.
    metrics_.add("daemon/malformed_frames");
    s->send_now(
        make_frame(FrameType::kError, f.id,
                   encode_status({StatusCode::kMalformedFrame, e.what()})));
    return;
  }

  serve::JobSpec spec;
  try {
    auto parsed = serve::parse_job_line(sub.spec_line, 0);
    if (!parsed) throw std::runtime_error("empty job spec");
    spec = std::move(*parsed);
  } catch (const std::exception& e) {
    s->send_now(make_frame(
        FrameType::kError, f.id,
        encode_status({StatusCode::kBadJobSpec, e.what()})));
    return;
  }

  const std::uint64_t id = f.id;
  Submission submission;
  submission.client = s->client;
  submission.id = id;
  submission.priority = sub.priority;
  submission.spec = std::move(spec);
  std::weak_ptr<Session> weak = s;
  const Admission adm = dispatcher_->submit(
      std::move(submission), [this, weak](const JobDone& done) {
        auto frame = make_frame(
            FrameType::kResponse, done.id,
            encode_response({done.result.status, done.result.attempts,
                             done.result.row}));
        const auto session = weak.lock();
        if (session == nullptr || !session->deliver(done.client_seq,
                                                    std::move(frame))) {
          metrics_.add("daemon/orphaned_responses");
        }
      });

  switch (adm) {
    case Admission::kAdmitted:
      return;  // the response arrives through the reorder buffer
    case Admission::kQueueFull:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kQueueFull, "admission queue full"})));
      return;
    case Admission::kQuotaExceeded:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status(
              {StatusCode::kQuotaExceeded, "per-client quota exhausted"})));
      return;
    case Admission::kDraining:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kDraining, "daemon is draining"})));
      return;
  }
}

void Server::handle_query(const std::shared_ptr<Session>& s,
                          const io::Frame& f) {
  QueryRequestPayload req;
  try {
    req = decode_query_request(f.payload);
  } catch (const io::FormatError& e) {
    // Same contract as handle_submit: the frame's CRC passed, so the
    // stream is in sync — reject the request, keep the session.
    metrics_.add("daemon/malformed_frames");
    s->send_now(
        make_frame(FrameType::kError, f.id,
                   encode_status({StatusCode::kMalformedFrame, e.what()})));
    return;
  }

  auto job = std::make_shared<query::QueryJob>();
  try {
    auto parsed = serve::parse_job_line(req.spec_line, 0);
    if (!parsed) throw std::runtime_error("empty job spec");
    job->instance = std::move(*parsed);
  } catch (const std::exception& e) {
    s->send_now(make_frame(
        FrameType::kError, f.id,
        encode_status({StatusCode::kBadJobSpec, e.what()})));
    return;
  }
  job->leaf_size = req.leaf_size;
  job->pairs.assign(req.pairs.begin(), req.pairs.end());
  job->dead_edges.assign(req.dead_edges.begin(), req.dead_edges.end());

  const std::uint64_t id = f.id;
  Submission sub;
  sub.client = s->client;
  sub.id = id;
  sub.priority = req.priority;
  sub.query = std::move(job);
  std::weak_ptr<Session> weak = s;
  const Admission adm = dispatcher_->submit(
      std::move(sub), [this, weak](const JobDone& done) {
        const query::QueryOutcome& out = done.query_outcome;
        auto frame = make_frame(
            FrameType::kQueryResp, done.id,
            encode_query_response(
                {out.status, out.error, out.distances,
                 static_cast<std::uint8_t>(out.engine_cache_hit ? 1 : 0)}));
        const auto session = weak.lock();
        if (session == nullptr || !session->deliver(done.client_seq,
                                                    std::move(frame))) {
          metrics_.add("daemon/orphaned_responses");
        }
      });

  switch (adm) {
    case Admission::kAdmitted:
      return;  // the response arrives through the reorder buffer
    case Admission::kQueueFull:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kQueueFull, "admission queue full"})));
      return;
    case Admission::kQuotaExceeded:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status(
              {StatusCode::kQuotaExceeded, "per-client quota exhausted"})));
      return;
    case Admission::kDraining:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kDraining, "daemon is draining"})));
      return;
  }
}

void Server::handle_ingest(const std::shared_ptr<Session>& s,
                           const io::Frame& f) {
  IngestRequestPayload req;
  try {
    req = decode_ingest_request(f.payload);
  } catch (const io::FormatError& e) {
    metrics_.add("daemon/malformed_frames");
    s->send_now(
        make_frame(FrameType::kError, f.id,
                   encode_status({StatusCode::kMalformedFrame, e.what()})));
    return;
  }

  auto job = std::make_shared<IngestJob>();
  job->options.format = static_cast<ingest::TextFormat>(req.format);
  job->options.drop_self_loops = req.drop_self_loops != 0;
  job->options.drop_duplicate_edges = req.drop_duplicates != 0;
  job->options.triangulate = req.triangulate != 0;
  if (!req.family.empty()) job->options.family = req.family;
  // Client caps may only tighten the server defaults, never widen them.
  if (req.max_nodes > 0) {
    job->options.max_nodes = std::min(job->options.max_nodes, req.max_nodes);
  }
  if (req.max_edges > 0) {
    job->options.max_edges = std::min(job->options.max_edges, req.max_edges);
  }
  job->text = std::move(req.text);

  const std::uint64_t id = f.id;
  Submission sub;
  sub.client = s->client;
  sub.id = id;
  sub.priority = req.priority;
  sub.ingest = std::move(job);
  std::weak_ptr<Session> weak = s;
  const Admission adm = dispatcher_->submit(
      std::move(sub), [this, weak](const JobDone& done) {
        const IngestOutcome& out = done.ingest_outcome;
        IngestResponsePayload resp;
        resp.status = out.status;
        resp.error_code = out.error_code;
        resp.error = out.error;
        resp.fingerprint = out.fingerprint;
        resp.corpus_path = out.corpus_path;
        resp.nodes = out.nodes;
        resp.edges = out.edges;
        resp.witness.assign(out.witness.begin(), out.witness.end());
        auto frame = make_frame(FrameType::kIngestResp, done.id,
                                encode_ingest_response(resp));
        const auto session = weak.lock();
        if (session == nullptr || !session->deliver(done.client_seq,
                                                    std::move(frame))) {
          metrics_.add("daemon/orphaned_responses");
        }
      });

  switch (adm) {
    case Admission::kAdmitted:
      return;  // the response arrives through the reorder buffer
    case Admission::kQueueFull:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kQueueFull, "admission queue full"})));
      return;
    case Admission::kQuotaExceeded:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status(
              {StatusCode::kQuotaExceeded, "per-client quota exhausted"})));
      return;
    case Admission::kDraining:
      s->send_now(make_frame(
          FrameType::kReject, id,
          encode_status({StatusCode::kDraining, "daemon is draining"})));
      return;
  }
}

void Server::handle_drain(const std::shared_ptr<Session>& s,
                          std::uint64_t id) {
  metrics_.add("daemon/drains");
  dispatcher_->drain();  // admissions now reject kDraining; queue flushes
  write_dumps();
  s->send_now(make_frame(FrameType::kDrained, id,
                         encode_text({drain_summary_json()})));
  request_stop();
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(state_mu_);
  state_cv_.wait_for(lk, std::chrono::milliseconds(200),
                     [&] { return stop_requested_ || stopped_; });
  while (!stop_requested_ && !stopped_) {
    state_cv_.wait_for(lk, std::chrono::milliseconds(200));
  }
  lk.unlock();
  stop();
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stop_requested_ = true;
  }
  state_cv_.notify_all();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  state_cv_.notify_all();

  // Stop accepting, finish every admitted job (deliveries included — the
  // dispatcher's completion callbacks run before drain() returns), then
  // sever and join the sessions.
  accepting_.store(false);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (dispatcher_ != nullptr) dispatcher_->drain();
  write_dumps();

  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const auto& s : sessions) s->sever();
  for (const auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
    if (s->fd >= 0) {
      ::close(s->fd);
      s->fd = -1;
    }
  }
  if (dumper_.joinable()) dumper_.join();
  if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());
}

}  // namespace plansep::daemon
