#pragma once

/// \file
/// plansepd's server core: UNIX-socket listener, per-session protocol
/// loops, per-client response reordering, drain, and metrics dumps.

// The serving daemon's server core.
//
// One listener thread accepts connections on a UNIX stream socket; each
// connection gets a session thread running the protocol loop
// (daemon/protocol.hpp) over an io::FrameDecoder. Submissions flow into
// the Dispatcher; everything the daemon writes back falls into two
// classes with different ordering rules:
//
//   * immediate frames — rejects, errors, pongs, metrics replies — are
//     written by the session thread the moment they are decided;
//   * responses are delivered through a per-session reorder buffer keyed
//     by the dispatcher-assigned admission sequence, so each client reads
//     its responses in its own admission order no matter which worker
//     finished first (the same reorder-buffer idiom as run_batch).
//
// A client that disconnects mid-stream orphans its in-flight jobs: they
// still execute (admission is a promise of work, not of delivery) and
// their responses are dropped and counted (daemon/orphaned_responses). A
// malformed byte stream poisons the session's decoder; the daemon sends
// one kMalformedFrame error and closes that connection — other sessions
// are untouched.
//
// kDrain triggers the graceful shutdown: admissions stop (kDraining
// rejects), the dispatcher finishes every admitted job, the metrics JSON
// and Perfetto trace are written, the requester gets kDrained with a
// summary document, and the daemon exits its wait() loop.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/dispatcher.hpp"
#include "daemon/metrics.hpp"
#include "serve/cache.hpp"

namespace plansep::daemon {

/// Server configuration.
struct ServerOptions {
  std::string socket_path;     ///< UNIX socket path (unlinked/re-bound)
  DispatcherOptions dispatcher;  ///< admission + execution knobs
  std::size_t cache_bytes = 64u << 20;  ///< in-memory cache budget
  int cache_shards = 8;        ///< in-memory cache shard count
  std::string cache_disk_dir;  ///< disk tier directory ("" disables)
  std::string metrics_out;     ///< metrics JSON path written at drain ("")
  std::string trace_out;       ///< Perfetto trace path written at drain ("")
  /// Period of the live metrics/trace dump thread, ms; 0 disables.
  long long dump_every_ms = 0;
  /// Boot warm-up: before accepting connections, preload every warmable
  /// task-graph artifact of every corpus instance from the cache disk
  /// tier into the sharded cache (taskgraph::warm_from_corpus), so the
  /// first job of a session is warm. Requires the dispatcher's corpus dir
  /// and a cache_disk_dir; counted as daemon/warm_instances and
  /// daemon/warm_artifacts.
  bool warm_from_corpus = false;
};

/// The daemon: listener + sessions + dispatcher + sharded cache.
class Server {
 public:
  /// Builds the cache, dispatcher and metrics; no I/O yet.
  explicit Server(ServerOptions opts);
  /// Stops (if still running) and joins every thread.
  ~Server();
  Server(const Server&) = delete;             ///< non-copyable
  Server& operator=(const Server&) = delete;  ///< non-copyable

  /// Binds the socket and starts the listener (and dump thread, if
  /// configured). Throws std::runtime_error when the socket can't be
  /// bound.
  void start();
  /// Blocks until a drain completes or stop() is called.
  void wait();
  /// Requests shutdown from outside the protocol (signal handlers set a
  /// flag; wait() performs the actual teardown). Safe to call repeatedly.
  void request_stop();
  /// Drains the dispatcher, writes the metrics/trace dumps, closes every
  /// session and joins all threads. Idempotent.
  void stop();

  /// The daemon's metrics facade (shared with the dispatcher).
  DaemonMetrics& metrics() { return metrics_; }
  /// The sharded serving cache.
  serve::ShardedResultCache& cache() { return *cache_; }
  /// The dispatcher (tests poke pause/resume directly).
  Dispatcher& dispatcher() { return *dispatcher_; }
  /// Current metrics snapshot (cache counters folded in).
  std::string metrics_json() const { return metrics_.snapshot_json(*cache_); }
  /// The configured options.
  const ServerOptions& options() const { return opts_; }

 private:
  struct Session;

  void listener_loop();
  void session_loop(const std::shared_ptr<Session>& s);
  void dump_loop();
  void handle_frame(const std::shared_ptr<Session>& s, const io::Frame& f);
  void handle_submit(const std::shared_ptr<Session>& s, const io::Frame& f);
  void handle_query(const std::shared_ptr<Session>& s, const io::Frame& f);
  void handle_ingest(const std::shared_ptr<Session>& s, const io::Frame& f);
  void handle_drain(const std::shared_ptr<Session>& s, std::uint64_t id);
  void write_dumps();
  std::string drain_summary_json() const;

  ServerOptions opts_;
  DaemonMetrics metrics_;
  std::unique_ptr<serve::ShardedResultCache> cache_;
  std::unique_ptr<Dispatcher> dispatcher_;

  int listen_fd_ = -1;
  std::thread listener_;
  std::thread dumper_;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_client_ = 1;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::atomic<bool> accepting_{false};
};

}  // namespace plansep::daemon
