#include "daemon/protocol.hpp"

#include "io/binary.hpp"

namespace plansep::daemon {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kMalformedFrame:
      return "malformed_frame";
    case StatusCode::kBadJobSpec:
      return "bad_job_spec";
    case StatusCode::kQueueFull:
      return "queue_full";
    case StatusCode::kQuotaExceeded:
      return "quota_exceeded";
    case StatusCode::kDraining:
      return "draining";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_submit(const SubmitPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.priority));
  w.str(p.spec_line);
  return w.take();
}

SubmitPayload decode_submit(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  SubmitPayload p;
  const std::uint8_t pr = r.u8();
  if (pr > static_cast<std::uint8_t>(Priority::kHigh)) {
    throw io::FormatError("submit payload: unknown priority " +
                          std::to_string(pr));
  }
  p.priority = static_cast<Priority>(pr);
  p.spec_line = r.str();
  r.expect_exhausted("submit payload");
  return p;
}

std::vector<std::uint8_t> encode_response(const ResponsePayload& p) {
  io::ByteWriter w;
  w.str(p.status);
  w.i32(p.attempts);
  w.str(p.row);
  return w.take();
}

ResponsePayload decode_response(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  ResponsePayload p;
  p.status = r.str();
  p.attempts = r.i32();
  p.row = r.str();
  r.expect_exhausted("response payload");
  return p;
}

std::vector<std::uint8_t> encode_status(const StatusPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.code));
  w.str(p.detail);
  return w.take();
}

StatusPayload decode_status(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  StatusPayload p;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(StatusCode::kMalformedFrame) ||
      code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    throw io::FormatError("status payload: unknown code " +
                          std::to_string(code));
  }
  p.code = static_cast<StatusCode>(code);
  p.detail = r.str();
  r.expect_exhausted("status payload");
  return p;
}

std::vector<std::uint8_t> encode_text(const TextPayload& p) {
  io::ByteWriter w;
  w.str(p.text);
  return w.take();
}

TextPayload decode_text(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  TextPayload p;
  p.text = r.str();
  r.expect_exhausted("text payload");
  return p;
}

std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t id,
                                     std::vector<std::uint8_t> payload) {
  io::Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.id = id;
  f.payload = std::move(payload);
  return io::encode_frame(f);
}

}  // namespace plansep::daemon
