#include "daemon/protocol.hpp"

#include "io/binary.hpp"

namespace plansep::daemon {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kMalformedFrame:
      return "malformed_frame";
    case StatusCode::kBadJobSpec:
      return "bad_job_spec";
    case StatusCode::kQueueFull:
      return "queue_full";
    case StatusCode::kQuotaExceeded:
      return "quota_exceeded";
    case StatusCode::kDraining:
      return "draining";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_submit(const SubmitPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.priority));
  w.str(p.spec_line);
  return w.take();
}

SubmitPayload decode_submit(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  SubmitPayload p;
  const std::uint8_t pr = r.u8();
  if (pr > static_cast<std::uint8_t>(Priority::kHigh)) {
    throw io::FormatError("submit payload: unknown priority " +
                          std::to_string(pr));
  }
  p.priority = static_cast<Priority>(pr);
  p.spec_line = r.str();
  r.expect_exhausted("submit payload");
  return p;
}

std::vector<std::uint8_t> encode_response(const ResponsePayload& p) {
  io::ByteWriter w;
  w.str(p.status);
  w.i32(p.attempts);
  w.str(p.row);
  return w.take();
}

ResponsePayload decode_response(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  ResponsePayload p;
  p.status = r.str();
  p.attempts = r.i32();
  p.row = r.str();
  r.expect_exhausted("response payload");
  return p;
}

std::vector<std::uint8_t> encode_status(const StatusPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.code));
  w.str(p.detail);
  return w.take();
}

StatusPayload decode_status(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  StatusPayload p;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(StatusCode::kMalformedFrame) ||
      code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    throw io::FormatError("status payload: unknown code " +
                          std::to_string(code));
  }
  p.code = static_cast<StatusCode>(code);
  p.detail = r.str();
  r.expect_exhausted("status payload");
  return p;
}

std::vector<std::uint8_t> encode_text(const TextPayload& p) {
  io::ByteWriter w;
  w.str(p.text);
  return w.take();
}

TextPayload decode_text(const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  TextPayload p;
  p.text = r.str();
  r.expect_exhausted("text payload");
  return p;
}

namespace {

// Pair lists are u32-count-prefixed i32 pairs. The count bound keeps a
// hostile prefix from forcing a giant allocation before the reader's
// bounds checks would trip: 1 MiB of frame can hold at most
// kMaxFramePayload / 8 pairs.
constexpr std::uint32_t kMaxPairs = io::kMaxFramePayload / 8;

void encode_pairs(
    io::ByteWriter& w,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& pairs) {
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [a, b] : pairs) {
    w.i32(a);
    w.i32(b);
  }
}

std::vector<std::pair<std::int32_t, std::int32_t>> decode_pairs(
    io::ByteReader& r, const char* what) {
  const std::uint32_t count = r.u32();
  if (count > kMaxPairs) {
    throw io::FormatError(std::string(what) + ": count " +
                          std::to_string(count) + " exceeds frame bound");
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  pairs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int32_t a = r.i32();
    const std::int32_t b = r.i32();
    pairs.emplace_back(a, b);
  }
  return pairs;
}

}  // namespace

std::vector<std::uint8_t> encode_query_request(const QueryRequestPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.priority));
  w.str(p.spec_line);
  w.i32(p.leaf_size);
  encode_pairs(w, p.pairs);
  encode_pairs(w, p.dead_edges);
  return w.take();
}

QueryRequestPayload decode_query_request(
    const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  QueryRequestPayload p;
  const std::uint8_t pr = r.u8();
  if (pr > static_cast<std::uint8_t>(Priority::kHigh)) {
    throw io::FormatError("query request payload: unknown priority " +
                          std::to_string(pr));
  }
  p.priority = static_cast<Priority>(pr);
  p.spec_line = r.str();
  p.leaf_size = r.i32();
  p.pairs = decode_pairs(r, "query request pairs");
  p.dead_edges = decode_pairs(r, "query request dead edges");
  r.expect_exhausted("query request payload");
  return p;
}

std::vector<std::uint8_t> encode_query_response(
    const QueryResponsePayload& p) {
  io::ByteWriter w;
  w.str(p.status);
  w.str(p.error);
  w.u32(static_cast<std::uint32_t>(p.distances.size()));
  for (std::int64_t d : p.distances) w.i64(d);
  w.u8(p.engine_cache_hit);
  return w.take();
}

QueryResponsePayload decode_query_response(
    const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  QueryResponsePayload p;
  p.status = r.str();
  p.error = r.str();
  const std::uint32_t count = r.u32();
  if (count > io::kMaxFramePayload / 8) {
    throw io::FormatError("query response payload: count " +
                          std::to_string(count) + " exceeds frame bound");
  }
  p.distances.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) p.distances.push_back(r.i64());
  p.engine_cache_hit = r.u8();
  r.expect_exhausted("query response payload");
  return p;
}

std::vector<std::uint8_t> encode_ingest_request(const IngestRequestPayload& p) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.priority));
  w.u8(p.format);
  w.u8(p.drop_self_loops);
  w.u8(p.drop_duplicates);
  w.u8(p.triangulate);
  w.str(p.family);
  w.i64(p.max_nodes);
  w.i64(p.max_edges);
  w.str(p.text);
  return w.take();
}

IngestRequestPayload decode_ingest_request(
    const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  IngestRequestPayload p;
  const std::uint8_t pr = r.u8();
  if (pr > static_cast<std::uint8_t>(Priority::kHigh)) {
    throw io::FormatError("ingest request payload: unknown priority " +
                          std::to_string(pr));
  }
  p.priority = static_cast<Priority>(pr);
  p.format = r.u8();
  if (p.format > 2) {
    throw io::FormatError("ingest request payload: unknown format " +
                          std::to_string(p.format));
  }
  p.drop_self_loops = r.u8();
  p.drop_duplicates = r.u8();
  p.triangulate = r.u8();
  p.family = r.str();
  p.max_nodes = r.i64();
  p.max_edges = r.i64();
  p.text = r.str();
  r.expect_exhausted("ingest request payload");
  return p;
}

std::vector<std::uint8_t> encode_ingest_response(
    const IngestResponsePayload& p) {
  io::ByteWriter w;
  w.str(p.status);
  w.u8(p.error_code);
  w.str(p.error);
  w.u64(p.fingerprint);
  w.str(p.corpus_path);
  w.i64(p.nodes);
  w.i64(p.edges);
  w.u32(static_cast<std::uint32_t>(p.witness.size()));
  for (const auto& [a, b] : p.witness) {
    w.i64(a);
    w.i64(b);
  }
  return w.take();
}

IngestResponsePayload decode_ingest_response(
    const std::vector<std::uint8_t>& bytes) {
  io::ByteReader r(bytes);
  IngestResponsePayload p;
  p.status = r.str();
  p.error_code = r.u8();
  p.error = r.str();
  p.fingerprint = r.u64();
  p.corpus_path = r.str();
  p.nodes = r.i64();
  p.edges = r.i64();
  const std::uint32_t count = r.u32();
  if (count > io::kMaxFramePayload / 16) {
    throw io::FormatError("ingest response payload: witness count " +
                          std::to_string(count) + " exceeds frame bound");
  }
  p.witness.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int64_t a = r.i64();
    const std::int64_t b = r.i64();
    p.witness.emplace_back(a, b);
  }
  r.expect_exhausted("ingest response payload");
  return p;
}

std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t id,
                                     std::vector<std::uint8_t> payload) {
  io::Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.id = id;
  f.payload = std::move(payload);
  return io::encode_frame(f);
}

}  // namespace plansep::daemon
