#pragma once

/// \file
/// The plansepd wire protocol: frame types, reject/error codes, and the
/// typed payload codecs riding io::Frame (semantics in docs/SERVING.md).

// The plansepd wire protocol, one layer above io/frame.hpp.
//
// Every exchange is a stream of io::Frame values over a local stream
// socket. The client correlates by frame id: a submit's eventual
// kResponse / kReject / kError echoes the submit's id, and control
// frames (kPing, kPause, ...) are acknowledged with the same id. Frame
// types and payload layouts:
//
//   kSubmit       SubmitPayload      one job submission
//   kResponse     ResponsePayload    the job's batch row, admission order
//   kReject       StatusPayload      admission refused (code says why)
//   kError        StatusPayload      malformed frame / bad job spec / ...
//   kPing         (empty)            liveness probe
//   kPong         (empty)            ack for kPing, kPause, kResume
//   kMetricsQuery (empty)            request a metrics snapshot
//   kMetricsReply TextPayload        obs registry snapshot as JSON
//   kPause        (empty)            freeze dispatch (admission keeps
//                                    running — the deterministic way to
//                                    probe backpressure; see SERVING.md)
//   kResume       (empty)            thaw dispatch
//   kDrain        (empty)            stop admitting, finish the queue
//   kDrained      TextPayload        drain complete; summary JSON
//   kQueryReq     QueryRequestPayload  one batched distance-query job
//   kQueryResp    QueryResponsePayload the batch's answers, admission order
//   kIngestReq    IngestRequestPayload  one untrusted edge-list admission
//   kIngestResp   IngestResponsePayload verdict + corpus identity/witness
//
// Payload codecs reuse io::ByteWriter/ByteReader, so malformed payloads
// surface as io::FormatError with an offset, exactly like artifact
// sections. Responses to one client always arrive in that client's
// admission order; rejects and errors are immediate.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/frame.hpp"

namespace plansep::daemon {

/// Frame type values of the serving protocol (the io::Frame type byte).
enum class FrameType : std::uint8_t {
  kSubmit = 1,        ///< client → daemon: SubmitPayload
  kResponse = 2,      ///< daemon → client: ResponsePayload
  kReject = 3,        ///< daemon → client: StatusPayload (admission refused)
  kError = 4,         ///< daemon → client: StatusPayload (protocol error)
  kPing = 5,          ///< client → daemon: liveness probe
  kPong = 6,          ///< daemon → client: ack (kPing, kPause, kResume)
  kMetricsQuery = 7,  ///< client → daemon: request metrics snapshot
  kMetricsReply = 8,  ///< daemon → client: TextPayload (metrics JSON)
  kPause = 9,         ///< client → daemon: freeze dispatch
  kResume = 10,       ///< client → daemon: thaw dispatch
  kDrain = 11,        ///< client → daemon: graceful drain
  kDrained = 12,      ///< daemon → client: TextPayload (drain summary JSON)
  kQueryReq = 13,     ///< client → daemon: QueryRequestPayload
  kQueryResp = 14,    ///< daemon → client: QueryResponsePayload
  kIngestReq = 15,    ///< client → daemon: IngestRequestPayload
  kIngestResp = 16,   ///< daemon → client: IngestResponsePayload
};

/// Reject/error codes carried by StatusPayload.
enum class StatusCode : std::uint8_t {
  kMalformedFrame = 1,  ///< undecodable frame or payload
  kBadJobSpec = 2,      ///< submit payload parsed, job line did not
  kQueueFull = 3,       ///< admission queue at capacity (backpressure)
  kQuotaExceeded = 4,   ///< client's outstanding-job quota exhausted
  kDraining = 5,        ///< daemon is draining; no new admissions
  kInternal = 6,        ///< unexpected server-side failure
};

/// Stable name of a status code ("queue_full", ...), for logs and tests.
const char* status_code_name(StatusCode c);

/// Priority classes of a submission. High-priority jobs dequeue before
/// every queued normal job; admission (queue bound, quota) is identical.
enum class Priority : std::uint8_t {
  kNormal = 0,  ///< default class
  kHigh = 1,    ///< dequeues first
};

/// kSubmit payload: a priority class plus one job-file line (the exact
/// `--key=value` grammar of serve::parse_job_line — one parser for batch
/// files and the wire).
struct SubmitPayload {
  Priority priority = Priority::kNormal;  ///< scheduling class
  std::string spec_line;                  ///< job-file line to parse
};

/// kResponse payload: the job's outcome row, exactly as run_batch would
/// have emitted it (byte-identical across runs and thread counts).
struct ResponsePayload {
  std::string status;  ///< "ok" / "check_failed" / "deadline" / "error"
  std::int32_t attempts = 1;  ///< job attempts (> 1 under faults/chaos)
  std::string row;     ///< the JSON row (no trailing newline)
};

/// kReject / kError payload: a typed code plus a human diagnosis.
struct StatusPayload {
  StatusCode code = StatusCode::kInternal;  ///< what went wrong
  std::string detail;                       ///< diagnosis for humans
};

/// kMetricsReply / kDrained payload: one JSON document.
struct TextPayload {
  std::string text;  ///< the document
};

/// kQueryReq payload: an instance spec (the same job-line grammar as
/// kSubmit, algo ignored), a hierarchy leaf size, a batch of (u, v)
/// query pairs, and an optional list of dead edges. Queries share
/// kSubmit's admission (quota, backpressure, priority classes).
struct QueryRequestPayload {
  Priority priority = Priority::kNormal;  ///< scheduling class
  std::string spec_line;                  ///< instance spec to parse
  std::int32_t leaf_size = 128;           ///< hierarchy leaf bound
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;  ///< queries
  std::vector<std::pair<std::int32_t, std::int32_t>> dead_edges;  ///< kills
};

/// kQueryResp payload: the batch's answers, one per pair in order.
struct QueryResponsePayload {
  std::string status;  ///< "ok" / "error"
  std::string error;   ///< diagnosis when status == "error"
  std::vector<std::int64_t> distances;  ///< hop counts; -1 = unreachable
  std::uint8_t engine_cache_hit = 0;    ///< served from a prepared engine
};

/// kIngestReq payload: an untrusted edge-list text (bounded by the frame
/// payload cap, so ≲ 1 MiB per request — bulk imports go through the
/// plansep_ingest CLI instead) plus the ingest::IngestOptions knobs.
/// Ingests share kSubmit's admission (quota, backpressure, priorities).
struct IngestRequestPayload {
  Priority priority = Priority::kNormal;  ///< scheduling class
  std::uint8_t format = 0;      ///< ingest::TextFormat value (0 = auto)
  std::uint8_t drop_self_loops = 0;       ///< policy: drop vs reject
  std::uint8_t drop_duplicates = 0;       ///< policy: drop vs reject
  std::uint8_t triangulate = 0;           ///< apex-triangulate on accept
  std::string family;                     ///< corpus bucket ("" = "ingest")
  std::int64_t max_nodes = 0;   ///< 0 = server default cap
  std::int64_t max_edges = 0;   ///< 0 = server default cap
  std::string text;             ///< the edge-list bytes
};

/// kIngestResp payload: the verdict. "ok" carries the corpus identity of
/// the accepted graph; "rejected" carries the IngestErrorCode (as its
/// raw byte) plus detail, and for non-planar inputs a witness edge list
/// (truncated to kMaxWitnessEdges to fit the frame).
struct IngestResponsePayload {
  std::string status;            ///< "ok" / "rejected" / "error"
  std::uint8_t error_code = 0;   ///< IngestErrorCode value; 0 when ok
  std::string error;             ///< rejection detail; "" when ok
  std::uint64_t fingerprint = 0; ///< topology fingerprint when ok
  std::string corpus_path;       ///< stored artifact path ("" if unstored)
  std::int64_t nodes = 0;        ///< canonical node count when ok
  std::int64_t edges = 0;        ///< canonical edge count when ok
  std::vector<std::pair<std::int64_t, std::int64_t>> witness;  ///< non-planar
};

/// Witness edges a kIngestResp may carry (the server truncates).
inline constexpr std::size_t kMaxWitnessEdges = 1024;

std::vector<std::uint8_t> encode_submit(const SubmitPayload& p);  ///< kSubmit codec
/// Decodes a kSubmit payload; throws io::FormatError on malformed bytes
/// or an unknown priority value.
SubmitPayload decode_submit(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_response(const ResponsePayload& p);  ///< kResponse codec
/// Decodes a kResponse payload.
ResponsePayload decode_response(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_status(const StatusPayload& p);  ///< kReject/kError codec
/// Decodes a kReject/kError payload; throws on an unknown code value.
StatusPayload decode_status(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_text(const TextPayload& p);  ///< kMetricsReply/kDrained codec
/// Decodes a kMetricsReply/kDrained payload.
TextPayload decode_text(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_query_request(const QueryRequestPayload& p);  ///< kQueryReq codec
/// Decodes a kQueryReq payload; throws io::FormatError on malformed
/// bytes, an unknown priority, or pair/edge counts too large for a frame.
QueryRequestPayload decode_query_request(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_query_response(const QueryResponsePayload& p);  ///< kQueryResp codec
/// Decodes a kQueryResp payload.
QueryResponsePayload decode_query_response(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_ingest_request(const IngestRequestPayload& p);  ///< kIngestReq codec
/// Decodes a kIngestReq payload; throws io::FormatError on malformed
/// bytes, an unknown priority, or an unknown format value.
IngestRequestPayload decode_ingest_request(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_ingest_response(const IngestResponsePayload& p);  ///< kIngestResp codec
/// Decodes a kIngestResp payload; throws on a witness count too large
/// for a frame.
IngestResponsePayload decode_ingest_response(const std::vector<std::uint8_t>& bytes);

/// Convenience: a fully-encoded frame of the given type/id/payload.
std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t id,
                                     std::vector<std::uint8_t> payload = {});

}  // namespace plansep::daemon
