#include "daemon/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace plansep::daemon {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& socket_path, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) return false;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      fd_ = fd;
      return true;
    }
    ::close(fd);
    if (Clock::now() >= deadline) return false;
    // The daemon may still be binding; retry shortly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Client::send_raw(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void Client::send_frame(FrameType type, std::uint64_t id,
                        std::vector<std::uint8_t> payload) {
  send_raw(make_frame(type, id, std::move(payload)));
}

void Client::submit(std::uint64_t id, Priority priority,
                    const std::string& spec_line) {
  send_frame(FrameType::kSubmit, id,
             encode_submit({priority, spec_line}));
}

void Client::submit_query(std::uint64_t id, const QueryRequestPayload& req) {
  send_frame(FrameType::kQueryReq, id, encode_query_request(req));
}

std::optional<QueryResponsePayload> Client::query(
    std::uint64_t id, const QueryRequestPayload& req, int timeout_ms) {
  submit_query(id, req);
  // The daemon answers a query with kQueryResp, or immediately with
  // kReject/kError; match any of the three for this id, parking the rest.
  const auto wanted = [id](const io::Frame& f) {
    return f.id == id &&
           (f.type == static_cast<std::uint8_t>(FrameType::kQueryResp) ||
            f.type == static_cast<std::uint8_t>(FrameType::kReject) ||
            f.type == static_cast<std::uint8_t>(FrameType::kError));
  };
  std::optional<io::Frame> hit;
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (wanted(*it)) {
      hit = std::move(*it);
      stash_.erase(it);
      break;
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!hit) {
    auto f = read_socket_frame(remaining_ms(deadline));
    if (!f) return std::nullopt;
    if (wanted(*f)) {
      hit = std::move(*f);
    } else {
      stash_.push_back(std::move(*f));
    }
  }
  if (hit->type != static_cast<std::uint8_t>(FrameType::kQueryResp)) {
    return std::nullopt;
  }
  return decode_query_response(hit->payload);
}

void Client::submit_ingest(std::uint64_t id, const IngestRequestPayload& req) {
  send_frame(FrameType::kIngestReq, id, encode_ingest_request(req));
}

std::optional<IngestResponsePayload> Client::ingest(
    std::uint64_t id, const IngestRequestPayload& req, int timeout_ms) {
  submit_ingest(id, req);
  // Same shape as query(): kIngestResp, or an immediate kReject/kError.
  const auto wanted = [id](const io::Frame& f) {
    return f.id == id &&
           (f.type == static_cast<std::uint8_t>(FrameType::kIngestResp) ||
            f.type == static_cast<std::uint8_t>(FrameType::kReject) ||
            f.type == static_cast<std::uint8_t>(FrameType::kError));
  };
  std::optional<io::Frame> hit;
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (wanted(*it)) {
      hit = std::move(*it);
      stash_.erase(it);
      break;
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!hit) {
    auto f = read_socket_frame(remaining_ms(deadline));
    if (!f) return std::nullopt;
    if (wanted(*f)) {
      hit = std::move(*f);
    } else {
      stash_.push_back(std::move(*f));
    }
  }
  if (hit->type != static_cast<std::uint8_t>(FrameType::kIngestResp)) {
    return std::nullopt;
  }
  return decode_ingest_response(hit->payload);
}

std::optional<io::Frame> Client::read_socket_frame(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto f = decoder_.next()) return f;
    if (fd_ < 0) return std::nullopt;
    pollfd p{fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, remaining_ms(deadline));
    if (r == 0) return std::nullopt;  // timeout
    if (r < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      return std::nullopt;  // EOF
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<io::Frame> Client::next_frame(int timeout_ms) {
  if (!stash_.empty()) {
    io::Frame f = std::move(stash_.front());
    stash_.pop_front();
    return f;
  }
  return read_socket_frame(timeout_ms);
}

std::optional<io::Frame> Client::read_matching(FrameType type,
                                               std::uint64_t id,
                                               int timeout_ms) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->type == static_cast<std::uint8_t>(type) && it->id == id) {
      io::Frame f = std::move(*it);
      stash_.erase(it);
      return f;
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto f = read_socket_frame(remaining_ms(deadline));
    if (!f) return std::nullopt;
    if (f->type == static_cast<std::uint8_t>(type) && f->id == id) return f;
    stash_.push_back(std::move(*f));
  }
}

bool Client::ping(std::uint64_t id, int timeout_ms) {
  send_frame(FrameType::kPing, id);
  return read_matching(FrameType::kPong, id, timeout_ms).has_value();
}

bool Client::pause(std::uint64_t id, int timeout_ms) {
  send_frame(FrameType::kPause, id);
  return read_matching(FrameType::kPong, id, timeout_ms).has_value();
}

bool Client::resume(std::uint64_t id, int timeout_ms) {
  send_frame(FrameType::kResume, id);
  return read_matching(FrameType::kPong, id, timeout_ms).has_value();
}

std::optional<std::string> Client::metrics(std::uint64_t id, int timeout_ms) {
  send_frame(FrameType::kMetricsQuery, id);
  auto f = read_matching(FrameType::kMetricsReply, id, timeout_ms);
  if (!f) return std::nullopt;
  return decode_text(f->payload).text;
}

std::optional<std::string> Client::drain(std::uint64_t id, int timeout_ms) {
  send_frame(FrameType::kDrain, id);
  auto f = read_matching(FrameType::kDrained, id, timeout_ms);
  if (!f) return std::nullopt;
  return decode_text(f->payload).text;
}

}  // namespace plansep::daemon
