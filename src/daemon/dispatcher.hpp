#pragma once

/// \file
/// The daemon's admission-controlled job dispatcher: bounded two-priority
/// queue, per-client quotas, worker pool, chaos retries, graceful drain.

// The dispatcher sits between protocol sessions and serve::run_single_job.
//
// Admission is synchronous and bounded: submit() either admits the job
// (assigning the client's next delivery sequence number under the lock,
// so per-client response order is fixed at admission) or reports exactly
// why not — the queue is full (backpressure), the client's outstanding
// quota is exhausted, or the daemon is draining. Rejections are decided
// immediately on the session thread; nothing about a rejected job ever
// reaches a worker.
//
// Two priority classes share one capacity bound: high-priority jobs
// dequeue before every queued normal job, but admission treats the
// classes identically, so priority affects latency, never admission.
//
// Execution mirrors run_batch's parallel section (batch.hpp): the
// constructor detaches the process-global metrics registry, trace sink
// and fault injector for the dispatcher's lifetime and forces the CONGEST
// round engine serial; jobs whose spec enables fault injection take an
// exclusive lock (their injector hook is process-global) while fault-free
// jobs share it. Optional chaos testing re-runs a job when a seeded coin
// (a pure function of chaos_seed, job id and attempt index) fires,
// discarding the crashed attempt's result — the delivered payload is
// always the final attempt's, hence byte-identical to a chaos-free run.
//
// pause()/resume() freeze dequeueing (admission keeps running). This is
// the deterministic backpressure probe: pause an idle dispatcher, submit
// capacity + k jobs, and exactly k rejections come back, independent of
// worker speed. drain() stops admissions, resumes dequeueing, and blocks
// until every admitted job has been delivered.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>
#include <condition_variable>

#include "congest/network.hpp"
#include "daemon/metrics.hpp"
#include "daemon/protocol.hpp"
#include "ingest/pipeline.hpp"
#include "query/service.hpp"
#include "serve/batch.hpp"

namespace plansep::daemon {

/// Why (or that) an admission attempt succeeded.
enum class Admission {
  kAdmitted,       ///< queued; the completion callback will fire once
  kQueueFull,      ///< backpressure: the bounded queue is at capacity
  kQuotaExceeded,  ///< the client's outstanding-job quota is exhausted
  kDraining,       ///< the dispatcher no longer admits jobs
};

/// Dispatcher configuration.
struct DispatcherOptions {
  int workers = 2;                ///< worker threads (clamped to >= 1)
  std::size_t max_queue = 64;     ///< queued-job bound across both classes
  long long per_client_quota = 16;  ///< max outstanding jobs per client
  serve::BatchOptions batch;      ///< execution options (corpus dir, retry)
  std::uint64_t chaos_seed = 0;   ///< seed of the chaos coin
  double chaos_crash_prob = 0.0;  ///< per-attempt crash probability (0 = off)
  int chaos_max_attempts = 3;     ///< attempt bound; the last never crashes
  std::size_t engine_capacity = 4;  ///< prepared query engines held (LRU)
};

/// One admitted edge-list admission: the untrusted text plus the
/// pipeline knobs. The dispatcher fills in the corpus root from its
/// batch options, so wire clients cannot point ingest at arbitrary
/// directories.
struct IngestJob {
  ingest::IngestOptions options;  ///< caps + policies (corpus_root ignored)
  std::string text;               ///< the edge-list bytes
};

/// The verdict of one ingest job. Never an exception across the worker
/// boundary: a rejection is a normal outcome ("rejected" + typed code),
/// mirroring how query errors travel in QueryOutcome.
struct IngestOutcome {
  std::string status;             ///< "ok" / "rejected"
  std::uint8_t error_code = 0;    ///< ingest::IngestErrorCode; 0 when ok
  std::string error;              ///< rejection message; "" when ok
  std::uint64_t fingerprint = 0;  ///< corpus identity when ok
  std::string corpus_path;        ///< stored path ("" when unstored)
  std::int64_t nodes = 0;         ///< canonical node count when ok
  std::int64_t edges = 0;         ///< canonical edge count when ok
  std::vector<std::pair<long long, long long>> witness;  ///< non-planar
};

/// One admitted unit of work: a pipeline job (spec) or, when `query` /
/// `ingest` is set, a batched distance-query job or an edge-list
/// admission. All classes share the queue, the quota and the
/// backpressure bound — a query or ingest is admitted (or rejected)
/// exactly like a submit.
struct Submission {
  std::uint64_t client = 0;  ///< session identity (quota + delivery order)
  std::uint64_t id = 0;      ///< client-chosen correlation id
  Priority priority = Priority::kNormal;  ///< scheduling class
  serve::JobSpec spec;       ///< the job (ignored when `query`/`ingest` set)
  /// Set for query jobs; shared so admitted items stay cheap to move.
  std::shared_ptr<const query::QueryJob> query = nullptr;
  /// Set for ingest jobs (at most one of `query`/`ingest` is set).
  std::shared_ptr<const IngestJob> ingest = nullptr;
};

/// Delivered to the completion callback, exactly once per admitted job.
struct JobDone {
  std::uint64_t client = 0;      ///< submitting session
  std::uint64_t id = 0;          ///< the submission's correlation id
  std::uint64_t client_seq = 0;  ///< admission order within the client
  bool is_query = false;         ///< query_outcome is live
  bool is_ingest = false;        ///< ingest_outcome is live
  serve::JobResult result;       ///< the job's outcome row (pipeline jobs)
  query::QueryOutcome query_outcome;  ///< the batch answers (query jobs)
  IngestOutcome ingest_outcome;  ///< the admission verdict (ingest jobs)
};

/// Admission-controlled worker pool over serve::run_single_job.
class Dispatcher {
 public:
  /// Completion callback type. Invoked on a worker thread, before the
  /// job's quota slot is released — when drain() returns, every callback
  /// has returned too.
  using CompletionFn = std::function<void(const JobDone&)>;

  /// Starts the worker pool and detaches the process-global observability
  /// hooks (restored by the destructor).
  Dispatcher(DispatcherOptions opts, serve::ArtifactCache& cache,
             DaemonMetrics& metrics);
  /// Drains (if not already) and joins the workers.
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;             ///< non-copyable
  Dispatcher& operator=(const Dispatcher&) = delete;  ///< non-copyable

  /// Admits the submission or reports why not. On kAdmitted, `done` fires
  /// exactly once, on a worker thread; on any rejection it never fires.
  Admission submit(Submission s, CompletionFn done);

  /// Freezes dequeueing; admission keeps running (see the file comment).
  void pause();
  /// Thaws dequeueing.
  void resume();
  /// Stops admissions, resumes dequeueing, and blocks until every
  /// admitted job has been executed and its callback delivered.
  void drain();
  /// Blocks until the queue is empty and no job is running, without
  /// stopping admissions.
  void wait_idle();

  /// Currently queued jobs (both classes).
  std::size_t queue_depth() const;
  /// The client's outstanding (admitted, not yet delivered) jobs.
  long long outstanding(std::uint64_t client) const;
  /// True once drain() was entered.
  bool draining() const;
  /// The configured options.
  const DispatcherOptions& options() const { return opts_; }
  /// The prepared-engine cache (query jobs; counters for tests/metrics).
  const query::EngineCache& engine_cache() const { return engine_cache_; }

 private:
  struct Item {
    Submission sub;
    CompletionFn done;
    std::uint64_t client_seq = 0;
  };

  void worker_loop();
  void execute(Item item);
  bool chaos_fires(std::uint64_t id, int attempt) const;

  DispatcherOptions opts_;
  serve::ArtifactCache& cache_;
  DaemonMetrics& metrics_;
  query::EngineCache engine_cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: work available / stop
  std::condition_variable idle_cv_;   // drain/wait_idle: queue empty + idle
  std::deque<Item> high_;
  std::deque<Item> normal_;
  std::unordered_map<std::uint64_t, long long> outstanding_;
  std::unordered_map<std::uint64_t, std::uint64_t> next_seq_;
  bool paused_ = false;
  bool draining_ = false;
  bool stopping_ = false;
  int running_ = 0;

  // Fault-injected jobs install a process-global injector: they hold this
  // exclusively, fault-free jobs share it.
  std::shared_mutex fault_mu_;

  // Process-global hooks detached for the dispatcher's lifetime, and the
  // serial round-engine config (batch.hpp's caller obligations).
  obs::MetricsRegistry* saved_registry_ = nullptr;
  congest::TraceSink* saved_sink_ = nullptr;
  congest::FaultInjector* saved_injector_ = nullptr;
  std::optional<congest::ScopedThreadConfig> serial_rounds_;

  std::vector<std::thread> workers_;
};

}  // namespace plansep::daemon
