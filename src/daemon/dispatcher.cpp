#include "daemon/dispatcher.hpp"

#include <algorithm>
#include <utility>

#include "core/fingerprint.hpp"
#include "obs/sink.hpp"

namespace plansep::daemon {

Dispatcher::Dispatcher(DispatcherOptions opts, serve::ArtifactCache& cache,
                       DaemonMetrics& metrics)
    : opts_(std::move(opts)),
      cache_(cache),
      metrics_(metrics),
      engine_cache_(opts_.engine_capacity) {
  opts_.workers = std::max(1, opts_.workers);
  opts_.max_queue = std::max<std::size_t>(1, opts_.max_queue);
  opts_.chaos_max_attempts = std::max(1, opts_.chaos_max_attempts);

  // Settle the PLANSEP_METRICS bootstrap, then detach every process-global
  // hook for the dispatcher's lifetime — same reasoning as run_batch's
  // parallel section (batch.cpp): the registry and sink demand
  // single-threaded mutation, and a fault injector must never observe two
  // concurrent networks.
  obs::ensure_env_metrics();
  saved_registry_ = obs::set_global_registry(nullptr);
  saved_sink_ = congest::set_global_trace_sink(nullptr);
  saved_injector_ = congest::set_global_fault_injector(nullptr);
  // Jobs are the unit of parallelism; the round engine inside each job
  // runs serially (ThreadPool::run_shards is not reentrant).
  serial_rounds_.emplace(congest::ThreadConfig{});

  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Dispatcher::~Dispatcher() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  serial_rounds_.reset();
  congest::set_global_fault_injector(saved_injector_);
  congest::set_global_trace_sink(saved_sink_);
  obs::set_global_registry(saved_registry_);
}

Admission Dispatcher::submit(Submission s, CompletionFn done) {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.add("daemon/submitted");
    if (draining_ || stopping_) {
      metrics_.add("daemon/rejected_draining");
      return Admission::kDraining;
    }
    if (outstanding_[s.client] >= opts_.per_client_quota) {
      metrics_.add("daemon/rejected_quota");
      return Admission::kQuotaExceeded;
    }
    const std::size_t depth = high_.size() + normal_.size();
    if (depth >= opts_.max_queue) {
      metrics_.add("daemon/rejected_backpressure");
      return Admission::kQueueFull;
    }
    seq = next_seq_[s.client]++;
    ++outstanding_[s.client];
    metrics_.add("daemon/admitted");
    metrics_.sample("daemon/queue_depth", static_cast<long long>(depth + 1));
    Item item{std::move(s), std::move(done), seq};
    if (item.sub.priority == Priority::kHigh) {
      high_.push_back(std::move(item));
    } else {
      normal_.push_back(std::move(item));
    }
  }
  work_cv_.notify_one();
  return Admission::kAdmitted;
}

void Dispatcher::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void Dispatcher::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void Dispatcher::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  paused_ = false;
  work_cv_.notify_all();
  idle_cv_.wait(lk, [&] {
    return high_.empty() && normal_.empty() && running_ == 0;
  });
}

void Dispatcher::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] {
    return high_.empty() && normal_.empty() && running_ == 0;
  });
}

std::size_t Dispatcher::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_.size() + normal_.size();
}

long long Dispatcher::outstanding(std::uint64_t client) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = outstanding_.find(client);
  return it == outstanding_.end() ? 0 : it->second;
}

bool Dispatcher::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

bool Dispatcher::chaos_fires(std::uint64_t id, int attempt) const {
  if (opts_.chaos_crash_prob <= 0) return false;
  // The final attempt never crashes, so every job eventually delivers the
  // same payload a chaos-free run would.
  if (attempt + 1 >= opts_.chaos_max_attempts) return false;
  const std::uint64_t h = core::mix_seed(
      opts_.chaos_seed, id, static_cast<std::uint64_t>(attempt),
      0x63686170736f63ULL /* "chaos" */);
  // Uniform [0, 1) from the hash's top 53 bits (the fault-plan idiom).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < opts_.chaos_crash_prob;
}

void Dispatcher::execute(Item item) {
  if (item.sub.ingest != nullptr) {
    // Ingest jobs are pure functions of (text, options) plus one
    // idempotent corpus write; no global hooks, so a shared lock and a
    // single attempt suffice (same reasoning as query jobs below).
    IngestOutcome outcome;
    ingest::IngestOptions opts = item.sub.ingest->options;
    opts.corpus_root = opts_.batch.corpus_dir;
    try {
      ingest::IngestResult res;
      {
        std::shared_lock<std::shared_mutex> sh(fault_mu_);
        res = ingest::ingest_string(item.sub.ingest->text, opts);
      }
      outcome.status = "ok";
      outcome.fingerprint = res.meta.fingerprint;
      outcome.corpus_path = res.corpus_file;
      outcome.nodes = res.graph.num_nodes();
      outcome.edges = res.graph.num_edges();
      metrics_.add("daemon/ingest_accepted");
    } catch (const ingest::IngestError& e) {
      outcome.status = "rejected";
      outcome.error_code = static_cast<std::uint8_t>(e.code());
      outcome.error = e.what();
      outcome.witness = e.witness();
      if (outcome.witness.size() > kMaxWitnessEdges) {
        outcome.witness.resize(kMaxWitnessEdges);
      }
      metrics_.add("daemon/ingest_rejected");
    }
    metrics_.add("daemon/completed");
    metrics_.add("daemon/ingests");
    metrics_.job_completed(item.sub.id, 1);
    if (item.done) {
      JobDone done;
      done.client = item.sub.client;
      done.id = item.sub.id;
      done.client_seq = item.client_seq;
      done.is_ingest = true;
      done.ingest_outcome = std::move(outcome);
      item.done(done);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --outstanding_[item.sub.client];
      --running_;
    }
    idle_cv_.notify_all();
    return;
  }

  if (item.sub.query != nullptr) {
    // Query jobs never install the process-global fault injector and are
    // pure functions of (job, artifact bytes), so chaos re-runs would buy
    // nothing: one shared-lock execution, one delivery.
    query::QueryOutcome outcome;
    {
      std::shared_lock<std::shared_mutex> sh(fault_mu_);
      outcome = query::run_query_job(*item.sub.query, opts_.batch, cache_,
                                     &engine_cache_);
    }
    metrics_.add("daemon/completed");
    metrics_.add("daemon/queries");
    metrics_.add("daemon/query_answers",
                 static_cast<long long>(outcome.distances.size()));
    if (outcome.engine_cache_hit) metrics_.add("daemon/query_engine_hits");
    if (outcome.status == "error") metrics_.add("daemon/errors");
    metrics_.job_completed(item.sub.id, 1);
    if (item.done) {
      JobDone done;
      done.client = item.sub.client;
      done.id = item.sub.id;
      done.client_seq = item.client_seq;
      done.is_query = true;
      done.query_outcome = std::move(outcome);
      item.done(done);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --outstanding_[item.sub.client];
      --running_;
    }
    idle_cv_.notify_all();
    return;
  }

  serve::JobResult result;
  const bool faulty = item.sub.spec.faults.enabled();
  for (int attempt = 0;; ++attempt) {
    if (faulty) {
      // Exclusive: this job installs the process-global fault injector.
      std::unique_lock<std::shared_mutex> ex(fault_mu_);
      result = serve::run_single_job(item.sub.spec, item.sub.id, opts_.batch,
                                     cache_);
    } else {
      std::shared_lock<std::shared_mutex> sh(fault_mu_);
      result = serve::run_single_job(item.sub.spec, item.sub.id, opts_.batch,
                                     cache_);
    }
    if (!chaos_fires(item.sub.id, attempt)) break;
    // Simulated worker crash: the attempt's result is discarded and the
    // job re-runs. Payload determinism is untouched — run_single_job is a
    // pure function of (spec, id, artifact bytes).
    metrics_.add("daemon/chaos_crashes");
    metrics_.add("daemon/retries");
  }

  metrics_.add("daemon/completed");
  if (result.status == "deadline") metrics_.add("daemon/deadline_missed");
  if (result.status == "error") metrics_.add("daemon/errors");
  metrics_.taskgraph_completed(result.taskgraph);
  metrics_.job_completed(item.sub.id, result.attempts);

  if (item.done) {
    JobDone done;
    done.client = item.sub.client;
    done.id = item.sub.id;
    done.client_seq = item.client_seq;
    done.result = std::move(result);
    item.done(done);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    --outstanding_[item.sub.client];
    --running_;
  }
  idle_cv_.notify_all();
}

void Dispatcher::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stopping_ ||
               (!paused_ && (!high_.empty() || !normal_.empty()));
      });
      if (stopping_ && high_.empty() && normal_.empty()) return;
      if (paused_ || (high_.empty() && normal_.empty())) continue;
      std::deque<Item>& q = high_.empty() ? normal_ : high_;
      item = std::move(q.front());
      q.pop_front();
      ++running_;
    }
    execute(std::move(item));
  }
}

}  // namespace plansep::daemon
