#pragma once

/// \file
/// Stable topology fingerprints and the SplitMix64 seed mixer shared by
/// the fault, io and serve layers.

// Topology fingerprinting — one implementation, three consumers.
//
// A fingerprint is a stable 64-bit hash of an embedded planar graph's
// full rotation system. It is *the* identity of a topology everywhere in
// the repo:
//
//   * faults/  mixes it into per-run fault-plan seeds, so distinct graphs
//     inside one pipeline draw independent fault streams;
//   * io/      names corpus files (corpus/<family>/<fingerprint>.psg);
//   * serve/   keys the content-addressed result cache by
//     (fingerprint, algorithm id, config hash).
//
// The value is part of the persistence format and of the fault replay
// contract (docs/FAULT_MODEL.md): changing the hash invalidates stored
// corpora and reshuffles every seeded fault plan, so treat it as frozen.
// mix_seed is the one avalanche primitive every derived hash (fault
// decisions, cache config hashes) reduces to.

#include <cstdint>
#include <string>
#include <string_view>

#include "planar/embedded_graph.hpp"

namespace plansep::core {

/// Mixes additional words into a seed (SplitMix64-style avalanche). The
/// one hash primitive every plan decision and cache key reduces to.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a,
                       std::uint64_t b = 0, std::uint64_t c = 0);

/// Stable 64-bit fingerprint of a topology (node count, dart count, and
/// the full rotation system). Frozen: stored corpora and seeded fault
/// plans both depend on its exact value.
std::uint64_t topology_fingerprint(const planar::EmbeddedGraph& g);

/// Lower-case 16-digit hex rendering of a fingerprint — the spelling used
/// in corpus file names and cache addresses.
std::string fingerprint_hex(std::uint64_t fingerprint);

/// Inverse of fingerprint_hex: parses exactly 16 lower-case hex digits.
/// Returns false (leaving out untouched) on any other input.
bool fingerprint_from_hex(std::string_view hex, std::uint64_t& out);

}  // namespace plansep::core
