#include "core/plansep.hpp"

#include "util/check.hpp"

namespace plansep {

SeparatorRun compute_cycle_separator(const planar::EmbeddedGraph& g,
                                     planar::NodeId root) {
  PLANSEP_CHECK_MSG(g.num_components() == 1, "graph must be connected");
  shortcuts::PartwiseEngine engine(g, root);
  std::vector<int> part(static_cast<std::size_t>(g.num_nodes()), 0);
  sub::PartSet ps = sub::build_part_set(g, part, 1, engine, {root});
  separator::SeparatorEngine sep(engine);
  separator::SeparatorResult res = sep.compute(ps);
  SeparatorRun out;
  out.separator = res.parts.at(0);
  out.check = separator::check_separator(ps, 0, res.parts.at(0));
  out.cost = engine.setup_cost();
  out.cost += ps.cost;
  out.cost += res.cost;
  out.diameter_bound = engine.diameter_bound();
  return out;
}

DfsRun compute_dfs_tree(const planar::EmbeddedGraph& g, planar::NodeId root) {
  PLANSEP_CHECK_MSG(g.num_components() == 1, "graph must be connected");
  shortcuts::PartwiseEngine engine(g, root);
  DfsRun out{dfs::build_dfs_tree(g, root, engine),
             dfs::DfsCheck{},
             engine.diameter_bound()};
  out.check = dfs::check_dfs_tree(g, out.build.tree);
  return out;
}

}  // namespace plansep
