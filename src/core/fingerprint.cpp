#include "core/fingerprint.hpp"

#include <cstdio>

namespace plansep::core {

namespace {

// The exact SplitMix64 step faults/plan.cpp used before the hoist; the
// byte-identity regression tests over stored fault-plan seeds pin it.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t h = splitmix(seed ^ a);
  h = splitmix(h ^ b);
  return splitmix(h ^ c);
}

std::uint64_t topology_fingerprint(const planar::EmbeddedGraph& g) {
  std::uint64_t h = mix_seed(0x746f706f6c6f6779ULL,
                             static_cast<std::uint64_t>(g.num_nodes()),
                             static_cast<std::uint64_t>(g.num_darts()));
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const planar::DartId d : g.rotation(v)) {
      h = splitmix(h ^ static_cast<std::uint64_t>(g.head(d)));
    }
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

bool fingerprint_from_hex(std::string_view hex, std::uint64_t& out) {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace plansep::core
