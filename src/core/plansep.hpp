#pragma once

// plansep — deterministic distributed DFS via cycle separators in planar
// graphs (Jauregui, Montealegre, Rapaport; PODC 2025).
//
// Umbrella header and convenience facade. The underlying modules:
//   planar/     rotation systems, faces, regions, generators
//   tree/       rooted spanning trees, DFS orders
//   congest/    message-level CONGEST simulator, BFS
//   shortcuts/  part-wise aggregation (low-congestion-shortcut substitute)
//   subroutines/ Borůvka forests, part contexts, components
//   faces/      Definition 2 weights, Remark 1 membership, augmentations
//   separator/  Theorem 1 (cycle separators)
//   dfs/        Theorem 2 (DFS construction), DFS validation
//   baselines/  Awerbuch DFS, randomized-estimate separator
//
// Quickstart:
//   auto gg = plansep::planar::grid(16, 16);
//   auto run = plansep::compute_cycle_separator(gg.graph, gg.root_hint);
//   auto dfs = plansep::compute_dfs_tree(gg.graph, gg.root_hint);

#include "baselines/awerbuch.hpp"
#include "baselines/randomized_separator.hpp"
#include "congest/bfs_tree.hpp"
#include "congest/network.hpp"
#include "dfs/builder.hpp"
#include "dfs/validate.hpp"
#include "faces/augmentation.hpp"
#include "faces/containment.hpp"
#include "faces/fundamental.hpp"
#include "faces/hidden.hpp"
#include "faces/membership.hpp"
#include "faces/weight_oracle.hpp"
#include "faces/weights.hpp"
#include "planar/dmp_embedder.hpp"
#include "planar/embedded_graph.hpp"
#include "planar/face_structure.hpp"
#include "planar/generators.hpp"
#include "planar/planarity.hpp"
#include "planar/region.hpp"
#include "separator/engine.hpp"
#include "separator/hierarchy.hpp"
#include "separator/validate.hpp"
#include "shortcuts/partwise.hpp"
#include "subroutines/components.hpp"
#include "subroutines/part_context.hpp"
#include "subroutines/spanning_forest.hpp"
#include "tree/rooted_tree.hpp"

namespace plansep {

/// One-call cycle separator of a whole (connected, embedded) planar graph.
struct SeparatorRun {
  separator::PartSeparator separator;
  separator::SeparatorCheck check;
  shortcuts::RoundCost cost;  // includes representation setup
  int diameter_bound = 0;
};

SeparatorRun compute_cycle_separator(const planar::EmbeddedGraph& g,
                                     planar::NodeId root);

/// One-call DFS tree (Theorem 2) with validation.
struct DfsRun {
  dfs::DfsBuildResult build;
  dfs::DfsCheck check;
  int diameter_bound = 0;
};

DfsRun compute_dfs_tree(const planar::EmbeddedGraph& g, planar::NodeId root);

}  // namespace plansep
