#pragma once

/// \file
/// Binary primitives of the artifact format: little-endian byte
/// writer/reader, CRC32, and the diagnosable FormatError.

// Binary primitives of the .psg/.psa artifact format (io/artifact.hpp).
//
// Everything persisted by this repo goes through these two classes, so
// the on-disk encoding has exactly one definition: fixed-width
// little-endian integers (explicit byte shifts — host endianness never
// leaks into a file), IEEE-754 doubles as their u64 bit pattern, and
// length-prefixed strings. The reader is bounds-checked on every access
// and throws io::FormatError with a byte offset, so a truncated or
// corrupted file is rejected with a diagnosable message instead of UB.
//
// crc32 is the standard reflected CRC-32 (polynomial 0xEDB88320, the
// zlib/PNG one) — section payloads carry it so bit flips are detected at
// load time, not three stages later as a wrong separator.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace plansep::io {

/// Thrown on any malformed artifact: bad magic, unsupported version,
/// truncation, CRC mismatch, or out-of-range values. The message names
/// the failing check and the byte offset where applicable.
class FormatError : public std::runtime_error {
 public:
  /// An error with the given diagnosis.
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG convention) of
/// `size` bytes at `data`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian encoder backing every artifact section.
class ByteWriter {
 public:
  void u8(std::uint8_t v);    ///< one byte
  void u16(std::uint16_t v);  ///< 2 bytes, little-endian
  void u32(std::uint32_t v);  ///< 4 bytes, little-endian
  void u64(std::uint64_t v);  ///< 8 bytes, little-endian
  void i32(std::int32_t v);   ///< 4 bytes, two's complement little-endian
  void i64(std::int64_t v);   ///< 8 bytes, two's complement little-endian
  /// IEEE-754 double as its u64 bit pattern (byte-deterministic).
  void f64(double v);
  /// u32 length prefix followed by the raw bytes.
  void str(std::string_view s);
  /// Raw bytes, no prefix.
  void bytes(const std::uint8_t* data, std::size_t size);

  /// The encoded buffer so far.
  const std::vector<std::uint8_t>& data() const { return out_; }
  /// Moves the encoded buffer out (the writer is spent afterwards).
  std::vector<std::uint8_t> take() { return std::move(out_); }
  /// Bytes written so far.
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span; every
/// overrun throws FormatError naming the offset.
class ByteReader {
 public:
  /// A reader over `size` bytes at `data` (borrowed, not copied).
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  /// A reader over a whole buffer.
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();    ///< one byte
  std::uint16_t u16();  ///< 2 bytes, little-endian
  std::uint32_t u32();  ///< 4 bytes, little-endian
  std::uint64_t u64();  ///< 8 bytes, little-endian
  std::int32_t i32();   ///< 4 bytes, two's complement little-endian
  std::int64_t i64();   ///< 8 bytes, two's complement little-endian
  double f64();         ///< IEEE-754 double from its u64 bit pattern
  /// Length-prefixed string (u32 prefix).
  std::string str();

  std::size_t offset() const { return pos_; }          ///< bytes consumed
  std::size_t remaining() const { return size_ - pos_; }  ///< bytes left
  bool exhausted() const { return pos_ == size_; }     ///< nothing left?
  /// Throws FormatError unless the reader consumed every byte — the
  /// trailing-garbage check every section decoder ends with.
  void expect_exhausted(const char* what) const;

 private:
  const std::uint8_t* need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace plansep::io
