#pragma once

/// \file
/// The versioned binary artifact format: sectioned container with
/// per-section CRC32, plus codecs for embedded graphs, separator results
/// and DFS trees (format layout in DESIGN.md §9).

// The .psg artifact container and its payload codecs.
//
// Layout (all integers little-endian; DESIGN.md §9 is the normative
// description):
//
//   magic[8] = "PSGB\r\n\x1a\n"     (PNG-style: text-mode mangling trips it)
//   u32 format version               (kFormatVersion; older readers reject
//                                     newer files cleanly)
//   u32 section count
//   section table, one entry per section, in file order:
//     u32 section id   (SectionId)
//     u64 offset       (from file start)
//     u64 length       (payload bytes)
//     u32 crc32        (of the payload)
//   section payloads, concatenated in table order.
//
// Sections are independent: a file may carry just a graph (a corpus
// instance), or a graph plus separator/DFS results (a cached pipeline
// artifact). Unknown section ids are preserved by parse/assemble and
// ignored by the typed accessors, so the format is forward-extensible
// without a version bump. Encoding is canonical — one byte sequence per
// value — which is what makes save → load → save byte-identity (asserted
// by tests/proptest_io_test.cpp) a meaningful property.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baselines/level_separator.hpp"
#include "congest/bfs_tree.hpp"
#include "dfs/partial_tree.hpp"
#include "io/binary.hpp"
#include "planar/embedded_graph.hpp"
#include "query/index.hpp"
#include "separator/engine.hpp"
#include "separator/hierarchy.hpp"
#include "shortcuts/cost.hpp"

namespace plansep::io {

/// Current artifact format version; bumped on any incompatible layout
/// change. Readers reject other versions with a clean FormatError.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section identifiers of the container. Values are part of the on-disk
/// format — append, never renumber.
enum class SectionId : std::uint32_t {
  kMeta = 1,       ///< provenance: family name, spec seed, fingerprint
  kGraph = 2,      ///< rotation system (and edge list) of the instance
  kCoords = 3,     ///< optional straight-line coordinates
  kSeparator = 4,  ///< one part's cycle-separator result + cost
  kDfsTree = 5,    ///< DFS tree (parents/depths) + build cost
  kHierarchy = 6,  ///< recursive separator decomposition (pieces + cost)
  kQueryIndex = 7, ///< distance-oracle index over a kHierarchy section
  kSpanningTree = 8,    ///< global BFS spanning tree (task-graph sub-artifact)
  kLevelSeparator = 9,  ///< BFS-level baseline separator result
};

/// One decoded section: id plus raw payload (CRC already verified).
struct Section {
  SectionId id{};                    ///< section id (may be unknown)
  std::vector<std::uint8_t> bytes;   ///< verified payload
};

/// A parsed artifact: format version plus sections in file order.
struct Artifact {
  std::uint32_t version = kFormatVersion;  ///< container format version
  std::vector<Section> sections;           ///< sections in file order

  /// First section with the given id, or nullptr.
  const Section* find(SectionId id) const;
  /// Appends a section.
  void add(SectionId id, std::vector<std::uint8_t> bytes);
};

/// Assembles the container byte stream (magic, version, section table with
/// CRCs, payloads). Deterministic: same artifact, same bytes.
std::vector<std::uint8_t> assemble(const Artifact& a);

/// Parses and fully verifies a container: magic, version, table sanity
/// (offsets in bounds, payloads non-overlapping and in order), and every
/// section's CRC. Throws FormatError with a diagnosis on any violation.
Artifact parse(const std::vector<std::uint8_t>& bytes);

// ------------------------------------------------------------- payloads --

/// Provenance metadata persisted alongside a graph.
struct ArtifactMeta {
  std::string family;             ///< generator family name ("" if unknown)
  std::uint64_t seed = 0;         ///< generation seed (0 if unknown)
  std::uint64_t fingerprint = 0;  ///< core::topology_fingerprint of kGraph
};

/// A persisted separator result: the engine output for one part plus its
/// round cost (everything a warm-cache batch row needs).
struct SeparatorArtifact {
  separator::PartSeparator part;  ///< marked path, endpoints, phase
  shortcuts::RoundCost cost;      ///< setup + part build + engine cost
};

/// A persisted DFS result: parent/depth arrays plus build statistics.
struct DfsArtifact {
  planar::NodeId root = 0;             ///< DFS root
  std::vector<planar::NodeId> parent;  ///< parent per node (root: kNoNode)
  std::vector<std::int32_t> depth;     ///< depth per node (root: 0)
  std::int32_t phases = 0;             ///< outer phases the builder ran
  shortcuts::RoundCost cost;           ///< full build cost
};

std::vector<std::uint8_t> encode_meta(const ArtifactMeta& m);  ///< kMeta codec
/// Decodes a kMeta payload (throws FormatError on malformed bytes).
ArtifactMeta decode_meta(const std::vector<std::uint8_t>& bytes);

/// Encodes the rotation system: node/edge counts, the edge endpoint
/// arrays, and every vertex's clockwise dart rotation.
std::vector<std::uint8_t> encode_graph(const planar::EmbeddedGraph& g);
/// Decodes a kGraph payload and revalidates it structurally (endpoint
/// ranges, rotation consistency) via EmbeddedGraph::from_rotations.
planar::EmbeddedGraph decode_graph(const std::vector<std::uint8_t>& bytes);

/// Encodes straight-line coordinates (one Point per node).
std::vector<std::uint8_t> encode_coords(const std::vector<planar::Point>& c);
/// Decodes a kCoords payload.
std::vector<planar::Point> decode_coords(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_separator(const SeparatorArtifact& s);  ///< kSeparator codec
/// Decodes a kSeparator payload.
SeparatorArtifact decode_separator(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_dfs(const DfsArtifact& d);  ///< kDfsTree codec
/// Decodes a kDfsTree payload.
DfsArtifact decode_dfs(const std::vector<std::uint8_t>& bytes);

/// A persisted global BFS spanning tree — the task graph's most shared
/// sub-artifact (one tree feeds the deterministic separator, the baseline
/// level separator, the DFS builder and the query hierarchy).
struct SpanningTreeArtifact {
  congest::BfsResult bfs;  ///< root, parent darts, depths, wave cost
};

std::vector<std::uint8_t> encode_spanning_tree(const SpanningTreeArtifact& t);  ///< kSpanningTree codec
/// Decodes a kSpanningTree payload (structure checks; dart ids are
/// validated against the graph by the consumer that binds them).
SpanningTreeArtifact decode_spanning_tree(const std::vector<std::uint8_t>& bytes);

/// A persisted BFS-level baseline separator (Lipton–Tarjan levels half).
struct LevelSeparatorArtifact {
  baselines::LevelSeparatorResult result;  ///< found flag, nodes, balance
};

std::vector<std::uint8_t> encode_level_separator(const LevelSeparatorArtifact& s);  ///< kLevelSeparator codec
/// Decodes a kLevelSeparator payload.
LevelSeparatorArtifact decode_level_separator(const std::vector<std::uint8_t>& bytes);

/// A persisted separator hierarchy: the node count plus the pieces and
/// build cost. Only the pieces are encoded; the decoder restores every
/// derived table through SeparatorHierarchy::rebuild_derived.
struct HierarchyArtifact {
  planar::NodeId num_nodes = 0;            ///< graph size the pieces cover
  separator::SeparatorHierarchy hierarchy; ///< pieces + cost (+ derived)
};

std::vector<std::uint8_t> encode_hierarchy(const HierarchyArtifact& h);  ///< kHierarchy codec
/// Decodes a kHierarchy payload, validating piece structure (parents
/// precede children, node ids in range) and rebuilding derived tables.
HierarchyArtifact decode_hierarchy(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_query_index(const query::QueryIndex& qi);  ///< kQueryIndex codec
/// Decodes a kQueryIndex payload, validating array-size consistency.
query::QueryIndex decode_query_index(const std::vector<std::uint8_t>& bytes);

/// Extracts a DfsArtifact from a built tree (the persistence direction).
DfsArtifact dfs_artifact_from_tree(const dfs::PartialDfsTree& tree);

// ----------------------------------------------------------- file level --

/// Serializes graph (+ coordinates when present, + meta when given) into
/// a single-instance artifact container.
std::vector<std::uint8_t> encode_graph_artifact(
    const planar::EmbeddedGraph& g, const ArtifactMeta* meta = nullptr);

/// A loaded graph instance: the embedding plus its provenance.
struct LoadedGraph {
  planar::EmbeddedGraph graph;  ///< decoded embedding (coords restored)
  ArtifactMeta meta;            ///< provenance (defaulted when absent)
};

/// Parses a graph artifact. Requires a kGraph section; verifies that the
/// stored fingerprint (when present) matches the decoded rotation system.
LoadedGraph decode_graph_artifact(const std::vector<std::uint8_t>& bytes);

/// Writes `bytes` to `path` atomically enough for our purposes (tmp file
/// + rename). Throws FormatError on I/O failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Reads a whole file; throws FormatError if unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

/// encode_graph_artifact + write_file.
void save_graph(const std::string& path, const planar::EmbeddedGraph& g,
                const ArtifactMeta* meta = nullptr);

/// read_file + decode_graph_artifact.
LoadedGraph load_graph(const std::string& path);

}  // namespace plansep::io
