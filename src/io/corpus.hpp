#pragma once

/// \file
/// Corpus directory layout: content-addressed on-disk instance store
/// (corpus/<family>/<fingerprint>.psg) over the artifact format.

// The corpus: a directory of persisted planar instances, addressed by
// content.
//
//   <root>/<family>/<fingerprint>.psg
//
// `family` is the generator family name (or any caller-chosen bucket for
// imported graphs) and `fingerprint` the 16-hex-digit
// core::topology_fingerprint of the rotation system, so a graph's path is
// a pure function of its content: storing the same instance twice is a
// no-op, two corpora merge by file copy, and a batch job can reference an
// instance stably across machines. Listing is sorted (family, then
// fingerprint), so corpus sweeps are deterministic regardless of
// directory enumeration order.

#include <cstdint>
#include <string>
#include <vector>

#include "io/artifact.hpp"

namespace plansep::io {

/// One corpus entry, as discovered by list_corpus.
struct CorpusEntry {
  std::string family;             ///< bucket directory name
  std::uint64_t fingerprint = 0;  ///< parsed from the file name
  std::string path;               ///< full path to the .psg file
};

/// The content-addressed path of a graph inside a corpus root (the file
/// need not exist yet).
std::string corpus_path(const std::string& root, const std::string& family,
                        std::uint64_t fingerprint);

/// Stores g under its content address, creating directories as needed.
/// Returns the stored path. Overwrites only byte-identical content by
/// construction (same fingerprint, canonical encoding); skips the write
/// when the file already exists.
std::string store_in_corpus(const std::string& root, const std::string& family,
                            const planar::EmbeddedGraph& g,
                            std::uint64_t seed = 0);

/// Loads the instance with the given address; throws FormatError if the
/// file is absent or malformed (fingerprint verified on load).
LoadedGraph load_from_corpus(const std::string& root,
                             const std::string& family,
                             std::uint64_t fingerprint);

/// All entries under the root, sorted by (family, fingerprint). Files not
/// matching the `<family>/<16 hex>.psg` shape are ignored.
std::vector<CorpusEntry> list_corpus(const std::string& root);

}  // namespace plansep::io
