#pragma once

/// \file
/// Length-prefixed, CRC-guarded wire frames: the streaming cousin of the
/// .psg container, shared by the serving daemon and its clients.

// Wire frames for streaming peers (daemon/ and its clients).
//
// A frame is the socket-stream unit of the serving protocol, built from
// the same primitives as the .psg container (io/binary.hpp: little-endian
// integers, CRC32 of the payload) so the repo keeps exactly one binary
// idiom. Layout, all integers little-endian:
//
//   u32 magic        = kFrameMagic ("PSFR" as bytes)
//   u8  type         (opaque here; daemon/protocol.hpp assigns meaning)
//   u64 id           (correlation id, echoed by responses)
//   u32 payload_len  (<= kMaxFramePayload)
//   u8  payload[payload_len]
//   u32 crc32        (of the payload bytes)
//
// FrameDecoder consumes an arbitrary chunking of the byte stream (feed()
// accepts whatever read() returned) and yields complete frames; any
// malformation — wrong magic, oversized length, CRC mismatch — throws
// io::FormatError naming the check, after which the decoder is poisoned
// (a byte stream that lost sync cannot be trusted again; peers close the
// connection). Truncation is not an error at this layer: a partial frame
// simply never completes, and partial_bytes() lets the session layer
// diagnose a mid-frame disconnect.

#include <cstdint>
#include <optional>
#include <vector>

#include "io/binary.hpp"

namespace plansep::io {

/// Frame magic, "PSFR" in file order when written little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x52465350u;

/// Hard upper bound on a frame payload. A length field above this is
/// rejected before any allocation, so a corrupted or hostile length
/// prefix cannot balloon memory.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Bytes of the fixed frame header (magic + type + id + payload_len).
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

/// One decoded (or to-be-encoded) frame.
struct Frame {
  std::uint8_t type = 0;              ///< opaque frame type
  std::uint64_t id = 0;               ///< correlation id
  std::vector<std::uint8_t> payload;  ///< CRC-verified payload bytes
};

/// Serializes a frame (header, payload, payload CRC). Deterministic.
/// Throws FormatError if the payload exceeds kMaxFramePayload.
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Incremental frame parser over an arbitrarily-chunked byte stream.
class FrameDecoder {
 public:
  /// Appends `size` raw stream bytes at `data` to the internal buffer.
  /// Throws FormatError as soon as a malformation is detectable (bad
  /// magic, oversized length, CRC mismatch); the decoder is poisoned
  /// afterwards and every later call throws too.
  void feed(const std::uint8_t* data, std::size_t size);

  /// The next complete frame, or nullopt when more bytes are needed.
  /// Throws FormatError under the same conditions as feed().
  std::optional<Frame> next();

  /// Bytes of an incomplete frame still buffered — nonzero after a peer
  /// disconnected mid-frame.
  std::size_t partial_bytes() const { return buf_.size() - pos_; }

  /// True once a malformation was detected; the stream is unusable.
  bool poisoned() const { return poisoned_; }

 private:
  void check_header();  // validates magic/length once a header is buffered

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace plansep::io
