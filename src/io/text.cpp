#include "io/text.hpp"

#include <istream>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace plansep::io {

EdgeListInput read_edge_list(std::istream& in) {
  EdgeListInput out;
  std::map<long long, planar::NodeId> compact;
  auto intern = [&](long long raw) {
    PLANSEP_CHECK_MSG(raw >= 0, "node ids must be non-negative");
    auto it = compact.find(raw);
    if (it != compact.end()) return it->second;
    const planar::NodeId id = static_cast<planar::NodeId>(out.original_id.size());
    compact.emplace(raw, id);
    out.original_id.push_back(raw);
    return id;
  };
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    long long a = 0, b = 0;
    PLANSEP_CHECK_MSG(static_cast<bool>(ls >> a >> b),
                      "malformed edge line: " + line);
    out.edges.emplace_back(intern(a), intern(b));
  }
  out.num_nodes = static_cast<planar::NodeId>(out.original_id.size());
  return out;
}

std::string to_dot(const planar::EmbeddedGraph& g,
                   const std::vector<char>& highlight,
                   const dfs::PartialDfsTree* tree) {
  std::ostringstream os;
  os << "graph G {\n  node [shape=circle, fontsize=10];\n";
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v;
    if (!highlight.empty() && highlight[static_cast<std::size_t>(v)]) {
      os << " [style=filled, fillcolor=gold]";
    }
    os << ";\n";
  }
  for (planar::EdgeId e = 0; e < g.num_edges(); ++e) {
    const planar::NodeId a = g.edge_u(e);
    const planar::NodeId b = g.edge_v(e);
    bool is_tree = false;
    if (tree != nullptr) {
      is_tree = (tree->contains(a) && tree->parent(a) == b) ||
                (tree->contains(b) && tree->parent(b) == a);
    }
    os << "  " << a << " -- " << b;
    if (is_tree) os << " [penwidth=2.5]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string dfs_to_json(const dfs::PartialDfsTree& tree) {
  std::ostringstream os;
  os << "{\"root\":" << tree.root() << ",\"parent\":[";
  const auto& g = tree.graph();
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    os << (v ? "," : "") << (tree.contains(v) ? tree.parent(v) : -2);
  }
  os << "],\"depth\":[";
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    os << (v ? "," : "") << tree.depth(v);
  }
  os << "]}";
  return os.str();
}

std::string nodes_to_json(const std::vector<planar::NodeId>& nodes) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << (i ? "," : "") << nodes[i];
  }
  os << "]";
  return os.str();
}

}  // namespace plansep::io
