#include "io/frame.hpp"

#include <cstring>
#include <string>

namespace plansep::io {

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  if (f.payload.size() > kMaxFramePayload) {
    throw FormatError("frame payload exceeds kMaxFramePayload (" +
                      std::to_string(f.payload.size()) + " bytes)");
  }
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(f.type);
  w.u64(f.id);
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  w.bytes(f.payload.data(), f.payload.size());
  w.u32(crc32(f.payload.data(), f.payload.size()));
  return w.take();
}

void FrameDecoder::check_header() {
  // Validate the parts of the header that can be wrong before the whole
  // frame arrived, so a bad magic or hostile length is rejected at the
  // earliest byte rather than after buffering a "payload".
  if (buf_.size() - pos_ < kFrameHeaderBytes) return;
  ByteReader r(buf_.data() + pos_, kFrameHeaderBytes);
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    poisoned_ = true;
    throw FormatError("bad frame magic (stream out of sync)");
  }
  r.u8();   // type — opaque here
  r.u64();  // id
  const std::uint32_t len = r.u32();
  if (len > kMaxFramePayload) {
    poisoned_ = true;
    throw FormatError("oversized frame payload (" + std::to_string(len) +
                      " > " + std::to_string(kMaxFramePayload) + " bytes)");
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) throw FormatError("frame stream already poisoned");
  // Drop the consumed prefix before growing; keeps the buffer at one
  // frame's order of magnitude regardless of stream length.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
  check_header();
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw FormatError("frame stream already poisoned");
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  check_header();  // throws on bad magic / oversized length
  ByteReader header(buf_.data() + pos_, kFrameHeaderBytes);
  header.u32();  // magic, validated
  Frame f;
  f.type = header.u8();
  f.id = header.u64();
  const std::uint32_t len = header.u32();
  const std::size_t total = kFrameHeaderBytes + len + 4;
  if (buf_.size() - pos_ < total) return std::nullopt;
  const std::uint8_t* payload = buf_.data() + pos_ + kFrameHeaderBytes;
  ByteReader tail(payload + len, 4);
  const std::uint32_t want = tail.u32();
  const std::uint32_t got = crc32(payload, len);
  if (want != got) {
    poisoned_ = true;
    throw FormatError("frame payload CRC mismatch");
  }
  f.payload.assign(payload, payload + len);
  pos_ += total;
  return f;
}

}  // namespace plansep::io
