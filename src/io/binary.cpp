#include "io/binary.hpp"

#include <array>
#include <cstring>

namespace plansep::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------ ByteWriter --

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void ByteWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

// ------------------------------------------------------------ ByteReader --

const std::uint8_t* ByteReader::need(std::size_t n) {
  if (size_ - pos_ < n) {
    throw FormatError("truncated artifact: need " + std::to_string(n) +
                      " byte(s) at offset " + std::to_string(pos_) +
                      ", have " + std::to_string(size_ - pos_));
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() { return *need(1); }

std::uint16_t ByteReader::u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p = need(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

void ByteReader::expect_exhausted(const char* what) const {
  if (pos_ != size_) {
    throw FormatError(std::string(what) + ": " + std::to_string(size_ - pos_) +
                      " trailing byte(s) after a complete decode");
  }
}

}  // namespace plansep::io
