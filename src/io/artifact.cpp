#include "io/artifact.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "core/fingerprint.hpp"
#include "util/check.hpp"

namespace plansep::io {

namespace {

// PNG-style magic: text-mode newline translation or a stray chop mangles
// at least one of the trailing bytes, so misuse fails at the first check.
constexpr std::uint8_t kMagic[8] = {'P', 'S', 'G', 'B', '\r', '\n', 0x1a, '\n'};

constexpr std::size_t kHeaderBytes = sizeof kMagic + 4 + 4;  // magic+ver+count
constexpr std::size_t kTableEntryBytes = 4 + 8 + 8 + 4;      // id+off+len+crc
constexpr std::uint32_t kMaxSections = 1024;

[[noreturn]] void malformed(const std::string& what) {
  throw FormatError("malformed artifact: " + what);
}

}  // namespace

const Section* Artifact::find(SectionId id) const {
  for (const Section& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

void Artifact::add(SectionId id, std::vector<std::uint8_t> bytes) {
  sections.push_back(Section{id, std::move(bytes)});
}

std::vector<std::uint8_t> assemble(const Artifact& a) {
  ByteWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u32(a.version);
  w.u32(static_cast<std::uint32_t>(a.sections.size()));
  std::uint64_t offset =
      kHeaderBytes + kTableEntryBytes * a.sections.size();
  for (const Section& s : a.sections) {
    w.u32(static_cast<std::uint32_t>(s.id));
    w.u64(offset);
    w.u64(s.bytes.size());
    w.u32(crc32(s.bytes.data(), s.bytes.size()));
    offset += s.bytes.size();
  }
  for (const Section& s : a.sections) {
    w.bytes(s.bytes.data(), s.bytes.size());
  }
  return w.take();
}

Artifact parse(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (bytes.size() < kHeaderBytes) malformed("shorter than the header");
  for (std::size_t i = 0; i < sizeof kMagic; ++i) {
    if (r.u8() != kMagic[i]) {
      malformed("bad magic at byte " + std::to_string(i));
    }
  }
  Artifact a;
  a.version = r.u32();
  if (a.version != kFormatVersion) {
    throw FormatError("unsupported artifact format version " +
                      std::to_string(a.version) + " (this build reads " +
                      std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = r.u32();
  if (count > kMaxSections) {
    malformed("implausible section count " + std::to_string(count));
  }
  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t length;
    std::uint32_t crc;
  };
  std::vector<Entry> table(count);
  for (Entry& e : table) {
    e.id = r.u32();
    e.offset = r.u64();
    e.length = r.u64();
    e.crc = r.u32();
  }
  // The layout is canonical: payloads sit back-to-back, in table order,
  // immediately after the table, and the file ends with the last payload.
  // This is what makes parse ∘ assemble the identity on bytes.
  std::uint64_t expected = kHeaderBytes +
                           static_cast<std::uint64_t>(kTableEntryBytes) * count;
  for (const Entry& e : table) {
    if (e.offset != expected) {
      malformed("section " + std::to_string(e.id) + " at offset " +
                std::to_string(e.offset) + ", expected " +
                std::to_string(expected));
    }
    if (e.offset + e.length > bytes.size()) {
      malformed("section " + std::to_string(e.id) + " overruns the file");
    }
    expected += e.length;
  }
  if (expected != bytes.size()) {
    malformed(std::to_string(bytes.size() - expected) +
              " trailing byte(s) after the last section");
  }
  for (const Entry& e : table) {
    Section s;
    s.id = static_cast<SectionId>(e.id);
    s.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(e.offset),
                   bytes.begin() + static_cast<std::ptrdiff_t>(e.offset) +
                       static_cast<std::ptrdiff_t>(e.length));
    const std::uint32_t got = crc32(s.bytes.data(), s.bytes.size());
    if (got != e.crc) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "section %u CRC mismatch: stored %08x, computed %08x",
                    e.id, e.crc, got);
      throw FormatError(std::string("corrupted artifact: ") + buf);
    }
    a.sections.push_back(std::move(s));
  }
  return a;
}

// ------------------------------------------------------------- payloads --

std::vector<std::uint8_t> encode_meta(const ArtifactMeta& m) {
  ByteWriter w;
  w.str(m.family);
  w.u64(m.seed);
  w.u64(m.fingerprint);
  return w.take();
}

ArtifactMeta decode_meta(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  ArtifactMeta m;
  m.family = r.str();
  m.seed = r.u64();
  m.fingerprint = r.u64();
  r.expect_exhausted("meta section");
  return m;
}

// The graph codec serializes the *abstract* embedding — every vertex's
// clockwise neighbor list — and decodes through from_rotations, which
// revalidates symmetry and rebuilds canonical dart/edge numbering. Node
// ids and rotation orders round-trip exactly (they are the embedding);
// edge ids are canonicalized, which is why persisted separator artifacts
// identify the closing edge but downstream consumers key on node ids.
std::vector<std::uint8_t> encode_graph(const planar::EmbeddedGraph& g) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(g.num_nodes()));
  w.u32(static_cast<std::uint32_t>(g.num_edges()));
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto rot = g.rotation(v);
    w.u32(static_cast<std::uint32_t>(rot.size()));
    for (const planar::DartId d : rot) {
      w.u32(static_cast<std::uint32_t>(g.head(d)));
    }
  }
  return w.take();
}

planar::EmbeddedGraph decode_graph(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.u32();
  const std::uint32_t m = r.u32();
  if (n > (1u << 30)) malformed("implausible node count");
  std::vector<std::vector<planar::NodeId>> rot(n);
  std::uint64_t darts = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t deg = r.u32();
    rot[v].resize(deg);
    darts += deg;
    for (std::uint32_t i = 0; i < deg; ++i) {
      const std::uint32_t u = r.u32();
      if (u >= n) {
        malformed("graph section: neighbor " + std::to_string(u) +
                  " out of range at node " + std::to_string(v));
      }
      rot[v][i] = static_cast<planar::NodeId>(u);
    }
  }
  r.expect_exhausted("graph section");
  if (darts != 2ull * m) {
    malformed("graph section: degree sum " + std::to_string(darts) +
              " does not match edge count " + std::to_string(m));
  }
  try {
    return planar::EmbeddedGraph::from_rotations(rot);
  } catch (const CheckError& e) {
    malformed(std::string("graph section rejected: ") + e.what());
  }
}

std::vector<std::uint8_t> encode_coords(const std::vector<planar::Point>& c) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(c.size()));
  for (const planar::Point& p : c) {
    w.f64(p.x);
    w.f64(p.y);
  }
  return w.take();
}

std::vector<planar::Point> decode_coords(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.u32();
  if (n > (1u << 30)) malformed("implausible coordinate count");
  std::vector<planar::Point> c(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    c[i].x = r.f64();
    c[i].y = r.f64();
  }
  r.expect_exhausted("coords section");
  return c;
}

namespace {

void encode_cost(ByteWriter& w, const shortcuts::RoundCost& c) {
  w.i64(c.measured);
  w.i64(c.charged);
  w.i64(c.pa_calls);
  w.i64(c.local_rounds);
}

shortcuts::RoundCost decode_cost(ByteReader& r) {
  shortcuts::RoundCost c;
  c.measured = r.i64();
  c.charged = r.i64();
  c.pa_calls = r.i64();
  c.local_rounds = r.i64();
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_separator(const SeparatorArtifact& s) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(s.part.path.size()));
  for (const planar::NodeId v : s.part.path) w.i32(v);
  w.i32(s.part.endpoint_a);
  w.i32(s.part.endpoint_b);
  w.i32(s.part.closing_edge);
  w.i32(s.part.phase);
  encode_cost(w, s.cost);
  return w.take();
}

SeparatorArtifact decode_separator(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  SeparatorArtifact s;
  const std::uint32_t len = r.u32();
  if (len > (1u << 30)) malformed("implausible separator path length");
  s.part.path.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) s.part.path[i] = r.i32();
  s.part.endpoint_a = r.i32();
  s.part.endpoint_b = r.i32();
  s.part.closing_edge = r.i32();
  s.part.phase = r.i32();
  s.cost = decode_cost(r);
  r.expect_exhausted("separator section");
  return s;
}

std::vector<std::uint8_t> encode_dfs(const DfsArtifact& d) {
  PLANSEP_CHECK(d.parent.size() == d.depth.size());
  ByteWriter w;
  w.i32(d.root);
  w.u32(static_cast<std::uint32_t>(d.parent.size()));
  for (const planar::NodeId p : d.parent) w.i32(p);
  for (const std::int32_t x : d.depth) w.i32(x);
  w.i32(d.phases);
  encode_cost(w, d.cost);
  return w.take();
}

DfsArtifact decode_dfs(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  DfsArtifact d;
  d.root = r.i32();
  const std::uint32_t n = r.u32();
  if (n > (1u << 30)) malformed("implausible DFS tree size");
  d.parent.resize(n);
  d.depth.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) d.parent[i] = r.i32();
  for (std::uint32_t i = 0; i < n; ++i) d.depth[i] = r.i32();
  d.phases = r.i32();
  d.cost = decode_cost(r);
  r.expect_exhausted("dfs section");
  return d;
}

std::vector<std::uint8_t> encode_spanning_tree(const SpanningTreeArtifact& t) {
  PLANSEP_CHECK(t.bfs.parent_dart.size() == t.bfs.depth.size());
  ByteWriter w;
  w.i32(t.bfs.root);
  w.u32(static_cast<std::uint32_t>(t.bfs.parent_dart.size()));
  for (const planar::DartId d : t.bfs.parent_dart) w.i32(d);
  for (const int x : t.bfs.depth) w.i32(x);
  w.i32(t.bfs.height);
  w.i32(t.bfs.rounds);
  w.i64(t.bfs.messages);
  return w.take();
}

SpanningTreeArtifact decode_spanning_tree(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  SpanningTreeArtifact t;
  t.bfs.root = r.i32();
  const std::uint32_t n = r.u32();
  if (n > (1u << 30)) malformed("implausible spanning tree size");
  t.bfs.parent_dart.resize(n);
  t.bfs.depth.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) t.bfs.parent_dart[i] = r.i32();
  for (std::uint32_t i = 0; i < n; ++i) t.bfs.depth[i] = r.i32();
  t.bfs.height = r.i32();
  t.bfs.rounds = r.i32();
  t.bfs.messages = r.i64();
  r.expect_exhausted("spanning tree section");
  if (t.bfs.root < 0 || static_cast<std::uint32_t>(t.bfs.root) >= std::max(1u, n)) {
    malformed("spanning tree root out of range");
  }
  return t;
}

std::vector<std::uint8_t> encode_level_separator(const LevelSeparatorArtifact& s) {
  ByteWriter w;
  w.u8(s.result.found ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(s.result.separator.size()));
  for (const planar::NodeId v : s.result.separator) w.i32(v);
  w.f64(s.result.balance);
  w.i32(s.result.levels_used);
  return w.take();
}

LevelSeparatorArtifact decode_level_separator(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  LevelSeparatorArtifact s;
  s.result.found = r.u8() != 0;
  const std::uint32_t len = r.u32();
  if (len > (1u << 30)) malformed("implausible level separator size");
  s.result.separator.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) s.result.separator[i] = r.i32();
  s.result.balance = r.f64();
  s.result.levels_used = r.i32();
  r.expect_exhausted("level separator section");
  return s;
}

std::vector<std::uint8_t> encode_hierarchy(const HierarchyArtifact& h) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(h.num_nodes));
  w.u32(static_cast<std::uint32_t>(h.hierarchy.pieces.size()));
  for (const separator::HierarchyPiece& p : h.hierarchy.pieces) {
    w.i32(p.level);
    w.i32(p.parent);
    w.u32(static_cast<std::uint32_t>(p.nodes.size()));
    for (const planar::NodeId v : p.nodes) w.i32(v);
    w.u32(static_cast<std::uint32_t>(p.separator.size()));
    for (const planar::NodeId v : p.separator) w.i32(v);
  }
  encode_cost(w, h.hierarchy.cost);
  return w.take();
}

HierarchyArtifact decode_hierarchy(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  HierarchyArtifact h;
  const std::uint32_t n = r.u32();
  if (n > (1u << 30)) malformed("implausible hierarchy node count");
  h.num_nodes = static_cast<planar::NodeId>(n);
  const std::uint32_t pieces = r.u32();
  if (pieces > (1u << 28)) malformed("implausible hierarchy piece count");
  h.hierarchy.pieces.resize(pieces);
  for (std::uint32_t i = 0; i < pieces; ++i) {
    separator::HierarchyPiece& p = h.hierarchy.pieces[i];
    p.level = r.i32();
    p.parent = r.i32();
    if (p.level < 0) malformed("hierarchy piece with negative level");
    if (p.parent < -1 || p.parent >= static_cast<std::int32_t>(i)) {
      malformed("hierarchy piece " + std::to_string(i) +
                " with parent " + std::to_string(p.parent) +
                " (parents must precede children)");
    }
    const auto read_nodes = [&](std::vector<planar::NodeId>& out,
                                const char* what) {
      const std::uint32_t count = r.u32();
      if (count > n) malformed(std::string("hierarchy ") + what + " too long");
      out.resize(count);
      for (std::uint32_t k = 0; k < count; ++k) {
        const std::int32_t v = r.i32();
        if (v < 0 || static_cast<std::uint32_t>(v) >= n) {
          malformed(std::string("hierarchy ") + what + ": node " +
                    std::to_string(v) + " out of range");
        }
        out[k] = v;
      }
    };
    read_nodes(p.nodes, "piece nodes");
    read_nodes(p.separator, "separator");
  }
  h.hierarchy.cost = decode_cost(r);
  r.expect_exhausted("hierarchy section");
  h.hierarchy.rebuild_derived(h.num_nodes);
  return h;
}

namespace {

void encode_i32_array(ByteWriter& w, const std::vector<std::int32_t>& a) {
  w.u64(a.size());
  for (const std::int32_t v : a) w.i32(v);
}

void encode_i64_array(ByteWriter& w, const std::vector<std::int64_t>& a) {
  w.u64(a.size());
  for (const std::int64_t v : a) w.i64(v);
}

std::vector<std::int32_t> decode_i32_array(ByteReader& r, const char* what) {
  const std::uint64_t count = r.u64();
  if (count > (1ull << 31)) {
    malformed(std::string("implausible ") + what + " length");
  }
  std::vector<std::int32_t> a(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    a[static_cast<std::size_t>(i)] = r.i32();
  }
  return a;
}

std::vector<std::int64_t> decode_i64_array(ByteReader& r, const char* what) {
  const std::uint64_t count = r.u64();
  if (count > (1ull << 31)) {
    malformed(std::string("implausible ") + what + " length");
  }
  std::vector<std::int64_t> a(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    a[static_cast<std::size_t>(i)] = r.i64();
  }
  return a;
}

// Offsets arrays must start at 0 and be non-decreasing, ending at the
// length of the array they index.
void check_offsets(const std::vector<std::int64_t>& off, std::size_t total,
                   const char* what) {
  if (off.empty() || off.front() != 0 ||
      off.back() != static_cast<std::int64_t>(total)) {
    malformed(std::string("query index: ") + what + " offsets corrupt");
  }
  for (std::size_t i = 1; i < off.size(); ++i) {
    if (off[i] < off[i - 1]) {
      malformed(std::string("query index: ") + what +
                " offsets not monotone");
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_query_index(const query::QueryIndex& qi) {
  ByteWriter w;
  w.i32(qi.leaf_size);
  w.u32(static_cast<std::uint32_t>(qi.num_nodes));
  encode_i32_array(w, qi.piece_level);
  encode_i64_array(w, qi.sep_off);
  encode_i32_array(w, qi.sep_nodes);
  encode_i64_array(w, qi.path_off);
  encode_i32_array(w, qi.path_piece);
  encode_i64_array(w, qi.block_off);
  encode_i32_array(w, qi.dist);
  encode_i32_array(w, qi.leaf_pos);
  encode_i64_array(w, qi.leaf_tab_off);
  encode_i32_array(w, qi.leaf_tab);
  return w.take();
}

query::QueryIndex decode_query_index(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  query::QueryIndex qi;
  qi.leaf_size = r.i32();
  const std::uint32_t n = r.u32();
  if (n > (1u << 30)) malformed("implausible query index node count");
  qi.num_nodes = static_cast<planar::NodeId>(n);
  qi.piece_level = decode_i32_array(r, "piece_level");
  qi.sep_off = decode_i64_array(r, "sep_off");
  qi.sep_nodes = decode_i32_array(r, "sep_nodes");
  qi.path_off = decode_i64_array(r, "path_off");
  qi.path_piece = decode_i32_array(r, "path_piece");
  qi.block_off = decode_i64_array(r, "block_off");
  qi.dist = decode_i32_array(r, "dist");
  qi.leaf_pos = decode_i32_array(r, "leaf_pos");
  qi.leaf_tab_off = decode_i64_array(r, "leaf_tab_off");
  qi.leaf_tab = decode_i32_array(r, "leaf_tab");
  r.expect_exhausted("query index section");

  const std::size_t pieces = qi.piece_level.size();
  if (qi.sep_off.size() != pieces + 1 ||
      qi.leaf_tab_off.size() != pieces + 1) {
    malformed("query index: piece table sizes disagree");
  }
  if (qi.path_off.size() != static_cast<std::size_t>(n) + 1 ||
      qi.leaf_pos.size() != static_cast<std::size_t>(n)) {
    malformed("query index: node table sizes disagree");
  }
  check_offsets(qi.sep_off, qi.sep_nodes.size(), "sep");
  check_offsets(qi.path_off, qi.path_piece.size(), "path");
  check_offsets(qi.leaf_tab_off, qi.leaf_tab.size(), "leaf table");
  if (qi.block_off.size() != qi.path_piece.size()) {
    malformed("query index: block_off/path_piece sizes disagree");
  }
  for (const std::int32_t p : qi.path_piece) {
    if (p < 0 || static_cast<std::size_t>(p) >= pieces) {
      malformed("query index: chain references unknown piece " +
                std::to_string(p));
    }
  }
  return qi;
}

DfsArtifact dfs_artifact_from_tree(const dfs::PartialDfsTree& tree) {
  DfsArtifact d;
  d.root = tree.root();
  const planar::NodeId n = tree.graph().num_nodes();
  d.parent.resize(static_cast<std::size_t>(n));
  d.depth.resize(static_cast<std::size_t>(n));
  for (planar::NodeId v = 0; v < n; ++v) {
    d.parent[static_cast<std::size_t>(v)] = tree.parent(v);
    d.depth[static_cast<std::size_t>(v)] = tree.depth(v);
  }
  return d;
}

// ----------------------------------------------------------- file level --

std::vector<std::uint8_t> encode_graph_artifact(const planar::EmbeddedGraph& g,
                                                const ArtifactMeta* meta) {
  Artifact a;
  ArtifactMeta m = meta != nullptr ? *meta : ArtifactMeta{};
  m.fingerprint = core::topology_fingerprint(g);
  a.add(SectionId::kMeta, encode_meta(m));
  a.add(SectionId::kGraph, encode_graph(g));
  if (g.has_coordinates()) {
    a.add(SectionId::kCoords, encode_coords(g.coordinates()));
  }
  return assemble(a);
}

LoadedGraph decode_graph_artifact(const std::vector<std::uint8_t>& bytes) {
  const Artifact a = parse(bytes);
  const Section* gs = a.find(SectionId::kGraph);
  if (gs == nullptr) malformed("no graph section");
  LoadedGraph out{decode_graph(gs->bytes), {}};
  if (const Section* cs = a.find(SectionId::kCoords)) {
    std::vector<planar::Point> coords = decode_coords(cs->bytes);
    if (coords.size() != static_cast<std::size_t>(out.graph.num_nodes())) {
      malformed("coords section size does not match the graph");
    }
    out.graph.set_coordinates(std::move(coords));
  }
  if (const Section* ms = a.find(SectionId::kMeta)) {
    out.meta = decode_meta(ms->bytes);
    const std::uint64_t fp = core::topology_fingerprint(out.graph);
    if (out.meta.fingerprint != 0 && out.meta.fingerprint != fp) {
      throw FormatError("fingerprint mismatch: file says " +
                        core::fingerprint_hex(out.meta.fingerprint) +
                        ", decoded graph hashes to " +
                        core::fingerprint_hex(fp));
    }
  }
  return out;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  // Unique tmp suffix: concurrent writers of one content-addressed path
  // (e.g. two batch workers storing the same corpus instance) must not
  // interleave into a shared tmp file; last rename wins, same content.
  static std::atomic<unsigned> tmp_serial{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(tmp_serial.fetch_add(1));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw FormatError("cannot open " + tmp + " for writing");
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) throw FormatError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw FormatError("cannot rename " + tmp + " to " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw FormatError("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  f.seekg(0, std::ios::end);
  const std::streampos end = f.tellg();
  if (end < 0) throw FormatError("cannot size " + path);
  bytes.resize(static_cast<std::size_t>(end));
  f.seekg(0, std::ios::beg);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  if (!f) throw FormatError("short read from " + path);
  return bytes;
}

void save_graph(const std::string& path, const planar::EmbeddedGraph& g,
                const ArtifactMeta* meta) {
  write_file(path, encode_graph_artifact(g, meta));
}

LoadedGraph load_graph(const std::string& path) {
  try {
    return decode_graph_artifact(read_file(path));
  } catch (const FormatError& e) {
    throw FormatError(path + ": " + e.what());
  }
}

}  // namespace plansep::io
