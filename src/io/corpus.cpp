#include "io/corpus.hpp"

#include <algorithm>
#include <filesystem>

#include "core/fingerprint.hpp"

namespace plansep::io {

namespace fs = std::filesystem;

std::string corpus_path(const std::string& root, const std::string& family,
                        std::uint64_t fingerprint) {
  return (fs::path(root) / family /
          (core::fingerprint_hex(fingerprint) + ".psg"))
      .string();
}

std::string store_in_corpus(const std::string& root, const std::string& family,
                            const planar::EmbeddedGraph& g,
                            std::uint64_t seed) {
  const std::uint64_t fp = core::topology_fingerprint(g);
  const std::string path = corpus_path(root, family, fp);
  std::error_code ec;
  if (fs::exists(path, ec)) return path;  // content-addressed: already stored
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    throw FormatError("cannot create corpus directory for " + path + ": " +
                      ec.message());
  }
  ArtifactMeta meta;
  meta.family = family;
  meta.seed = seed;
  save_graph(path, g, &meta);
  return path;
}

LoadedGraph load_from_corpus(const std::string& root,
                             const std::string& family,
                             std::uint64_t fingerprint) {
  return load_graph(corpus_path(root, family, fingerprint));
}

std::vector<CorpusEntry> list_corpus(const std::string& root) {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  for (const fs::directory_entry& fam : fs::directory_iterator(root, ec)) {
    if (!fam.is_directory()) continue;
    std::error_code ec2;
    for (const fs::directory_entry& f :
         fs::directory_iterator(fam.path(), ec2)) {
      const fs::path p = f.path();
      if (p.extension() != ".psg") continue;
      std::uint64_t fp = 0;
      if (!core::fingerprint_from_hex(p.stem().string(), fp)) continue;
      out.push_back(
          CorpusEntry{fam.path().filename().string(), fp, p.string()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.family != b.family ? a.family < b.family
                                          : a.fingerprint < b.fingerprint;
            });
  return out;
}

}  // namespace plansep::io
