#pragma once

// Text import/export: edge lists, Graphviz DOT, and JSON summaries — the
// glue for using plansep on external data and inspecting results visually.
// The binary persistence format lives next door in io/artifact.hpp.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "dfs/partial_tree.hpp"
#include "planar/embedded_graph.hpp"

namespace plansep::io {

/// Parses whitespace-separated "u v" pairs, one edge per line; lines
/// starting with '#' are comments. Node ids are arbitrary non-negative
/// integers and are compacted; returns (n, edges). Throws CheckError on
/// malformed input.
struct EdgeListInput {
  planar::NodeId num_nodes = 0;
  std::vector<std::pair<planar::NodeId, planar::NodeId>> edges;
  /// Compacted id -> original id.
  std::vector<long long> original_id;
};
EdgeListInput read_edge_list(std::istream& in);

/// Graphviz DOT of the graph; nodes in `highlight` are filled. When a tree
/// is given, tree edges are drawn bold.
std::string to_dot(const planar::EmbeddedGraph& g,
                   const std::vector<char>& highlight = {},
                   const dfs::PartialDfsTree* tree = nullptr);

/// Compact JSON summary of a DFS tree: root, parent and depth arrays.
std::string dfs_to_json(const dfs::PartialDfsTree& tree);

/// Compact JSON for a node set (e.g. a separator path).
std::string nodes_to_json(const std::vector<planar::NodeId>& nodes);

}  // namespace plansep::io
