#include "ingest/error.hpp"

namespace plansep::ingest {

const char* ingest_error_code_name(IngestErrorCode code) {
  switch (code) {
    case IngestErrorCode::kParse: return "parse";
    case IngestErrorCode::kOverflow: return "overflow";
    case IngestErrorCode::kLineLimit: return "line-limit";
    case IngestErrorCode::kSelfLoop: return "self-loop";
    case IngestErrorCode::kDuplicateEdge: return "duplicate-edge";
    case IngestErrorCode::kNodeLimit: return "node-limit";
    case IngestErrorCode::kEdgeLimit: return "edge-limit";
    case IngestErrorCode::kEmpty: return "empty";
    case IngestErrorCode::kNonPlanar: return "non-planar";
  }
  return "unknown";
}

std::string IngestError::format_message(IngestErrorCode code,
                                        std::size_t line,
                                        const std::string& detail) {
  std::string msg = "ingest rejected [";
  msg += ingest_error_code_name(code);
  msg += "]";
  if (line > 0) {
    msg += " line ";
    msg += std::to_string(line);
  }
  msg += ": ";
  msg += detail;
  return msg;
}

}  // namespace plansep::ingest
