#pragma once

/// \file
/// Streaming hostile-input-safe edge-list reader: plain `u v` lines and
/// DIMACS-ish files, with per-line byte caps and overflow-checked
/// integer parsing. First stage of the ingest pipeline.

// The reader trusts nothing: lines are length-capped before tokenizing,
// integers are accumulated with an explicit overflow check (no strtoll
// UB / errno dance), CRLF is tolerated, and the edge count is capped
// while streaming so a multi-gigabyte hostile input fails fast instead
// of being buffered whole. It does *no* graph-level validation — node
// compaction, dedup, planarity all happen in pipeline.cpp — so its
// output is exactly "the edges the text encodes", in input order.

#include <cstddef>
#include <istream>
#include <vector>

#include "ingest/error.hpp"

namespace plansep::ingest {

/// Input text dialects. kAuto sniffs: a first significant line starting
/// with "p " selects DIMACS, anything else the plain edge list.
enum class TextFormat : std::uint8_t {
  kAuto = 0,      ///< sniff the dialect from the first significant line
  kEdgeList = 1,  ///< `u v` per line; blank lines and `#...` comments
  kDimacs = 2,    ///< `c` comments, one `p <tag> <n> <m>` header, `e u v`
};

/// Stable name of a format ("auto", "edges", "dimacs") — the spellings
/// accepted by the CLI's --format flag.
const char* text_format_name(TextFormat f);

/// Inverse of text_format_name. Returns false on an unknown name,
/// leaving `out` untouched.
bool text_format_from_name(const std::string& name, TextFormat& out);

/// Streaming caps enforced by the reader itself.
struct ReaderLimits {
  std::size_t max_line_bytes = 1 << 16;  ///< kLineLimit past this
  std::size_t max_edges = 1u << 22;      ///< kEdgeLimit past this
};

/// The raw parse result: edges in input order, original ids untouched.
struct RawEdgeList {
  /// Edges exactly as the text encodes them, in input order.
  std::vector<std::pair<long long, long long>> edges;
  long long declared_nodes = -1;  ///< DIMACS `p` node count (-1 if absent)
  long long declared_edges = -1;  ///< DIMACS `p` edge count (-1 if absent)
  std::size_t lines = 0;          ///< physical lines consumed
  std::size_t comment_lines = 0;  ///< comment/blank lines skipped
  TextFormat detected = TextFormat::kEdgeList;  ///< post-sniff dialect
};

/// Reads the whole stream under the caps. Throws IngestError with code
/// kParse / kOverflow / kLineLimit / kEdgeLimit and the 1-based line.
RawEdgeList read_untrusted_edge_list(std::istream& in, TextFormat format,
                                     const ReaderLimits& limits);

}  // namespace plansep::ingest
