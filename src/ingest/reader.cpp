#include "ingest/reader.hpp"

#include <limits>
#include <string>

namespace plansep::ingest {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t'; }

/// Cursor over one line; all token extraction goes through here.
struct LineCursor {
  const std::string& s;
  std::size_t pos = 0;
  std::size_t line_no;

  void skip_ws() {
    while (pos < s.size() && is_space(s[pos])) ++pos;
  }

  bool at_end() {
    skip_ws();
    return pos >= s.size();
  }

  /// Parses one non-negative integer token with an explicit overflow
  /// check. Anything that is not pure digits is a parse error.
  long long take_number(const char* what) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
      throw IngestError(IngestErrorCode::kParse, line_no,
                        std::string("signed ") + what + " '" +
                            token_preview(start) + "' (ids must be plain "
                            "non-negative integers)");
    }
    unsigned long long value = 0;
    bool any = false;
    constexpr unsigned long long kMax =
        static_cast<unsigned long long>(std::numeric_limits<long long>::max());
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      const unsigned long long digit = static_cast<unsigned long long>(s[pos] - '0');
      if (value > (kMax - digit) / 10) {
        throw IngestError(IngestErrorCode::kOverflow, line_no,
                          std::string(what) + " '" + token_preview(start) +
                              "' exceeds 2^63-1");
      }
      value = value * 10 + digit;
      any = true;
      ++pos;
    }
    if (!any || (pos < s.size() && !is_space(s[pos]))) {
      // No digits at all, or digits glued to trailing garbage ("12x").
      throw IngestError(IngestErrorCode::kParse, line_no,
                        std::string("expected ") + what + ", got '" +
                            token_preview(start) + "'");
    }
    return static_cast<long long>(value);
  }

  void expect_line_end() {
    skip_ws();
    if (pos < s.size()) {
      throw IngestError(IngestErrorCode::kParse, line_no,
                        "trailing tokens after edge: '" + token_preview(pos) +
                            "'");
    }
  }

  /// A short printable preview of the token at `from`, for messages.
  std::string token_preview(std::size_t from) const {
    std::size_t end = from;
    while (end < s.size() && !is_space(s[end])) ++end;
    std::string tok = s.substr(from, std::min<std::size_t>(end - from, 24));
    for (char& c : tok) {
      if (static_cast<unsigned char>(c) < 0x20 ||
          static_cast<unsigned char>(c) > 0x7e) {
        c = '?';
      }
    }
    if (end - from > 24) tok += "...";
    return tok;
  }
};

/// Reads one line with the byte cap enforced *while* reading, so one
/// hostile gigabyte line cannot be buffered. Strips a trailing '\r'.
bool read_capped_line(std::istream& in, std::size_t max_bytes,
                      std::size_t line_no, std::string& out) {
  out.clear();
  char c;
  bool any = false;
  while (in.get(c)) {
    any = true;
    if (c == '\n') break;
    if (out.size() >= max_bytes) {
      throw IngestError(IngestErrorCode::kLineLimit, line_no,
                        "line exceeds max_line_bytes=" +
                            std::to_string(max_bytes));
    }
    out.push_back(c);
  }
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return any;
}

}  // namespace

const char* text_format_name(TextFormat f) {
  switch (f) {
    case TextFormat::kAuto: return "auto";
    case TextFormat::kEdgeList: return "edges";
    case TextFormat::kDimacs: return "dimacs";
  }
  return "?";
}

bool text_format_from_name(const std::string& name, TextFormat& out) {
  for (TextFormat f : {TextFormat::kAuto, TextFormat::kEdgeList,
                       TextFormat::kDimacs}) {
    if (name == text_format_name(f)) {
      out = f;
      return true;
    }
  }
  return false;
}

RawEdgeList read_untrusted_edge_list(std::istream& in, TextFormat format,
                                     const ReaderLimits& limits) {
  RawEdgeList out;
  out.detected =
      format == TextFormat::kAuto ? TextFormat::kEdgeList : format;
  bool sniffing = format == TextFormat::kAuto;
  bool saw_p_line = false;
  std::string line;
  while (read_capped_line(in, limits.max_line_bytes, out.lines + 1, line)) {
    ++out.lines;
    LineCursor cur{line, 0, out.lines};
    if (cur.at_end()) {
      ++out.comment_lines;
      continue;
    }
    const char head = line[cur.pos];
    if (sniffing) {
      // First significant line decides the dialect: a DIMACS file leads
      // with "c ..." comments or the "p ..." header.
      if ((head == 'p' || head == 'c') &&
          (cur.pos + 1 == line.size() || is_space(line[cur.pos + 1]))) {
        out.detected = TextFormat::kDimacs;
      }
      sniffing = false;
    }

    if (out.detected == TextFormat::kEdgeList) {
      if (head == '#') {
        ++out.comment_lines;
        continue;
      }
    } else {
      // DIMACS: a one-letter line tag, then the payload.
      if (cur.pos + 1 < line.size() && !is_space(line[cur.pos + 1])) {
        throw IngestError(IngestErrorCode::kParse, out.lines,
                          "unknown dimacs line tag '" +
                              cur.token_preview(cur.pos) + "'");
      }
      if (head == 'c') {
        ++out.comment_lines;
        continue;
      }
      if (head == 'p') {
        if (saw_p_line) {
          throw IngestError(IngestErrorCode::kParse, out.lines,
                            "duplicate dimacs 'p' header");
        }
        saw_p_line = true;
        ++cur.pos;
        cur.skip_ws();
        // Skip the problem tag ("edge", "sp", ...), then read n and m.
        while (cur.pos < line.size() && !is_space(line[cur.pos]) &&
               !(line[cur.pos] >= '0' && line[cur.pos] <= '9')) {
          ++cur.pos;
        }
        out.declared_nodes = cur.take_number("dimacs node count");
        out.declared_edges = cur.take_number("dimacs edge count");
        cur.expect_line_end();
        continue;
      }
      if (head != 'e' && head != 'a') {
        throw IngestError(IngestErrorCode::kParse, out.lines,
                          "unknown dimacs line tag '" +
                              cur.token_preview(cur.pos) + "'");
      }
      ++cur.pos;  // consume the 'e' / 'a' tag, fall through to `u v`
    }

    const long long u = cur.take_number("node id");
    const long long v = cur.take_number("node id");
    cur.expect_line_end();
    if (out.edges.size() >= limits.max_edges) {
      throw IngestError(IngestErrorCode::kEdgeLimit, out.lines,
                        "edge count exceeds max_edges=" +
                            std::to_string(limits.max_edges));
    }
    out.edges.push_back({u, v});
  }
  if (out.detected == TextFormat::kDimacs && !saw_p_line &&
      !out.edges.empty()) {
    throw IngestError(IngestErrorCode::kParse, 0,
                      "dimacs input without a 'p' header");
  }
  return out;
}

}  // namespace plansep::ingest
