#include "ingest/pipeline.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "core/fingerprint.hpp"
#include "io/corpus.hpp"
#include "planar/dmp_embedder.hpp"
#include "planar/triangulate.hpp"

namespace plansep::ingest {

namespace {

using planar::NodeId;

}  // namespace

IngestResult ingest_text(std::istream& in, const IngestOptions& opts) {
  ReaderLimits limits;
  limits.max_line_bytes = opts.max_line_bytes;
  limits.max_edges = opts.max_edges < 0
                         ? 0
                         : static_cast<std::size_t>(opts.max_edges);
  const RawEdgeList raw = read_untrusted_edge_list(in, opts.format, limits);

  IngestResult out;
  out.stats.lines = raw.lines;
  out.stats.comment_lines = raw.comment_lines;
  out.stats.input_edges = raw.edges.size();

  if (raw.declared_edges >= 0 &&
      raw.declared_edges != static_cast<long long>(raw.edges.size())) {
    throw IngestError(
        IngestErrorCode::kParse, 0,
        "dimacs header declares " + std::to_string(raw.declared_edges) +
            " edges, input has " + std::to_string(raw.edges.size()));
  }

  // Canonicalize: self-loop policy first, then dense ids by ascending
  // original id (rank order, so the canonical graph — and hence the
  // fingerprint — is a pure function of the edge *set*, independent of
  // line order and edge orientation), edges normalized (min, max).
  std::vector<std::pair<long long, long long>> kept;
  kept.reserve(raw.edges.size());
  for (const auto& [ou, ov] : raw.edges) {
    if (ou == ov) {
      if (opts.drop_self_loops) {
        ++out.stats.dropped_self_loops;
        continue;
      }
      throw IngestError(IngestErrorCode::kSelfLoop, 0,
                        "self-loop at node " + std::to_string(ou) +
                            " (pass --drop-self-loops to drop)");
    }
    kept.push_back({ou, ov});
  }
  std::vector<long long> original_id;
  original_id.reserve(kept.size() * 2);
  for (const auto& [ou, ov] : kept) {
    original_id.push_back(ou);
    original_id.push_back(ov);
  }
  std::sort(original_id.begin(), original_id.end());
  original_id.erase(std::unique(original_id.begin(), original_id.end()),
                    original_id.end());
  const std::int64_t node_cap =
      std::min<std::int64_t>(std::max<std::int64_t>(opts.max_nodes, 0),
                             std::numeric_limits<NodeId>::max());
  if (static_cast<std::int64_t>(original_id.size()) > node_cap) {
    throw IngestError(IngestErrorCode::kNodeLimit, 0,
                      "distinct node count " +
                          std::to_string(original_id.size()) +
                          " exceeds max_nodes=" +
                          std::to_string(opts.max_nodes));
  }
  std::unordered_map<long long, NodeId> rank;
  rank.reserve(original_id.size());
  for (std::size_t i = 0; i < original_id.size(); ++i) {
    rank.emplace(original_id[i], static_cast<NodeId>(i));
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(kept.size());
  for (const auto& [ou, ov] : kept) {
    NodeId u = rank.at(ou);
    NodeId v = rank.at(ov);
    if (u > v) std::swap(u, v);
    edges.push_back({u, v});
  }
  std::sort(edges.begin(), edges.end());
  const auto dup = std::adjacent_find(edges.begin(), edges.end());
  if (dup != edges.end() && !opts.drop_duplicate_edges) {
    throw IngestError(
        IngestErrorCode::kDuplicateEdge, 0,
        "duplicate edge {" +
            std::to_string(original_id[static_cast<std::size_t>(dup->first)]) +
            ", " +
            std::to_string(original_id[static_cast<std::size_t>(dup->second)]) +
            "} (pass --drop-duplicates to drop)");
  }
  const std::size_t before = edges.size();
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  out.stats.dropped_duplicates = before - edges.size();

  if (edges.empty()) {
    throw IngestError(IngestErrorCode::kEmpty, 0, "no edges in input");
  }
  if (raw.declared_nodes >= 0 &&
      static_cast<long long>(original_id.size()) > raw.declared_nodes) {
    throw IngestError(
        IngestErrorCode::kParse, 0,
        "dimacs header declares " + std::to_string(raw.declared_nodes) +
            " nodes, input references " +
            std::to_string(original_id.size()));
  }

  // Admission proper: the hardened DMP planarity check.
  const NodeId n = static_cast<NodeId>(original_id.size());
  planar::PlanarityResult check =
      planar::planar_embedding_with_witness(n, edges);
  if (!check.planar()) {
    std::vector<IngestError::Edge> witness;
    witness.reserve(check.witness.size());
    for (const auto& [u, v] : check.witness) {
      witness.push_back({original_id[static_cast<std::size_t>(u)],
                         original_id[static_cast<std::size_t>(v)]});
    }
    const std::string detail = "graph is not planar (witness: " +
                               std::to_string(witness.size()) +
                               "-edge non-planar subgraph)";
    throw IngestError(IngestErrorCode::kNonPlanar, 0, detail,
                      std::move(witness));
  }

  out.graph = std::move(*check.embedding);
  if (opts.triangulate) {
    planar::Triangulation tri = planar::triangulate_with_apexes(out.graph);
    out.stats.apexes = tri.apexes;
    out.graph = std::move(tri.graph);
  }

  out.meta.family = opts.family;
  out.meta.seed = 0;
  out.meta.fingerprint = core::topology_fingerprint(out.graph);
  if (!opts.corpus_root.empty()) {
    out.corpus_file =
        io::store_in_corpus(opts.corpus_root, opts.family, out.graph);
  }
  return out;
}

IngestResult ingest_string(std::string_view text, const IngestOptions& opts) {
  std::istringstream in{std::string(text)};
  return ingest_text(in, opts);
}

IngestResult ingest_file(const std::string& path, const IngestOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw io::FormatError("ingest: cannot open '" + path + "'");
  }
  return ingest_text(in, opts);
}

}  // namespace plansep::ingest
