#pragma once

/// \file
/// Typed rejection taxonomy of the ingest front door: every way an
/// untrusted external graph can be refused, as a machine-readable code
/// plus a deterministic human-readable message.

// Ingest rejections are exceptions on purpose: the pipeline is a straight
// line (read → canonicalize → planarity → persist) and every stage can
// refuse, so a typed exception keeps the accept path free of error
// plumbing while the CLI / daemon catch one type at the boundary. The
// message format is part of the operator contract (docs/INGEST.md lists
// the exact strings); tooling should switch on code(), not parse text.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace plansep::ingest {

/// Why an input was rejected. Values are part of the wire protocol
/// (kIngestResp carries the code as one byte) — append, never renumber.
enum class IngestErrorCode : std::uint8_t {
  kParse = 1,          ///< malformed line / token / header
  kOverflow = 2,       ///< numeric token exceeds 2^63-1 or is negative
  kLineLimit = 3,      ///< a single line exceeds max_line_bytes
  kSelfLoop = 4,       ///< u == v under the reject policy
  kDuplicateEdge = 5,  ///< repeated {u,v} under the reject policy
  kNodeLimit = 6,      ///< distinct node count exceeds max_nodes
  kEdgeLimit = 7,      ///< edge count exceeds max_edges
  kEmpty = 8,          ///< no edges survive parsing
  kNonPlanar = 9,      ///< DMP rejection; witness() has the subgraph
};

/// Stable lower-case name of a code ("parse", "overflow", ...). The
/// spelling used in error messages, CLI output and docs/INGEST.md.
const char* ingest_error_code_name(IngestErrorCode code);

/// An ingest rejection: code + 1-based input line (0 when the rejection
/// is not tied to one line) + detail, and for kNonPlanar the offending
/// subgraph's edge list in the *original* (external) node ids.
class IngestError : public std::runtime_error {
 public:
  /// A witness edge in original (external) node ids.
  using Edge = std::pair<long long, long long>;

  /// Builds the rejection; the what() string is format_message(...).
  IngestError(IngestErrorCode code, std::size_t line, const std::string& detail,
              std::vector<Edge> witness = {})
      : std::runtime_error(format_message(code, line, detail)),
        code_(code),
        line_(line),
        detail_(detail),
        witness_(std::move(witness)) {}

  /// The machine-readable rejection class; switch on this, not what().
  IngestErrorCode code() const { return code_; }
  /// 1-based line number of the offending input line; 0 if whole-input.
  std::size_t line() const { return line_; }
  /// The detail clause of the message, without the code/line prefix.
  const std::string& detail() const { return detail_; }
  /// Non-planarity witness (original ids); empty for every other code.
  const std::vector<Edge>& witness() const { return witness_; }

  /// The exact message grammar: "ingest rejected [<code>]: <detail>" or,
  /// when line > 0, "ingest rejected [<code>] line <line>: <detail>".
  static std::string format_message(IngestErrorCode code, std::size_t line,
                                    const std::string& detail);

 private:
  IngestErrorCode code_;
  std::size_t line_;
  std::string detail_;
  std::vector<Edge> witness_;
};

}  // namespace plansep::ingest
