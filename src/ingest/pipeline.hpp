#pragma once

/// \file
/// The ingest admission pipeline: untrusted text in, canonical
/// fingerprinted `.psg` corpus artifact out — or a typed IngestError.

// Stages (each can reject; codes in ingest/error.hpp):
//
//   read          reader.hpp — caps, overflow-safe parse      (parse,
//                 overflow, line-limit, edge-limit)
//   canonicalize  dense renumbering by ascending original id,
//                 edges normalized (min,max) + sorted + deduped (self-loop,
//                 duplicate-edge, node-limit, edge-limit, empty)
//   admit         DMP planarity with witness                   (non-planar)
//   finalize      optional apex triangulation, fingerprint,
//                 store_in_corpus
//
// The output is indistinguishable from a generated instance: the same
// `.psg` layout, addressed corpus/<family>/<fingerprint>.psg, so
// plansep_batch --graph=, plansepd jobs and the query engine serve it
// with zero changes. Determinism: byte-identical input + options give a
// byte-identical artifact (canonical edge order, canonical embedding).

#include <istream>
#include <string>
#include <string_view>

#include "ingest/reader.hpp"
#include "io/artifact.hpp"
#include "planar/embedded_graph.hpp"

namespace plansep::ingest {

/// Knobs of one admission. Defaults are the hardened production caps;
/// tests and the CLI lower them to probe the rejection taxonomy.
struct IngestOptions {
  TextFormat format = TextFormat::kAuto;  ///< input dialect (kAuto sniffs)
  std::int64_t max_nodes = 1 << 20;       ///< kNodeLimit past this
  std::int64_t max_edges = 1 << 22;       ///< kEdgeLimit past this
  std::size_t max_line_bytes = 1 << 16;   ///< kLineLimit past this
  bool drop_self_loops = false;       ///< true: drop; false: kSelfLoop
  bool drop_duplicate_edges = false;  ///< true: drop; false: kDuplicateEdge
  bool triangulate = false;     ///< apex-triangulate the accepted graph
  std::string family = "ingest";  ///< corpus bucket for the artifact
  std::string corpus_root;        ///< empty: validate only, do not store
};

/// Counters of one accepted admission (rejections carry no stats).
struct IngestStats {
  std::size_t lines = 0;                ///< physical input lines
  std::size_t comment_lines = 0;        ///< blank/comment lines skipped
  std::size_t input_edges = 0;          ///< edges parsed from the text
  std::size_t dropped_self_loops = 0;   ///< under the drop policy
  std::size_t dropped_duplicates = 0;   ///< under the drop policy
  int apexes = 0;                       ///< vertices added by triangulation
};

/// An accepted graph: the canonical embedding plus its corpus identity.
struct IngestResult {
  planar::EmbeddedGraph graph;  ///< canonical (post-triangulation) embedding
  io::ArtifactMeta meta;        ///< family + fingerprint (seed = 0)
  std::string corpus_file;      ///< stored path ("" when corpus_root empty)
  IngestStats stats;            ///< admission counters
};

/// Runs the full pipeline over a stream. Throws IngestError on any
/// rejection; never throws anything else on malformed *input* (I/O and
/// out-of-memory failures surface as their usual exceptions).
IngestResult ingest_text(std::istream& in, const IngestOptions& opts);

/// ingest_text over an in-memory buffer (the daemon frame path).
IngestResult ingest_string(std::string_view text, const IngestOptions& opts);

/// ingest_text over a file; throws io::FormatError if unreadable.
IngestResult ingest_file(const std::string& path, const IngestOptions& opts);

}  // namespace plansep::ingest
