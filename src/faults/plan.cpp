#include "faults/plan.hpp"

#include <algorithm>
#include <sstream>

namespace plansep::faults {

namespace {

// Stream tags keep the decision families statistically independent even
// though they share one seed. mix_seed / topology_fingerprint themselves
// live in core/fingerprint.cpp (shared with io and serve); the decision
// kernels here must keep hashing exactly as before the hoist.
constexpr std::uint64_t kDropStream = 0x64726f700a0a0a01ULL;
constexpr std::uint64_t kCrashStream = 0x63726173680a0a02ULL;
constexpr std::uint64_t kReorderStream = 0x72656f7264657203ULL;
constexpr std::uint64_t kOutageStream = 0x6f75746167650a04ULL;

// Uniform [0, 1) from the hash's top 53 bits.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string FaultSpec::describe() const {
  std::ostringstream os;
  bool any = false;
  const auto put = [&](const char* name, double p) {
    if (p <= 0) return;
    if (any) os << ' ';
    os << name << '=' << p;
    any = true;
  };
  put("drop", drop_prob);
  put("dup", duplicate_prob);
  put("stall", stall_prob);
  put("reorder", reorder_prob);
  if (crash_prob > 0) {
    if (any) os << ' ';
    os << "crash=" << crash_prob << "/len" << crash_length << "/win"
       << window_rounds;
    any = true;
  }
  if (edge_outage_prob > 0) {
    if (any) os << ' ';
    os << "outage=" << edge_outage_prob << "/win" << window_rounds;
    any = true;
  }
  if (!any) os << "empty";
  return os.str();
}

bool FaultPlan::crashed(int round, NodeId v) const {
  if (spec_.crash_prob <= 0) return false;
  const int window = round / spec_.window_rounds;
  if (round % spec_.window_rounds >= spec_.crash_length) return false;
  const std::uint64_t h =
      mix_seed(seed_, kCrashStream, static_cast<std::uint64_t>(v),
               static_cast<std::uint64_t>(window));
  return unit(h) < spec_.crash_prob;
}

congest::FaultInjector::Fate FaultPlan::fate(int round, NodeId from,
                                             NodeId to) const {
  using Fate = congest::FaultInjector::Fate;
  if (spec_.edge_outage_prob > 0) {
    // Keyed by the undirected edge and the scheduling window, so an
    // outage silences the link in both directions for the whole window.
    const std::uint64_t lo = static_cast<std::uint64_t>(std::min(from, to));
    const std::uint64_t hi = static_cast<std::uint64_t>(std::max(from, to));
    const std::uint64_t h =
        mix_seed(seed_, kOutageStream, (lo << 32) | hi,
                 static_cast<std::uint64_t>(round / spec_.window_rounds));
    if (unit(h) < spec_.edge_outage_prob) return Fate::kDrop;
  }
  const double iid = spec_.drop_prob + spec_.duplicate_prob + spec_.stall_prob;
  if (iid <= 0) return Fate::kDeliver;
  const std::uint64_t h = mix_seed(
      seed_, kDropStream,
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to),
      static_cast<std::uint64_t>(round));
  const double u = unit(h);
  if (u < spec_.drop_prob) return Fate::kDrop;
  if (u < spec_.drop_prob + spec_.duplicate_prob) return Fate::kDuplicate;
  if (u < iid) return Fate::kStall;
  return Fate::kDeliver;
}

std::uint64_t FaultPlan::reorder_seed(int round, NodeId to) const {
  if (spec_.reorder_prob <= 0) return 0;
  const std::uint64_t h =
      mix_seed(seed_, kReorderStream, static_cast<std::uint64_t>(to),
               static_cast<std::uint64_t>(round));
  if (unit(h) >= spec_.reorder_prob) return 0;
  return h | 1;  // nonzero by construction
}

}  // namespace plansep::faults
