#include "faults/recovery.hpp"

#include <exception>

#include "dfs/validate.hpp"
#include "obs/metrics.hpp"
#include "separator/validate.hpp"
#include "subroutines/part_context.hpp"

namespace plansep::faults {

namespace {

// Charges `rounds` of backoff to a ledger and the obs round clock. Backoff
// models the adversary-mandated cool-down before re-running a phase; it is
// real protocol time, so it lands in both the measured and charged columns.
void charge_backoff(shortcuts::RoundCost& cost, long long rounds) {
  cost.measured += rounds;
  cost.charged += rounds;
  obs::advance_rounds(rounds);
}

long long backoff_for_attempt(const RetryPolicy& policy, int attempt) {
  return policy.backoff_base_rounds << (attempt - 1);
}

}  // namespace

RecoveredDfs build_dfs_tree_with_recovery(const planar::EmbeddedGraph& g,
                                          planar::NodeId root,
                                          const RetryPolicy& policy) {
  obs::Span span("faults/recover_dfs");
  RecoveredDfs out;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    out.recovery.attempts = attempt;
    try {
      // Fresh engine per attempt: its BFS tree is itself built over the
      // faulty network, so a broken setup must be redone too.
      shortcuts::PartwiseEngine engine(g, root);
      dfs::DfsBuildResult build = dfs::build_dfs_tree(g, root, engine);
      out.cost += build.cost;
      const dfs::DfsCheck check = dfs::check_dfs_tree(g, build.tree);
      if (check.ok()) {
        out.build = std::move(build);
        out.recovery.ok = true;
        out.recovery.failure.clear();
        break;
      }
      out.recovery.failure = "dfs invariant violated: " + check.summary();
    } catch (const std::exception& e) {
      out.recovery.failure = std::string("dfs attempt threw: ") + e.what();
    }
    if (attempt < max_attempts) {
      const long long backoff = backoff_for_attempt(policy, attempt);
      out.recovery.backoff_rounds += backoff;
      charge_backoff(out.cost, backoff);
      obs::add_counter("faults/retries");
    }
  }
  span.note("attempts", out.recovery.attempts);
  span.note("ok", out.recovery.ok ? 1 : 0);
  span.note("backoff_rounds", out.recovery.backoff_rounds);
  return out;
}

RecoveredSeparator compute_separator_with_recovery(
    const planar::EmbeddedGraph& g, planar::NodeId root,
    const RetryPolicy& policy) {
  obs::Span span("faults/recover_separator");
  RecoveredSeparator out;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    out.recovery.attempts = attempt;
    try {
      shortcuts::PartwiseEngine engine(g, root);
      out.cost += engine.setup_cost();
      std::vector<int> part(static_cast<std::size_t>(g.num_nodes()), 0);
      sub::PartSet ps = sub::build_part_set(g, part, 1, engine, {root});
      separator::SeparatorEngine se(engine);
      separator::SeparatorResult res = se.compute(ps);
      out.cost += res.cost;
      const separator::SeparatorCheck check =
          separator::check_separator(ps, 0, res.parts.at(0));
      if (check.ok() && res.stats.phase_counts[7] == 0) {
        out.result = std::move(res);
        out.recovery.ok = true;
        out.recovery.failure.clear();
        break;
      }
      if (!check.ok()) {
        std::string why = "separator invariant violated:";
        if (!check.is_tree_path) why += " not-tree-path";
        if (!check.simple_path) why += " not-simple";
        if (!check.closure_ok) why += " closure";
        if (!check.balanced) why += " unbalanced";
        out.recovery.failure = why;
      } else {
        out.recovery.failure = "separator used the last-resort fallback";
      }
    } catch (const std::exception& e) {
      out.recovery.failure =
          std::string("separator attempt threw: ") + e.what();
    }
    if (attempt < max_attempts) {
      const long long backoff = backoff_for_attempt(policy, attempt);
      out.recovery.backoff_rounds += backoff;
      charge_backoff(out.cost, backoff);
      obs::add_counter("faults/retries");
    }
  }
  span.note("attempts", out.recovery.attempts);
  span.note("ok", out.recovery.ok ? 1 : 0);
  span.note("backoff_rounds", out.recovery.backoff_rounds);
  return out;
}

}  // namespace plansep::faults
