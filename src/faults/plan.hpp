#pragma once

/// \file
/// Deterministic fault plans: pure-function-of-seed decision kernels for
/// the CONGEST simulator (taxonomy and contract in docs/FAULT_MODEL.md).

// Deterministic fault plans for the CONGEST simulator.
//
// A FaultPlan is a *pure function* of a 64-bit seed plus the topology it
// is asked about: every decision (drop this message? is this node crashed
// in round r?) is computed by stateless hashing of the seed with the query
// coordinates (round, node/edge ids). No wall clock, no per-call
// randomness, no mutable state — so the same seed over the same graph
// yields the same faults on every machine, under every thread count, and
// on every replay. docs/FAULT_MODEL.md specifies the full taxonomy and
// the determinism contract; faults::FaultController adapts a plan to the
// congest::FaultInjector hook.

#include <cstdint>
#include <string>

#include "congest/network.hpp"
#include "core/fingerprint.hpp"

namespace plansep::faults {

using congest::NodeId;          ///< node identifier (planar::NodeId)
using planar::EmbeddedGraph;    ///< embedded planar graph

/// Intensity knobs of a fault plan. All probabilities are in [0, 1]; a
/// default-constructed spec is the empty plan (no faults, zero overhead
/// beyond the engine's fault-path bookkeeping).
struct FaultSpec {
  /// Per-message probability that a delivery is silently lost.
  double drop_prob = 0.0;
  /// Per-message probability that two copies land in the inbox.
  double duplicate_prob = 0.0;
  /// Per-message probability that delivery is delayed one extra round
  /// (the per-edge bandwidth budget perturbation: the message occupies
  /// its edge into the next round).
  double stall_prob = 0.0;
  /// Per-inbox-per-round probability that the delivery order is
  /// adversarially permuted.
  double reorder_prob = 0.0;
  /// Per-(node, window) probability that the node crashes for
  /// crash_length rounds at the window's start.
  double crash_prob = 0.0;
  /// Rounds a crash lasts. Must be < window_rounds to permit restarts.
  int crash_length = 2;
  /// Per-(edge, window) probability that the undirected edge blacks out:
  /// every message on it during the window is dropped.
  double edge_outage_prob = 0.0;
  /// Length of the crash/outage scheduling windows, in rounds.
  int window_rounds = 16;

  /// True when at least one fault kind can fire.
  bool enabled() const {
    return drop_prob > 0 || duplicate_prob > 0 || stall_prob > 0 ||
           reorder_prob > 0 || crash_prob > 0 || edge_outage_prob > 0;
  }
  /// Compact human-readable form, e.g. "drop=0.03 crash=0.05/len2/win16".
  std::string describe() const;
};

/// Stable 64-bit fingerprint of a topology, mixed into the per-run seed
/// so distinct graphs inside one pipeline draw from independent fault
/// streams. The shared implementation lives in core/fingerprint.hpp (io
/// and serve key on the same value); the historical faults:: name stays.
using core::topology_fingerprint;

/// Mixes additional words into a seed (SplitMix64-style avalanche). The
/// one hash primitive every plan decision reduces to — hoisted to
/// core/fingerprint.hpp, re-exported under the historical name.
using core::mix_seed;

/// The pure decision kernel: spec + effective seed → per-query answers.
/// All queries are const, stateless and O(1).
class FaultPlan {
 public:
  /// The empty plan: never injects anything.
  FaultPlan() = default;
  /// A plan drawing every decision from `seed` at the spec's intensities.
  FaultPlan(const FaultSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}

  /// True when no fault can ever fire.
  bool empty() const { return !spec_.enabled(); }
  /// The intensity knobs this plan was built from.
  const FaultSpec& spec() const { return spec_; }
  /// The effective 64-bit seed all decisions derive from.
  std::uint64_t seed() const { return seed_; }

  /// Is v crashed in `round`? (Turn suppressed, pending mail lost.)
  bool crashed(int round, NodeId v) const;
  /// Delivery fate of the message accepted on from→to in `round`.
  congest::FaultInjector::Fate fate(int round, NodeId from, NodeId to) const;
  /// Nonzero seed when the inbox `to` receives this round must be
  /// permuted; zero to keep the canonical order.
  std::uint64_t reorder_seed(int round, NodeId to) const;

 private:
  FaultSpec spec_;
  std::uint64_t seed_ = 0;
};

}  // namespace plansep::faults
