#include "faults/controller.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace plansep::faults {

void FaultController::fold_run() {
  if (!run_open_) return;
  run_open_ = false;
  // The empty plan must leave the registry untouched — an attached but
  // inert controller has to produce byte-identical metrics JSON (the
  // regression in tests/faults_test.cpp).
  if (spec_.enabled()) {
    if (obs::MetricsRegistry* reg = obs::global_registry()) {
      reg->histogram("faults/injected").add(run_injected_);
    }
  }
  run_injected_ = 0;
}

void FaultController::on_run_begin(const EmbeddedGraph& g) {
  // A run aborted by an exception never reached on_run_end; fold it here,
  // exactly like obs::MetricsSink does.
  fold_run();
  plan_ = FaultPlan(
      spec_, mix_seed(seed_, topology_fingerprint(g),
                      static_cast<std::uint64_t>(epoch_)));
  ++epoch_;
  ++counters_.runs;
  run_open_ = true;
}

void FaultController::on_run_end() { fold_run(); }

bool FaultController::crashed(int round, NodeId v) {
  if (!plan_.crashed(round, v)) return false;
  ++counters_.crashed;
  ++run_injected_;
  obs::add_counter("faults/crashed");
  return true;
}

congest::FaultInjector::Fate FaultController::fate(int round, NodeId from,
                                                   NodeId to) {
  const Fate f = plan_.fate(round, from, to);
  switch (f) {
    case Fate::kDrop:
      ++counters_.dropped;
      ++run_injected_;
      obs::add_counter("faults/dropped");
      break;
    case Fate::kDuplicate:
      ++counters_.duplicated;
      ++run_injected_;
      obs::add_counter("faults/duplicated");
      break;
    case Fate::kStall:
      ++counters_.stalled;
      ++run_injected_;
      obs::add_counter("faults/stalled");
      break;
    case Fate::kDeliver:
      break;
  }
  return f;
}

int FaultController::next_alive_round(int round, NodeId v) {
  // Round-fusion lookahead: a *pure* scan over the plan (plan_.crashed,
  // not this->crashed — no counters, no metrics; the engine replays the
  // counting queries per fused round itself). A crash spans crash_length
  // rounds inside one scheduling window, so the restart is always near;
  // the cap is belt-and-braces — stopping early returns an under-estimate,
  // which merely fuses a shorter gap and re-checks. Overshooting would
  // violate the FaultInjector contract; the scan can't, by construction.
  const int cap =
      round + 2 * std::max(spec_.window_rounds, spec_.crash_length) + 2;
  int r = round;
  while (r < cap && plan_.crashed(r, v)) ++r;
  return r;
}

std::uint64_t FaultController::reorder_seed(int round, NodeId to) {
  const std::uint64_t s = plan_.reorder_seed(round, to);
  if (s != 0) {
    ++counters_.reordered;
    ++run_injected_;
    obs::add_counter("faults/reordered");
  }
  return s;
}

}  // namespace plansep::faults
