#pragma once

/// \file
/// Recovery drivers: retry/backoff wrappers that run the separator and
/// DFS pipelines to a validated result under an active fault plan.

// Recovery drivers: retry/backoff wrappers around the separator and DFS
// pipelines for execution under an active fault plan.
//
// The paper's protocols assume the failure-free CONGEST model; under an
// injected fault plan a stage can fail in exactly two observable ways —
// it throws (a protocol invariant broke mid-run, e.g. the BFS wave left
// the graph "disconnected") or it completes with output that violates the
// stage's validator (dfs/validate.hpp, separator/validate.hpp). The
// drivers here detect both, charge an exponential backoff to the round
// ledger (both the measured and charged columns, mirrored into the obs
// clock), and re-run the stage from scratch. Because FaultController
// reseeds its plan per run epoch, a retry faces fresh faults; a plan the
// algorithm can survive is eventually survived, and a plan it cannot is
// reported with the last attempt's diagnosis — never silently.

#include <optional>
#include <string>

#include "dfs/builder.hpp"
#include "separator/engine.hpp"

namespace plansep::faults {

/// Retry/backoff knobs of a recovery driver.
struct RetryPolicy {
  /// Attempts before giving up (>= 1).
  int max_attempts = 4;
  /// Backoff charged after failed attempt k (1-based) is
  /// `backoff_base_rounds << (k-1)` rounds, on both ledgers.
  long long backoff_base_rounds = 32;
};

/// Outcome of a recovery driver: how hard it had to try, and why it gave
/// up when it did.
struct RetryStats {
  /// The final attempt's output passed the stage validator.
  bool ok = false;
  /// Attempts consumed (1 = clean first try).
  int attempts = 0;
  /// Total backoff rounds charged across failed attempts.
  long long backoff_rounds = 0;
  /// Diagnosis of the last failed attempt ("" when ok): the validator's
  /// summary or the thrown exception's message.
  std::string failure;
};

/// Result of build_dfs_tree_with_recovery. `build` is engaged iff
/// recovery.ok.
struct RecoveredDfs {
  std::optional<dfs::DfsBuildResult> build;  ///< the validated DFS build
  RetryStats recovery;                       ///< how recovery went
  /// Everything: successful attempt + failed attempts' charges + backoff.
  shortcuts::RoundCost cost;
};

/// Builds a DFS tree of connected g rooted at `root` (Theorem 2),
/// re-running the whole phase pipeline — fresh PartwiseEngine included,
/// since its BFS tree is itself fault-exposed — until dfs::check_dfs_tree
/// passes or the policy's attempts are exhausted.
RecoveredDfs build_dfs_tree_with_recovery(const planar::EmbeddedGraph& g,
                                          planar::NodeId root,
                                          const RetryPolicy& policy = {});

/// Result of compute_separator_with_recovery. `result` is engaged iff
/// recovery.ok.
struct RecoveredSeparator {
  std::optional<separator::SeparatorResult> result;  ///< validated separator
  RetryStats recovery;        ///< how recovery went
  shortcuts::RoundCost cost;  ///< attempts + backoff, both ledgers
};

/// Computes a cycle separator of connected g as one part (Theorem 1),
/// re-running setup + part build + engine until separator::check_separator
/// passes or the policy's attempts are exhausted.
RecoveredSeparator compute_separator_with_recovery(
    const planar::EmbeddedGraph& g, planar::NodeId root,
    const RetryPolicy& policy = {});

}  // namespace plansep::faults
