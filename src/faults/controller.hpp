#pragma once

/// \file
/// FaultController (the live congest::FaultInjector over a FaultPlan) and
/// the ScopedFaultInjection RAII installer.

// FaultController: the congest::FaultInjector implementation that turns a
// FaultSpec + seed into live injections, plugging into Network::run the
// same way TraceSink/MetricsSink do (instance pointer, process-global
// pointer, or the RAII ScopedFaultInjection).
//
// Per run, the controller derives an *effective* plan seed by mixing the
// base seed with the topology fingerprint and the run ordinal (its
// "epoch"): plan = f(seed, topology, run index). Distinct graphs inside
// one pipeline therefore draw independent fault streams, and a *retry* of
// a failed stage sees fresh faults — the property the recovery driver
// (faults/recovery.hpp) relies on — while the whole execution remains a
// deterministic, replayable function of the one base seed.
//
// Injections are counted (FaultCounters) and mirrored into the global
// metrics registry when one is installed: "faults/dropped",
// "faults/duplicated", "faults/stalled", "faults/reordered",
// "faults/crashed" counters plus a per-run "faults/injected" histogram.

#include <cstdint>

#include "congest/network.hpp"
#include "faults/plan.hpp"

namespace plansep::faults {

/// Running totals of every injection the controller performed.
struct FaultCounters {
  long long dropped = 0;     ///< messages silently lost
  long long duplicated = 0;  ///< messages delivered twice
  long long stalled = 0;     ///< messages delayed one round
  long long reordered = 0;   ///< inbox permutations applied
  long long crashed = 0;     ///< node-rounds suppressed by crashes
  long long runs = 0;        ///< Network::run calls observed
  /// Total individual injections (crash suppressions included).
  long long injected() const {
    return dropped + duplicated + stalled + reordered + crashed;
  }
};

/// Seeded deterministic fault injector. Mutations (the counters, the
/// epoch) happen only from the coordinating thread driving Network::run,
/// like every other sink; one controller must not observe two concurrently
/// running networks.
class FaultController final : public congest::FaultInjector {
 public:
  /// A controller with the empty plan: attaches cleanly, injects nothing,
  /// perturbs nothing (byte-identical runs — see tests/faults_test.cpp).
  FaultController() = default;
  /// A controller injecting at `spec`'s intensities, seeded with `seed`.
  FaultController(const FaultSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}

  void on_run_begin(const EmbeddedGraph& g) override;
  void on_run_end() override;
  bool crashed(int round, NodeId v) override;
  Fate fate(int round, NodeId from, NodeId to) override;
  std::uint64_t reorder_seed(int round, NodeId to) override;
  int next_alive_round(int round, NodeId v) override;

  /// The intensity knobs this controller injects at.
  const FaultSpec& spec() const { return spec_; }
  /// The base seed (epoch 0); per-run effective seeds derive from it.
  std::uint64_t seed() const { return seed_; }
  /// Injection totals so far (pending run included).
  const FaultCounters& counters() const { return counters_; }
  /// Number of runs started (the next run's epoch).
  int epoch() const { return epoch_; }
  /// The effective plan of the run currently (or last) observed.
  const FaultPlan& current_plan() const { return plan_; }

 private:
  void fold_run();

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
  FaultPlan plan_;
  FaultCounters counters_;
  long long run_injected_ = 0;
  int epoch_ = 0;
  bool run_open_ = false;
};

/// RAII: installs a controller as the process-global fault injector,
/// restoring the previous injector on destruction. The way tests and the
/// chaos harness subject pipelines whose networks are constructed
/// internally to a fault plan.
class ScopedFaultInjection {
 public:
  /// Installs `ctl` globally for the scope's lifetime.
  explicit ScopedFaultInjection(FaultController& ctl)
      : prev_(congest::set_global_fault_injector(&ctl)) {}
  ~ScopedFaultInjection() { congest::set_global_fault_injector(prev_); }  ///< restores
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;  ///< non-copyable
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;  ///< non-copyable

 private:
  congest::FaultInjector* prev_;
};

}  // namespace plansep::faults
