#include "obs/metrics.hpp"

#include <atomic>
#include <bit>

#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "util/check.hpp"

namespace plansep::obs {

namespace {
std::atomic<MetricsRegistry*> g_registry{nullptr};
}  // namespace

MetricsRegistry* set_global_registry(MetricsRegistry* reg) {
  return g_registry.exchange(reg, std::memory_order_acq_rel);
}

MetricsRegistry* global_registry() {
  // One-time consideration of the PLANSEP_METRICS environment toggle; a
  // plain atomic load afterwards (the whole disabled-path cost).
  static const bool bootstrapped = (ensure_env_metrics(), true);
  (void)bootstrapped;
  return g_registry.load(std::memory_order_acquire);
}

void advance_rounds(long long measured) {
  if (MetricsRegistry* reg = global_registry()) reg->advance_analytic(measured);
}

void add_counter(std::string_view name, long long delta) {
  if (MetricsRegistry* reg = global_registry()) reg->add(name, delta);
}

// ------------------------------------------------------------ histogram --

void HistogramData::add(long long v) {
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  const std::size_t b =
      v <= 0 ? 0
             : static_cast<std::size_t>(
                   std::bit_width(static_cast<unsigned long long>(v)));
  if (buckets.size() <= b) buckets.resize(b + 1, 0);
  ++buckets[b];
}

// ------------------------------------------------------------- registry --

MetricsRegistry::MetricsRegistry()
    : span_cap_(std::size_t{1} << 20), sample_cap_(std::size_t{1} << 16) {}

void MetricsRegistry::add(std::string_view name, long long delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

long long MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

HistogramData& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramData{}).first;
  }
  return it->second;
}

int MetricsRegistry::begin_span(const char* name) {
  if (spans_.size() >= span_cap_) {
    ++spans_dropped_;
    return -1;
  }
  const int token = static_cast<int>(spans_.size());
  SpanRecord rec;
  rec.name = name;
  rec.depth = static_cast<int>(open_stack_.size());
  rec.begin_rounds = rounds_;
  rec.begin_messages = messages_;
  spans_.push_back(std::move(rec));
  open_stack_.push_back(token);
  return token;
}

void MetricsRegistry::end_span(int token) {
  if (token < 0) return;  // dropped at begin (cap)
  PLANSEP_CHECK(!open_stack_.empty());
  // Spans are RAII-scoped, so closes arrive strictly LIFO; a mismatch
  // means a span object escaped its scope.
  PLANSEP_CHECK(open_stack_.back() == token);
  open_stack_.pop_back();
  SpanRecord& rec = spans_[static_cast<std::size_t>(token)];
  rec.end_rounds = rounds_;
  rec.end_messages = messages_;
  rec.open = false;
}

void MetricsRegistry::note(int token, const char* key, long long value) {
  if (token < 0) return;
  spans_[static_cast<std::size_t>(token)].notes.emplace_back(key, value);
}

void MetricsRegistry::record_round_sample(int active, long long delivered) {
  if (samples_.size() >= sample_cap_) {
    ++samples_dropped_;
    return;
  }
  samples_.push_back(RoundSample{rounds_, active, delivered});
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(1);
  w.key("rounds").value(rounds_);
  w.key("network_rounds").value(network_rounds_);
  w.key("analytic_rounds").value(analytic_rounds_);
  w.key("messages").value(messages_);
  w.key("spans_dropped").value(spans_dropped_);
  w.key("round_samples_dropped").value(samples_dropped_);

  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.begin_array().value(HistogramData::bucket_le(i)).value(h.buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const SpanRecord& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("depth").value(s.depth);
    w.key("begin_rounds").value(s.begin_rounds);
    w.key("end_rounds").value(s.open ? rounds_ : s.end_rounds);
    w.key("messages").value((s.open ? messages_ : s.end_messages) -
                            s.begin_messages);
    if (s.open) w.key("open").value(true);
    if (!s.notes.empty()) {
      w.key("notes").begin_object();
      for (const auto& [k, v] : s.notes) w.key(k).value(v);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

// ----------------------------------------------------------------- span --

Span::Span(const char* name) : reg_(global_registry()) {
  if (reg_ != nullptr) token_ = reg_->begin_span(name);
}

Span::~Span() {
  if (reg_ != nullptr) reg_->end_span(token_);
}

void Span::note(const char* key, long long value) {
  if (reg_ != nullptr) reg_->note(token_, key, value);
}

}  // namespace plansep::obs
