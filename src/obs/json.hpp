#pragma once

/// \file
/// Deterministic JSON emission: the streaming JsonWriter used by the
/// exporters and the flat RowsJson schema every bench binary emits.

// Deterministic JSON emission for the observability subsystem and the bench
// harness. Two layers:
//
//   * json_quote / json_number / JsonWriter — a minimal streaming writer
//     (comma management via a container stack) used by the metrics and
//     Chrome-trace exporters. Output is byte-deterministic: no pointers, no
//     clocks, no locale dependence ("%.6g" for doubles, "null" for
//     non-finite values).
//   * RowsJson — the flat row-oriented schema every bench binary emits:
//       {"bench": "<name>", "schema": 1, "rows": [{...}, ...]}
//     Rows keep insertion order; values are ints, doubles, bools or
//     strings. This used to live in bench/bench_util.hpp as BenchJson;
//     bench/ keeps a `using BenchJson = obs::RowsJson` alias.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plansep::obs {

/// JSON string literal for s, quotes included. Escapes the two structural
/// characters, newlines, and remaining control bytes (\u00XX).
inline std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// JSON number literal for v; non-finite values become "null" (JSON has no
/// Inf/NaN).
inline std::string json_number(double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  } else {
    std::snprintf(buf, sizeof buf, "null");
  }
  return buf;
}

/// Streaming JSON writer with automatic comma placement. The caller is
/// responsible for well-formedness (key() only inside objects, matched
/// begin/end) — PLANSEP-internal use only, not a general serializer.
class JsonWriter {
 public:
  JsonWriter& begin_object() {  ///< opens {
    pre_value();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {  ///< closes }
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {  ///< opens [
    pre_value();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {  ///< closes ]
    out_ += ']';
    stack_.pop_back();
    return *this;
  }
  /// Emits an object key; the next call supplies its value.
  JsonWriter& key(std::string_view k) {
    pre_value();
    out_ += json_quote(k);
    out_ += ':';
    key_pending_ = true;
    return *this;
  }
  /// Emits an integer value.
  JsonWriter& value(long long v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }  ///< int
  /// Emits a number (non-finite renders as null).
  JsonWriter& value(double v) {
    pre_value();
    out_ += json_number(v);
    return *this;
  }
  /// Emits true/false.
  JsonWriter& value(bool v) {
    pre_value();
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Emits a quoted, escaped string.
  JsonWriter& value(std::string_view v) {
    pre_value();
    out_ += json_quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }  ///< string
  /// Splices a pre-rendered JSON fragment in value position.
  JsonWriter& raw(std::string_view fragment) {
    pre_value();
    out_ += fragment;
    return *this;
  }

  /// The document rendered so far.
  const std::string& str() const { return out_; }

 private:
  void pre_value() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "has at least one item"
  bool key_pending_ = false;
};

// ----------------------------------------------------------- bench rows --

/// The row-oriented JSON document bench binaries emit:
/// {"bench": name, "schema": 1, "rows": [{...}, ...]}. Rows keep
/// insertion order; rendering is byte-deterministic.
class RowsJson {
 public:
  explicit RowsJson(std::string name) : name_(std::move(name)) {}  ///< bench name

  /// One output row: ordered key→value pairs set fluently.
  class Row {
   public:
    Row& set(const char* key, long long v) {  ///< integer cell
      kv_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& set(const char* key, int v) {  ///< integer cell
      return set(key, static_cast<long long>(v));
    }
    Row& set(const char* key, double v) {  ///< numeric cell
      kv_.emplace_back(key, json_number(v));
      return *this;
    }
    Row& set(const char* key, bool v) {  ///< boolean cell
      kv_.emplace_back(key, v ? "true" : "false");
      return *this;
    }
    Row& set(const char* key, const std::string& v) {  ///< string cell
      kv_.emplace_back(key, json_quote(v));
      return *this;
    }
    Row& set(const char* key, const char* v) { return set(key, std::string(v)); }  ///< string cell

   private:
    friend class RowsJson;
    std::vector<std::pair<std::string, std::string>> kv_;
  };

  /// Appends a fresh row; chain .set(...) calls on the reference.
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::size_t row_count() const { return rows_.size(); }  ///< rows so far

  /// Renders the whole document as a JSON string.
  std::string render() const {
    std::string out = "{\"bench\": " + json_quote(name_) + ", \"schema\": 1";
    out += ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "  {";
      const auto& kv = rows_[r].kv_;
      for (std::size_t i = 0; i < kv.size(); ++i) {
        if (i) out += ", ";
        out += json_quote(kv[i].first) + ": " + kv[i].second;
      }
      out += "}";
    }
    out += "\n]}\n";
    return out;
  }

  /// Writes render() to path (no-op on empty path); announces the file.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    f << render();
    std::printf("\n[json] %zu row(s) -> %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace plansep::obs
