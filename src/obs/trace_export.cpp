#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace plansep::obs {

namespace {

constexpr int kPid = 1;
constexpr int kPhaseTid = 1;

void emit_metadata(JsonWriter& w, const char* name, int tid,
                   const char* value) {
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(kPid);
  if (tid >= 0) w.key("tid").value(tid);
  w.key("name").value(name);
  w.key("args").begin_object().key("name").value(value).end_object();
  w.end_object();
}

void emit_counter(JsonWriter& w, const char* track, long long ts,
                  const char* series, long long value) {
  w.begin_object();
  w.key("ph").value("C");
  w.key("pid").value(kPid);
  w.key("name").value(track);
  w.key("ts").value(ts);
  w.key("args").begin_object().key(series).value(value).end_object();
  w.end_object();
}

bool write_file(const std::string& content, const std::string& path,
                const char* what, bool announce) {
  if (path.empty()) return true;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  if (announce) {
    std::printf("[obs] %s -> %s\n", what, path.c_str());
  }
  return true;
}

}  // namespace

std::string chrome_trace_json(const MetricsRegistry& reg) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  emit_metadata(w, "process_name", -1, "plansep");
  emit_metadata(w, "thread_name", kPhaseTid, "phases");

  for (const SpanRecord& s : reg.spans()) {
    const long long end = s.open ? reg.rounds() : s.end_rounds;
    const long long end_messages = s.open ? reg.messages() : s.end_messages;
    w.begin_object();
    w.key("ph").value("X");
    w.key("pid").value(kPid);
    w.key("tid").value(kPhaseTid);
    w.key("cat").value("phase");
    w.key("name").value(s.name);
    w.key("ts").value(s.begin_rounds);
    // Zero-round spans still get a visible 1 µs sliver.
    w.key("dur").value(std::max<long long>(1, end - s.begin_rounds));
    w.key("args").begin_object();
    w.key("rounds").value(end - s.begin_rounds);
    w.key("messages").value(end_messages - s.begin_messages);
    for (const auto& [k, v] : s.notes) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }

  for (const RoundSample& s : reg.round_samples()) {
    emit_counter(w, "active nodes", s.ts, "active", s.active);
    emit_counter(w, "delivered messages", s.ts, "delivered", s.delivered);
  }

  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

bool write_chrome_trace(const MetricsRegistry& reg, const std::string& path,
                        bool announce) {
  return write_file(chrome_trace_json(reg), path, "perfetto trace", announce);
}

bool write_metrics_json(const MetricsRegistry& reg, const std::string& path,
                        bool announce) {
  return write_file(reg.to_json(), path, "metrics", announce);
}

}  // namespace plansep::obs
