#include "obs/sink.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/trace_export.hpp"
#include "util/check.hpp"

namespace plansep::obs {

void MetricsSink::on_run_begin(const planar::EmbeddedGraph& g) {
  finalize();  // a previous run may have been aborted by an exception
  g_ = &g;
  run_open_ = true;
  edge_load_.assign(static_cast<std::size_t>(g.num_edges()), 0);
  touched_.clear();
  reg_->add("congest/runs");
  if (next_ != nullptr) next_->on_run_begin(g);
}

void MetricsSink::on_send(int round, congest::NodeId from, congest::NodeId to,
                          const congest::Message& msg) {
  reg_->count_message();
  if (run_open_) {
    // find_dart is O(deg) — a documented cost of *enabled* congestion
    // accounting; the disabled path never reaches this sink.
    const planar::DartId d = g_->find_dart(from, to);
    PLANSEP_CHECK(d != planar::kNoDart);
    const auto e =
        static_cast<std::size_t>(planar::EmbeddedGraph::edge_of(d));
    if (edge_load_[e] == 0) touched_.push_back(static_cast<planar::EdgeId>(e));
    ++edge_load_[e];
  }
  if (next_ != nullptr) next_->on_send(round, from, to, msg);
}

void MetricsSink::on_round_end(int round, int activated, long long delivered) {
  reg_->advance_network_round();
  reg_->histogram("congest/active_per_round").add(activated);
  reg_->histogram("congest/delivered_per_round").add(delivered);
  reg_->record_round_sample(activated, delivered);
  if (next_ != nullptr) next_->on_round_end(round, activated, delivered);
}

void MetricsSink::on_run_end(int rounds, long long messages) {
  reg_->histogram("congest/run_rounds").add(rounds);
  reg_->histogram("congest/run_messages").add(messages);
  finalize();
  if (next_ != nullptr) next_->on_run_end(rounds, messages);
}

void MetricsSink::finalize() {
  if (!run_open_) return;
  run_open_ = false;
  HistogramData& h = reg_->histogram("congest/edge_load");
  long long max_load = 0;
  for (const planar::EdgeId e : touched_) {
    const long long load = edge_load_[static_cast<std::size_t>(e)];
    h.add(load);
    if (load > max_load) max_load = load;
  }
  if (!touched_.empty()) {
    reg_->histogram("congest/run_edge_load_max").add(max_load);
  }
  touched_.clear();
}

// -------------------------------------------------------- env bootstrap --

namespace {

// Process-lifetime pair, deliberately leaked: the atexit exporter below
// reads them after main() returns.
MetricsRegistry* g_env_registry = nullptr;
MetricsSink* g_env_sink = nullptr;

void export_env_metrics_at_exit() {
  g_env_sink->finalize();
  if (const char* p = std::getenv("PLANSEP_METRICS_OUT"); p != nullptr && *p) {
    write_metrics_json(*g_env_registry, p);
  }
  if (const char* p = std::getenv("PLANSEP_TRACE_OUT"); p != nullptr && *p) {
    write_chrome_trace(*g_env_registry, p);
  }
}

bool install_env_metrics() {
  const char* v = std::getenv("PLANSEP_METRICS");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return false;
  g_env_registry = new MetricsRegistry();
  g_env_sink = new MetricsSink(*g_env_registry);
  set_global_registry(g_env_registry);
  g_env_sink->set_next(congest::set_global_trace_sink(g_env_sink));
  std::atexit(export_env_metrics_at_exit);
  return true;
}

}  // namespace

void ensure_env_metrics() {
  static const bool installed = install_env_metrics();
  (void)installed;
}

}  // namespace plansep::obs
