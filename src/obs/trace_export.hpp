#pragma once

/// \file
/// Exporters: metrics JSON and Chrome trace-event JSON (loadable by
/// ui.perfetto.dev and chrome://tracing).

// Exporters: metrics JSON and Chrome trace-event JSON (the format
// ui.perfetto.dev and chrome://tracing load natively).
//
// The trace mapping (DESIGN.md §8): simulated rounds are the clock — one
// round is one microsecond of trace time. Phase spans become complete "X"
// slices on a single synthetic thread (nesting renders as the usual flame
// layout, since span begin/end are strictly LIFO on the merged round
// clock); per-round activity samples become "C" counter tracks (active
// nodes, delivered messages). No wall-clock anywhere: the file is
// byte-deterministic for deterministic executions.

#include <string>

#include "obs/metrics.hpp"

namespace plansep::obs {

/// Renders reg as a Chrome trace-event JSON document.
std::string chrome_trace_json(const MetricsRegistry& reg);

/// Writes chrome_trace_json(reg) to path (no-op on empty path). Announces
/// the file on stdout when announce is set. Returns false on I/O failure.
bool write_chrome_trace(const MetricsRegistry& reg, const std::string& path,
                        bool announce = true);

/// Writes reg.to_json() to path (no-op on empty path).
bool write_metrics_json(const MetricsRegistry& reg, const std::string& path,
                        bool announce = true);

}  // namespace plansep::obs
