#pragma once

/// \file
/// Observability core: deterministic metrics registry, merged round clock,
/// and RAII phase spans (design constraints in DESIGN.md §8).

// Observability core: a deterministic metrics registry with counters,
// power-of-two histograms, a round/message clock, and RAII phase spans.
//
// Design constraints (DESIGN.md §8):
//
//   * Deterministic. Registry contents are a pure function of the
//     algorithm's execution: no wall-clock, no thread ids, no pointers.
//     Counters and histograms live in sorted maps; spans are recorded in
//     open order. A k-thread run over the parallel round engine produces a
//     byte-identical to_json() to the serial run (the engine replays all
//     sink events in serial order, and spans only ever open/close on the
//     coordinating thread).
//   * Cheap when disabled. Nothing here is touched per node or per
//     message on the disabled path: PLANSEP_SPAN and the advance_rounds /
//     add_counter helpers reduce to one atomic pointer load and a branch,
//     and they sit at phase granularity (per aggregation / per engine
//     call), not in the round loop. The per-message hooks live in
//     obs::MetricsSink, which is only consulted when a sink is installed
//     (the same test the CONGEST engine already performs for tracing).
//   * Single-threaded mutation. Like TraceSink, a registry must only be
//     mutated from the thread driving the algorithm; the global-registry
//     *pointer* is published atomically so scopes can be installed while
//     other threads run their own (un-instrumented) work.
//
// The clock has two components, folded into one timeline:
//   network rounds   — advanced by obs::MetricsSink as simulated CONGEST
//                      rounds execute;
//   analytic rounds  — advanced at the cost-model charge sites
//                      (shortcuts::local_exchange, PartwiseEngine::
//                      aggregate/blackbox_charge, the separator engine's
//                      PA multipliers), mirroring the measured ledger of
//                      shortcuts::RoundCost.
// Span begin/end snapshot this merged clock, which is what the Chrome
// trace exporter maps to timestamps (1 round = 1 µs).
//
// This header must stay free of project includes beyond util/ — it is
// included from hot headers like shortcuts/cost.hpp.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plansep::obs {

/// Histogram over non-negative integer samples with power-of-two buckets:
/// bucket i counts samples v with bit_width(v) == i, i.e. upper bound
/// 2^i - 1 (bucket 0 catches v <= 0). Exact count/sum/min/max ride along.
struct HistogramData {
  long long count = 0;              ///< number of samples
  long long sum = 0;                ///< sum of samples
  long long min = 0;                ///< smallest sample (once count > 0)
  long long max = 0;                ///< largest sample (once count > 0)
  std::vector<long long> buckets;   ///< bucket i counts bit_width(v) == i

  /// Records one sample, growing the bucket vector as needed.
  void add(long long v);
  /// Upper bound of bucket i (inclusive): 2^i - 1.
  static long long bucket_le(std::size_t i) {
    return (1LL << static_cast<int>(i)) - 1;
  }
};

/// One closed (or still-open) phase span. Begin/end snapshot the merged
/// round clock and the message counter, so a span's cost attribution is
/// end - begin on both axes.
struct SpanRecord {
  std::string name;              ///< phase name passed to begin_span
  int depth = 0;                 ///< nesting depth at open (0 = root)
  long long begin_rounds = 0;    ///< merged clock at open
  long long end_rounds = 0;      ///< merged clock at close
  long long begin_messages = 0;  ///< message counter at open
  long long end_messages = 0;    ///< message counter at close
  bool open = true;  ///< still unclosed (process exit / export mid-phase)
  /// Deterministic key→value annotations (e.g. the charged-rounds ledger).
  std::vector<std::pair<std::string, long long>> notes;
};

/// Per-round activity sample retained for the trace exporter's counter
/// tracks. Capped (see set_round_sample_cap); drops are counted, never
/// silent.
struct RoundSample {
  long long ts = 0;         ///< merged clock value after the round
  int active = 0;           ///< nodes that took a turn this round
  long long delivered = 0;  ///< messages delivered this round
};

/// The deterministic metrics store: named counters and histograms in
/// sorted maps, the merged round clock, phase spans, and per-round trace
/// samples. Single-threaded mutation (see the file comment).
class MetricsRegistry {
 public:
  MetricsRegistry();  ///< empty registry with default span/sample caps

  // --- counters / histograms ---------------------------------------------
  /// Adds delta to the named counter, creating it at 0 first.
  void add(std::string_view name, long long delta = 1);
  /// Current value; 0 when the counter was never touched.
  long long counter(std::string_view name) const;
  /// The named histogram, created empty on first use.
  HistogramData& histogram(std::string_view name);
  /// All counters, sorted by name.
  const std::map<std::string, long long, std::less<>>& counters() const {
    return counters_;
  }
  /// All histograms, sorted by name.
  const std::map<std::string, HistogramData, std::less<>>& histograms() const {
    return histograms_;
  }

  // --- clock -------------------------------------------------------------
  /// Ticks one simulated CONGEST round onto the merged clock.
  void advance_network_round() {
    ++network_rounds_;
    ++rounds_;
  }
  /// Charges measured analytic rounds (cost-model charge sites).
  void advance_analytic(long long measured) {
    if (measured > 0) {
      analytic_rounds_ += measured;
      rounds_ += measured;
    }
  }
  void count_message() { ++messages_; }  ///< one accepted CONGEST message
  long long rounds() const { return rounds_; }  ///< merged clock value
  /// Simulated CONGEST rounds component of the clock.
  long long network_rounds() const { return network_rounds_; }
  /// Cost-model (analytic) component of the clock.
  long long analytic_rounds() const { return analytic_rounds_; }
  long long messages() const { return messages_; }  ///< message counter

  // --- spans -------------------------------------------------------------
  /// Opens a span; returns a token for end_span/note, or -1 when the span
  /// cap is hit (the drop is counted in "obs/spans_dropped").
  int begin_span(const char* name);
  /// Closes the span; must be the innermost open one (strict LIFO).
  void end_span(int token);
  /// Attaches a key→value annotation to an open span (-1 token: no-op).
  void note(int token, const char* key, long long value);
  /// All spans in open order (open ones have open == true).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Number of currently open (unclosed) spans.
  int open_depth() const { return static_cast<int>(open_stack_.size()); }
  /// Caps the number of recorded spans; overflow counts, never grows.
  void set_span_cap(std::size_t cap) { span_cap_ = cap; }

  // --- round samples -----------------------------------------------------
  /// Appends one per-round activity sample (drops counted past the cap).
  void record_round_sample(int active, long long delivered);
  /// Retained per-round samples for the trace exporter.
  const std::vector<RoundSample>& round_samples() const { return samples_; }
  /// Caps the retained round samples; overflow counts, never grows.
  void set_round_sample_cap(std::size_t cap) { sample_cap_ = cap; }

  /// Deterministic JSON snapshot: clock, counters, histograms, spans
  /// (round samples are the trace exporter's concern). Byte-identical
  /// across runs with identical execution, including k-thread runs.
  std::string to_json() const;

 private:
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
  std::vector<SpanRecord> spans_;
  std::vector<int> open_stack_;  // indices into spans_, innermost last
  long long rounds_ = 0;
  long long network_rounds_ = 0;
  long long analytic_rounds_ = 0;
  long long messages_ = 0;
  std::vector<RoundSample> samples_;
  std::size_t span_cap_;
  std::size_t sample_cap_;
  long long spans_dropped_ = 0;
  long long samples_dropped_ = 0;
};

/// Installs reg as the process-global registry (nullptr detaches); returns
/// the previous one. Atomic publish — see the threading note above.
MetricsRegistry* set_global_registry(MetricsRegistry* reg);
/// The current global registry, or nullptr when metrics are disabled. The
/// first call considers the PLANSEP_METRICS environment bootstrap
/// (obs/sink.hpp).
MetricsRegistry* global_registry();

/// Charges measured analytic rounds to the global registry; no-op when
/// metrics are disabled. This is the hook the cost model calls.
void advance_rounds(long long measured);
/// Bumps a global counter; no-op when disabled.
void add_counter(std::string_view name, long long delta = 1);

/// RAII phase span against the global registry. Resolves the registry once
/// at construction, so a scope that closes mid-span still balances.
class Span {
 public:
  explicit Span(const char* name);  ///< opens the span (no-op if disabled)
  ~Span();                          ///< closes it
  Span(const Span&) = delete;             ///< non-copyable
  Span& operator=(const Span&) = delete;  ///< non-copyable
  /// Attaches a key→value annotation (no-op when disabled/dropped).
  void note(const char* key, long long value);

 private:
  MetricsRegistry* reg_;
  int token_ = -1;
};

/// Token-pasting helper for PLANSEP_SPAN (two levels force expansion).
#define PLANSEP_OBS_CONCAT_(a, b) a##b
/// Token-pasting helper for PLANSEP_SPAN.
#define PLANSEP_OBS_CONCAT(a, b) PLANSEP_OBS_CONCAT_(a, b)
/// Anonymous RAII span covering the rest of the enclosing scope.
#define PLANSEP_SPAN(name) \
  ::plansep::obs::Span PLANSEP_OBS_CONCAT(plansep_span_, __LINE__)(name)

}  // namespace plansep::obs
