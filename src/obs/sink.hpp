#pragma once

/// \file
/// Bridges the CONGEST engine's TraceSink hook to a MetricsRegistry
/// (ScopedMetrics RAII scope and the PLANSEP_METRICS env bootstrap).

// Bridges the CONGEST engine's TraceSink hook to a MetricsRegistry, and the
// two ways the bridge is installed:
//
//   * ScopedMetrics — RAII: installs a registry as the global one and a
//     MetricsSink as the global trace sink for the scope, chaining to (and
//     restoring) whatever sink was installed before, so metrics compose
//     with the proptest harness's trace capture.
//   * ensure_env_metrics — process-wide: when the PLANSEP_METRICS
//     environment variable is truthy (set, non-empty, not "0"), a
//     process-lifetime registry + sink pair is installed once, and at exit
//     the collected metrics/trace are written to PLANSEP_METRICS_OUT /
//     PLANSEP_TRACE_OUT if set. This is how CI runs the whole tier-1 suite
//     with instrumentation live under asan/ubsan without touching any
//     test.
//
// MetricsSink feeds, per run: the network-round clock, the message
// counter, active/delivered per-round histograms and trace samples, and —
// folded at run end — the per-edge load histogram ("congest/edge_load"),
// the congestion profile the low-congestion-shortcut literature reasons
// about. All callbacks arrive on the coordinating thread in deterministic
// serial order (network.hpp), so the fold is deterministic too.

#include <vector>

#include "congest/network.hpp"
#include "obs/metrics.hpp"

namespace plansep::obs {

/// TraceSink that feeds a MetricsRegistry: round clock, message counter,
/// per-round activity histograms/samples, and the per-run per-edge load
/// histogram ("congest/edge_load") folded at run end.
class MetricsSink final : public congest::TraceSink {
 public:
  /// A sink feeding reg; reg must outlive the sink.
  explicit MetricsSink(MetricsRegistry& reg) : reg_(&reg) {}

  /// Downstream sink every event is forwarded to (may be null). Lets a
  /// metrics scope stack on top of an existing trace recorder.
  void set_next(congest::TraceSink* next) { next_ = next; }
  /// The chained downstream sink, or nullptr.
  congest::TraceSink* next() const { return next_; }

  void on_run_begin(const planar::EmbeddedGraph& g) override;
  void on_send(int round, congest::NodeId from, congest::NodeId to,
               const congest::Message& msg) override;
  void on_round_end(int round, int activated, long long delivered) override;
  void on_run_end(int rounds, long long messages) override;

  /// Folds any pending per-run state (a run aborted by an exception never
  /// reaches on_run_end). Idempotent; called automatically at the next
  /// run begin and by ScopedMetrics on scope exit.
  void finalize();

 private:
  MetricsRegistry* reg_;
  congest::TraceSink* next_ = nullptr;
  const planar::EmbeddedGraph* g_ = nullptr;
  std::vector<long long> edge_load_;      // per EdgeId, current run
  std::vector<planar::EdgeId> touched_;   // edges with load > 0, current run
  bool run_open_ = false;
};

/// One-time PLANSEP_METRICS bootstrap (see header comment). Cheap to call
/// repeatedly; Network::run, global_registry() and ScopedMetrics all call
/// it so env enablement works regardless of which side is reached first.
void ensure_env_metrics();

/// RAII metrics scope: global registry + chained global trace sink for the
/// lifetime of the object. Mutations (spans, counters) must stay on the
/// constructing thread, like any registry use.
class ScopedMetrics {
 public:
  /// Installs reg globally and chains a MetricsSink over the current
  /// global trace sink for the lifetime of the scope.
  explicit ScopedMetrics(MetricsRegistry& reg) : sink_(reg) {
    // Settle the PLANSEP_METRICS bootstrap first: the env pair must sit
    // below this scope, not install itself on top mid-scope (the first
    // global_registry() call inside the scope would otherwise trigger it
    // and steal the scope's spans).
    ensure_env_metrics();
    prev_registry_ = set_global_registry(&reg);
    sink_.set_next(congest::set_global_trace_sink(&sink_));
  }
  /// Restores the previous sink/registry and folds pending run state.
  ~ScopedMetrics() {
    congest::set_global_trace_sink(sink_.next());
    set_global_registry(prev_registry_);
    sink_.finalize();
  }
  ScopedMetrics(const ScopedMetrics&) = delete;             ///< non-copyable
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;  ///< non-copyable

  /// The scope's bridging sink (e.g. to inspect the chain in tests).
  MetricsSink& sink() { return sink_; }

 private:
  MetricsSink sink_;
  MetricsRegistry* prev_registry_;
};

}  // namespace plansep::obs
