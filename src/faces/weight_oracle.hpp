#pragma once

// Brute-force oracle for fundamental faces (ground truth for Definition 2).
//
// The paper defines the real fundamental face F_e of a T-fundamental edge
// e = uv as the side of the Jordan curve (T-path(u,v) + e) away from the
// virtual root r0 (§4). This oracle materializes that definition on the
// *induced embedded graph* H = G̃[P] (members of T, rotations inherited
// from G, plus the virtual-root stub): the cycle's region is computed by a
// dual BFS from r0's face (planar/region.hpp).
//
// Virtual augmentation edges u–z (Definition 3, §3.1.3) are evaluated by
// inserting the edge into H at candidate rotation gaps; an insertion is
// planar iff the rotation system keeps Euler genus 0, and it satisfies
// Definition 3 iff additionally all of T_u ∩ F_e and T_z ∩ F_e end up in
// the new face and the new face stays within F_e. This yields brute-force
// deciders for (T,F_e)-compatibility and hence for "hidden" (Definition 4,
// Lemma 6), against which the distributed characterizations are tested.
//
// Lemmas 3 and 4 state what Definition 2's ω(F_e) counts:
//   * u not an ancestor of v:  |F̃_e| = |inside| + |T-path(LCA..v)|
//   * u an ancestor of v:      |F̊_e| = |inside|
// `lemma_weight` returns that quantity; property tests assert the
// closed-form ω equals it on every fundamental edge of every instance.

#include <optional>
#include <vector>

#include "faces/fundamental.hpp"
#include "planar/face_structure.hpp"
#include "planar/region.hpp"

namespace plansep::faces {

class FaceOracle {
 public:
  explicit FaceOracle(const RootedSpanningTree& t);

  struct Region {
    std::vector<NodeId> border;  // tree path a..b, in order (G node ids)
    std::vector<char> inside;    // indexed by G node id; 1 = strictly inside
    int inside_count = 0;
    /// Faces of the underlying instance strictly inside the cycle, indexed
    /// by the instance's face ids. Only comparable between regions built on
    /// the same instance — i.e., between real faces (no edge insertion).
    std::vector<char> face_inside;
  };

  /// Region of the unique real fundamental face of e (§4).
  Region real_face(const FundamentalEdge& fe) const;

  /// Diagnostic counters for the insertion-gap scan (test support).
  struct ScanStats {
    int gaps = 0;
    int planar = 0;
    int within_face = 0;
    int satisfied = 0;
  };

  /// All distinct regions of valid insertions of the virtual edge u–z, for
  /// z strictly inside F_e and not adjacent to u (deduplicated by inside
  /// set). Every returned insertion is planar and satisfies Definition 3's
  /// containment conditions; empty when z is not (T,F_e)-compatible with
  /// u. Note Definition 3 as written admits several insertions with
  /// different interiors (e.g. degenerate routings through border
  /// corners); the algorithm's arithmetic (faces/augmentation.hpp) matches
  /// one of them, which is what the property tests assert.
  std::vector<Region> augmented_faces(const FundamentalEdge& fe, NodeId z,
                                      ScanStats* stats = nullptr) const;

  /// True iff some planar insertion of u–z satisfies Definition 3.
  bool is_compatible(const FundamentalEdge& fe, NodeId z) const;

  /// Nodes of V(F_e): border plus inside.
  std::vector<NodeId> face_nodes(const Region& r) const;

  /// What Definition 2 must evaluate to for a face with endpoints a, b
  /// (π_ℓ(a) < π_ℓ(b)): |F̃| when a is not an ancestor of b, else |F̊|.
  long long lemma_weight(NodeId a, NodeId b, const Region& r) const;

  const RootedSpanningTree& tree() const { return *t_; }

 private:
  struct Instance {
    planar::EmbeddedGraph h;
    std::vector<NodeId> to_g;      // local id -> G id (r0 excluded)
    std::vector<NodeId> to_local;  // G id -> local id (-1 outside)
    NodeId r0 = planar::kNoNode;   // local id of the virtual root
  };

  /// Builds G̃[members] with the stub, optionally inserting edge a–b at the
  /// given gap indices of the member rotations (gap measured in the local
  /// rotation lists, which include the stub at the root). gap_* == -1 means
  /// "no extra edge".
  Instance build(NodeId a, NodeId b, int gap_a, int gap_b) const;

  /// Classifies the cycle path(a..b)+closing edge inside `inst`; the
  /// closing edge must exist in inst (real or inserted).
  Region classify(const Instance& inst, NodeId a, NodeId b) const;

  const RootedSpanningTree* t_;
};

}  // namespace plansep::faces
