#pragma once

// Hidden nodes (Definition 4) and the compatibility characterization
// (Lemma 6).
//
// A node z strictly inside F_e (e = uv) is *hidden* when some real
// fundamental edge f = z1z2 contained in F_e has z inside F_f and either
// (1) u is not an endpoint of f, or (2) u is an endpoint but f cuts off
// part of T_u ∩ F_e (V(T_u) ∩ V(F_e) ⊄ V(F_f)). Lemma 6: a leaf z of T is
// (T,F_e)-compatible with u iff it is not hidden.
//
// `hides` is the per-edge local test of the HIDDEN-PROBLEM (Lemma 16): the
// endpoints of f decide it from their own data plus the broadcast data of
// e and z.

#include "faces/fundamental.hpp"

namespace plansep::faces {

/// True iff the real fundamental edge f hides z in F_e (Definition 4).
bool hides(const RootedSpanningTree& t, const FundamentalEdge& fe,
           const FundamentalEdge& f, NodeId z);

/// All real fundamental edges hiding z in F_e (brute scan; the distributed
/// algorithm evaluates `hides` at each edge in parallel).
std::vector<FundamentalEdge> hiding_edges(const RootedSpanningTree& t,
                                          const FundamentalEdge& fe, NodeId z);

}  // namespace plansep::faces
