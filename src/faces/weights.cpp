#include "faces/weights.hpp"

#include "faces/membership.hpp"
#include "util/check.hpp"

namespace plansep::faces {

bool uses_left_order(const FundamentalEdge& fe) {
  // See the convention note in the header: the π_ℓ formula applies exactly
  // when the edge leaves u clockwise-after the path child z (Lemma 4's
  // t_u(v) > t_u(z) case).
  PLANSEP_CHECK(fe.u_ancestor_of_v);
  return !fe.left_oriented;
}

long long p_value_at_u(const RootedSpanningTree& t, const FundamentalEdge& fe) {
  long long p = 0;
  for (NodeId c : inside_children(t, fe, fe.u)) p += t.subtree_size(c);
  return p;
}

long long p_value_at_v(const RootedSpanningTree& t, const FundamentalEdge& fe) {
  long long p = 0;
  for (NodeId c : inside_children(t, fe, fe.v)) p += t.subtree_size(c);
  return p;
}

long long face_weight(const RootedSpanningTree& t, const FundamentalEdge& fe) {
  const long long pu = p_value_at_u(t, fe);
  const long long pv = p_value_at_v(t, fe);
  if (!fe.u_ancestor_of_v) {
    // Definition 2 case 1.
    return pu + pv + t.pi_left(fe.v) -
           (t.pi_left(fe.u) + t.subtree_size(fe.u)) + 1;
  }
  const NodeId z = fe.z;
  if (uses_left_order(fe)) {
    // Definition 2 case 2.1 (π_ℓ).
    return pu + pv + (t.pi_left(fe.v) - t.pi_left(z)) -
           (t.depth(fe.v) - t.depth(z));
  }
  // Definition 2 case 2.2 (π_r).
  return pu + pv + (t.pi_right(fe.v) - t.pi_right(z)) -
         (t.depth(fe.v) - t.depth(z));
}

}  // namespace plansep::faces
