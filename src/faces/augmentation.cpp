#include "faces/augmentation.hpp"

#include "faces/membership.hpp"
#include "faces/weights.hpp"
#include "util/check.hpp"

namespace plansep::faces {

namespace {

int child_offset(const RootedSpanningTree& t, NodeId c) {
  return t.t_offset(EmbeddedGraph::rev(t.parent_dart(c)));
}

}  // namespace

long long augmented_weight(const RootedSpanningTree& t,
                           const FundamentalEdge& fe, NodeId z) {
  PLANSEP_CHECK_MSG(is_inside_face(t, fe, z), "z must be inside F_e");
  const NodeId u = fe.u;
  const bool use_left = !fe.u_ancestor_of_v || uses_left_order(fe);

  if (!t.is_ancestor(u, z)) {
    // Definition 2 case 1 applied to the virtual edge u–z: all inside
    // children of u stay inside; T_z is entirely inside.
    PLANSEP_CHECK_MSG(!fe.u_ancestor_of_v,
                      "ancestor-type faces lie within T_u");
    const long long pu = p_value_at_u(t, fe);
    const long long pz = t.subtree_size(z) - 1;
    return pu + pz + t.pi_left(z) - (t.pi_left(u) + t.subtree_size(u)) + 1;
  }

  // u is an ancestor of z: Definition 2 case 2 for the virtual edge, with
  // the order matching the sweep orientation of e. The sweep has already
  // passed the sibling subtrees of the path child z2 that come earlier in
  // the sweep order (clockwise-later for π_ℓ, clockwise-earlier for π_r).
  const NodeId z2 = child_towards(t, u, z);
  const int off_z2 = child_offset(t, z2);
  long long pu = 0;
  for (NodeId c : inside_children(t, fe, u)) {
    const int off = child_offset(t, c);
    if (use_left ? off > off_z2 : off < off_z2) pu += t.subtree_size(c);
  }
  const long long pz = t.subtree_size(z) - 1;
  if (use_left) {
    return pz + pu + (t.pi_left(z) - t.pi_left(z2)) -
           (t.depth(z) - t.depth(z2));
  }
  return pz + pu + (t.pi_right(z) - t.pi_right(z2)) -
         (t.depth(z) - t.depth(z2));
}

long long root_sweep_weight(const RootedSpanningTree& t, NodeId x,
                            bool left) {
  const NodeId r = t.root();
  PLANSEP_CHECK(x != r);
  const NodeId z2 = child_towards(t, r, x);
  const int off_z2 = child_offset(t, z2);
  long long p = 0;
  for (NodeId c : t.children(r)) {
    const int off = child_offset(t, c);
    if (left ? off > off_z2 : off < off_z2) p += t.subtree_size(c);
  }
  const long long pz = t.subtree_size(x) - 1;
  if (left) {
    return pz + p + (t.pi_left(x) - t.pi_left(z2)) -
           (t.depth(x) - t.depth(z2));
  }
  return pz + p + (t.pi_right(x) - t.pi_right(z2)) -
         (t.depth(x) - t.depth(z2));
}

FundamentalEdge virtual_edge_record(const RootedSpanningTree& t,
                                    const FundamentalEdge& fe, NodeId z) {
  FundamentalEdge out;
  out.edge = planar::kNoEdge;
  out.u = fe.u;
  out.v = z;
  PLANSEP_CHECK(t.pi_left(fe.u) < t.pi_left(z));
  out.u_ancestor_of_v = t.is_ancestor(fe.u, z);
  if (out.u_ancestor_of_v) {
    out.z = child_towards(t, fe.u, z);
    // The canonical insertion sits adjacent to e, so the virtual edge has
    // the same sweep orientation as e; uses_left_order() maps left_oriented
    // to the order, so copy e's flag.
    out.left_oriented = fe.u_ancestor_of_v
                            ? fe.left_oriented
                            : false;  // case-1 e sweeps by π_ℓ
  }
  return out;
}

}  // namespace plansep::faces
