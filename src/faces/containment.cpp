#include "faces/containment.hpp"

#include <limits>

#include "faces/membership.hpp"
#include "faces/weights.hpp"
#include "util/check.hpp"

namespace plansep::faces {

bool face_contains(const RootedSpanningTree& t, const FundamentalEdge& outer,
                   const FundamentalEdge& inner) {
  if (outer.edge == inner.edge) return false;
  const FaceData fd = face_data(t, outer);
  const auto side_u = classify_node(fd, node_data(t, inner.u));
  const auto side_v = classify_node(fd, node_data(t, inner.v));
  if (side_u == FaceSide::kOutside || side_v == FaceSide::kOutside) {
    return false;
  }
  // A real edge cannot cross the border of F_outer, so it suffices that the
  // edge opens towards the inside at some border endpoint; if both
  // endpoints are strictly inside the edge is trivially contained.
  const auto& g = t.graph();
  if (side_u == FaceSide::kBorder) {
    return dart_points_inside(t, outer, g.dart_from(inner.edge, inner.u));
  }
  if (side_v == FaceSide::kBorder) {
    return dart_points_inside(t, outer, g.dart_from(inner.edge, inner.v));
  }
  return true;  // both strictly inside
}

namespace {

/// Climb the containment order: starting from a seed likely to be extreme
/// (by ω-monotonicity — contained faces never weigh more, §4.1), verify
/// against all edges and climb to any counterexample. Containment is a
/// partial order on faces, so each climb strictly increases (decreases)
/// the face and the loop terminates; in practice the seed survives the
/// first verification (Lemma 17's one-round refinement).
FundamentalEdge climb(const RootedSpanningTree& t,
                      const std::vector<FundamentalEdge>& edges,
                      std::size_t seed, bool outward) {
  std::size_t cur = seed;
  for (std::size_t steps = 0; steps <= edges.size(); ++steps) {
    bool moved = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i == cur) continue;
      const bool bad = outward ? face_contains(t, edges[i], edges[cur])
                               : face_contains(t, edges[cur], edges[i]);
      if (bad) {
        cur = i;
        moved = true;
        break;
      }
    }
    if (!moved) return edges[cur];
  }
  PLANSEP_CHECK_MSG(false, "containment order has a cycle");
  return edges[seed];
}

}  // namespace

FundamentalEdge pick_not_contained(const RootedSpanningTree& t,
                                   const std::vector<FundamentalEdge>& edges) {
  PLANSEP_CHECK(!edges.empty());
  // Seed with the maximum-weight face: a face contained in another never
  // weighs more, so the max-ω face can only be contained in (rare) peers.
  std::size_t seed = 0;
  long long best = std::numeric_limits<long long>::min();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const long long w = face_weight(t, edges[i]);
    if (w > best) {
      best = w;
      seed = i;
    }
  }
  return climb(t, edges, seed, /*outward=*/true);
}

FundamentalEdge pick_not_contains(const RootedSpanningTree& t,
                                  const std::vector<FundamentalEdge>& edges) {
  PLANSEP_CHECK(!edges.empty());
  std::size_t seed = 0;
  long long best = std::numeric_limits<long long>::max();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const long long w = face_weight(t, edges[i]);
    if (w < best) {
      best = w;
      seed = i;
    }
  }
  return climb(t, edges, seed, /*outward=*/false);
}

}  // namespace plansep::faces
