#pragma once

// Face membership from endpoint-local data (Remark 1 / Lemma 15).
//
// The distributed DETECT-FACE subroutine works by broadcasting O(log n)
// bits of data about the endpoints of a fundamental edge e = uv; every
// node then decides *locally* whether it lies inside F_e, on its border,
// or outside. FaceData is exactly that broadcast payload:
//   * π_ℓ/π_r positions, subtree sizes and depths of u and v,
//   * the π-order intervals I(u), I(v) covering the subtrees of u's and
//     v's children that hang inside the face (contiguous in both orders
//     because inside children occupy a contiguous rotation arc).
// A node z combines the payload with its own (π_ℓ(z), π_r(z), n_T(z),
// depth) to evaluate the Remark 1 characterization.

#include <optional>

#include "faces/fundamental.hpp"

namespace plansep::faces {

/// Inclusive interval of DFS-order positions; empty when lo > hi.
struct PiInterval {
  int lo = 1;
  int hi = 0;
  bool contains(int x) const { return x >= lo && x <= hi; }
  bool empty() const { return lo > hi; }
};

/// The broadcast payload for one fundamental face (real or the canonical
/// augmentation face of a virtual edge).
struct FaceData {
  FundamentalEdge fe;
  int pi_l_u = 0, pi_r_u = 0, n_u = 0, depth_u = 0;
  int pi_l_v = 0, pi_r_v = 0, n_v = 0, depth_v = 0;
  /// π_ℓ and π_r intervals of the inside-hanging child subtrees of u / v.
  PiInterval inside_u_l, inside_u_r;
  PiInterval inside_v_l, inside_v_r;
  /// Whether the Remark 1 interval test uses π_ℓ (cases 1, 2) or π_r
  /// (case 3).
  bool use_left = true;
  /// Depth of the LCA of u and v (== depth_u when u is an ancestor of v);
  /// distributively obtained via the LCA-PROBLEM (Lemma 14).
  int depth_w = 0;
  /// π_ℓ position and subtree size of the path child z1 of u towards v
  /// (meaningful only when u is an ancestor of v).
  int pi_l_z1 = 0;
  int n_z1 = 0;
};

/// Computes the payload for a real fundamental edge.
FaceData face_data(const RootedSpanningTree& t, const FundamentalEdge& fe);

/// Local position data a node contributes (its own knowledge).
struct NodeData {
  NodeId id = planar::kNoNode;
  int pi_l = 0, pi_r = 0, n = 0, depth = 0;
};

NodeData node_data(const RootedSpanningTree& t, NodeId z);

/// Classification of z with respect to F_e, computed from (FaceData,
/// NodeData) only — the local decision rule of DETECT-FACE.
enum class FaceSide { kBorder, kInside, kOutside };

FaceSide classify_node(const FaceData& fd, const NodeData& z);

/// Convenience wrappers.
bool is_inside_face(const RootedSpanningTree& t, const FundamentalEdge& fe,
                    NodeId z);
bool is_on_border(const RootedSpanningTree& t, const FundamentalEdge& fe,
                  NodeId z);
bool is_in_face(const RootedSpanningTree& t, const FundamentalEdge& fe,
                NodeId z);  // border or inside

/// The inside-hanging children of endpoint x (x must be fe.u or fe.v), in
/// rotation order — the subtrees counted by p_{F_e}(x).
std::vector<NodeId> inside_children(const RootedSpanningTree& t,
                                    const FundamentalEdge& fe, NodeId x);

/// For a dart d whose tail lies on the border of F_e and which is not one
/// of the cycle darts, whether d points into the inside region of F_e —
/// the arc conditions of Claims 1 and 4, evaluated at any border node
/// (endpoints, the LCA, or internal path nodes). This is the local rule by
/// which a border node decides which of its incident edges open into the
/// face.
bool dart_points_inside(const RootedSpanningTree& t, const FundamentalEdge& fe,
                        DartId d);

}  // namespace plansep::faces
