#include "faces/weight_oracle.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace plansep::faces {

using planar::EmbeddedGraph;
using planar::FaceId;
using planar::FaceStructure;
using planar::Side;

FaceOracle::FaceOracle(const RootedSpanningTree& t) : t_(&t) {}

FaceOracle::Instance FaceOracle::build(NodeId a, NodeId b, int gap_a,
                                       int gap_b) const {
  const RootedSpanningTree& t = *t_;
  const EmbeddedGraph& g = t.graph();
  Instance inst;
  inst.to_local.assign(static_cast<std::size_t>(g.num_nodes()), planar::kNoNode);
  for (NodeId v : t.nodes()) {
    inst.to_local[static_cast<std::size_t>(v)] =
        static_cast<NodeId>(inst.to_g.size());
    inst.to_g.push_back(v);
  }
  inst.r0 = static_cast<NodeId>(inst.to_g.size());

  std::vector<std::vector<NodeId>> rot(inst.to_g.size() + 1);
  for (std::size_t i = 0; i < inst.to_g.size(); ++i) {
    const NodeId v = inst.to_g[i];
    auto& list = rot[i];
    const bool is_root = (v == t.root());
    int full_pos = 0;
    bool stub_placed = !is_root;
    for (planar::DartId d : g.rotation(v)) {
      if (is_root && !stub_placed && full_pos >= t.root_stub_pos()) {
        list.push_back(inst.r0);
        stub_placed = true;
      }
      ++full_pos;
      const NodeId w = g.head(d);
      if (inst.to_local[static_cast<std::size_t>(w)] != planar::kNoNode) {
        list.push_back(inst.to_local[static_cast<std::size_t>(w)]);
      }
    }
    if (is_root && !stub_placed) list.push_back(inst.r0);
  }
  rot[static_cast<std::size_t>(inst.r0)].push_back(
      inst.to_local[static_cast<std::size_t>(t.root())]);

  if (gap_a >= 0) {
    const NodeId la = inst.to_local[static_cast<std::size_t>(a)];
    const NodeId lb = inst.to_local[static_cast<std::size_t>(b)];
    PLANSEP_CHECK(la != planar::kNoNode && lb != planar::kNoNode);
    auto& ra = rot[static_cast<std::size_t>(la)];
    auto& rb = rot[static_cast<std::size_t>(lb)];
    PLANSEP_CHECK(gap_a <= static_cast<int>(ra.size()));
    PLANSEP_CHECK(gap_b >= 0 && gap_b <= static_cast<int>(rb.size()));
    ra.insert(ra.begin() + gap_a, lb);
    rb.insert(rb.begin() + gap_b, la);
  }

  inst.h = EmbeddedGraph::from_rotations(rot);
  return inst;
}

FaceOracle::Region FaceOracle::classify(const Instance& inst, NodeId a,
                                        NodeId b) const {
  const RootedSpanningTree& t = *t_;
  const EmbeddedGraph& h = inst.h;

  Region region;
  region.border = t.path(a, b);
  region.inside.assign(static_cast<std::size_t>(t.graph().num_nodes()), 0);

  // Cycle darts in H: tree path darts plus the closing dart b→a.
  std::vector<planar::DartId> cycle;
  for (std::size_t i = 0; i + 1 < region.border.size(); ++i) {
    const NodeId x = inst.to_local[static_cast<std::size_t>(region.border[i])];
    const NodeId y =
        inst.to_local[static_cast<std::size_t>(region.border[i + 1])];
    const planar::DartId d = h.find_dart(x, y);
    PLANSEP_CHECK(d != planar::kNoDart);
    cycle.push_back(d);
  }
  const planar::DartId closing =
      h.find_dart(inst.to_local[static_cast<std::size_t>(b)],
                  inst.to_local[static_cast<std::size_t>(a)]);
  PLANSEP_CHECK_MSG(closing != planar::kNoDart, "closing edge missing in H");
  cycle.push_back(closing);

  const FaceStructure fs(h);
  PLANSEP_CHECK_MSG(fs.euler_genus(h) == 0, "instance is not planar");
  const planar::DartId r0_dart = h.rotation(inst.r0).front();
  const FaceId outer = fs.face_of(r0_dart);
  const planar::RegionClassification rc =
      planar::classify_cycle_region(h, fs, cycle, outer);

  for (std::size_t i = 0; i < inst.to_g.size(); ++i) {
    if (rc.node_side[i] == Side::kInside) {
      region.inside[static_cast<std::size_t>(inst.to_g[i])] = 1;
      ++region.inside_count;
    }
  }
  region.face_inside.assign(rc.face_side.size(), 0);
  for (std::size_t f = 0; f < rc.face_side.size(); ++f) {
    region.face_inside[f] = (rc.face_side[f] == Side::kInside) ? 1 : 0;
  }
  return region;
}

FaceOracle::Region FaceOracle::real_face(const FundamentalEdge& fe) const {
  const Instance inst = build(fe.u, fe.v, -1, -1);
  return classify(inst, fe.u, fe.v);
}

std::vector<FaceOracle::Region> FaceOracle::augmented_faces(
    const FundamentalEdge& fe, NodeId z, ScanStats* stats) const {
  const RootedSpanningTree& t = *t_;
  PLANSEP_CHECK_MSG(!t.graph().has_edge(fe.u, z),
                    "augmentation requires non-adjacent endpoints");
  const Region base = real_face(fe);
  PLANSEP_CHECK_MSG(base.inside[static_cast<std::size_t>(z)],
                    "z must be strictly inside F_e");

  // Required containment (Definition 3, condition 2): nodes of T_u and T_z
  // lying in F_e must be contained in V(F_f).
  std::vector<char> in_fe(static_cast<std::size_t>(t.graph().num_nodes()), 0);
  for (NodeId x : base.border) in_fe[static_cast<std::size_t>(x)] = 1;
  for (NodeId x : t.nodes()) {
    if (base.inside[static_cast<std::size_t>(x)]) {
      in_fe[static_cast<std::size_t>(x)] = 1;
    }
  }
  // Required containment: the subtree of z must stay inside the new face.
  // (Definition 3 as printed also demands all of T_u ∩ F_e, but that
  // over-constrains the fan/sweep faces the algorithm's arithmetic and
  // Remark 2's monotonicity describe — see the header note; the balance
  // argument of Lemma 5 needs only a planar insertion whose region count
  // matches ω, which is what the property tests assert.)
  std::vector<NodeId> required;
  for (NodeId x : t.nodes()) {
    if (!in_fe[static_cast<std::size_t>(x)]) continue;
    if (t.is_ancestor(z, x)) required.push_back(x);
  }

  // Local rotation sizes (including the stub at the root).
  auto local_deg = [&](NodeId v) {
    int deg = (v == t.root()) ? 1 : 0;
    for (planar::DartId d : t.graph().rotation(v)) {
      if (t.contains(t.graph().head(d))) ++deg;
    }
    return deg;
  };
  const int deg_u = local_deg(fe.u);
  const int deg_z = local_deg(z);

  std::vector<Region> results;
  for (int gu = 0; gu <= deg_u; ++gu) {
    for (int gz = 0; gz <= deg_z; ++gz) {
      if (stats) ++stats->gaps;
      Instance inst = build(fe.u, z, gu, gz);
      const FaceStructure fs(inst.h);
      if (fs.euler_genus(inst.h) != 0) continue;  // insertion crosses edges
      if (stats) ++stats->planar;
      Region cand = classify(inst, fe.u, z);
      // Face must stay within F_e...
      bool ok = true;
      for (NodeId x : t.nodes()) {
        if (cand.inside[static_cast<std::size_t>(x)] &&
            !in_fe[static_cast<std::size_t>(x)]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (stats) ++stats->within_face;
      // ...and contain the required subtree nodes.
      std::vector<char> in_ff(cand.inside);
      for (NodeId x : cand.border) in_ff[static_cast<std::size_t>(x)] = 1;
      for (NodeId x : required) {
        if (!in_ff[static_cast<std::size_t>(x)]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        if (stats) ++stats->satisfied;
        const bool duplicate =
            std::any_of(results.begin(), results.end(), [&](const Region& r) {
              return r.inside == cand.inside;
            });
        if (!duplicate) results.push_back(std::move(cand));
      }
    }
  }
  return results;
}

bool FaceOracle::is_compatible(const FundamentalEdge& fe, NodeId z) const {
  return !augmented_faces(fe, z).empty();
}

std::vector<NodeId> FaceOracle::face_nodes(const Region& r) const {
  std::vector<NodeId> out = r.border;
  for (NodeId v : t_->nodes()) {
    if (r.inside[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

long long FaceOracle::lemma_weight(NodeId a, NodeId b, const Region& r) const {
  const RootedSpanningTree& t = *t_;
  PLANSEP_CHECK(t.pi_left(a) < t.pi_left(b));
  if (t.is_ancestor(a, b)) {
    return r.inside_count;  // Lemma 4: |F̊_e|
  }
  const NodeId w = t.lca(a, b);
  // Lemma 3, with the off-by-one of the paper resolved towards Definition
  // 2's closed form: the formula counts F̊_e plus the T-path from w to b
  // EXCLUDING the LCA w (the paper's prose includes w but its arithmetic
  // does not; verified by hand on small cycles).
  return r.inside_count + (t.depth(b) - t.depth(w));
}

}  // namespace plansep::faces
