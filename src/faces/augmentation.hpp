#pragma once

// Full augmentation of a fundamental face (§3.1.3, Definition 3, Remark 2).
//
// Given a real fundamental face F_e with e = uv and a node z strictly
// inside F_e, the full augmentation from u conceptually inserts the virtual
// edge u–z adjacent to e so that all of T_u ∩ F_e and all of T_z stay
// inside the new face F^ℓ_{uz}. The weight ω(F^ℓ_{uz}) is again given by
// Definition 2's closed forms, with the p-values adapted:
//   * p(z) = n_T(z) − 1 (the whole subtree of z lies inside F_e),
//   * p(u) = the inside children of u whose subtrees the sweep has passed.
// When z is not (T,F_e)-compatible with u (it is "hidden", Definition 4),
// the same arithmetic is still used by the search (the paper's notational
// abuse after Definition 4); only compatible nodes yield actual faces.

#include "faces/fundamental.hpp"

namespace plansep::faces {

/// ω(F^ℓ_{uz}) of the full augmentation from fe.u to a node z strictly
/// inside F_e. For compatible z this equals the region count of the
/// canonical insertion (property-tested against FaceOracle).
long long augmented_weight(const RootedSpanningTree& t,
                           const FundamentalEdge& fe, NodeId z);

/// Describes the virtual edge u–z as a FundamentalEdge-like record so the
/// path-marking machinery can treat real and virtual separator edges
/// uniformly: u' = endpoint with smaller π_ℓ (always fe.u), v' = z.
FundamentalEdge virtual_edge_record(const RootedSpanningTree& t,
                                    const FundamentalEdge& fe, NodeId z);

/// Weight of the *root sweep face* of node x: the region bounded by the
/// tree path root..x plus a virtual closing edge inserted at the root's
/// stub, containing everything the sweep order (π_ℓ when left, π_r when
/// right) has passed. This is Lemma 8's reduction: the virtual face
/// F_{r_T u'} whose interior is the heavy outside region F_ℓ^e (resp.
/// F_r^e) is a face of this form, and Phase 5's heavy case runs the
/// Phase-4 search over these faces.
long long root_sweep_weight(const RootedSpanningTree& t, NodeId x, bool left);

}  // namespace plansep::faces
