#pragma once

// Definition 2: the deterministic weight ω(F_e) of a fundamental face.
//
// The weight is computable from data local to the endpoints of e: their
// DFS-order positions π_ℓ/π_r, depths, subtree sizes, and the rotation
// offsets of their incident darts (the p-values below). This is the paper's
// first key technical contribution — a deterministic replacement for the
// randomized face-weight estimation of Ghaffari–Parter.
//
// Convention note. Definition 1 labels an ancestor edge E-left when
// t_u(v) < t_u(z), and Definition 2 pairs "left" with π_ℓ; however, the
// proof of Lemma 4 derives the π_ℓ formula under t_u(v) > t_u(z). The two
// statements cannot both hold; we resolve the discrepancy empirically: the
// pairing implemented here (t_u(v) > t_u(z) ⟹ π_ℓ) is the one under which
// ω(F_e) equals the region count of Lemmas 3/4 on every fundamental edge of
// every test instance (see tests/faces_weights_test.cpp).

#include "faces/fundamental.hpp"

namespace plansep::faces {

/// p_{F_e}(u): number of proper descendants of u lying inside F_e. These
/// are the subtrees of children of u whose darts fall on the inside arcs of
/// u's rotation (Claims 1 and 4). Locally computable by u given its
/// children's subtree sizes.
long long p_value_at_u(const RootedSpanningTree& t, const FundamentalEdge& fe);

/// p_{F_e}(v): same at the deeper endpoint v.
long long p_value_at_v(const RootedSpanningTree& t, const FundamentalEdge& fe);

/// Whether Definition 2 case 2 uses the LEFT order π_ℓ for this
/// ancestor-type edge (see convention note above).
bool uses_left_order(const FundamentalEdge& fe);

/// ω(F_e) per Definition 2. For u not an ancestor of v this equals |F̃_e|
/// (Lemma 3); for an ancestor edge it equals |F̊_e| (Lemma 4).
long long face_weight(const RootedSpanningTree& t, const FundamentalEdge& fe);

}  // namespace plansep::faces
