#pragma once

// Fundamental edges of a spanning tree (§2).
//
// Given a planar configuration (G, E, T) over a member set P, the *real*
// fundamental edges are the edges of G[P] not in T. Each real fundamental
// edge e = uv (normalized so π_ℓ(u) < π_ℓ(v)) defines a unique real
// fundamental face F_e: the side of the cycle (T-path(u,v) + e) away from
// the virtual root (§4). This header provides enumeration and per-edge
// analysis: ancestor relation and E-left/E-right orientation (Definition 1).

#include <vector>

#include "tree/rooted_tree.hpp"

namespace plansep::faces {

using planar::DartId;
using planar::EdgeId;
using planar::EmbeddedGraph;
using planar::NodeId;
using tree::RootedSpanningTree;

struct FundamentalEdge {
  EdgeId edge = planar::kNoEdge;
  NodeId u = planar::kNoNode;  // endpoint with smaller π_ℓ
  NodeId v = planar::kNoNode;  // endpoint with larger π_ℓ
  bool u_ancestor_of_v = false;
  /// Meaningful only when u_ancestor_of_v: Definition 1. z is the first
  /// node of the T-path from u to v (a child of u); the edge is E-left
  /// oriented iff t_u(v) < t_u(z).
  bool left_oriented = false;
  NodeId z = planar::kNoNode;  // child of u towards v when u_ancestor_of_v
};

/// All real fundamental edges of T (edges of G between two members of T
/// that are not tree edges), in edge-id order.
std::vector<EdgeId> real_fundamental_edges(const RootedSpanningTree& t);

/// Analyzes one real fundamental edge (normalization + Definition 1).
FundamentalEdge analyze_fundamental_edge(const RootedSpanningTree& t, EdgeId e);

/// The child of ancestor `a` on the tree path towards its strict
/// descendant `d` (the paper's node z).
NodeId child_towards(const RootedSpanningTree& t, NodeId a, NodeId d);

}  // namespace plansep::faces
