#include "faces/membership.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace plansep::faces {

namespace {

int child_offset(const RootedSpanningTree& t, NodeId c) {
  return t.t_offset(EmbeddedGraph::rev(t.parent_dart(c)));
}

PiInterval interval_of_children(const RootedSpanningTree& t,
                                const std::vector<NodeId>& children,
                                bool left) {
  PiInterval out;  // empty
  int total = 0;
  for (NodeId c : children) {
    const int lo = left ? t.pi_left(c) : t.pi_right(c);
    const int hi = lo + t.subtree_size(c) - 1;
    if (out.empty()) {
      out = {lo, hi};
    } else {
      out.lo = std::min(out.lo, lo);
      out.hi = std::max(out.hi, hi);
    }
    total += t.subtree_size(c);
  }
  // Inside children occupy a contiguous rotation arc, so their subtree
  // blocks are contiguous in both DFS orders.
  PLANSEP_CHECK_MSG(out.empty() || out.hi - out.lo + 1 == total,
                    "inside-children interval is not contiguous");
  return out;
}

}  // namespace

std::vector<NodeId> inside_children(const RootedSpanningTree& t,
                                    const FundamentalEdge& fe, NodeId x) {
  PLANSEP_CHECK(x == fe.u || x == fe.v);
  const int off_e = t.t_offset(t.graph().dart_from(fe.edge, x));
  std::vector<NodeId> out;
  if (x == fe.u) {
    if (!fe.u_ancestor_of_v) {
      for (NodeId c : t.children(fe.u)) {
        if (child_offset(t, c) < off_e) out.push_back(c);
      }
    } else {
      const int off_z = child_offset(t, fe.z);
      const int lo = std::min(off_z, off_e);
      const int hi = std::max(off_z, off_e);
      for (NodeId c : t.children(fe.u)) {
        const int off = child_offset(t, c);
        if (off > lo && off < hi) out.push_back(c);
      }
    }
  } else {
    const bool inside_above = !fe.u_ancestor_of_v || !fe.left_oriented;
    for (NodeId c : t.children(fe.v)) {
      const int off = child_offset(t, c);
      if (inside_above ? off > off_e : off < off_e) out.push_back(c);
    }
  }
  return out;
}

FaceData face_data(const RootedSpanningTree& t, const FundamentalEdge& fe) {
  FaceData fd;
  fd.fe = fe;
  fd.pi_l_u = t.pi_left(fe.u);
  fd.pi_r_u = t.pi_right(fe.u);
  fd.n_u = t.subtree_size(fe.u);
  fd.depth_u = t.depth(fe.u);
  fd.pi_l_v = t.pi_left(fe.v);
  fd.pi_r_v = t.pi_right(fe.v);
  fd.n_v = t.subtree_size(fe.v);
  fd.depth_v = t.depth(fe.v);
  const auto cu = inside_children(t, fe, fe.u);
  const auto cv = inside_children(t, fe, fe.v);
  fd.inside_u_l = interval_of_children(t, cu, /*left=*/true);
  fd.inside_u_r = interval_of_children(t, cu, /*left=*/false);
  fd.inside_v_l = interval_of_children(t, cv, /*left=*/true);
  fd.inside_v_r = interval_of_children(t, cv, /*left=*/false);
  fd.use_left = !fe.u_ancestor_of_v || !fe.left_oriented;
  // Data about the LCA and the path child (needed by the local rule).
  if (fe.u_ancestor_of_v) {
    fd.depth_w = fd.depth_u;
    fd.pi_l_z1 = t.pi_left(fe.z);
    fd.n_z1 = t.subtree_size(fe.z);
  } else {
    fd.depth_w = t.depth(t.lca(fe.u, fe.v));
    fd.pi_l_z1 = 0;
    fd.n_z1 = 0;
  }
  return fd;
}

NodeData node_data(const RootedSpanningTree& t, NodeId z) {
  return NodeData{z, t.pi_left(z), t.pi_right(z), t.subtree_size(z),
                  t.depth(z)};
}

namespace {

bool is_anc(int pi_l_a, int n_a, int pi_l_d) {
  return pi_l_d >= pi_l_a && pi_l_d < pi_l_a + n_a;
}

}  // namespace

FaceSide classify_node(const FaceData& fd, const NodeData& z) {
  if (z.id == fd.fe.u || z.id == fd.fe.v) return FaceSide::kBorder;
  const bool z_anc_u = is_anc(z.pi_l, z.n, fd.pi_l_u);
  const bool z_anc_v = is_anc(z.pi_l, z.n, fd.pi_l_v);
  const bool u_anc_z = is_anc(fd.pi_l_u, fd.n_u, z.pi_l);
  const bool v_anc_z = is_anc(fd.pi_l_v, fd.n_v, z.pi_l);

  if (fd.fe.u_ancestor_of_v) {
    if (!u_anc_z) return FaceSide::kOutside;
    if (z_anc_v) return FaceSide::kBorder;  // on the path u..v
    if (v_anc_z) {
      return fd.inside_v_l.contains(z.pi_l) ? FaceSide::kInside
                                            : FaceSide::kOutside;
    }
    if (is_anc(fd.pi_l_z1, fd.n_z1, z.pi_l)) {
      // In T_{z1} but neither on the path nor below v: Claim 5 interval.
      const bool in = fd.use_left ? z.pi_l < fd.pi_l_v : z.pi_r < fd.pi_r_v;
      return in ? FaceSide::kInside : FaceSide::kOutside;
    }
    // Hanging off u directly.
    return fd.inside_u_l.contains(z.pi_l) ? FaceSide::kInside
                                          : FaceSide::kOutside;
  }

  // u and v unrelated (Definition 2 case 1).
  if (u_anc_z) {
    return fd.inside_u_l.contains(z.pi_l) ? FaceSide::kInside
                                          : FaceSide::kOutside;
  }
  if (v_anc_z) {
    return fd.inside_v_l.contains(z.pi_l) ? FaceSide::kInside
                                          : FaceSide::kOutside;
  }
  if ((z_anc_u || z_anc_v) && z.depth >= fd.depth_w) return FaceSide::kBorder;
  const bool in = z.pi_l > fd.pi_l_u && z.pi_l < fd.pi_l_v;
  return in ? FaceSide::kInside : FaceSide::kOutside;
}

bool dart_points_inside(const RootedSpanningTree& t, const FundamentalEdge& fe,
                        DartId d) {
  const EmbeddedGraph& g = t.graph();
  const NodeId x = g.tail(d);
  const int off = t.t_offset(d);
  const bool use_left = !fe.u_ancestor_of_v || !fe.left_oriented;
  PLANSEP_CHECK_MSG(is_on_border(t, fe, x), "tail must be on the border");

  auto offset_towards = [&](NodeId target) {
    // Offset of the tree dart from x to its child on the path towards
    // `target` (x must be a strict ancestor of target).
    const NodeId c = child_towards(t, x, target);
    return child_offset(t, c);
  };

  if (fe.u_ancestor_of_v) {
    const int off_e_u = t.t_offset(g.dart_from(fe.edge, fe.u));
    if (x == fe.u) {
      const int off_z = child_offset(t, fe.z);
      const int lo = std::min(off_z, off_e_u);
      const int hi = std::max(off_z, off_e_u);
      return off > lo && off < hi;
    }
    if (x == fe.v) {
      const int off_e_v = t.t_offset(g.dart_from(fe.edge, fe.v));
      return use_left ? off > off_e_v : off < off_e_v;
    }
    // Internal path node: Claim 4 (iii) relative to the next node towards v.
    const int off_next = offset_towards(fe.v);
    return use_left ? off > off_next : off < off_next;
  }

  // u and v unrelated; w = LCA.
  const NodeId w = t.lca(fe.u, fe.v);
  if (x == fe.u) {
    const int off_e_u = t.t_offset(g.dart_from(fe.edge, fe.u));
    return off < off_e_u;  // Claim 1 (ii)
  }
  if (x == fe.v) {
    const int off_e_v = t.t_offset(g.dart_from(fe.edge, fe.v));
    return off > off_e_v;  // Claim 1 (iii)
  }
  if (x == w) {
    // Claim 1 (i): between the path children towards v and towards u.
    const int off_u1 = offset_towards(fe.u);
    const int off_v1 = offset_towards(fe.v);
    return off > off_v1 && off < off_u1;
  }
  if (t.is_ancestor(x, fe.u)) {
    return off < offset_towards(fe.u);  // Claim 1 (iv)
  }
  return off > offset_towards(fe.v);  // Claim 1 (v)
}

bool is_inside_face(const RootedSpanningTree& t, const FundamentalEdge& fe,
                    NodeId z) {
  return classify_node(face_data(t, fe), node_data(t, z)) == FaceSide::kInside;
}

bool is_on_border(const RootedSpanningTree& t, const FundamentalEdge& fe,
                  NodeId z) {
  return classify_node(face_data(t, fe), node_data(t, z)) == FaceSide::kBorder;
}

bool is_in_face(const RootedSpanningTree& t, const FundamentalEdge& fe,
                NodeId z) {
  return classify_node(face_data(t, fe), node_data(t, z)) != FaceSide::kOutside;
}

}  // namespace plansep::faces
