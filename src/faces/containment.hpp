#pragma once

// Containment between fundamental faces, and the NOT-CONTAINED /
// NOT-CONTAINS selections (Lemmas 17 and 18).
//
// A real fundamental edge f is contained in F_e when the whole face F_f
// lies within F_e (V(F_f) ⊆ V(F_e)). Because a real edge cannot cross the
// border of F_e, containment reduces to: both endpoints of f lie in
// V(F_e), and at any border endpoint the dart of f opens into the inside
// arc (dart_points_inside). Phase 4 needs a maximal weight->2n/3 edge that
// contains no other such edge; Phase 5 needs an edge not contained in any
// other.

#include "faces/fundamental.hpp"

namespace plansep::faces {

/// True iff the face of `inner` lies within the face of `outer`
/// (V(F_inner) ⊆ V(F_outer)). Both must be real fundamental edges of t;
/// an edge is not considered contained in itself.
bool face_contains(const RootedSpanningTree& t, const FundamentalEdge& outer,
                   const FundamentalEdge& inner);

/// An element of `edges` whose face is not contained in any other
/// element's face. `edges` must be non-empty.
FundamentalEdge pick_not_contained(const RootedSpanningTree& t,
                                   const std::vector<FundamentalEdge>& edges);

/// An element of `edges` whose face contains no other element's face.
FundamentalEdge pick_not_contains(const RootedSpanningTree& t,
                                  const std::vector<FundamentalEdge>& edges);

}  // namespace plansep::faces
