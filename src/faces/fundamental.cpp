#include "faces/fundamental.hpp"

#include "util/check.hpp"

namespace plansep::faces {

std::vector<EdgeId> real_fundamental_edges(const RootedSpanningTree& t) {
  const auto& g = t.graph();
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.is_tree_edge(e)) continue;
    if (!t.contains(g.edge_u(e)) || !t.contains(g.edge_v(e))) continue;
    out.push_back(e);
  }
  return out;
}

NodeId child_towards(const RootedSpanningTree& t, NodeId a, NodeId d) {
  PLANSEP_CHECK(t.is_ancestor(a, d) && a != d);
  for (NodeId c : t.children(a)) {
    if (t.is_ancestor(c, d)) return c;
  }
  PLANSEP_CHECK_MSG(false, "no child towards descendant");
  return planar::kNoNode;
}

FundamentalEdge analyze_fundamental_edge(const RootedSpanningTree& t,
                                         EdgeId e) {
  const auto& g = t.graph();
  PLANSEP_CHECK_MSG(!t.is_tree_edge(e), "not a fundamental edge");
  FundamentalEdge fe;
  fe.edge = e;
  NodeId a = g.edge_u(e);
  NodeId b = g.edge_v(e);
  PLANSEP_CHECK_MSG(t.contains(a) && t.contains(b),
                    "fundamental edge must join two tree members");
  if (t.pi_left(a) > t.pi_left(b)) std::swap(a, b);
  fe.u = a;
  fe.v = b;
  fe.u_ancestor_of_v = t.is_ancestor(a, b);
  if (fe.u_ancestor_of_v) {
    fe.z = child_towards(t, a, b);
    const DartId du_v = g.dart_from(e, a);
    const DartId du_z = t.parent_dart(fe.z) == planar::kNoDart
                            ? planar::kNoDart
                            : EmbeddedGraph::rev(t.parent_dart(fe.z));
    PLANSEP_CHECK(du_z != planar::kNoDart);
    fe.left_oriented = t.t_offset(du_v) < t.t_offset(du_z);
  }
  return fe;
}

}  // namespace plansep::faces
