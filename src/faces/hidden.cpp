#include "faces/hidden.hpp"

#include "faces/containment.hpp"
#include "faces/membership.hpp"
#include "util/check.hpp"

namespace plansep::faces {

bool hides(const RootedSpanningTree& t, const FundamentalEdge& fe,
           const FundamentalEdge& f, NodeId z) {
  if (f.edge == fe.edge) return false;
  if (!face_contains(t, fe, f)) return false;
  if (!is_inside_face(t, f, z)) return false;
  if (f.u != fe.u && f.v != fe.u) return true;  // Definition 4, condition 1
  // Definition 4, condition 2: u is an endpoint of f and F_f cuts off part
  // of T_u ∩ F_e.
  const FaceData fd_f = face_data(t, f);
  for (NodeId c : inside_children(t, fe, fe.u)) {
    // T_c lies inside F_e; F_f must keep all of it. Evaluate every node of
    // T_c via its π_ℓ interval (the distributed rule lets u do the same
    // check from its local intervals, see Lemma 16).
    const int lo = t.pi_left(c);
    const int hi = lo + t.subtree_size(c) - 1;
    bool all_in = true;
    for (NodeId x : t.nodes()) {
      if (t.pi_left(x) < lo || t.pi_left(x) > hi) continue;
      if (classify_node(fd_f, node_data(t, x)) == FaceSide::kOutside) {
        all_in = false;
        break;
      }
    }
    if (!all_in) return true;
  }
  return false;
}

std::vector<FundamentalEdge> hiding_edges(const RootedSpanningTree& t,
                                          const FundamentalEdge& fe,
                                          NodeId z) {
  std::vector<FundamentalEdge> out;
  for (planar::EdgeId e : real_fundamental_edges(t)) {
    if (e == fe.edge) continue;
    const FundamentalEdge f = analyze_fundamental_edge(t, e);
    if (hides(t, fe, f, z)) out.push_back(f);
  }
  return out;
}

}  // namespace plansep::faces
