#include "subroutines/components.hpp"

#include <deque>

namespace plansep::sub {

Components connected_components(const planar::EmbeddedGraph& g,
                                const std::function<bool(planar::NodeId)>& in) {
  Components out;
  out.label.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  for (planar::NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!in(s) || out.label[static_cast<std::size_t>(s)] >= 0) continue;
    const int id = out.count++;
    out.size.push_back(0);
    std::deque<planar::NodeId> queue{s};
    out.label[static_cast<std::size_t>(s)] = id;
    while (!queue.empty()) {
      const planar::NodeId v = queue.front();
      queue.pop_front();
      ++out.size[static_cast<std::size_t>(id)];
      for (planar::DartId d : g.rotation(v)) {
        const planar::NodeId w = g.head(d);
        if (!in(w) || out.label[static_cast<std::size_t>(w)] >= 0) continue;
        out.label[static_cast<std::size_t>(w)] = id;
        queue.push_back(w);
      }
    }
  }
  return out;
}

}  // namespace plansep::sub
