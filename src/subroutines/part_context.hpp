#pragma once

// PartSet: the shared state of one parallel invocation over a node
// partition — per-part rooted spanning trees with their distributed
// representation (depth, parent, subtree size, π_ℓ/π_r).
//
// Establishing the representation costs:
//  * spanning forest: Borůvka phases (Lemma 9) — paid in boruvka_forest;
//  * depths and subtree sizes of arbitrary-depth trees: ancestor/descendant
//    sums (Proposition 5, black box) — one charge each;
//  * LEFT/RIGHT-DFS-ORDERs: the fragment-merge algorithm of Lemma 11 —
//    O(log n) phases, each a constant number of part-wise aggregations
//    over the current fragments plus O(1) local rounds. The fragment
//    partition evolves by the parity rule (odd-depth fragments join their
//    parent fragment; depths halve), which charge_dfs_orders simulates to
//    account rounds; the resulting orders equal RootedSpanningTree's.

#include <memory>
#include <vector>

#include "shortcuts/partwise.hpp"
#include "subroutines/spanning_forest.hpp"
#include "tree/rooted_tree.hpp"

namespace plansep::sub {

using tree::RootedSpanningTree;

struct PartSet {
  const EmbeddedGraph* g = nullptr;
  std::vector<int> part;  // part id per node; -1 = not participating
  int num_parts = 0;
  std::vector<NodeId> roots;                                // per part
  std::vector<std::unique_ptr<RootedSpanningTree>> trees;   // per part
  RoundCost cost;  // cost of building this representation

  int part_of(NodeId v) const { return part[static_cast<std::size_t>(v)]; }
  const RootedSpanningTree& tree_of_part(int p) const { return *trees[static_cast<std::size_t>(p)]; }
  int part_size(int p) const { return trees[static_cast<std::size_t>(p)]->size(); }
};

/// Builds per-part spanning trees (Borůvka, unit weights) and their full
/// distributed representation. Roots default to each part's minimum-id
/// node; pass `preferred_root[p]` != kNoNode to root part p elsewhere.
PartSet build_part_set(const EmbeddedGraph& g, const std::vector<int>& part,
                       int num_parts, PartwiseEngine& engine,
                       const std::vector<NodeId>& preferred_root = {});

/// Builds a PartSet from existing parent darts (e.g. re-rooted or 0/1-MST
/// forests); charges representation setup (depths/sizes/orders) only.
PartSet part_set_from_forest(const EmbeddedGraph& g,
                             const std::vector<int>& part, int num_parts,
                             const std::vector<planar::DartId>& parent_dart,
                             const std::vector<NodeId>& roots,
                             PartwiseEngine& engine);

/// Cost of computing the LEFT/RIGHT-DFS-ORDERs by Lemma 11's fragment
/// merging over the given trees (values themselves come from the tree
/// objects).
RoundCost charge_dfs_orders(PartwiseEngine& engine, const PartSet& ps);

}  // namespace plansep::sub
