#pragma once

// Connected-component labelling over an induced node subset. Centralized
// value computation; distributively this is one Borůvka run (Lemma 9 with
// unit weights, fragments merged until no outgoing edges remain), costing
// O(log n) part-wise aggregations.

#include <functional>
#include <vector>

#include "planar/embedded_graph.hpp"

namespace plansep::sub {

struct Components {
  std::vector<int> label;  // component id per node; -1 = excluded
  int count = 0;
  std::vector<int> size;   // per component
};

Components connected_components(const planar::EmbeddedGraph& g,
                                const std::function<bool(planar::NodeId)>& in);

}  // namespace plansep::sub
