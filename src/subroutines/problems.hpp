#pragma once

// The paper's named distributed problems (§5.2, §6.1) as standalone,
// costed operations over a PartSet. Each runs in parallel over every part
// and returns both the values and the round cost:
//
//   MIN/MAX-PROBLEM, SUM-SUBSET-PROBLEM, SUM-TREE-PROBLEM,
//   RANGE-PROBLEM, ANCESTOR/DESCENDANT-PROBLEM        (Lemma 10)
//   MARK-PATH-PROBLEM                                 (Lemma 13)
//   LCA-PROBLEM                                       (Lemma 14)
//   DETECT-FACE-PROBLEM                               (Lemma 15)
//   HIDDEN-PROBLEM                                    (Lemma 16)
//   RE-ROOT-PROBLEM                                   (Lemma 19)
//
// Implementation note: once the representation (depths, subtree sizes,
// π_ℓ/π_r with subtree intervals) is established — which PartSet charges
// for — most problems reduce to O(1) part-wise aggregations plus local
// rules. MARK-PATH in particular becomes the interval rule
//   v ∈ path(u,w)  ⟺  (v ancestor-of u) XOR (v ancestor-of w), or v = LCA,
// decided locally after broadcasting π_ℓ(u), π_ℓ(w) — the same Õ(D)
// bound as the paper's fragment-merging proof with none of its machinery
// (the orders are already there; documented deviation).

#include "faces/membership.hpp"
#include "subroutines/part_context.hpp"

namespace plansep::sub {

using faces::FundamentalEdge;

/// Result of a per-part query: one value per part plus the cost.
template <typename T>
struct PerPart {
  std::vector<T> value;  // indexed by part id
  RoundCost cost;
};

/// Result of a per-node predicate plus the cost.
struct PerNode {
  std::vector<char> flag;  // indexed by node id
  RoundCost cost;
};

/// MIN/MAX-PROBLEM (Lemma 10.1): every node of a part learns the id of a
/// node minimizing/maximizing its input. Returns that node per part
/// (kNoNode for empty/absent input, encoded as x_v = nullopt via mask).
PerPart<NodeId> min_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<std::int64_t>& x,
                            const std::vector<char>& participates);
PerPart<NodeId> max_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<std::int64_t>& x,
                            const std::vector<char>& participates);

/// SUM-SUBSET-PROBLEM (Lemma 10.2): |P_i| per part.
PerPart<std::int64_t> sum_subset_problem(const PartSet& ps,
                                         PartwiseEngine& engine);

/// RANGE-PROBLEM (Lemma 10.4): the id of some node whose input lies in
/// [lo, hi] (kNoNode if none).
PerPart<NodeId> range_problem(const PartSet& ps, PartwiseEngine& engine,
                              const std::vector<std::int64_t>& x,
                              std::int64_t lo, std::int64_t hi);

/// ANCESTOR-PROBLEM / DESCENDANT-PROBLEM (Lemma 10.5): every node learns
/// whether it is an ancestor (resp. descendant) of its part's target node.
PerNode ancestor_problem(const PartSet& ps, PartwiseEngine& engine,
                         const std::vector<NodeId>& target_of_part);
PerNode descendant_problem(const PartSet& ps, PartwiseEngine& engine,
                           const std::vector<NodeId>& target_of_part);

/// MARK-PATH-PROBLEM (Lemma 13): every node learns whether it lies on the
/// tree path between its part's two endpoints.
PerNode mark_path_problem(const PartSet& ps, PartwiseEngine& engine,
                          const std::vector<NodeId>& u_of_part,
                          const std::vector<NodeId>& w_of_part);

/// LCA-PROBLEM (Lemma 14): the LCA of the part's two endpoints.
PerPart<NodeId> lca_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<NodeId>& u_of_part,
                            const std::vector<NodeId>& w_of_part);

/// DETECT-FACE-PROBLEM (Lemma 15): every node of part p learns its side of
/// the fundamental face of `edge_of_part[p]` (border counts as in-face).
PerNode detect_face_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<FundamentalEdge>& edge_of_part);

/// HIDDEN-PROBLEM (Lemma 16): whether any real fundamental edge of part p
/// hides node z_of_part[p] inside the face of edge_of_part[p].
PerPart<bool> hidden_problem(const PartSet& ps, PartwiseEngine& engine,
                             const std::vector<FundamentalEdge>& edge_of_part,
                             const std::vector<NodeId>& z_of_part);

/// RE-ROOT-PROBLEM (Lemma 19): a new PartSet whose trees have the same
/// edges but are rooted at new_root_of_part (kNoNode = keep). The cost of
/// the re-rooting itself (depth/parent updates) is one black-box charge;
/// re-establishing orders is charged by the returned PartSet.
PartSet re_root_problem(const PartSet& ps, PartwiseEngine& engine,
                        const std::vector<NodeId>& new_root_of_part);

}  // namespace plansep::sub
