#include "subroutines/problems.hpp"

#include <limits>

#include "faces/hidden.hpp"
#include "util/check.hpp"

namespace plansep::sub {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/// Encodes (value, node) so the aggregation's arg-min/arg-max is
/// deterministic: value in the high bits, node id in the low 32.
std::int64_t encode(std::int64_t value, NodeId v, bool negate_id) {
  const std::int64_t id = negate_id ? (0x7fffffffLL - v) : v;
  return (value << 32) | id;
}

NodeId decode_node(std::int64_t key, bool negate_id) {
  const std::int64_t id = key & 0x7fffffffLL;
  return static_cast<NodeId>(negate_id ? (0x7fffffffLL - id) : id);
}

PerPart<NodeId> extreme_problem(const PartSet& ps, PartwiseEngine& engine,
                                const std::vector<std::int64_t>& x,
                                const std::vector<char>& participates,
                                bool want_min) {
  const NodeId n = ps.g->num_nodes();
  PLANSEP_CHECK(static_cast<NodeId>(x.size()) == n);
  std::vector<std::int64_t> keyed(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (!participates.empty() && !participates[static_cast<std::size_t>(v)]) {
      keyed[static_cast<std::size_t>(v)] = want_min ? kInf : -kInf;
    } else {
      // Clamp into the encodable range.
      const std::int64_t val = std::clamp<std::int64_t>(
          x[static_cast<std::size_t>(v)], -(1LL << 30), (1LL << 30));
      keyed[static_cast<std::size_t>(v)] = encode(val, v, !want_min);
    }
  }
  auto agg = engine.aggregate(
      ps.part, keyed, want_min ? shortcuts::AggOp::kMin : shortcuts::AggOp::kMax);
  PerPart<NodeId> out;
  out.value.assign(static_cast<std::size_t>(ps.num_parts), planar::kNoNode);
  out.cost = agg.cost;
  for (NodeId v = 0; v < n; ++v) {
    const int p = ps.part_of(v);
    if (p < 0) continue;
    const std::int64_t key = agg.value[static_cast<std::size_t>(v)];
    if (key == kInf || key == -kInf) continue;
    out.value[static_cast<std::size_t>(p)] = decode_node(key, !want_min);
  }
  return out;
}

}  // namespace

PerPart<NodeId> min_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<std::int64_t>& x,
                            const std::vector<char>& participates) {
  return extreme_problem(ps, engine, x, participates, /*want_min=*/true);
}

PerPart<NodeId> max_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<std::int64_t>& x,
                            const std::vector<char>& participates) {
  return extreme_problem(ps, engine, x, participates, /*want_min=*/false);
}

PerPart<std::int64_t> sum_subset_problem(const PartSet& ps,
                                         PartwiseEngine& engine) {
  const NodeId n = ps.g->num_nodes();
  std::vector<std::int64_t> ones(static_cast<std::size_t>(n), 1);
  auto agg = engine.aggregate(ps.part, ones, shortcuts::AggOp::kSum);
  PerPart<std::int64_t> out;
  out.value.assign(static_cast<std::size_t>(ps.num_parts), 0);
  out.cost = agg.cost;
  for (NodeId v = 0; v < n; ++v) {
    const int p = ps.part_of(v);
    if (p >= 0) {
      out.value[static_cast<std::size_t>(p)] =
          agg.value[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

PerPart<NodeId> range_problem(const PartSet& ps, PartwiseEngine& engine,
                              const std::vector<std::int64_t>& x,
                              std::int64_t lo, std::int64_t hi) {
  std::vector<char> in_range(x.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    in_range[i] = (x[i] >= lo && x[i] <= hi);
  }
  return max_problem(ps, engine, x, in_range);
}

namespace {

PerNode relation_problem(const PartSet& ps, PartwiseEngine& engine,
                         const std::vector<NodeId>& target_of_part,
                         bool ancestors) {
  const NodeId n = ps.g->num_nodes();
  PerNode out;
  out.flag.assign(static_cast<std::size_t>(n), 0);
  // Broadcast π_ℓ(target) per part: one aggregation (two words: position
  // and subtree size).
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
  auto agg = engine.aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  agg.cost.measured *= 2;
  agg.cost.charged *= 2;
  agg.cost.pa_calls = 2;
  out.cost = agg.cost;
  for (NodeId v = 0; v < n; ++v) {
    const int p = ps.part_of(v);
    if (p < 0) continue;
    const NodeId t = target_of_part[static_cast<std::size_t>(p)];
    if (t == planar::kNoNode) continue;
    const auto& tree = ps.tree_of_part(p);
    out.flag[static_cast<std::size_t>(v)] =
        ancestors ? tree.is_ancestor(v, t) : tree.is_ancestor(t, v);
  }
  return out;
}

}  // namespace

PerNode ancestor_problem(const PartSet& ps, PartwiseEngine& engine,
                         const std::vector<NodeId>& target_of_part) {
  return relation_problem(ps, engine, target_of_part, /*ancestors=*/true);
}

PerNode descendant_problem(const PartSet& ps, PartwiseEngine& engine,
                           const std::vector<NodeId>& target_of_part) {
  return relation_problem(ps, engine, target_of_part, /*ancestors=*/false);
}

PerNode mark_path_problem(const PartSet& ps, PartwiseEngine& engine,
                          const std::vector<NodeId>& u_of_part,
                          const std::vector<NodeId>& w_of_part) {
  const NodeId n = ps.g->num_nodes();
  PerNode out;
  out.flag.assign(static_cast<std::size_t>(n), 0);
  // Broadcast the two endpoints' positions (2 aggregations), then decide
  // locally: v is on path(u,w) iff (anc(v,u) XOR anc(v,w)) or v = LCA(u,w),
  // the latter detected as "ancestor of both with maximal depth" via one
  // more MAX aggregation.
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
  auto agg = engine.aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  agg.cost.measured *= 3;
  agg.cost.charged *= 3;
  agg.cost.pa_calls = 3;
  out.cost = agg.cost;
  for (NodeId v = 0; v < n; ++v) {
    const int p = ps.part_of(v);
    if (p < 0) continue;
    const NodeId u = u_of_part[static_cast<std::size_t>(p)];
    const NodeId w = w_of_part[static_cast<std::size_t>(p)];
    if (u == planar::kNoNode || w == planar::kNoNode) continue;
    const auto& t = ps.tree_of_part(p);
    const bool au = t.is_ancestor(v, u);
    const bool aw = t.is_ancestor(v, w);
    out.flag[static_cast<std::size_t>(v)] =
        (au != aw) || (au && aw && v == t.lca(u, w));
  }
  return out;
}

PerPart<NodeId> lca_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<NodeId>& u_of_part,
                            const std::vector<NodeId>& w_of_part) {
  const NodeId n = ps.g->num_nodes();
  // Each common ancestor contributes depth+1; MAX-PROBLEM finds the
  // deepest (Lemma 14's construction).
  std::vector<std::int64_t> x(static_cast<std::size_t>(n), 0);
  std::vector<char> participates(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const int p = ps.part_of(v);
    if (p < 0) continue;
    const NodeId u = u_of_part[static_cast<std::size_t>(p)];
    const NodeId w = w_of_part[static_cast<std::size_t>(p)];
    if (u == planar::kNoNode || w == planar::kNoNode) continue;
    const auto& t = ps.tree_of_part(p);
    if (t.is_ancestor(v, u) && t.is_ancestor(v, w)) {
      participates[static_cast<std::size_t>(v)] = 1;
      x[static_cast<std::size_t>(v)] = t.depth(v) + 1;
    }
  }
  return max_problem(ps, engine, x, participates);
}

PerNode detect_face_problem(const PartSet& ps, PartwiseEngine& engine,
                            const std::vector<FundamentalEdge>& edge_of_part) {
  const NodeId n = ps.g->num_nodes();
  PerNode out;
  out.flag.assign(static_cast<std::size_t>(n), 0);
  // The FaceData payload is a constant number of words (Lemma 15's
  // intervals I(u), I(v) plus endpoint positions): charge 6 aggregations.
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
  auto agg = engine.aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  agg.cost.measured *= 6;
  agg.cost.charged *= 6;
  agg.cost.pa_calls = 6;
  out.cost = agg.cost;
  for (int p = 0; p < ps.num_parts; ++p) {
    if (!ps.trees[static_cast<std::size_t>(p)]) continue;
    const auto& fe = edge_of_part[static_cast<std::size_t>(p)];
    if (fe.edge == planar::kNoEdge) continue;
    const auto& t = ps.tree_of_part(p);
    const faces::FaceData fd = faces::face_data(t, fe);
    for (NodeId v : t.nodes()) {
      out.flag[static_cast<std::size_t>(v)] =
          faces::classify_node(fd, faces::node_data(t, v)) !=
          faces::FaceSide::kOutside;
    }
  }
  return out;
}

PerPart<bool> hidden_problem(const PartSet& ps, PartwiseEngine& engine,
                             const std::vector<FundamentalEdge>& edge_of_part,
                             const std::vector<NodeId>& z_of_part) {
  PerPart<bool> out;
  out.value.assign(static_cast<std::size_t>(ps.num_parts), false);
  // Broadcast z's data, evaluate `hides` at every fundamental edge in
  // parallel (local after the broadcast), aggregate the OR: 3 calls.
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(ps.g->num_nodes()),
                                  0);
  auto agg = engine.aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  agg.cost.measured *= 3;
  agg.cost.charged *= 3;
  agg.cost.pa_calls = 3;
  out.cost = agg.cost;
  out.cost += shortcuts::local_exchange(1);
  for (int p = 0; p < ps.num_parts; ++p) {
    if (!ps.trees[static_cast<std::size_t>(p)]) continue;
    const auto& fe = edge_of_part[static_cast<std::size_t>(p)];
    const NodeId z = z_of_part[static_cast<std::size_t>(p)];
    if (fe.edge == planar::kNoEdge || z == planar::kNoNode) continue;
    const auto& t = ps.tree_of_part(p);
    out.value[static_cast<std::size_t>(p)] =
        !faces::hiding_edges(t, fe, z).empty();
  }
  return out;
}

PartSet re_root_problem(const PartSet& ps, PartwiseEngine& engine,
                        const std::vector<NodeId>& new_root_of_part) {
  const auto& g = *ps.g;
  std::vector<planar::DartId> parent(static_cast<std::size_t>(g.num_nodes()),
                                     planar::kNoDart);
  std::vector<NodeId> roots(static_cast<std::size_t>(ps.num_parts),
                            planar::kNoNode);
  for (int p = 0; p < ps.num_parts; ++p) {
    if (!ps.trees[static_cast<std::size_t>(p)]) continue;
    const auto& t = ps.tree_of_part(p);
    for (NodeId v : t.nodes()) {
      parent[static_cast<std::size_t>(v)] = t.parent_dart(v);
    }
    NodeId want = new_root_of_part[static_cast<std::size_t>(p)];
    if (want == planar::kNoNode) want = t.root();
    roots[static_cast<std::size_t>(p)] = want;
    // Flip parent darts along want -> old root (Lemma 19's update rule:
    // ancestors of the new root adopt their path child as parent).
    NodeId v = want;
    planar::DartId carry = planar::kNoDart;
    while (v != planar::kNoNode) {
      const planar::DartId old = parent[static_cast<std::size_t>(v)];
      parent[static_cast<std::size_t>(v)] = carry;
      if (old == planar::kNoDart) break;
      carry = EmbeddedGraph::rev(old);
      v = g.head(old);
    }
  }
  PartSet out = part_set_from_forest(g, ps.part, ps.num_parts, parent, roots,
                                     engine);
  out.cost += engine.blackbox_charge();  // the depth/parent updates
  return out;
}

}  // namespace plansep::sub
