#include "subroutines/part_context.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::sub {

namespace {

PartSet finish_part_set(const EmbeddedGraph& g, const std::vector<int>& part,
                        int num_parts,
                        const std::vector<planar::DartId>& parent_dart,
                        const std::vector<NodeId>& roots,
                        PartwiseEngine& engine, RoundCost base_cost) {
  PartSet ps;
  ps.g = &g;
  ps.part = part;
  ps.num_parts = num_parts;
  ps.roots = roots;
  ps.cost = base_cost;

  // Split the parent darts per part and construct the trees.
  ps.trees.resize(static_cast<std::size_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    const NodeId r = roots[static_cast<std::size_t>(p)];
    if (r == planar::kNoNode) continue;
    std::vector<planar::DartId> pd(static_cast<std::size_t>(g.num_nodes()),
                                   planar::kNoDart);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (part[static_cast<std::size_t>(v)] == p && v != r) {
        pd[static_cast<std::size_t>(v)] =
            parent_dart[static_cast<std::size_t>(v)];
      }
    }
    ps.trees[static_cast<std::size_t>(p)] =
        std::make_unique<RootedSpanningTree>(g, r, std::move(pd));
  }

  // Distributed representation: depths and subtree sizes via Proposition 5
  // (ancestor/descendant sums over arbitrary-depth trees, black box), then
  // the DFS orders via Lemma 11's fragment merging.
  ps.cost += engine.blackbox_charge();  // depths
  ps.cost += engine.blackbox_charge();  // subtree sizes
  ps.cost += charge_dfs_orders(engine, ps);
  return ps;
}

}  // namespace

PartSet build_part_set(const EmbeddedGraph& g, const std::vector<int>& part,
                       int num_parts, PartwiseEngine& engine,
                       const std::vector<NodeId>& preferred_root) {
  PLANSEP_SPAN("sub/part_set");
  SpanningForest forest = boruvka_forest(
      g, part, num_parts, [](EdgeId) { return 0; }, engine);
  std::vector<NodeId> roots = forest.root;
  std::vector<planar::DartId> parent = forest.parent_dart;
  if (!preferred_root.empty()) {
    // Re-root the affected trees (Lemma 19: one black-box charge; the
    // edges stay the same, only parent orientation flips along the path).
    bool any = false;
    for (int p = 0; p < num_parts; ++p) {
      const NodeId want = preferred_root[static_cast<std::size_t>(p)];
      if (want == planar::kNoNode ||
          want == roots[static_cast<std::size_t>(p)]) {
        continue;
      }
      PLANSEP_CHECK(part[static_cast<std::size_t>(want)] == p);
      any = true;
      // Flip parent darts along the path want -> old root.
      NodeId v = want;
      planar::DartId carry = planar::kNoDart;
      while (v != planar::kNoNode) {
        const planar::DartId old = parent[static_cast<std::size_t>(v)];
        parent[static_cast<std::size_t>(v)] = carry;
        if (old == planar::kNoDart) break;
        carry = EmbeddedGraph::rev(old);
        v = g.head(old);
      }
      roots[static_cast<std::size_t>(p)] = want;
    }
    if (any) {
      // RE-ROOT-PROBLEM cost (Lemma 19).
      RoundCost rc = engine.blackbox_charge();
      forest.cost += rc;
    }
  }
  return finish_part_set(g, part, num_parts, parent, roots, engine,
                         forest.cost);
}

PartSet part_set_from_forest(const EmbeddedGraph& g,
                             const std::vector<int>& part, int num_parts,
                             const std::vector<planar::DartId>& parent_dart,
                             const std::vector<NodeId>& roots,
                             PartwiseEngine& engine) {
  return finish_part_set(g, part, num_parts, parent_dart, roots, engine,
                         RoundCost{});
}

RoundCost charge_dfs_orders(PartwiseEngine& engine, const PartSet& ps) {
  PLANSEP_SPAN("sub/orders");
  // Simulate the fragment partition evolution of Lemma 11: every node
  // starts as its own fragment whose depth is its tree depth; per phase,
  // fragments at odd depth merge into the fragment containing their root's
  // parent, and all depths halve. Each phase costs O(1) local rounds plus
  // a constant number of words broadcast fragment-wide (one PA over the
  // fragment partition per word).
  const EmbeddedGraph& g = *ps.g;
  const NodeId n = g.num_nodes();
  constexpr int kWordsPerPhase = 4;  // offset_l, offset_r, frag id, depth

  RoundCost total;
  std::vector<NodeId> frag_root(static_cast<std::size_t>(n));
  std::vector<long long> frag_depth(static_cast<std::size_t>(n), -1);
  std::vector<int> frag(static_cast<std::size_t>(n), -1);
  bool all_done = true;
  for (NodeId v = 0; v < n; ++v) {
    frag_root[static_cast<std::size_t>(v)] = v;
    const int p = ps.part_of(v);
    if (p < 0) continue;
    const auto& t = ps.tree_of_part(p);
    frag_depth[static_cast<std::size_t>(v)] = t.depth(v);
    if (t.depth(v) > 0) all_done = false;
  }
  if (all_done) return total;

  for (int phase = 0; phase < 64; ++phase) {
    // Current fragment partition (fragment id = root id).
    for (NodeId v = 0; v < n; ++v) {
      frag[static_cast<std::size_t>(v)] =
          ps.part_of(v) < 0 ? -1 : frag_root[static_cast<std::size_t>(v)];
    }
    // Cost: local handshake + fragment-wide broadcast of kWordsPerPhase.
    total += shortcuts::local_exchange(2);
    std::vector<std::int64_t> zeros(static_cast<std::size_t>(n), 0);
    auto agg = engine.aggregate(frag, zeros, shortcuts::AggOp::kMax);
    // aggregate() advanced the obs clock by one unit; mirror the
    // remaining kWordsPerPhase - 1 words of the ledger charge.
    obs::advance_rounds(agg.cost.measured * (kWordsPerPhase - 1));
    agg.cost.measured *= kWordsPerPhase;
    agg.cost.charged *= kWordsPerPhase;
    agg.cost.pa_calls *= kWordsPerPhase;
    total += agg.cost;

    // Merge odd-depth fragments into their parent's fragment.
    bool changed = false;
    std::vector<NodeId> new_root = frag_root;
    for (NodeId v = 0; v < n; ++v) {
      const int p = ps.part_of(v);
      if (p < 0) continue;
      const NodeId r = frag_root[static_cast<std::size_t>(v)];
      if (frag_depth[static_cast<std::size_t>(r)] % 2 == 1) {
        const auto& t = ps.tree_of_part(p);
        const NodeId pr = t.parent(r);
        PLANSEP_CHECK(pr != planar::kNoNode);
        new_root[static_cast<std::size_t>(v)] =
            frag_root[static_cast<std::size_t>(pr)];
        changed = true;
      }
    }
    frag_root = new_root;
    bool done = true;
    for (NodeId v = 0; v < n; ++v) {
      if (ps.part_of(v) < 0) continue;
      const NodeId r = frag_root[static_cast<std::size_t>(v)];
      frag_depth[static_cast<std::size_t>(v)] =
          frag_depth[static_cast<std::size_t>(r)];
      if (frag_root[static_cast<std::size_t>(v)] !=
          ps.roots[static_cast<std::size_t>(ps.part_of(v))]) {
        done = false;
      }
    }
    // Halve fragment depths.
    for (NodeId v = 0; v < n; ++v) {
      if (frag_depth[static_cast<std::size_t>(v)] > 0) {
        frag_depth[static_cast<std::size_t>(v)] /= 2;
      }
    }
    if (done || !changed) break;
  }
  return total;
}

}  // namespace plansep::sub
