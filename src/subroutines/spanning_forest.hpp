#pragma once

// Per-part spanning trees via Borůvka (Lemma 9) with 0/1 edge weights.
//
// The paper computes a spanning tree of every part in parallel by
// simulating Borůvka's algorithm through part-wise aggregation: each
// fragment selects its minimum outgoing edge (MOE) per phase, fragments
// merge, and after O(log n) phases each part is spanned. With 0/1 weights
// (JOIN-PROBLEM, §6.1.2) the MST keeps weight-0 edges (separator-separator
// edges) contiguous in the tree. Ties are broken by edge id, making the
// result deterministic.

#include <functional>
#include <memory>

#include "shortcuts/partwise.hpp"
#include "tree/rooted_tree.hpp"

namespace plansep::sub {

using planar::EdgeId;
using planar::EmbeddedGraph;
using planar::NodeId;
using shortcuts::PartwiseEngine;
using shortcuts::RoundCost;

struct SpanningForest {
  /// parent_dart[v]: dart v→parent in its part's tree (kNoDart for roots
  /// and for nodes with part -1).
  std::vector<planar::DartId> parent_dart;
  /// root of each part (node with minimum id).
  std::vector<NodeId> root;  // indexed by part id
  RoundCost cost;
};

/// Computes a minimum spanning tree of each part w.r.t. (weight(e), e)
/// lexicographic order, where weight(e) in {0, 1}. Parts must induce
/// connected subgraphs. Cost: O(log n) Borůvka phases, each one part-wise
/// aggregation over the current fragments plus O(1) local rounds.
SpanningForest boruvka_forest(
    const EmbeddedGraph& g, const std::vector<int>& part, int num_parts,
    const std::function<int(EdgeId)>& weight, PartwiseEngine& engine);

}  // namespace plansep::sub
