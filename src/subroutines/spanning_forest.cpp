#include "subroutines/spanning_forest.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::sub {

namespace {

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
};

}  // namespace

SpanningForest boruvka_forest(
    const EmbeddedGraph& g, const std::vector<int>& part, int num_parts,
    const std::function<int(EdgeId)>& weight, PartwiseEngine& engine) {
  PLANSEP_SPAN("sub/boruvka");
  const NodeId n = g.num_nodes();
  SpanningForest out;
  out.parent_dart.assign(static_cast<std::size_t>(n), planar::kNoDart);
  out.root.assign(static_cast<std::size_t>(num_parts), planar::kNoNode);

  Dsu dsu(n);
  std::vector<char> chosen(static_cast<std::size_t>(g.num_edges()), 0);
  // Fragment ids for cost accounting: the PA of each phase runs over the
  // current fragments (each fragment is a connected subgraph).
  std::vector<int> frag(static_cast<std::size_t>(n));

  constexpr std::int64_t kNone = std::numeric_limits<std::int64_t>::max();
  for (int phase = 0; phase < 64; ++phase) {
    // Fragment ids = DSU representative, but only for participating nodes.
    bool multi = false;
    for (NodeId v = 0; v < n; ++v) {
      frag[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(v)] < 0 ? -1 : dsu.find(v);
    }
    // MOE per fragment: encode (weight, edge_id) into the PA value; every
    // node contributes its best incident intra-part inter-fragment edge.
    std::vector<std::int64_t> moe(static_cast<std::size_t>(n), kNone);
    for (NodeId v = 0; v < n; ++v) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p < 0) continue;
      for (planar::DartId d : g.rotation(v)) {
        const NodeId w = g.head(d);
        if (part[static_cast<std::size_t>(w)] != p) continue;
        if (dsu.find(v) == dsu.find(w)) continue;
        const EdgeId e = EmbeddedGraph::edge_of(d);
        const std::int64_t key =
            (static_cast<std::int64_t>(weight(e)) << 32) | e;
        moe[static_cast<std::size_t>(v)] =
            std::min(moe[static_cast<std::size_t>(v)], key);
      }
    }
    auto agg = engine.aggregate(frag, moe, shortcuts::AggOp::kMin);
    out.cost += agg.cost;
    out.cost += shortcuts::local_exchange(1);  // merge handshake

    // Merge along each fragment's MOE.
    std::vector<std::pair<int, EdgeId>> merges;
    std::vector<char> frag_seen(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (part[static_cast<std::size_t>(v)] < 0) continue;
      const int f = dsu.find(v);
      if (frag_seen[static_cast<std::size_t>(f)]) continue;
      frag_seen[static_cast<std::size_t>(f)] = 1;
      const std::int64_t key = agg.value[static_cast<std::size_t>(v)];
      if (key == kNone) continue;
      merges.emplace_back(f, static_cast<EdgeId>(key & 0xffffffff));
    }
    if (merges.empty()) break;
    for (const auto& [f, e] : merges) {
      (void)f;
      if (dsu.find(g.edge_u(e)) == dsu.find(g.edge_v(e))) continue;
      chosen[static_cast<std::size_t>(e)] = 1;
      dsu.unite(g.edge_u(e), g.edge_v(e));
    }
    if (!multi) multi = true;
  }

  // Root each part's tree at its minimum-id node and orient the chosen
  // edges. Orientation is the RE-ROOT problem on the forest; the paper
  // solves it in Õ(D) (Lemma 19) — charge one black-box call.
  out.cost += engine.blackbox_charge();
  std::vector<NodeId> order;
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p < 0) continue;
    if (out.root[static_cast<std::size_t>(p)] == planar::kNoNode) {
      out.root[static_cast<std::size_t>(p)] = v;  // min id: v ascending
    }
  }
  // BFS over chosen edges from each root to orient parent darts.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < num_parts; ++p) {
    const NodeId r = out.root[static_cast<std::size_t>(p)];
    if (r == planar::kNoNode) continue;
    std::vector<NodeId> stack{r};
    seen[static_cast<std::size_t>(r)] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (planar::DartId d : g.rotation(v)) {
        if (!chosen[static_cast<std::size_t>(EmbeddedGraph::edge_of(d))]) {
          continue;
        }
        const NodeId w = g.head(d);
        if (seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = 1;
        out.parent_dart[static_cast<std::size_t>(w)] = EmbeddedGraph::rev(d);
        stack.push_back(w);
      }
    }
  }
  // Sanity: every participating node is reached.
  for (NodeId v = 0; v < n; ++v) {
    const int p = part[static_cast<std::size_t>(v)];
    if (p < 0) continue;
    PLANSEP_CHECK_MSG(seen[static_cast<std::size_t>(v)],
                      "part is not connected");
  }
  return out;
}

}  // namespace plansep::sub
