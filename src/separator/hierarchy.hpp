#pragma once

// Recursive separator decomposition — the divide-and-conquer driver that
// motivated separators in the first place (Lipton–Tarjan [14, 15], cited
// throughout the paper's introduction).
//
// The hierarchy splits the graph level by level: every piece larger than
// `leaf_size` gets a cycle separator (all pieces of a level in parallel —
// one Theorem-1 invocation per level, Õ(D) each), its separator nodes are
// set aside, and the remaining components become the children pieces.
// Balance guarantees O(log(n / leaf_size)) levels.

#include "separator/engine.hpp"

namespace plansep::separator {

struct HierarchyPiece {
  int level = 0;                  // root piece = level 0
  int parent = -1;                // index into pieces; -1 for roots
  std::vector<NodeId> nodes;      // the piece before splitting
  std::vector<NodeId> separator;  // empty for leaves
  std::vector<int> children;      // indices into pieces
  bool is_leaf() const { return separator.empty(); }
};

struct SeparatorHierarchy {
  std::vector<HierarchyPiece> pieces;
  std::vector<char> in_separator;  // union over all levels, per node
  int levels = 0;
  long long separator_nodes = 0;
  shortcuts::RoundCost cost;

  /// Leaf piece containing v, or -1 if v is a separator node. Throws
  /// CheckError when v is outside [0, n).
  int leaf_of(NodeId v) const;

  /// Number of nodes the per-node tables cover.
  NodeId num_nodes() const { return static_cast<NodeId>(leaf_of_.size()); }

  /// Recomputes every derived table — children links, in_separator,
  /// leaf_of, levels, separator_nodes — from `pieces` alone. This is the
  /// decode direction of the kHierarchy artifact codec: only the pieces
  /// are persisted, the rest is a pure function of them.
  void rebuild_derived(NodeId n);

 private:
  std::vector<int> leaf_of_;  // per node; filled by build_hierarchy

  friend SeparatorHierarchy build_hierarchy(const planar::EmbeddedGraph& g,
                                            shortcuts::PartwiseEngine& engine,
                                            int leaf_size);
};

/// Builds the full hierarchy over the graph g (one root piece per
/// connected component). Pieces with at most `leaf_size` nodes are not
/// split further.
SeparatorHierarchy build_hierarchy(const planar::EmbeddedGraph& g,
                                   shortcuts::PartwiseEngine& engine,
                                   int leaf_size);

}  // namespace plansep::separator
