#include "separator/hierarchy.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "subroutines/components.hpp"
#include "subroutines/part_context.hpp"
#include "util/check.hpp"

namespace plansep::separator {

int SeparatorHierarchy::leaf_of(NodeId v) const {
  PLANSEP_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < leaf_of_.size(),
                    "leaf_of: node " + std::to_string(v) +
                        " outside [0, " + std::to_string(leaf_of_.size()) +
                        ")");
  return leaf_of_[static_cast<std::size_t>(v)];
}

void SeparatorHierarchy::rebuild_derived(NodeId n) {
  in_separator.assign(static_cast<std::size_t>(n), 0);
  leaf_of_.assign(static_cast<std::size_t>(n), -1);
  levels = 0;
  separator_nodes = 0;
  for (auto& piece : pieces) piece.children.clear();
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const HierarchyPiece& piece = pieces[i];
    levels = std::max(levels, piece.level + 1);
    if (piece.parent >= 0) {
      pieces[static_cast<std::size_t>(piece.parent)].children.push_back(
          static_cast<int>(i));
    }
    for (const NodeId v : piece.separator) {
      in_separator[static_cast<std::size_t>(v)] = 1;
      ++separator_nodes;
    }
    if (piece.is_leaf()) {
      for (const NodeId v : piece.nodes) {
        leaf_of_[static_cast<std::size_t>(v)] = static_cast<int>(i);
      }
    }
  }
}

SeparatorHierarchy build_hierarchy(const planar::EmbeddedGraph& g,
                                   shortcuts::PartwiseEngine& engine,
                                   int leaf_size) {
  PLANSEP_SPAN("separator/hierarchy");
  PLANSEP_CHECK(leaf_size >= 1);
  const NodeId n = g.num_nodes();
  SeparatorHierarchy out;
  out.in_separator.assign(static_cast<std::size_t>(n), 0);
  out.leaf_of_.assign(static_cast<std::size_t>(n), -1);

  SeparatorEngine sep_engine(engine);

  // piece_of[v]: index of the open piece containing v (-1 once v joins a
  // separator). Level 0: components of the whole graph.
  std::vector<int> piece_of(static_cast<std::size_t>(n), -1);
  {
    const sub::Components comps =
        sub::connected_components(g, [](NodeId) { return true; });
    for (int c = 0; c < comps.count; ++c) {
      HierarchyPiece piece;
      piece.level = 0;
      out.pieces.push_back(std::move(piece));
    }
    for (NodeId v = 0; v < n; ++v) {
      const int idx = comps.label[static_cast<std::size_t>(v)];
      piece_of[static_cast<std::size_t>(v)] = idx;
      out.pieces[static_cast<std::size_t>(idx)].nodes.push_back(v);
    }
  }

  std::vector<int> frontier(out.pieces.size());
  for (std::size_t i = 0; i < out.pieces.size(); ++i) {
    frontier[i] = static_cast<int>(i);
  }

  for (int level = 0; !frontier.empty(); ++level) {
    out.levels = level + 1;
    // Split every frontier piece larger than leaf_size; smaller pieces
    // become leaves.
    std::vector<int> to_split;
    for (int idx : frontier) {
      auto& piece = out.pieces[static_cast<std::size_t>(idx)];
      if (static_cast<int>(piece.nodes.size()) > leaf_size) {
        to_split.push_back(idx);
      } else {
        for (NodeId v : piece.nodes) {
          out.leaf_of_[static_cast<std::size_t>(v)] = idx;
        }
      }
    }
    if (to_split.empty()) break;

    // One Theorem-1 invocation over all splitting pieces in parallel.
    std::vector<int> part(static_cast<std::size_t>(n), -1);
    for (std::size_t p = 0; p < to_split.size(); ++p) {
      for (NodeId v : out.pieces[static_cast<std::size_t>(to_split[p])].nodes) {
        part[static_cast<std::size_t>(v)] = static_cast<int>(p);
      }
    }
    sub::PartSet ps = sub::build_part_set(g, part, static_cast<int>(to_split.size()), engine);
    const SeparatorResult res = sep_engine.compute(ps);
    out.cost += ps.cost;
    out.cost += res.cost;

    for (std::size_t p = 0; p < to_split.size(); ++p) {
      auto& piece = out.pieces[static_cast<std::size_t>(to_split[p])];
      piece.separator = res.parts[p].path;
      for (NodeId v : piece.separator) {
        out.in_separator[static_cast<std::size_t>(v)] = 1;
        ++out.separator_nodes;
        piece_of[static_cast<std::size_t>(v)] = -1;
      }
    }

    // Children pieces = components of the remainders.
    std::vector<char> splitting(out.pieces.size(), 0);
    for (int idx : to_split) splitting[static_cast<std::size_t>(idx)] = 1;
    const sub::Components comps = sub::connected_components(g, [&](NodeId v) {
      const int pi = piece_of[static_cast<std::size_t>(v)];
      return pi >= 0 && splitting[static_cast<std::size_t>(pi)];
    });
    out.cost += engine.blackbox_charge();
    std::vector<int> child_piece(static_cast<std::size_t>(comps.count), -1);
    std::vector<int> next_frontier;
    for (NodeId v = 0; v < n; ++v) {
      const int pi = piece_of[static_cast<std::size_t>(v)];
      if (pi < 0 || !splitting[static_cast<std::size_t>(pi)]) continue;
      const int c = comps.label[static_cast<std::size_t>(v)];
      if (child_piece[static_cast<std::size_t>(c)] < 0) {
        HierarchyPiece child;
        child.level = level + 1;
        child.parent = pi;
        child_piece[static_cast<std::size_t>(c)] =
            static_cast<int>(out.pieces.size());
        out.pieces[static_cast<std::size_t>(pi)].children.push_back(
            child_piece[static_cast<std::size_t>(c)]);
        next_frontier.push_back(child_piece[static_cast<std::size_t>(c)]);
        out.pieces.push_back(std::move(child));
      }
      out.pieces[static_cast<std::size_t>(child_piece[static_cast<std::size_t>(c)])]
          .nodes.push_back(v);
    }
    for (NodeId v = 0; v < n; ++v) {
      const int pi = piece_of[static_cast<std::size_t>(v)];
      if (pi < 0) continue;
      const int c = comps.label[static_cast<std::size_t>(v)];
      if (c >= 0 && child_piece[static_cast<std::size_t>(c)] >= 0) {
        piece_of[static_cast<std::size_t>(v)] =
            child_piece[static_cast<std::size_t>(c)];
      }
    }
    frontier = std::move(next_frontier);
  }
  return out;
}

}  // namespace plansep::separator
