#pragma once

// Deterministic cycle-separator computation (Theorem 1, §5.3).
//
// Given a PartSet (per-part rooted spanning trees with their distributed
// representation), the engine marks in every part a tree path whose
// removal leaves components of at most 2/3 of the part — a cycle separator
// in the paper's sense (the path is closed by a real fundamental edge or
// by an embedding-compatible virtual edge).
//
// Phases follow §5.3:
//   * Phase 2 — tree parts: root→centroid path.
//   * Phase 3 — a real fundamental face with ω ∈ [n/3, 2n/3], or (Lemma 1,
//     case 3) a fundamental edge whose tree path already has ≥ n/3 nodes.
//   * Phase 4 — some face has ω > 2n/3: full augmentation from u of a
//     minimal such face; Sub-phase 4.1 picks a leaf with augmented weight
//     in range (falling back to the hiding edge of Definition 4 / Lemma 7
//     when the leaf is hidden), Sub-phase 4.2 marks the face's own path.
//   * Phase 5 — all faces have ω < n/3: the outside split F_ℓ/F_r of a
//     maximal face (Lemma 8).
//
// Engineering hardening (documented deviation): every candidate path is
// *balance-verified* before being committed — one connected-components
// pass (a Borůvka run, Õ(D)) plus a part-wise size aggregation. The
// verification does not change the asymptotics and makes the engine
// robust to the corner cases where the paper's prose is under-specified;
// `stats` records which phase produced each part's separator and whether
// any part ever needed the last-resort exhaustive fallback (the test
// suite asserts it never fires).

#include <array>

#include "faces/fundamental.hpp"
#include "subroutines/part_context.hpp"

namespace plansep::separator {

using faces::FundamentalEdge;
using planar::EdgeId;
using planar::NodeId;
using shortcuts::RoundCost;
using sub::PartSet;

struct PartSeparator {
  std::vector<NodeId> path;  // the marked tree path (the separator set)
  NodeId endpoint_a = planar::kNoNode;
  NodeId endpoint_b = planar::kNoNode;
  /// Real edge closing the cycle, or kNoEdge when the closing edge is
  /// virtual (embedding-compatible) or the separator is a tree path.
  EdgeId closing_edge = planar::kNoEdge;
  /// Which phase produced it: 2 (tree), 3 (in-range face), 33 (long path),
  /// 41 (augmented leaf), 45 (hidden fallback), 42 (face path), 5x
  /// (Phase 5 cases), 99 (last-resort fallback; should never happen).
  int phase = 0;
};

struct SeparatorStats {
  std::array<long long, 8> phase_counts{};  // 2,3,33,41,45,42,5x,99
  long long parts = 0;
  /// Ablation counters for the balance-verification hardening: total
  /// candidates verified and how many parts were settled by their first
  /// (paper-prescribed) candidate.
  long long candidates_tried = 0;
  long long first_candidate_hits = 0;
  void record(int phase);
};

struct SeparatorResult {
  std::vector<PartSeparator> parts;  // indexed by part id
  std::vector<char> marked;          // union over parts, per node
  RoundCost cost;
  SeparatorStats stats;
};

class SeparatorEngine {
 public:
  explicit SeparatorEngine(shortcuts::PartwiseEngine& engine)
      : engine_(&engine) {}

  /// Computes a cycle separator of every part (Theorem 1). All parts
  /// proceed through the phases in parallel; the reported cost reflects
  /// that (each phase's aggregations are charged once across parts).
  SeparatorResult compute(const PartSet& ps);

  /// Weighted extension (the direction the paper's conclusion points at —
  /// SSSP/diameter applications need weighted separators): marks in every
  /// part a tree path whose removal leaves components of weight at most
  /// 2/3 of the part's total weight. Candidates come from the unweighted
  /// phases plus weighted sweeps (weighted centroid; weighted root sweep
  /// via π-order prefix sums, one Proposition-5-style charge); every
  /// candidate is weighted-balance-verified. A node carrying more than
  /// 2/3 of the weight is itself a valid separator and is handled
  /// explicitly. `weight[v]` must be non-negative.
  SeparatorResult compute_weighted(const PartSet& ps,
                                   const std::vector<long long>& weight);

 private:
  shortcuts::PartwiseEngine* engine_;
};

}  // namespace plansep::separator
