#include "separator/engine.hpp"

#include <algorithm>
#include <cmath>

#include "faces/augmentation.hpp"
#include "faces/containment.hpp"
#include "faces/hidden.hpp"
#include "faces/membership.hpp"
#include "faces/weights.hpp"
#include "obs/metrics.hpp"
#include "subroutines/components.hpp"
#include "util/check.hpp"

namespace plansep::separator {

namespace {

using faces::FaceData;
using faces::FaceSide;
using tree::RootedSpanningTree;

struct Candidate {
  std::vector<NodeId> path;
  EdgeId closing = planar::kNoEdge;
  int phase = 0;
};

/// True iff removing `path` from part p leaves components of size at most
/// 2n/3 (n = part size). The distributed check is one components pass plus
/// a size aggregation; values are computed directly.
bool balanced(const PartSet& ps, int p, const std::vector<NodeId>& path) {
  const auto& g = *ps.g;
  const int n = ps.part_size(p);
  std::vector<char> marked(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : path) marked[static_cast<std::size_t>(v)] = 1;
  const sub::Components comps = sub::connected_components(
      g, [&](NodeId v) {
        return ps.part_of(v) == p && !marked[static_cast<std::size_t>(v)];
      });
  for (int size : comps.size) {
    if (3 * size > 2 * n) return false;
  }
  return true;
}

/// Path length (node count) of the tree path between a and b.
int path_nodes(const RootedSpanningTree& t, NodeId a, NodeId b) {
  const NodeId w = t.lca(a, b);
  return t.depth(a) + t.depth(b) - 2 * t.depth(w) + 1;
}

Candidate make_path_candidate(const RootedSpanningTree& t, NodeId a, NodeId b,
                              EdgeId closing, int phase) {
  Candidate c;
  c.path = t.path(a, b);
  c.closing = closing;
  c.phase = phase;
  return c;
}

/// Candidates for one part, in the phase order of §5.3.
std::vector<Candidate> candidates_for_part(const PartSet& ps, int p) {
  const RootedSpanningTree& t = ps.tree_of_part(p);
  const long long n = t.size();
  std::vector<Candidate> out;

  if (n <= 3) {
    Candidate c;
    c.path = {t.root()};
    c.phase = 2;
    out.push_back(std::move(c));
    return out;
  }

  const std::vector<EdgeId> fund = faces::real_fundamental_edges(t);

  // Phase 2: tree part — root→centroid path.
  if (fund.empty()) {
    out.push_back(make_path_candidate(t, t.root(), t.centroid(),
                                      planar::kNoEdge, 2));
    return out;
  }

  std::vector<FundamentalEdge> fes;
  std::vector<long long> weight;
  fes.reserve(fund.size());
  for (EdgeId e : fund) {
    fes.push_back(faces::analyze_fundamental_edge(t, e));
    weight.push_back(faces::face_weight(t, fes.back()));
  }

  // Phase 3: a face with ω ∈ [n/3, 2n/3].
  for (std::size_t i = 0; i < fes.size(); ++i) {
    if (3 * weight[i] >= n && 3 * weight[i] <= 2 * n) {
      out.push_back(
          make_path_candidate(t, fes[i].u, fes[i].v, fes[i].edge, 3));
      break;
    }
  }
  // Lemma 1 case 3: a fundamental edge whose tree path has ≥ n/3 nodes is
  // itself a (cycle) separator.
  for (std::size_t i = 0; i < fes.size(); ++i) {
    if (3LL * path_nodes(t, fes[i].u, fes[i].v) >= n) {
      out.push_back(
          make_path_candidate(t, fes[i].u, fes[i].v, fes[i].edge, 33));
      break;
    }
  }

  std::vector<FundamentalEdge> heavy;
  for (std::size_t i = 0; i < fes.size(); ++i) {
    if (3 * weight[i] > 2 * n) heavy.push_back(fes[i]);
  }

  if (!heavy.empty()) {
    // Phase 4: minimal heavy face, full augmentation from u.
    const FundamentalEdge estar = faces::pick_not_contains(t, heavy);
    const FaceData fd = faces::face_data(t, estar);
    std::vector<NodeId> leaves;
    for (NodeId z : t.nodes()) {
      if (!t.children(z).empty()) continue;
      if (faces::classify_node(fd, faces::node_data(t, z)) !=
          FaceSide::kInside) {
        continue;
      }
      leaves.push_back(z);
    }
    // Sub-phase 4.1: leaf with augmented weight in range; prefer the
    // sweep-highest one (Lemma 7's choice).
    const bool use_left =
        !estar.u_ancestor_of_v || faces::uses_left_order(estar);
    std::sort(leaves.begin(), leaves.end(), [&](NodeId a, NodeId b) {
      return (use_left ? t.pi_left(a) : t.pi_right(a)) >
             (use_left ? t.pi_left(b) : t.pi_right(b));
    });
    for (NodeId z : leaves) {
      const long long w = faces::augmented_weight(t, estar, z);
      if (3 * w < n || 3 * w > 2 * n) continue;
      const auto hiding = faces::hiding_edges(t, estar, z);
      if (hiding.empty()) {
        out.push_back(
            make_path_candidate(t, estar.u, z, planar::kNoEdge, 41));
      } else {
        const FundamentalEdge f = faces::pick_not_contained(t, hiding);
        const NodeId z2 = t.pi_left(f.u) < t.pi_left(f.v) ? f.v : f.u;
        const NodeId z1 = z2 == f.u ? f.v : f.u;
        out.push_back(
            make_path_candidate(t, estar.u, z2, planar::kNoEdge, 45));
        out.push_back(
            make_path_candidate(t, estar.u, z1, planar::kNoEdge, 45));
      }
      break;
    }
    // Lemma 1 case 3 inside the augmentation: a long u..z path.
    for (NodeId z : leaves) {
      if (3LL * path_nodes(t, estar.u, z) >= n) {
        out.push_back(make_path_candidate(t, estar.u, z, planar::kNoEdge, 43));
        break;
      }
    }
    // Sub-phase 4.2: the face's own path.
    out.push_back(
        make_path_candidate(t, estar.u, estar.v, estar.edge, 42));
  } else {
    // Phase 5: every face is light; maximal face e*, outside split.
    const FundamentalEdge estar = faces::pick_not_contained(t, fes);
    const FaceData fd = faces::face_data(t, estar);
    long long f_r = 0, f_l = 0;
    for (NodeId z : t.nodes()) {
      if (faces::classify_node(fd, faces::node_data(t, z)) !=
          FaceSide::kOutside) {
        continue;
      }
      if (t.pi_left(z) > t.pi_left(estar.v)) {
        ++f_r;
      } else {
        ++f_l;
      }
    }
    if (3 * f_l <= n && 3 * f_r <= n) {
      out.push_back(
          make_path_candidate(t, estar.u, estar.v, estar.edge, 51));
    }
    // Lemma 8's heavy case: run the Phase-4 sweep from the root over the
    // root sweep faces (the virtual faces F_{r_T u'} with interior F_ℓ or
    // F_r), in both sweep directions.
    for (bool left : {true, false}) {
      NodeId pick = planar::kNoNode;
      for (NodeId z : t.nodes()) {
        if (z == t.root() || !t.children(z).empty()) continue;
        const long long w = faces::root_sweep_weight(t, z, left);
        if (3 * w < n || 3 * w > 2 * n) continue;
        if (pick == planar::kNoNode ||
            (left ? t.pi_left(z) > t.pi_left(pick)
                  : t.pi_right(z) > t.pi_right(pick))) {
          pick = z;
        }
      }
      if (pick == planar::kNoNode) continue;
      // Hidden check for the root sweep: any real fundamental face whose
      // interior strictly contains `pick` blocks the virtual closing edge.
      std::vector<FundamentalEdge> hiding;
      for (const FundamentalEdge& f : fes) {
        if (faces::is_inside_face(t, f, pick)) hiding.push_back(f);
      }
      if (hiding.empty()) {
        out.push_back(
            make_path_candidate(t, t.root(), pick, planar::kNoEdge, 52));
      } else {
        const FundamentalEdge f = faces::pick_not_contained(t, hiding);
        out.push_back(
            make_path_candidate(t, t.root(), f.v, planar::kNoEdge, 53));
        out.push_back(
            make_path_candidate(t, t.root(), f.u, planar::kNoEdge, 53));
      }
    }
    // Further fallbacks, balance-verified.
    out.push_back(make_path_candidate(t, estar.u, estar.v, estar.edge, 54));
    out.push_back(make_path_candidate(t, t.root(), estar.v, planar::kNoEdge,
                                      55));
    out.push_back(make_path_candidate(t, t.root(), estar.u, planar::kNoEdge,
                                      55));
    out.push_back(make_path_candidate(t, t.root(), t.centroid(),
                                      planar::kNoEdge, 55));
  }

  // Last resort (should be unreachable; counted in stats and asserted
  // absent by the test suite): scan all fundamental-edge paths and all
  // root→node paths.
  {
    Candidate c;
    c.phase = 99;
    out.push_back(std::move(c));  // placeholder; resolved in compute()
  }
  return out;
}

Candidate last_resort(const PartSet& ps, int p) {
  const RootedSpanningTree& t = ps.tree_of_part(p);
  for (EdgeId e : faces::real_fundamental_edges(t)) {
    const FundamentalEdge fe = faces::analyze_fundamental_edge(t, e);
    Candidate c = make_path_candidate(t, fe.u, fe.v, fe.edge, 99);
    if (balanced(ps, p, c.path)) return c;
  }
  for (NodeId v : t.nodes()) {
    Candidate c = make_path_candidate(t, t.root(), v, planar::kNoEdge, 99);
    if (balanced(ps, p, c.path)) return c;
  }
  PLANSEP_CHECK_MSG(false, "no balanced separator path exists at all");
  return {};
}

}  // namespace

void SeparatorStats::record(int phase) {
  ++parts;
  switch (phase) {
    case 2: ++phase_counts[0]; break;
    case 3: ++phase_counts[1]; break;
    case 33:
    case 43: ++phase_counts[2]; break;
    case 41: ++phase_counts[3]; break;
    case 45: ++phase_counts[4]; break;
    case 42: ++phase_counts[5]; break;
    case 51:
    case 52:
    case 53:
    case 54:
    case 55: ++phase_counts[6]; break;
    // Weighted-extension candidates (weighted centroid / sweeps / heavy
    // node) share the Phase-5 bucket; 99 alone is the last resort.
    case 61:
    case 62:
    case 63:
    case 64:
    case 65: ++phase_counts[6]; break;
    default: ++phase_counts[7]; break;
  }
}

SeparatorResult SeparatorEngine::compute(const PartSet& ps) {
  obs::Span span("separator/compute");
  SeparatorResult out;
  out.parts.resize(static_cast<std::size_t>(ps.num_parts));
  out.marked.assign(static_cast<std::size_t>(ps.g->num_nodes()), 0);

  // --- Cost model (phases shared across parts; see header). One
  // aggregation over the part partition costs the same for every logical
  // PA of a phase, so compute it once and scale.
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(ps.g->num_nodes()),
                                  0);
  auto pa_unit = engine_->aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  auto charge_pa = [&](long long k) {
    RoundCost c = pa_unit.cost;
    c.measured *= k;
    c.charged *= k;
    c.pa_calls = k;
    out.cost += c;
    // The probe aggregation above already advanced the obs round clock by
    // one unit; mirror the k-fold ledger charge on the timeline too.
    obs::advance_rounds(c.measured);
  };
  {
    PLANSEP_SPAN("separator/weights");
    // Weights (Lemma 12): endpoint-local exchanges after the orders exist.
    out.cost += shortcuts::local_exchange(2);
    charge_pa(3);   // Phase 2: tree test + range + centroid broadcast
    charge_pa(5);   // Phase 3: range over ω, endpoint broadcast, mark-path
    charge_pa(15);  // Phase 4: not-contains, detect-face, augmentation
                    // broadcast, range, hidden, not-contained, mark-path
    charge_pa(8);   // Phase 5: not-contained, F_l/F_r sums, mark-path
    out.cost += shortcuts::local_exchange(4);
  }

  // --- Candidate generation and verification.
  obs::Span verify_span("separator/verify");
  int verify_rounds_used = 0;
  for (int p = 0; p < ps.num_parts; ++p) {
    if (!ps.trees[static_cast<std::size_t>(p)]) continue;
    std::vector<Candidate> cands = candidates_for_part(ps, p);
    bool settled = false;
    int tried = 0;
    for (Candidate& c : cands) {
      if (c.phase == 99) c = last_resort(ps, p);
      ++tried;
      if (balanced(ps, p, c.path)) {
        PartSeparator& sep = out.parts[static_cast<std::size_t>(p)];
        sep.path = c.path;
        sep.endpoint_a = c.path.front();
        sep.endpoint_b = c.path.back();
        sep.closing_edge = c.closing;
        sep.phase = c.phase;
        out.stats.record(c.phase);
        out.stats.candidates_tried += tried;
        if (tried == 1) ++out.stats.first_candidate_hits;
        for (NodeId v : c.path) {
          out.marked[static_cast<std::size_t>(v)] = 1;
        }
        settled = true;
        break;
      }
    }
    PLANSEP_CHECK_MSG(settled, "separator engine failed to settle a part");
    verify_rounds_used = std::max(verify_rounds_used, tried);
  }
  // Each verification round = one components pass (O(log n) aggregations)
  // plus a size aggregation, shared across parts.
  const long long log_n =
      1 + static_cast<long long>(
              std::ceil(std::log2(std::max(2, ps.g->num_nodes()))));
  charge_pa(verify_rounds_used * (log_n + 1));
  verify_span.note("candidates_tried", out.stats.candidates_tried);
  span.note("parts", ps.num_parts);
  span.note("rounds_charged", out.cost.charged);
  span.note("pa_calls", out.cost.pa_calls);
  return out;
}

}  // namespace plansep::separator
