// Weighted cycle separators (SeparatorEngine::compute_weighted).
//
// Strategy: the unweighted phase candidates already cover most shapes; on
// top we generate weight-aware candidates — the weighted centroid path,
// weighted root sweeps in both orders (the weighted analog of
// faces/augmentation.hpp's root_sweep_weight, computed from π-order prefix
// sums and ancestor-weight sums), and the path to the heaviest node (which
// alone suffices when one node carries > 2/3 of the weight). Every
// candidate is verified against the weighted balance before committing;
// the last-resort scan also verifies weighted balance, so the result is
// always a weighted separator (tests monitor how often candidates fail).

#include <algorithm>
#include <cmath>

#include "faces/augmentation.hpp"
#include "faces/containment.hpp"
#include "faces/hidden.hpp"
#include "faces/membership.hpp"
#include "faces/weights.hpp"
#include "obs/metrics.hpp"
#include "separator/engine.hpp"
#include "subroutines/components.hpp"
#include "util/check.hpp"

namespace plansep::separator {

namespace {

using tree::RootedSpanningTree;

struct WeightedView {
  long long total = 0;
  std::vector<long long> subtree;   // weighted subtree sums, per node
  std::vector<long long> prefix_l;  // prefix_l[k] = Σ weight, π_ℓ <= k (1-based)
  std::vector<long long> prefix_r;
  std::vector<long long> anc;       // Σ weight of ancestors incl. self
};

WeightedView weighted_view(const RootedSpanningTree& t,
                           const std::vector<long long>& weight) {
  WeightedView wv;
  const int n = t.size();
  const auto& g = t.graph();
  wv.subtree.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  wv.anc.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  wv.prefix_l.assign(static_cast<std::size_t>(n + 1), 0);
  wv.prefix_r.assign(static_cast<std::size_t>(n + 1), 0);
  for (planar::NodeId v : t.nodes()) {
    wv.total += weight[static_cast<std::size_t>(v)];
    wv.prefix_l[static_cast<std::size_t>(t.pi_left(v))] =
        weight[static_cast<std::size_t>(v)];
    wv.prefix_r[static_cast<std::size_t>(t.pi_right(v))] =
        weight[static_cast<std::size_t>(v)];
  }
  for (int k = 1; k <= n; ++k) {
    wv.prefix_l[static_cast<std::size_t>(k)] +=
        wv.prefix_l[static_cast<std::size_t>(k - 1)];
    wv.prefix_r[static_cast<std::size_t>(k)] +=
        wv.prefix_r[static_cast<std::size_t>(k - 1)];
  }
  // Subtree and ancestor sums via π_ℓ order (parents precede children in
  // preorder; reverse for subtree sums).
  std::vector<planar::NodeId> order = t.nodes();
  std::sort(order.begin(), order.end(),
            [&](planar::NodeId a, planar::NodeId b) {
              return t.pi_left(a) < t.pi_left(b);
            });
  for (planar::NodeId v : order) {
    const planar::NodeId p = t.parent(v);
    wv.anc[static_cast<std::size_t>(v)] =
        (p == planar::kNoNode ? 0 : wv.anc[static_cast<std::size_t>(p)]) +
        weight[static_cast<std::size_t>(v)];
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    wv.subtree[static_cast<std::size_t>(*it)] += weight[static_cast<std::size_t>(*it)];
    const planar::NodeId p = t.parent(*it);
    if (p != planar::kNoNode) {
      wv.subtree[static_cast<std::size_t>(p)] +=
          wv.subtree[static_cast<std::size_t>(*it)];
    }
  }
  return wv;
}

bool weighted_balanced(const PartSet& ps, int p,
                       const std::vector<planar::NodeId>& path,
                       const std::vector<long long>& weight,
                       long long total) {
  const auto& g = *ps.g;
  std::vector<char> marked(static_cast<std::size_t>(g.num_nodes()), 0);
  for (planar::NodeId v : path) marked[static_cast<std::size_t>(v)] = 1;
  const sub::Components comps = sub::connected_components(
      g, [&](planar::NodeId v) {
        return ps.part_of(v) == p && !marked[static_cast<std::size_t>(v)];
      });
  std::vector<long long> wsum(static_cast<std::size_t>(comps.count), 0);
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    const int c = comps.label[static_cast<std::size_t>(v)];
    if (c >= 0) wsum[static_cast<std::size_t>(c)] += weight[static_cast<std::size_t>(v)];
  }
  for (long long w : wsum) {
    if (3 * w > 2 * total) return false;
  }
  return true;
}

/// Weighted analog of faces::root_sweep_weight: the weight swept by the
/// closed curve path(root..x) + virtual closing edge at the root stub.
long long weighted_root_sweep(const RootedSpanningTree& t,
                              const WeightedView& wv, planar::NodeId x,
                              const std::vector<long long>& weight,
                              bool left) {
  const planar::NodeId r = t.root();
  const planar::NodeId z2 = faces::child_towards(t, r, x);
  const int off_z2 = t.t_offset(planar::EmbeddedGraph::rev(t.parent_dart(z2)));
  long long p = 0;
  for (planar::NodeId c : t.children(r)) {
    const int off = t.t_offset(planar::EmbeddedGraph::rev(t.parent_dart(c)));
    if (left ? off > off_z2 : off < off_z2) {
      p += wv.subtree[static_cast<std::size_t>(c)];
    }
  }
  const auto& prefix = left ? wv.prefix_l : wv.prefix_r;
  const int pix = left ? t.pi_left(x) : t.pi_right(x);
  const int piz = left ? t.pi_left(z2) : t.pi_right(z2);
  // Subtree of x (minus x), plus the swept siblings, plus the π interval
  // [π(z2), π(x)-1] minus the weight of the path z2..parent(x).
  const long long interval = prefix[static_cast<std::size_t>(pix - 1)] -
                             prefix[static_cast<std::size_t>(piz - 1)];
  const long long path_w = (wv.anc[static_cast<std::size_t>(x)] -
                            weight[static_cast<std::size_t>(x)]) -
                           (wv.anc[static_cast<std::size_t>(z2)] -
                            weight[static_cast<std::size_t>(z2)]);
  return (wv.subtree[static_cast<std::size_t>(x)] -
          weight[static_cast<std::size_t>(x)]) +
         p + interval - path_w;
}


/// Definition 2 generalized to node weights via π-order prefix sums: the
/// weighted content of F̃_e (u not an ancestor of v) or F̊_e (ancestor
/// case), mirroring faces/weights.cpp with counts replaced by weights.
long long weighted_face_weight(const RootedSpanningTree& t,
                               const WeightedView& wv,
                               const faces::FundamentalEdge& fe,
                               const std::vector<long long>& weight) {
  long long pu = 0, pv = 0;
  for (planar::NodeId c : faces::inside_children(t, fe, fe.u)) {
    pu += wv.subtree[static_cast<std::size_t>(c)];
  }
  for (planar::NodeId c : faces::inside_children(t, fe, fe.v)) {
    pv += wv.subtree[static_cast<std::size_t>(c)];
  }
  if (!fe.u_ancestor_of_v) {
    const int lo = t.pi_left(fe.u) + t.subtree_size(fe.u);  // exclusive
    const int hi = t.pi_left(fe.v) - 1;                     // inclusive
    const long long interval =
        hi >= lo ? wv.prefix_l[static_cast<std::size_t>(hi)] -
                       wv.prefix_l[static_cast<std::size_t>(lo)]
                 : 0;
    return pu + pv + interval + weight[static_cast<std::size_t>(fe.v)];
  }
  const bool left = faces::uses_left_order(fe);
  const auto& prefix = left ? wv.prefix_l : wv.prefix_r;
  const int piv = left ? t.pi_left(fe.v) : t.pi_right(fe.v);
  const int piz = left ? t.pi_left(fe.z) : t.pi_right(fe.z);
  const long long interval = prefix[static_cast<std::size_t>(piv - 1)] -
                             prefix[static_cast<std::size_t>(piz - 1)];
  // Subtract the weighted border segment z1..parent(v).
  const long long border =
      (wv.anc[static_cast<std::size_t>(fe.v)] -
       weight[static_cast<std::size_t>(fe.v)]) -
      (wv.anc[static_cast<std::size_t>(fe.z)] -
       weight[static_cast<std::size_t>(fe.z)]);
  return pu + pv + interval - border;
}

/// Weighted full-augmentation weight from fe.u to a node z inside F_e
/// (mirrors faces::augmented_weight).
long long weighted_augmented(const RootedSpanningTree& t,
                             const WeightedView& wv,
                             const faces::FundamentalEdge& fe,
                             planar::NodeId z,
                             const std::vector<long long>& weight) {
  const planar::NodeId u = fe.u;
  const bool use_left = !fe.u_ancestor_of_v || faces::uses_left_order(fe);
  const auto& prefix = use_left ? wv.prefix_l : wv.prefix_r;
  auto pi = [&](planar::NodeId x) {
    return use_left ? t.pi_left(x) : t.pi_right(x);
  };
  const long long wz =
      wv.subtree[static_cast<std::size_t>(z)] - weight[static_cast<std::size_t>(z)];
  if (!t.is_ancestor(u, z)) {
    long long pu = 0;
    for (planar::NodeId c : faces::inside_children(t, fe, u)) {
      pu += wv.subtree[static_cast<std::size_t>(c)];
    }
    const int lo = t.pi_left(u) + t.subtree_size(u);  // exclusive
    const int hi = t.pi_left(z) - 1;
    const long long interval =
        hi >= lo ? wv.prefix_l[static_cast<std::size_t>(hi)] -
                       wv.prefix_l[static_cast<std::size_t>(lo)]
                 : 0;
    return pu + wz + interval + weight[static_cast<std::size_t>(z)];
  }
  const planar::NodeId z2 = faces::child_towards(t, u, z);
  const int off_z2 = t.t_offset(planar::EmbeddedGraph::rev(t.parent_dart(z2)));
  long long pu = 0;
  for (planar::NodeId c : faces::inside_children(t, fe, u)) {
    const int off = t.t_offset(planar::EmbeddedGraph::rev(t.parent_dart(c)));
    if (use_left ? off > off_z2 : off < off_z2) {
      pu += wv.subtree[static_cast<std::size_t>(c)];
    }
  }
  const long long interval = prefix[static_cast<std::size_t>(pi(z) - 1)] -
                             prefix[static_cast<std::size_t>(pi(z2) - 1)];
  const long long border =
      (wv.anc[static_cast<std::size_t>(z)] - weight[static_cast<std::size_t>(z)]) -
      (wv.anc[static_cast<std::size_t>(z2)] - weight[static_cast<std::size_t>(z2)]);
  return wz + pu + interval - border;
}

}  // namespace

SeparatorResult SeparatorEngine::compute_weighted(
    const PartSet& ps, const std::vector<long long>& weight) {
  PLANSEP_CHECK(static_cast<planar::NodeId>(weight.size()) ==
                ps.g->num_nodes());
  for (long long w : weight) PLANSEP_CHECK_MSG(w >= 0, "negative weight");

  // Unweighted candidates first (they are verified against the weighted
  // balance below); weight-aware candidates appended per part.
  obs::Span span("separator/weighted");
  SeparatorResult out;
  out.parts.resize(static_cast<std::size_t>(ps.num_parts));
  out.marked.assign(static_cast<std::size_t>(ps.g->num_nodes()), 0);

  // Cost model: the unweighted phase charges plus one Proposition-5-style
  // charge for the weighted prefix/subtree sums.
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(ps.g->num_nodes()),
                                  0);
  auto pa_unit = engine_->aggregate(ps.part, zeros, shortcuts::AggOp::kMax);
  auto charge_pa = [&](long long k) {
    shortcuts::RoundCost c = pa_unit.cost;
    c.measured *= k;
    c.charged *= k;
    c.pa_calls = k;
    out.cost += c;
    obs::advance_rounds(c.measured);  // mirror the ledger on the obs clock
  };
  charge_pa(34);  // phases 2-5 as in compute()
  out.cost += engine_->blackbox_charge();  // weighted sums
  out.cost += shortcuts::local_exchange(6);

  const SeparatorResult unweighted = compute(ps);
  out.cost += unweighted.cost;

  for (int p = 0; p < ps.num_parts; ++p) {
    if (!ps.trees[static_cast<std::size_t>(p)]) continue;
    const RootedSpanningTree& t = ps.tree_of_part(p);
    const WeightedView wv = weighted_view(t, weight);
    const long long total = wv.total;

    struct Cand {
      std::vector<planar::NodeId> path;
      int phase;
    };
    std::vector<Cand> cands;
    if (total == 0 || t.size() <= 1) {
      cands.push_back({{t.root()}, 2});
    } else {
      // The unweighted winner.
      cands.push_back({unweighted.parts[static_cast<std::size_t>(p)].path,
                       unweighted.parts[static_cast<std::size_t>(p)].phase});
      // Weighted centroid walk: descend into any child whose weighted
      // subtree exceeds half the total.
      planar::NodeId c = t.root();
      for (;;) {
        planar::NodeId heavy = planar::kNoNode;
        for (planar::NodeId ch : t.children(c)) {
          if (2 * wv.subtree[static_cast<std::size_t>(ch)] > total) {
            heavy = ch;
            break;
          }
        }
        if (heavy == planar::kNoNode) break;
        c = heavy;
      }
      cands.push_back({t.path(t.root(), c), 61});
      // Weighted root sweeps, both orders: the leaf whose sweep weight
      // lands in [W/3, 2W/3] (take the sweep-latest such leaf).
      for (bool left : {true, false}) {
        planar::NodeId pick = planar::kNoNode;
        for (planar::NodeId z : t.nodes()) {
          if (z == t.root() || !t.children(z).empty()) continue;
          const long long w = weighted_root_sweep(t, wv, z, weight, left);
          if (3 * w < total || 3 * w > 2 * total) continue;
          if (pick == planar::kNoNode ||
              (left ? t.pi_left(z) > t.pi_left(pick)
                    : t.pi_right(z) > t.pi_right(pick))) {
            pick = z;
          }
        }
        if (pick != planar::kNoNode) {
          cands.push_back({t.path(t.root(), pick), 62});
        }
      }
      // Weighted Phase 3/4: real fundamental faces with weighted content
      // in range; weighted long paths; weighted augmentation sweep of a
      // maximal heavy face (with the hidden fallback, which is
      // weight-independent).
      {
        std::vector<faces::FundamentalEdge> fes;
        std::vector<long long> fw;
        for (planar::EdgeId e : faces::real_fundamental_edges(t)) {
          fes.push_back(faces::analyze_fundamental_edge(t, e));
          fw.push_back(weighted_face_weight(t, wv, fes.back(), weight));
        }
        for (std::size_t i = 0; i < fes.size(); ++i) {
          if (3 * fw[i] >= total && 3 * fw[i] <= 2 * total) {
            cands.push_back({t.path(fes[i].u, fes[i].v), 64});
            break;
          }
        }
        for (std::size_t i = 0; i < fes.size(); ++i) {
          // A path already carrying >= W/3 is a separator by itself.
          const long long pw =
              wv.anc[static_cast<std::size_t>(fes[i].u)] +
              wv.anc[static_cast<std::size_t>(fes[i].v)] -
              2 * wv.anc[static_cast<std::size_t>(t.lca(fes[i].u, fes[i].v))] +
              weight[static_cast<std::size_t>(t.lca(fes[i].u, fes[i].v))];
          if (3 * pw >= total) {
            cands.push_back({t.path(fes[i].u, fes[i].v), 64});
            break;
          }
        }
        std::vector<faces::FundamentalEdge> heavy;
        for (std::size_t i = 0; i < fes.size(); ++i) {
          if (3 * fw[i] > 2 * total) heavy.push_back(fes[i]);
        }
        if (!heavy.empty()) {
          const auto estar = faces::pick_not_contains(t, heavy);
          const faces::FaceData fd = faces::face_data(t, estar);
          for (planar::NodeId z : t.nodes()) {
            if (!t.children(z).empty()) continue;
            if (faces::classify_node(fd, faces::node_data(t, z)) !=
                faces::FaceSide::kInside) {
              continue;
            }
            const long long aw = weighted_augmented(t, wv, estar, z, weight);
            if (3 * aw < total || 3 * aw > 2 * total) continue;
            const auto hiding = faces::hiding_edges(t, estar, z);
            if (hiding.empty()) {
              cands.push_back({t.path(estar.u, z), 65});
            } else {
              const auto fh = faces::pick_not_contained(t, hiding);
              cands.push_back({t.path(estar.u, fh.v), 65});
              cands.push_back({t.path(estar.u, fh.u), 65});
            }
            break;
          }
          cands.push_back({t.path(estar.u, estar.v), 65});
        }
      }
      // The heaviest node: if some node alone carries > 2W/3, any path
      // through it is a weighted separator.
      planar::NodeId heaviest = t.root();
      for (planar::NodeId v : t.nodes()) {
        if (weight[static_cast<std::size_t>(v)] >
            weight[static_cast<std::size_t>(heaviest)]) {
          heaviest = v;
        }
      }
      cands.push_back({t.path(t.root(), heaviest), 63});
    }

    bool settled = false;
    int tried = 0;
    for (const Cand& cand : cands) {
      ++tried;
      if (weighted_balanced(ps, p, cand.path, weight, total)) {
        auto& sep = out.parts[static_cast<std::size_t>(p)];
        sep.path = cand.path;
        sep.endpoint_a = cand.path.front();
        sep.endpoint_b = cand.path.back();
        sep.phase = cand.phase;
        out.stats.record(cand.phase);
        out.stats.candidates_tried += tried;
        if (tried == 1) ++out.stats.first_candidate_hits;
        settled = true;
        break;
      }
    }
    if (!settled) {
      // Last resort with weighted verification (counted in stats).
      for (planar::EdgeId e : faces::real_fundamental_edges(t)) {
        const auto fe = faces::analyze_fundamental_edge(t, e);
        const auto path = t.path(fe.u, fe.v);
        if (weighted_balanced(ps, p, path, weight, total)) {
          auto& sep = out.parts[static_cast<std::size_t>(p)];
          sep.path = path;
          sep.endpoint_a = fe.u;
          sep.endpoint_b = fe.v;
          sep.closing_edge = fe.edge;
          sep.phase = 99;
          out.stats.record(99);
          settled = true;
          break;
        }
      }
    }
    if (!settled) {
      for (planar::NodeId v : t.nodes()) {
        const auto path = t.path(t.root(), v);
        if (weighted_balanced(ps, p, path, weight, total)) {
          auto& sep = out.parts[static_cast<std::size_t>(p)];
          sep.path = path;
          sep.endpoint_a = t.root();
          sep.endpoint_b = v;
          sep.phase = 99;
          out.stats.record(99);
          settled = true;
          break;
        }
      }
    }
    PLANSEP_CHECK_MSG(settled, "no weighted separator path found");
    for (planar::NodeId v : out.parts[static_cast<std::size_t>(p)].path) {
      out.marked[static_cast<std::size_t>(v)] = 1;
    }
    // Weighted-balance verification pass (shared per candidate round).
  }
  const long long log_n =
      1 + static_cast<long long>(
              std::ceil(std::log2(std::max(2, ps.g->num_nodes()))));
  charge_pa(5 * (log_n + 1));
  return out;
}

}  // namespace plansep::separator
