#pragma once

// Validation of separator outputs (used by tests and benches).

#include "separator/engine.hpp"

namespace plansep::separator {

struct SeparatorCheck {
  bool is_tree_path = false;   // marked set is a path of the part's tree
  bool simple_path = false;    // no node repeats on the marked path
  bool closure_ok = false;     // the real closing edge (when any) joins the
                               // path's endpoints — Theorem 1's cycle
  bool balanced = false;       // every component of G[P]−S has ≤ 2n/3 nodes
  double balance = 0;          // max component size / n
  int components = 0;
  bool ok() const {
    return is_tree_path && simple_path && closure_ok && balanced;
  }
};

/// Checks one part's separator against its PartSet.
SeparatorCheck check_separator(const sub::PartSet& ps, int p,
                               const PartSeparator& sep);

}  // namespace plansep::separator
