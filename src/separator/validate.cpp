#include "separator/validate.hpp"

#include <algorithm>

#include "subroutines/components.hpp"
#include "util/check.hpp"

namespace plansep::separator {

SeparatorCheck check_separator(const sub::PartSet& ps, int p,
                               const PartSeparator& sep) {
  SeparatorCheck out;
  const auto& t = ps.tree_of_part(p);
  const auto& g = *ps.g;

  // Structural: the marked set equals the tree path between its endpoints.
  if (!sep.path.empty()) {
    std::vector<NodeId> expect = t.path(sep.endpoint_a, sep.endpoint_b);
    std::vector<NodeId> a = expect;
    std::vector<NodeId> b = sep.path;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    out.is_tree_path = (a == b);
    for (NodeId v : sep.path) {
      if (ps.part_of(v) != p) out.is_tree_path = false;
    }
    out.simple_path =
        std::adjacent_find(b.begin(), b.end()) == b.end();
    // Cycle closure: when a real fundamental edge closes the cycle, it must
    // join the path's endpoints; otherwise the closure is a virtual
    // (embedding-compatible) edge or the separator is a bare tree path.
    if (sep.closing_edge == planar::kNoEdge) {
      out.closure_ok = true;
    } else {
      const NodeId u = g.edge_u(sep.closing_edge);
      const NodeId v = g.edge_v(sep.closing_edge);
      out.closure_ok = (u == sep.endpoint_a && v == sep.endpoint_b) ||
                       (u == sep.endpoint_b && v == sep.endpoint_a);
    }
  }

  // Balance.
  std::vector<char> marked(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : sep.path) marked[static_cast<std::size_t>(v)] = 1;
  const sub::Components comps = sub::connected_components(
      g, [&](NodeId v) {
        return ps.part_of(v) == p && !marked[static_cast<std::size_t>(v)];
      });
  out.components = comps.count;
  int max_size = 0;
  for (int s : comps.size) max_size = std::max(max_size, s);
  const int n = ps.part_size(p);
  out.balance = n > 0 ? static_cast<double>(max_size) / n : 0.0;
  out.balanced = 3 * max_size <= 2 * n;
  return out;
}

}  // namespace plansep::separator
