#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace plansep {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  PLANSEP_CHECK_MSG(row.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(double v) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace plansep
