#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace plansep {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1 - frac) + values[hi] * frac;
  };
  s.median = quantile(0.5);
  s.p90 = quantile(0.9);
  double acc = 0;
  for (double v : values) acc += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(acc / static_cast<double>(values.size()));
  return s;
}

}  // namespace plansep
