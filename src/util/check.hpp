#pragma once

// Error-handling primitives for the plansep library.
//
// PLANSEP_CHECK is used for preconditions on public APIs and for internal
// invariants whose violation indicates a bug; it throws plansep::CheckError
// so callers (and tests) can observe failures without aborting the process.

#include <stdexcept>
#include <string>

namespace plansep {

/// Thrown when a PLANSEP_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace plansep

#define PLANSEP_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::plansep::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (0)

#define PLANSEP_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::plansep::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (0)
