#pragma once

// Small descriptive-statistics helpers used by the benchmark harness.

#include <cstddef>
#include <vector>

namespace plansep {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double p90 = 0;
  double stddev = 0;
};

/// Computes descriptive statistics of `values` (empty input gives all-zero).
Summary summarize(std::vector<double> values);

}  // namespace plansep
