#pragma once

// Plain-text table printer used by the benchmark binaries to emit the
// experiment tables described in EXPERIMENTS.md. Columns are right-aligned
// and sized to their widest cell so tables remain readable in logs.

#include <string>
#include <vector>

namespace plansep {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like semantics.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  /// Renders the table (with a separator under the header).
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(bool b) { return b ? "yes" : "no"; }
  static std::string format_cell(double v);
  template <typename T>
  static std::string format_cell(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plansep
