#pragma once

// Deterministic pseudo-random generator used across generators, property
// tests and the randomized baseline. A thin wrapper over SplitMix64/
// xoshiro256** so that results are reproducible across platforms and
// standard-library implementations (std::mt19937 would also work, but its
// distributions are not portable).

#include <cstdint>
#include <vector>

namespace plansep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Fisher–Yates shuffle of a contiguous range (e.g. a slab slice).
  template <typename T>
  void shuffle(T* data, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(data[i - 1], data[j]);
    }
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    shuffle(v.data(), v.size());
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace plansep
