#pragma once

/// \file
/// The recorded task graphs of the separator/DFS pipeline and the query
/// index build, plus the artifact-id registry the daemon's boot warm-up
/// preloads from.

// Two graphs, recorded once at first use and replayed per job:
//
//   pipeline_graph() — the batch/daemon job stages:
//     spanning_tree ──> engine ──> separator        ("separator@v1")
//                         │  └───> dfs              ("dfs@v1")
//                         └── (ephemeral PartwiseEngine)
//     spanning_tree ──────────────> baseline        ("lt-level@v1")
//     corpus_store   (IO; overlapped with compute)
//
//   query_graph() — the persisted distance-oracle index:
//     spanning_tree ──> engine ──> hierarchy ──> query_index
//                                  (ephemeral)   (query::kIndexAlgorithmId)
//
// The "separator@v1"/"dfs@v1"/"hier-index@v1" artifact ids and payloads
// are exactly the historical monolithic ones, so a disk tier written
// before the task-graph cutover stays warm after it — and the byte-for-
// byte CI smoke can compare the two paths directly. The spanning tree
// ("spantree@v1", .psg kSpanningTree) and the baseline's level separator
// ("lt-level@v1", kLevelSeparator) are the new sub-artifact sections.
//
// Task bodies replay the monolithic call sequences verbatim (down to the
// "pa/setup_bfs" span around the BFS wave), and consumers decode
// dependency *bytes* — never live sibling state — which is the byte-
// identity argument spelled out in docs/TASKGRAPH.md.

#include <string>
#include <vector>

#include "taskgraph/graph.hpp"

namespace plansep::taskgraph {

// Task names (the sinks callers request).
inline constexpr const char* kSpanningTreeTask = "spanning_tree";
inline constexpr const char* kEngineTask = "engine";
inline constexpr const char* kSeparatorTask = "separator";
inline constexpr const char* kDfsTask = "dfs";
inline constexpr const char* kBaselineTask = "baseline";
inline constexpr const char* kCorpusStoreTask = "corpus_store";
inline constexpr const char* kHierarchyTask = "hierarchy";
inline constexpr const char* kQueryIndexTask = "query_index";

// New sub-artifact ids (the per-job ones — "separator@v1", "dfs@v1",
// query::kIndexAlgorithmId — predate the task graph and keep their names).
inline constexpr const char* kSpanningTreeArtifactId = "spantree@v1";
inline constexpr const char* kLevelSeparatorArtifactId = "lt-level@v1";

/// The recorded batch/daemon pipeline graph (process-wide, immutable).
const TaskGraph& pipeline_graph();

/// The recorded query-index graph (process-wide, immutable).
const TaskGraph& query_graph();

/// Every artifact algorithm id worth preloading at daemon boot for a
/// corpus-addressed instance (plansepd --warm-from-corpus).
const std::vector<std::string>& warmable_artifact_ids();

/// Outcome of a boot warm-up sweep.
struct WarmReport {
  long long instances = 0;  ///< corpus entries visited
  long long artifacts = 0;  ///< artifacts now resident in memory
};

/// Boot warm-up (plansepd --warm-from-corpus): for every instance in the
/// corpus, preloads each warmable artifact from the cache's disk tier into
/// memory under the root-0 configuration — the root every corpus-addressed
/// (graph-path) job binds, and the root_hint of most generator families —
/// so the first job of a session is served warm. Pure preloading: nothing
/// is ever computed, absent disk payloads are skipped silently.
WarmReport warm_from_corpus(serve::ArtifactCache& cache,
                            const std::string& corpus_root);

/// DAG execution toggle: true unless PLANSEP_TASKGRAPH is "0" or "off"
/// (the monolithic fallback the byte-for-byte CI smoke compares against).
bool taskgraph_enabled();

}  // namespace plansep::taskgraph
