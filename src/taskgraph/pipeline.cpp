#include "taskgraph/pipeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "baselines/level_separator.hpp"
#include "congest/bfs_tree.hpp"
#include "core/fingerprint.hpp"
#include "dfs/builder.hpp"
#include "io/artifact.hpp"
#include "io/corpus.hpp"
#include "obs/metrics.hpp"
#include "query/index.hpp"
#include "query/service.hpp"
#include "separator/engine.hpp"
#include "separator/hierarchy.hpp"
#include "shortcuts/partwise.hpp"
#include "subroutines/part_context.hpp"
#include "util/check.hpp"

namespace plansep::taskgraph {

namespace {

std::vector<std::uint8_t> single_section(io::SectionId id,
                                         std::vector<std::uint8_t> payload) {
  io::Artifact a;
  a.add(id, std::move(payload));
  return io::assemble(a);
}

const io::Section& require_section(const io::Artifact& a, io::SectionId id,
                                   const char* what) {
  const io::Section* sec = a.find(id);
  if (sec == nullptr) {
    throw io::FormatError(std::string("artifact lacks ") + what);
  }
  return *sec;
}

congest::BfsResult decode_spanning_tree_bytes(
    const std::vector<std::uint8_t>& bytes) {
  const io::Artifact a = io::parse(bytes);
  const io::Section& sec =
      require_section(a, io::SectionId::kSpanningTree, "kSpanningTree");
  return io::decode_spanning_tree(sec.bytes).bfs;
}

std::shared_ptr<shortcuts::PartwiseEngine> engine_of(TaskContext& ctx) {
  return std::static_pointer_cast<shortcuts::PartwiseEngine>(
      ctx.value(kEngineTask));
}

// The shared front of both graphs: the spanning-tree artifact and the
// ephemeral PartwiseEngine decoded from its *bytes* (one bytes→value
// path, so cache-served and freshly-computed trees drive identical
// downstream computations).
void record_tree_and_engine(TaskGraph& g) {
  g.add(TaskDef{
      kSpanningTreeTask,
      kSpanningTreeArtifactId,
      {},
      false,
      [](TaskContext& ctx) {
        const planar::EmbeddedGraph& graph = *ctx.in.graph;
        PLANSEP_CHECK_MSG(graph.num_components() == 1,
                          "graph must be connected");
        congest::BfsResult bfs;
        {
          // The monolithic PartwiseEngine ctor wraps its BFS in this span;
          // replay it here so serial metrics stay comparable.
          PLANSEP_SPAN("pa/setup_bfs");
          bfs = congest::distributed_bfs(graph, ctx.in.root);
        }
        TaskOutput out;
        out.bytes = single_section(io::SectionId::kSpanningTree,
                                   io::encode_spanning_tree({std::move(bfs)}));
        return out;
      },
      nullptr});
  g.add(TaskDef{
      kEngineTask,
      "",
      {kSpanningTreeTask},
      false,
      [](TaskContext& ctx) {
        congest::BfsResult bfs =
            decode_spanning_tree_bytes(*ctx.bytes(kSpanningTreeTask));
        TaskOutput out;
        out.value = std::make_shared<shortcuts::PartwiseEngine>(
            *ctx.in.graph, std::move(bfs));
        return out;
      },
      nullptr});
}

TaskGraph record_pipeline() {
  TaskGraph g("pipeline");
  record_tree_and_engine(g);
  g.add(TaskDef{
      kSeparatorTask,
      "separator@v1",
      {kEngineTask},
      false,
      [](TaskContext& ctx) {
        // Replays core::compute_cycle_separator from the prepared engine.
        const planar::EmbeddedGraph& graph = *ctx.in.graph;
        auto engine = engine_of(ctx);
        std::vector<int> part(static_cast<std::size_t>(graph.num_nodes()), 0);
        sub::PartSet ps =
            sub::build_part_set(graph, part, 1, *engine, {ctx.in.root});
        separator::SeparatorEngine sep(*engine);
        separator::SeparatorResult res = sep.compute(ps);
        shortcuts::RoundCost cost = engine->setup_cost();
        cost += ps.cost;
        cost += res.cost;
        io::SeparatorArtifact sa{res.parts.at(0), cost};
        TaskOutput out;
        out.bytes = single_section(io::SectionId::kSeparator,
                                   io::encode_separator(sa));
        return out;
      },
      nullptr});
  g.add(TaskDef{
      kDfsTask,
      "dfs@v1",
      {kEngineTask},
      false,
      [](TaskContext& ctx) {
        // Replays core::compute_dfs_tree; build_dfs_tree folds the
        // engine's setup cost in, so the artifact bytes match the
        // monolithic path exactly.
        auto engine = engine_of(ctx);
        dfs::DfsBuildResult build =
            dfs::build_dfs_tree(*ctx.in.graph, ctx.in.root, *engine);
        io::DfsArtifact da = io::dfs_artifact_from_tree(build.tree);
        da.phases = build.phases;
        da.cost = build.cost;
        TaskOutput out;
        out.bytes =
            single_section(io::SectionId::kDfsTree, io::encode_dfs(da));
        return out;
      },
      nullptr});
  g.add(TaskDef{
      kBaselineTask,
      kLevelSeparatorArtifactId,
      {kSpanningTreeTask},
      false,
      [](TaskContext& ctx) {
        const congest::BfsResult bfs =
            decode_spanning_tree_bytes(*ctx.bytes(kSpanningTreeTask));
        baselines::LevelSeparatorResult res =
            baselines::bfs_level_separator(*ctx.in.graph, bfs);
        TaskOutput out;
        out.bytes =
            single_section(io::SectionId::kLevelSeparator,
                           io::encode_level_separator({std::move(res)}));
        return out;
      },
      nullptr});
  g.add(TaskDef{
      kCorpusStoreTask,
      "",
      {},
      true,
      [](TaskContext& ctx) {
        if (ctx.in.store_corpus && !ctx.in.corpus_dir.empty()) {
          io::store_in_corpus(ctx.in.corpus_dir, ctx.in.family, *ctx.in.graph,
                              ctx.in.seed);
        }
        return TaskOutput{};
      },
      nullptr});
  return g;
}

TaskGraph record_query() {
  TaskGraph g("query");
  record_tree_and_engine(g);
  g.add(TaskDef{
      kHierarchyTask,
      "",
      {kEngineTask},
      false,
      [](TaskContext& ctx) {
        auto engine = engine_of(ctx);
        TaskOutput out;
        out.value = std::make_shared<separator::SeparatorHierarchy>(
            separator::build_hierarchy(*ctx.in.graph, *engine,
                                       ctx.in.leaf_size));
        return out;
      },
      nullptr});
  g.add(TaskDef{
      kQueryIndexTask,
      query::kIndexAlgorithmId,
      {kHierarchyTask},
      false,
      [](TaskContext& ctx) {
        const planar::EmbeddedGraph& graph = *ctx.in.graph;
        auto h = std::static_pointer_cast<separator::SeparatorHierarchy>(
            ctx.value(kHierarchyTask));
        const query::QueryIndex qi = query::build_query_index(
            graph, *h, ctx.in.leaf_size, std::max(1, ctx.in.build_threads));
        io::Artifact a;
        a.add(io::SectionId::kMeta,
              io::encode_meta({ctx.in.family, ctx.in.seed, ctx.in.fingerprint}));
        a.add(io::SectionId::kHierarchy,
              io::encode_hierarchy({graph.num_nodes(), *h}));
        a.add(io::SectionId::kQueryIndex, io::encode_query_index(qi));
        TaskOutput out;
        out.bytes = io::assemble(a);
        return out;
      },
      // The index key mixes leaf_size in (query::index_cache_key); the
      // spanning tree above keeps the plain root mix so batch and query
      // jobs share one tree per (fingerprint, root).
      [](const JobInputs& in) {
        return core::mix_seed(0x726f6f7400000000ULL /* "root" */,
                              static_cast<std::uint64_t>(in.root),
                              static_cast<std::uint64_t>(in.leaf_size));
      }});
  return g;
}

}  // namespace

const TaskGraph& pipeline_graph() {
  static const TaskGraph graph = record_pipeline();
  return graph;
}

const TaskGraph& query_graph() {
  static const TaskGraph graph = record_query();
  return graph;
}

const std::vector<std::string>& warmable_artifact_ids() {
  static const std::vector<std::string> ids = {
      kSpanningTreeArtifactId, "separator@v1", "dfs@v1",
      kLevelSeparatorArtifactId};
  return ids;
}

WarmReport warm_from_corpus(serve::ArtifactCache& cache,
                            const std::string& corpus_root) {
  WarmReport rep;
  if (corpus_root.empty()) return rep;
  // Root 0 is the configuration every graph-path job binds (batch.cpp
  // leaves root at 0 for loaded instances), so it is the one a daemon
  // serving corpus-addressed jobs re-keys on.
  const std::uint64_t config_hash =
      core::mix_seed(0x726f6f7400000000ULL /* "root" */, 0);
  for (const io::CorpusEntry& entry : io::list_corpus(corpus_root)) {
    ++rep.instances;
    for (const std::string& id : warmable_artifact_ids()) {
      const serve::CacheKey key{entry.fingerprint, id, config_hash};
      if (cache.warm(key)) ++rep.artifacts;
    }
  }
  return rep;
}

bool taskgraph_enabled() {
  const char* env = std::getenv("PLANSEP_TASKGRAPH");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "OFF");
}

}  // namespace plansep::taskgraph
