#include "taskgraph/graph.hpp"

#include <algorithm>
#include <utility>

#include "congest/network.hpp"
#include "congest/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace plansep::taskgraph {

namespace {

using Clock = std::chrono::steady_clock;

long long ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

}  // namespace

void TaskGraphCounters::merge(const TaskGraphCounters& o) {
  tasks_run += o.tasks_run;
  cache_served += o.cache_served;
  io_tasks += o.io_tasks;
  overlapped_io_ms += o.overlapped_io_ms;
  for (const auto& [name, n] : o.runs) runs[name] += n;
}

// -------------------------------------------------------------- recording --

TaskGraph::TaskGraph(std::string name) : name_(std::move(name)) {}

void TaskGraph::add(TaskDef d) {
  PLANSEP_CHECK_MSG(!d.name.empty(), "task needs a name");
  PLANSEP_CHECK_MSG(by_name_.find(d.name) == by_name_.end(),
                    "duplicate task name");
  PLANSEP_CHECK_MSG(static_cast<bool>(d.run), "task needs a body");
  for (const std::string& dep : d.deps) {
    PLANSEP_CHECK_MSG(by_name_.find(dep) != by_name_.end(),
                      "task dep must be recorded first");
  }
  const int index = static_cast<int>(tasks_.size());
  by_name_[d.name] = index;
  if (d.io) io_tasks_.push_back(index);
  tasks_.push_back(std::move(d));
}

int TaskGraph::index_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

// -------------------------------------------------------------- execution --

Execution::Execution(const TaskGraph& g, const JobInputs& in, ExecOptions opts)
    : graph_(g), in_(in), opts_(opts) {
  nodes_.resize(static_cast<std::size_t>(g.size()));
  start_ = Clock::now();
  if (opts_.async_io && !g.io_tasks().empty()) {
    io_ran_async_ = true;
    io_thread_ = std::thread([this] {
      run_io_tasks();
      std::lock_guard<std::mutex> lk(mu_);
      io_end_ = Clock::now();
    });
  }
}

Execution::~Execution() {
  if (io_thread_.joinable()) io_thread_.join();
}

void Execution::run_io_tasks() {
  // Failures land in the node's error slot; finish_io() rethrows them on
  // the requesting thread.
  for (const int i : graph_.io_tasks()) resolve_noexcept(i);
}

void Execution::resolve_noexcept(int i) noexcept {
  try {
    resolve(i);
  } catch (...) {
    // Already recorded in the node; rethrown at finish_io()/request().
  }
}

serve::CacheKey Execution::key_of(const TaskDef& t) const {
  const std::uint64_t config = t.config ? t.config(in_) : in_.config_hash;
  return serve::CacheKey{in_.fingerprint, t.artifact, config};
}

serve::ArtifactCache::Value Execution::request(const std::string& task) {
  const int i = graph_.index_of(task);
  PLANSEP_CHECK_MSG(i >= 0, "unknown task requested");
  resolve(i);
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_[static_cast<std::size_t>(i)].bytes;
}

void Execution::request_all(const std::vector<std::string>& tasks) {
  if (!opts_.parallel_sinks || tasks.size() < 2) {
    for (const std::string& t : tasks) request(t);
    return;
  }
  // Parallel sinks share one process: detach the single-threaded obs
  // globals for the section, exactly like serve::run_batch's parallel
  // section, and force the round engine serial (run_shards is not
  // reentrant).
  obs::MetricsRegistry* const saved_reg = obs::set_global_registry(nullptr);
  congest::TraceSink* const saved_sink =
      congest::set_global_trace_sink(nullptr);
  {
    congest::ScopedThreadConfig serial_rounds(congest::ThreadConfig{});
    congest::ThreadPool::instance().run_shards(
        static_cast<int>(tasks.size()), [&](int s) {
          // run_shards wants a non-throwing fn; errors stay recorded in
          // the node and rethrow on the serial pass below.
          const int i = graph_.index_of(tasks[static_cast<std::size_t>(s)]);
          if (i >= 0) resolve_noexcept(i);
        });
  }
  congest::set_global_trace_sink(saved_sink);
  obs::set_global_registry(saved_reg);
  for (const std::string& t : tasks) request(t);  // rethrow any failure
}

void Execution::resolve(int i) {
  Node& node = nodes_[static_cast<std::size_t>(i)];
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (node.state == State::kDone) return;
      if (node.state == State::kFailed) std::rethrow_exception(node.error);
      if (node.state == State::kIdle) break;
      cv_.wait(lk);  // kRunning: another requester computes it
    }
    node.state = State::kRunning;
  }

  const TaskDef& t = graph_.task(i);
  serve::ArtifactCache::Value bytes;
  std::shared_ptr<void> value;
  std::exception_ptr error;
  bool ran = false;
  try {
    TaskContext ctx{*this, t, in_};
    if (!t.artifact.empty() && opts_.cache != nullptr) {
      bytes = opts_.cache->get_or_compute(key_of(t), [&] {
        ran = true;
        return t.run(ctx).bytes;
      });
    } else {
      ran = true;
      TaskOutput out = t.run(ctx);
      value = std::move(out.value);
      if (!out.bytes.empty() || !t.artifact.empty()) {
        bytes = std::make_shared<const std::vector<std::uint8_t>>(
            std::move(out.bytes));
      }
    }
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (error != nullptr) {
      node.state = State::kFailed;
      node.error = error;
    } else {
      node.state = State::kDone;
      node.bytes = std::move(bytes);
      node.value = std::move(value);
      if (t.io) {
        // IO bodies are side effects, not compute: they rerun every
        // execution (never cached), so folding them into tasks_run would
        // break its cache-temperature invariance.
        ++counters_.io_tasks;
      } else if (ran) {
        ++counters_.tasks_run;
        ++counters_.runs[t.name];
      } else {
        ++counters_.cache_served;
      }
    }
  }
  cv_.notify_all();
  if (error != nullptr) std::rethrow_exception(error);
}

void Execution::finish_io() {
  const Clock::time_point compute_end = Clock::now();
  if (io_thread_.joinable()) io_thread_.join();
  if (!io_ran_async_) {
    for (const int i : graph_.io_tasks()) resolve_noexcept(i);
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (io_ran_async_ && !io_finished_) {
    io_finished_ = true;
    // The overlap window: IO finished at io_end_, compute at compute_end;
    // both ran from start_, so min(end) - start is time spent doing both.
    counters_.overlapped_io_ms =
        std::max(0LL, ms_between(start_, std::min(io_end_, compute_end)));
  }
  for (const int i : graph_.io_tasks()) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.state == State::kFailed) {
      std::exception_ptr error = node.error;
      lk.unlock();
      std::rethrow_exception(error);
    }
  }
}

TaskGraphCounters Execution::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

// ---------------------------------------------------------------- context --

int TaskContext::dep_index(const std::string& dep) const {
  const bool declared =
      std::find(self.deps.begin(), self.deps.end(), dep) != self.deps.end();
  PLANSEP_CHECK_MSG(declared, "task read an undeclared dep");
  return exec.graph_.index_of(dep);
}

serve::ArtifactCache::Value TaskContext::bytes(const std::string& dep) {
  const int i = dep_index(dep);
  exec.resolve(i);
  std::lock_guard<std::mutex> lk(exec.mu_);
  return exec.nodes_[static_cast<std::size_t>(i)].bytes;
}

std::shared_ptr<void> TaskContext::value(const std::string& dep) {
  const int i = dep_index(dep);
  exec.resolve(i);
  std::lock_guard<std::mutex> lk(exec.mu_);
  return exec.nodes_[static_cast<std::size_t>(i)].value;
}

}  // namespace plansep::taskgraph
