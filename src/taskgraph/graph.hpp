#pragma once

/// \file
/// The phase-level task graph: a recorded DAG of named tasks producing
/// fingerprint-keyed artifacts, replayed per job by a demand-driven
/// executor that caches sub-results through serve::ArtifactCache and
/// overlaps side-effect IO with compute.

// Why a task graph (ROADMAP "Phase-level task graph"):
//
// The pipeline used to run as one monolithic call per algorithm — one
// cache entry, nothing shared, nothing overlapped. This module splits it
// into an explicit DAG whose nodes are the paper's natural stages
// (spanning tree, separator compute, DFS build, hierarchy split, the
// baseline's level search) plus side-effect IO (corpus store). A graph is
// *recorded once* per algorithm family (pipeline.hpp) and *replayed* per
// job against that job's inputs, Tenebris-render-graph style.
//
// Execution model — demand-driven, not eager:
//
//   * A caller requests sink tasks by name; only the transitive
//     dependencies actually needed ever run. Crucially, an artifact task
//     answered by the cache prunes its whole subtree: a warm
//     "separator@v1" never touches the spanning tree, so warm-cache
//     counter behaviour is identical to the monolithic path.
//   * Artifact tasks (non-empty `artifact` id) resolve through
//     serve::ArtifactCache::get_or_compute under the key
//     {fingerprint, artifact, config_hash}. The cache's single-flight
//     dedups the compute across concurrent jobs on the same fingerprint
//     (CacheCounters::flight_joins counts those shares); a per-execution
//     memo dedups within one job.
//   * Ephemeral tasks (empty `artifact` id) carry in-memory values (e.g.
//     a prepared PartwiseEngine) between tasks of one execution and are
//     never persisted.
//   * IO tasks run on a helper thread started at construction, so corpus
//     writes overlap the compute stages; finish_io() joins them and
//     rethrows their failures.
//
// Determinism (DESIGN.md §9, docs/TASKGRAPH.md): every task's bytes are a
// pure function of its dependencies' bytes and the job inputs, consumers
// decode dependency *bytes* (one bytes→value path, exactly like the
// serving row contract), and the executor emits no spans or counters of
// its own — so a DAG run produces byte-identical artifacts to the
// monolithic call sequence, at any thread count, any cache temperature.
// Counter totals (tasks_run, cache_served) are thread-count invariant by
// the same single-flight argument as CacheCounters.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "planar/embedded_graph.hpp"
#include "serve/cache.hpp"

namespace plansep::taskgraph {

/// Per-execution counters, folded into serve/daemon metrics snapshots
/// *after* execution (never mutated through obs globals mid-run, which
/// keeps the parallel sections race-free and the metrics deterministic).
struct TaskGraphCounters {
  /// Compute bodies actually executed (IO bodies are io_tasks). Invariant
  /// across thread counts (single-flight) and equal to the cold-run task
  /// count minus cache_served.
  long long tasks_run = 0;
  long long cache_served = 0;   ///< artifact requests answered without a run
  long long io_tasks = 0;       ///< IO task bodies executed (never cached)
  long long overlapped_io_ms = 0;  ///< wall ms of IO overlapped with compute
  /// Bodies run per task name (the sharing tests assert e.g. that
  /// "spanning_tree" ran exactly once across a two-algorithm batch).
  std::map<std::string, long long> runs;

  /// Component-wise accumulate (runs merge by name).
  void merge(const TaskGraphCounters& o);
};

struct TaskContext;
struct JobInputs;

/// What one task produces: artifact tasks fill `bytes` (a canonical .psg
/// container), ephemeral tasks fill `value`, IO tasks fill neither.
struct TaskOutput {
  std::vector<std::uint8_t> bytes;
  std::shared_ptr<void> value;
};

/// One recorded node of the DAG.
struct TaskDef {
  std::string name;      ///< unique node name, e.g. "spanning_tree"
  /// Versioned cache algorithm id (e.g. "spantree@v1"); empty = ephemeral
  /// (never persisted, never cache-served).
  std::string artifact;
  std::vector<std::string> deps;  ///< names of previously recorded tasks
  bool io = false;       ///< side-effect task, overlappable with compute
  std::function<TaskOutput(TaskContext&)> run;  ///< the task body
  /// Cache-key config hash override (e.g. the query index mixes leaf_size
  /// into its key); unset tasks use JobInputs::config_hash.
  std::function<std::uint64_t(const JobInputs&)> config;
};

/// The per-job inputs a recorded graph is replayed against.
struct JobInputs {
  const planar::EmbeddedGraph* graph = nullptr;  ///< the instance
  planar::NodeId root = 0;          ///< pipeline root
  std::uint64_t fingerprint = 0;    ///< core::topology_fingerprint(graph)
  std::uint64_t config_hash = 0;    ///< serve cache config hash (root mix)
  // IO-task inputs (corpus store); store_corpus false disables the store.
  std::string corpus_dir;           ///< corpus root ("" = no store)
  std::string family;               ///< provenance family
  std::uint64_t seed = 0;           ///< provenance seed
  bool store_corpus = false;        ///< persist the instance to the corpus
  int leaf_size = 0;                ///< query hierarchy leaf bound (query jobs)
  int build_threads = 1;            ///< per-piece fan-out of the index build
};

/// A recorded DAG. Tasks are appended in dependency order (every dep must
/// already be recorded), so the recorded order *is* a topological order —
/// acyclicity by construction, and the deterministic replay order the
/// determinism argument leans on.
class TaskGraph {
 public:
  /// An empty graph with a diagnostic name.
  explicit TaskGraph(std::string name);

  /// Records a task. Checks the name is new and every dep recorded.
  void add(TaskDef d);

  /// Index of a task name; -1 when absent.
  int index_of(const std::string& name) const;
  /// The i-th recorded task.
  const TaskDef& task(int i) const { return tasks_[static_cast<std::size_t>(i)]; }
  /// Recorded task count.
  int size() const { return static_cast<int>(tasks_.size()); }
  /// The graph's diagnostic name.
  const std::string& name() const { return name_; }
  /// Indices of every IO task, in recorded order.
  const std::vector<int>& io_tasks() const { return io_tasks_; }

 private:
  std::string name_;
  std::vector<TaskDef> tasks_;
  std::map<std::string, int> by_name_;
  std::vector<int> io_tasks_;
};

/// Execution knobs.
struct ExecOptions {
  /// Sub-artifact cache tier; null recomputes everything (tests).
  serve::ArtifactCache* cache = nullptr;
  /// Run multi-sink request_all() calls on congest::ThreadPool. Only legal
  /// at top level (run_shards is not reentrant) and with the obs globals'
  /// single-threaded-mutation rule in mind: request_all detaches them for
  /// the parallel section, exactly like serve::run_batch.
  bool parallel_sinks = false;
  /// Start IO tasks on a helper thread at construction so they overlap
  /// compute; false runs them inline at finish_io().
  bool async_io = true;
};

/// One replay of a recorded graph against one job's inputs: a
/// demand-driven memoizing executor. Thread-safe: concurrent request()
/// calls for overlapping subtrees coalesce on per-task flights.
class Execution {
 public:
  /// Binds the graph to the inputs; starts the IO helper thread when
  /// async_io and the graph has IO tasks.
  Execution(const TaskGraph& g, const JobInputs& in, ExecOptions opts);
  /// Joins the IO thread (failures are swallowed here; call finish_io()
  /// first to observe them).
  ~Execution();
  Execution(const Execution&) = delete;             ///< non-copyable
  Execution& operator=(const Execution&) = delete;  ///< non-copyable

  /// Demand-runs the named task (and, transitively, whatever it actually
  /// needs) and returns its bytes. Artifact tasks resolve through the
  /// cache. Exceptions from task bodies propagate to every requester.
  serve::ArtifactCache::Value request(const std::string& task);

  /// Requests several sinks; with parallel_sinks they run concurrently on
  /// congest::ThreadPool (obs globals detached for the section), sharing
  /// dependencies through the per-task flights.
  void request_all(const std::vector<std::string>& tasks);

  /// Runs any IO task not yet executed (inline) or joins the helper
  /// thread, then rethrows the first IO failure, if any.
  void finish_io();

  /// Counter snapshot. Stable once every request and finish_io returned.
  TaskGraphCounters counters() const;

  /// The bound inputs (task bodies reach them through TaskContext).
  const JobInputs& inputs() const { return in_; }

 private:
  friend struct TaskContext;

  enum class State { kIdle, kRunning, kDone, kFailed };
  struct Node {
    State state = State::kIdle;
    serve::ArtifactCache::Value bytes;
    std::shared_ptr<void> value;
    std::exception_ptr error;
  };

  serve::CacheKey key_of(const TaskDef& t) const;
  /// Runs (or waits for) task i; returns with node kDone or rethrows.
  void resolve(int i);
  /// resolve(i) with the error left in the node (IO thread / run_shards).
  void resolve_noexcept(int i) noexcept;
  void run_io_tasks();

  const TaskGraph& graph_;
  JobInputs in_;
  ExecOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Node> nodes_;
  TaskGraphCounters counters_;

  std::thread io_thread_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point io_end_;
  bool io_ran_async_ = false;
  bool io_finished_ = false;
};

/// Dependency accessor handed to task bodies. Only declared deps may be
/// read — an undeclared access is a programming error and checks out.
struct TaskContext {
  Execution& exec;       ///< the running execution
  const TaskDef& self;   ///< the task being run
  const JobInputs& in;   ///< the bound job inputs

  /// The named dep's artifact bytes (runs it on demand).
  serve::ArtifactCache::Value bytes(const std::string& dep);
  /// The named dep's ephemeral value (runs it on demand).
  std::shared_ptr<void> value(const std::string& dep);

 private:
  int dep_index(const std::string& dep) const;
};

}  // namespace plansep::taskgraph
