// plansep_batch — cache-backed batch serving over a job file.
//
//   plansep_batch --jobs=FILE [--threads=K] [--corpus=DIR]
//                 [--cache-dir=DIR] [--cache-bytes=N]
//                 [--out=FILE] [--metrics-out=FILE]
//
// The job file holds one job per line as --key=value flags (blank lines
// and '#' comments skipped), e.g.
//
//   --family=grid --n=256 --seed=7 --algo=pipeline
//   --family=triangulation --n=500 --seed=3 --algo=separator --drop=0.02
//
// Each job generates (or loads, --graph=PATH) a planar instance, runs the
// requested stages through the content-addressed result cache, verifies
// the artifacts, and emits one JSON row; rows stream in admission order
// and are byte-identical across thread counts and cache temperature
// (DESIGN.md §9). --cache-dir persists results across process runs — run
// the same job file twice against one cache dir and the second run serves
// every fault-free stage warm. --corpus stores generated instances under
// corpus/<family>/<fingerprint>.psg. --metrics-out writes the obs
// registry snapshot (serve/* counters included) as JSON.
//
// Exit status: 0 all jobs ok; 1 some job errored or failed verification;
// 2 usage/setup error; 3 every failure was a missed deadline (the batch
// computed correctly but blew its time budget — schedulers treat this as
// "retry with a bigger budget", not as a correctness failure).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/sink.hpp"
#include "serve/batch.hpp"

namespace {

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: plansep_batch --jobs=FILE [--threads=K] "
               "[--corpus=DIR] [--cache-dir=DIR] [--cache-bytes=N] "
               "[--out=FILE] [--metrics-out=FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plansep;

  std::string jobs_path;
  std::string out_path;
  std::string metrics_path;
  serve::BatchOptions opts;
  serve::ResultCache::Options cache_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (flag_value(arg, "jobs", &v)) {
      jobs_path = v;
    } else if (flag_value(arg, "threads", &v)) {
      opts.threads = std::atoi(v.c_str());
    } else if (flag_value(arg, "corpus", &v)) {
      opts.corpus_dir = v;
    } else if (flag_value(arg, "cache-dir", &v)) {
      cache_opts.disk_dir = v;
    } else if (flag_value(arg, "cache-bytes", &v)) {
      cache_opts.capacity_bytes = static_cast<std::size_t>(
          std::strtoull(v.c_str(), nullptr, 10));
    } else if (flag_value(arg, "out", &v)) {
      out_path = v;
    } else if (flag_value(arg, "metrics-out", &v)) {
      metrics_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage();
    }
  }
  if (jobs_path.empty()) return usage();

  std::vector<serve::JobSpec> jobs;
  try {
    if (jobs_path == "-") {
      jobs = serve::parse_job_file(std::cin);
    } else {
      std::ifstream in(jobs_path);
      if (!in) {
        std::fprintf(stderr, "cannot open job file %s\n", jobs_path.c_str());
        return 2;
      }
      jobs = serve::parse_job_file(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::ofstream out_file;
  std::ostream* rows_out = &std::cout;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    rows_out = &out_file;
  }

  // A scope-local registry collects the serve/* counters run_batch folds
  // at batch end, so --metrics-out works without the PLANSEP_METRICS env
  // hookup. (Per-round instrumentation stays detached inside the batch.)
  obs::MetricsRegistry reg;
  serve::BatchReport rep;
  {
    obs::ScopedMetrics metrics(reg);
    serve::ResultCache cache(cache_opts);
    rep = serve::run_batch(jobs, opts, cache, rows_out);
  }

  if (!metrics_path.empty()) {
    std::ofstream mf(metrics_path);
    if (!mf) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 2;
    }
    mf << reg.to_json();
  }

  std::fprintf(stderr,
               "[batch] jobs=%lld ok=%lld check_failed=%lld deadline=%lld "
               "errors=%lld | cache hits=%lld disk_hits=%lld misses=%lld "
               "evictions=%lld\n",
               rep.jobs, rep.ok, rep.check_failed, rep.deadline_missed,
               rep.errors, rep.cache.hits, rep.cache.disk_hits,
               rep.cache.misses, rep.cache.evictions);
  if (rep.deadline_missed > 0) {
    std::fprintf(stderr, "[batch] %lld of %lld jobs missed their deadline\n",
                 rep.deadline_missed, rep.jobs);
  }
  if (rep.ok == rep.jobs) return 0;
  // Deadline-only failure is its own exit code: the work that finished is
  // correct, the batch just ran out of budget.
  return rep.errors == 0 && rep.check_failed == 0 ? 3 : 1;
}
