// plansepd — the long-lived serving daemon over a UNIX stream socket.
//
//   plansepd --socket=PATH [--workers=K] [--queue=N] [--quota=N]
//            [--cache-bytes=N] [--cache-shards=N] [--cache-dir=DIR]
//            [--corpus=DIR] [--warm-from-corpus]
//            [--metrics-out=FILE] [--trace-out=FILE]
//            [--dump-every-ms=N] [--chaos-seed=S] [--chaos-crash=P]
//
// Clients speak the length-prefixed frame protocol of daemon/protocol.hpp
// (docs/SERVING.md): submissions carry one plansep_batch job line each,
// responses stream back in per-client admission order, and admission is
// bounded — a full queue or an exhausted per-client quota produces an
// immediate typed reject, never silent queueing. Jobs execute through the
// sharded in-memory result cache in front of the optional --cache-dir
// disk tier, so a restarted daemon serves warm from disk.
//
// --warm-from-corpus preloads every persisted task-graph sub-artifact of
// every corpus instance from the --cache-dir disk tier into the sharded
// cache before the socket opens, so the first job of a session is warm
// (requires --corpus and --cache-dir).
//
// --chaos-crash enables the deterministic chaos harness: a seeded coin
// re-runs jobs as if a worker had crashed mid-job; delivered payloads are
// unaffected (the soak test's oracle).
//
// The daemon runs until a client sends kDrain or it receives
// SIGINT/SIGTERM; both paths finish every admitted job, write the
// --metrics-out / --trace-out dumps, and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "daemon/server.hpp"

namespace {

plansep::daemon::Server* g_server = nullptr;

void on_signal(int) {
  // Async-signal-safe: just flip the flag wait() polls.
  if (g_server != nullptr) g_server->request_stop();
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: plansepd --socket=PATH [--workers=K] [--queue=N] [--quota=N] "
      "[--cache-bytes=N] [--cache-shards=N] [--cache-dir=DIR] "
      "[--corpus=DIR] [--warm-from-corpus] "
      "[--metrics-out=FILE] [--trace-out=FILE] "
      "[--dump-every-ms=N] [--chaos-seed=S] [--chaos-crash=P]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plansep;

  daemon::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (flag_value(arg, "socket", &v)) {
      opts.socket_path = v;
    } else if (flag_value(arg, "workers", &v)) {
      opts.dispatcher.workers = std::atoi(v.c_str());
    } else if (flag_value(arg, "queue", &v)) {
      opts.dispatcher.max_queue =
          static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (flag_value(arg, "quota", &v)) {
      opts.dispatcher.per_client_quota = std::atoll(v.c_str());
    } else if (flag_value(arg, "cache-bytes", &v)) {
      opts.cache_bytes =
          static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (flag_value(arg, "cache-shards", &v)) {
      opts.cache_shards = std::atoi(v.c_str());
    } else if (flag_value(arg, "cache-dir", &v)) {
      opts.cache_disk_dir = v;
    } else if (flag_value(arg, "corpus", &v)) {
      opts.dispatcher.batch.corpus_dir = v;
    } else if (arg == "--warm-from-corpus") {
      opts.warm_from_corpus = true;
    } else if (flag_value(arg, "metrics-out", &v)) {
      opts.metrics_out = v;
    } else if (flag_value(arg, "trace-out", &v)) {
      opts.trace_out = v;
    } else if (flag_value(arg, "dump-every-ms", &v)) {
      opts.dump_every_ms = std::atoll(v.c_str());
    } else if (flag_value(arg, "chaos-seed", &v)) {
      opts.dispatcher.chaos_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(arg, "chaos-crash", &v)) {
      opts.dispatcher.chaos_crash_prob = std::strtod(v.c_str(), nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage();
    }
  }
  if (opts.socket_path.empty()) return usage();
  if (opts.warm_from_corpus &&
      (opts.dispatcher.batch.corpus_dir.empty() ||
       opts.cache_disk_dir.empty())) {
    std::fprintf(stderr,
                 "--warm-from-corpus requires --corpus and --cache-dir\n");
    return usage();
  }

  daemon::Server server(opts);
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plansepd: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "[plansepd] listening on %s (workers=%d queue=%zu)\n",
               opts.socket_path.c_str(), server.dispatcher().options().workers,
               server.dispatcher().options().max_queue);
  std::fflush(stderr);

  server.wait();  // until kDrain or a signal

  const daemon::DaemonMetrics& m = server.metrics();
  std::fprintf(stderr,
               "[plansepd] done: submitted=%lld admitted=%lld completed=%lld "
               "rejected(backpressure=%lld quota=%lld draining=%lld) "
               "orphaned=%lld\n",
               m.counter("daemon/submitted"), m.counter("daemon/admitted"),
               m.counter("daemon/completed"),
               m.counter("daemon/rejected_backpressure"),
               m.counter("daemon/rejected_quota"),
               m.counter("daemon/rejected_draining"),
               m.counter("daemon/orphaned_responses"));
  g_server = nullptr;
  return 0;
}
