// plansep_ingest — the ingest front door as a CLI.
//
// Reads an untrusted edge list (a file argument or stdin), runs the full
// admission pipeline (caps, overflow-safe parse, canonicalization, DMP
// planarity with witness, optional apex triangulation) and, on accept,
// lands the graph as a fingerprinted .psg artifact in a content-addressed
// corpus — ready for plansep_batch --graph=, plansepd jobs and distance
// queries. Formats, limits and the rejection taxonomy: docs/INGEST.md.
//
//   plansep_ingest [FILE] [--format=auto|edges|dimacs] [--corpus=DIR]
//                  [--family=NAME] [--max-nodes=N] [--max-edges=M]
//                  [--max-line-bytes=B] [--drop-self-loops]
//                  [--drop-duplicates] [--triangulate] [--quiet]
//
// Exit codes: 0 accepted, 1 rejected (typed reason on stderr), 2 usage /
// I/O error. On accept, prints one JSON line with the corpus identity.

#include <cstring>
#include <iostream>
#include <string>

#include "ingest/pipeline.hpp"
#include "core/fingerprint.hpp"
#include "io/binary.hpp"

namespace {

using namespace plansep;

int usage() {
  std::cerr
      << "usage: plansep_ingest [FILE] [--format=auto|edges|dimacs]\n"
         "                      [--corpus=DIR] [--family=NAME]\n"
         "                      [--max-nodes=N] [--max-edges=M]\n"
         "                      [--max-line-bytes=B] [--drop-self-loops]\n"
         "                      [--drop-duplicates] [--triangulate] [--quiet]\n"
         "reads FILE (or stdin), admits it or explains the rejection\n";
  return 2;
}

bool parse_count(const std::string& v, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(v, &pos);
    return pos == v.size() && out >= 0;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  bool quiet = false;
  ingest::IngestOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    long long count = 0;
    if (const char* v = value("--format=")) {
      if (!ingest::text_format_from_name(v, opts.format)) return usage();
    } else if (const char* v = value("--corpus=")) {
      opts.corpus_root = v;
    } else if (const char* v = value("--family=")) {
      opts.family = v;
    } else if (const char* v = value("--max-nodes=")) {
      if (!parse_count(v, count)) return usage();
      opts.max_nodes = count;
    } else if (const char* v = value("--max-edges=")) {
      if (!parse_count(v, count)) return usage();
      opts.max_edges = count;
    } else if (const char* v = value("--max-line-bytes=")) {
      if (!parse_count(v, count)) return usage();
      opts.max_line_bytes = static_cast<std::size_t>(count);
    } else if (arg == "--drop-self-loops") {
      opts.drop_self_loops = true;
    } else if (arg == "--drop-duplicates") {
      opts.drop_duplicate_edges = true;
    } else if (arg == "--triangulate") {
      opts.triangulate = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }

  try {
    const ingest::IngestResult res =
        file.empty() ? ingest::ingest_text(std::cin, opts)
                     : ingest::ingest_file(file, opts);
    if (!quiet) {
      std::cout << "{\"status\": \"ok\", \"fingerprint\": \""
                << core::fingerprint_hex(res.meta.fingerprint)
                << "\", \"family\": \"" << res.meta.family
                << "\", \"nodes\": " << res.graph.num_nodes()
                << ", \"edges\": " << res.graph.num_edges()
                << ", \"input_edges\": " << res.stats.input_edges
                << ", \"dropped_self_loops\": "
                << res.stats.dropped_self_loops
                << ", \"dropped_duplicates\": "
                << res.stats.dropped_duplicates
                << ", \"apexes\": " << res.stats.apexes
                << ", \"corpus_path\": \"" << res.corpus_file << "\"}\n";
    }
    return 0;
  } catch (const ingest::IngestError& e) {
    std::cerr << e.what() << "\n";
    if (e.code() == ingest::IngestErrorCode::kNonPlanar && !quiet) {
      std::cerr << "witness (" << e.witness().size() << " edges):";
      std::size_t shown = 0;
      for (const auto& [u, v] : e.witness()) {
        if (++shown > 20) {
          std::cerr << " ...";
          break;
        }
        std::cerr << " {" << u << "," << v << "}";
      }
      std::cerr << "\n";
    }
    return 1;
  } catch (const io::FormatError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
