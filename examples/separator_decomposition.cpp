// Separator-based divide & conquer: the application that motivated
// separators in the first place (Lipton–Tarjan [14, 15], cited in the
// paper's introduction). We recursively split a planar graph with cycle
// separators and use the decomposition to compute a large independent
// set: solve the small pieces exactly/greedily, discard separator nodes.
//
//   ./examples/separator_decomposition [n]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "core/plansep.hpp"

namespace {

using namespace plansep;

struct Decomposition {
  int levels = 0;
  long long separator_nodes = 0;
  long long pieces = 0;
};

// Recursively separates every part until pieces have <= `leaf_size` nodes.
// Marks separator nodes in `in_separator`.
void decompose(const planar::EmbeddedGraph& g, shortcuts::PartwiseEngine& eng,
               std::vector<char>& active, std::vector<char>& in_separator,
               int leaf_size, int level, Decomposition& out) {
  out.levels = std::max(out.levels, level);
  // Current pieces = components of the active set.
  const sub::Components comps = sub::connected_components(
      g, [&](planar::NodeId v) { return active[v] != 0; });
  std::vector<int> part(g.num_nodes(), -1);
  bool any_big = false;
  std::vector<char> big(comps.count, 0);
  int next = 0;
  std::vector<int> part_of_comp(comps.count, -1);
  for (int c = 0; c < comps.count; ++c) {
    if (comps.size[c] > leaf_size) {
      big[c] = 1;
      any_big = true;
      part_of_comp[c] = next++;
    } else if (comps.size[c] > 0) {
      ++out.pieces;
    }
  }
  if (!any_big) return;
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (active[v] && big[comps.label[v]]) {
      part[v] = part_of_comp[comps.label[v]];
    }
  }
  sub::PartSet ps = sub::build_part_set(g, part, next, eng);
  separator::SeparatorEngine se(eng);
  const separator::SeparatorResult res = se.compute(ps);
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (res.marked[v]) {
      in_separator[v] = 1;
      active[v] = 0;
      ++out.separator_nodes;
    }
  }
  // Small pieces stay active but are not recursed on; deactivate them so
  // the recursion only sees the still-big remainder.
  std::vector<char> next_active(g.num_nodes(), 0);
  const sub::Components after = sub::connected_components(
      g, [&](planar::NodeId v) { return active[v] != 0; });
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (active[v] && after.size[after.label[v]] > leaf_size) {
      next_active[v] = 1;
    } else if (active[v]) {
      // leaf piece
    }
  }
  // Count leaf pieces formed at this level.
  std::vector<char> counted(after.count, 0);
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (active[v] && after.size[after.label[v]] <= leaf_size &&
        !counted[after.label[v]]) {
      counted[after.label[v]] = 1;
      ++out.pieces;
    }
  }
  active = next_active;
  decompose(g, eng, active, in_separator, leaf_size, level + 1, out);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2000;
  Rng rng(42);
  const planar::GeneratedGraph gg = planar::random_planar(n, (5 * n) / 3, rng);
  const planar::EmbeddedGraph& g = gg.graph;
  std::printf("graph: random planar, n=%d, m=%d\n", g.num_nodes(),
              g.num_edges());

  shortcuts::PartwiseEngine engine(g, gg.root_hint);
  std::vector<char> active(g.num_nodes(), 1);
  std::vector<char> in_separator(g.num_nodes(), 0);
  Decomposition dec;
  const int leaf_size = std::max(8, n / 64);
  decompose(g, engine, active, in_separator, leaf_size, 1, dec);
  std::printf(
      "decomposition: %d levels, %lld separator nodes (%.1f%%), pieces of <= "
      "%d nodes\n",
      dec.levels, dec.separator_nodes,
      100.0 * dec.separator_nodes / g.num_nodes(), leaf_size);

  // Independent set: greedy inside each piece (pieces are independent of
  // each other once separator nodes are discarded).
  std::vector<char> chosen(g.num_nodes(), 0);
  long long is_size = 0;
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_separator[v]) continue;
    bool free = true;
    for (planar::DartId d : g.rotation(v)) {
      if (chosen[g.head(d)]) {
        free = false;
        break;
      }
    }
    if (free) {
      chosen[v] = 1;
      ++is_size;
    }
  }
  // Verify independence.
  for (planar::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (chosen[g.edge_u(e)] && chosen[g.edge_v(e)]) {
      std::printf("ERROR: not independent!\n");
      return 1;
    }
  }
  std::printf("independent set: %lld nodes (%.1f%% of n; planar graphs "
              "guarantee >= 25%% exists)\n",
              is_size, 100.0 * is_size / g.num_nodes());
  return 0;
}
