// plansep_cli — run the library on your own graph.
//
//   plansep_cli separator < edges.txt      cycle separator (JSON)
//   plansep_cli dfs       < edges.txt      DFS tree (JSON)
//   plansep_cli dot       < edges.txt      Graphviz DOT with the separator
//   plansep_cli check     < edges.txt      planarity verdict only
//
// Input: one "u v" edge per line ('#' comments allowed); arbitrary
// non-negative ids. The graph must be planar (checked by the built-in DMP
// embedder) and connected for separator/dfs.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/plansep.hpp"
#include "io/text.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  const std::string mode = argc > 1 ? argv[1] : "separator";

  const io::EdgeListInput input = io::read_edge_list(std::cin);
  if (input.num_nodes == 0) {
    std::fprintf(stderr, "no input edges\n");
    return 2;
  }
  const auto embedded = planar::planar_embedding(input.num_nodes, input.edges);
  if (mode == "check") {
    std::printf("{\"planar\":%s,\"n\":%d,\"m\":%zu}\n",
                embedded.has_value() ? "true" : "false", input.num_nodes,
                input.edges.size());
    return embedded.has_value() ? 0 : 1;
  }
  if (!embedded.has_value()) {
    std::fprintf(stderr, "input graph is not planar\n");
    return 1;
  }
  if (embedded->num_components() != 1) {
    std::fprintf(stderr, "input graph must be connected for %s\n",
                 mode.c_str());
    return 1;
  }

  if (mode == "separator" || mode == "dot") {
    const SeparatorRun run = compute_cycle_separator(*embedded, 0);
    if (mode == "dot") {
      std::vector<char> mark(embedded->num_nodes(), 0);
      for (planar::NodeId v : run.separator.path) mark[v] = 1;
      std::fputs(io::to_dot(*embedded, mark).c_str(), stdout);
      return 0;
    }
    std::printf(
        "{\"separator\":%s,\"balance\":%.4f,\"phase\":%d,"
        "\"rounds_measured\":%lld,\"rounds_charged\":%lld,\"diameter\":%d}\n",
        io::nodes_to_json(run.separator.path).c_str(), run.check.balance,
        run.separator.phase, run.cost.measured, run.cost.charged,
        run.diameter_bound);
    return run.check.ok() ? 0 : 1;
  }
  if (mode == "dfs") {
    const DfsRun run = compute_dfs_tree(*embedded, 0);
    std::printf("%s\n", io::dfs_to_json(run.build.tree).c_str());
    return run.check.ok() ? 0 : 1;
  }
  std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
  return 2;
}
