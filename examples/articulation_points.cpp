// DFS trees at work: articulation points (cut vertices) of a planar
// network. The classic low-link computation *requires* a genuine DFS tree
// (it is wrong on BFS or arbitrary spanning trees — every non-tree edge
// must be a back edge). We build the DFS tree with the paper's Õ(D)
// algorithm and run low-link over it, then cross-check against a textbook
// recursive DFS.
//
//   ./examples/articulation_points [n]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/plansep.hpp"

namespace {

using namespace plansep;
using planar::NodeId;

// Low-link over a given DFS tree: low[v] = min(depth[v], depth of any
// back-edge target from T_v). v (non-root) is an articulation point iff
// some child c has low[c] >= depth[v].
std::vector<char> articulation_from_dfs(const planar::EmbeddedGraph& g,
                                        const dfs::PartialDfsTree& t) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != t.root() && t.parent(v) != planar::kNoNode) {
      children[t.parent(v)].push_back(v);
    }
  }
  // Process nodes by decreasing depth.
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return t.depth(a) > t.depth(b); });
  std::vector<int> low(n);
  for (NodeId v = 0; v < n; ++v) low[v] = t.depth(v);
  for (NodeId v : order) {
    for (planar::DartId d : g.rotation(v)) {
      const NodeId w = g.head(d);
      if (w == t.parent(v) || t.parent(w) == v) continue;  // tree edge
      low[v] = std::min(low[v], t.depth(w));               // back edge
    }
    for (NodeId c : children[v]) low[v] = std::min(low[v], low[c]);
  }
  std::vector<char> cut(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v == t.root()) {
      cut[v] = children[v].size() >= 2;
    } else {
      for (NodeId c : children[v]) {
        if (low[c] >= t.depth(v)) cut[v] = 1;
      }
    }
  }
  return cut;
}

// Textbook reference (iterative Tarjan/Hopcroft).
std::vector<char> articulation_reference(const planar::EmbeddedGraph& g,
                                         NodeId root) {
  const NodeId n = g.num_nodes();
  std::vector<int> tin(n, -1), low(n, 0);
  std::vector<char> cut(n, 0);
  std::vector<NodeId> parent(n, planar::kNoNode);
  int timer = 0;
  struct Frame {
    NodeId v;
    int i;
  };
  std::vector<Frame> stack{{root, 0}};
  tin[root] = low[root] = timer++;
  int root_children = 0;
  while (!stack.empty()) {
    auto& [v, i] = stack.back();
    const auto rot = g.rotation(v);
    if (i < static_cast<int>(rot.size())) {
      const NodeId w = g.head(rot[i++]);
      if (w == parent[v]) continue;
      if (tin[w] >= 0) {
        low[v] = std::min(low[v], tin[w]);
      } else {
        parent[w] = v;
        tin[w] = low[w] = timer++;
        if (v == root) ++root_children;
        stack.push_back({w, 0});
      }
    } else {
      stack.pop_back();
      const NodeId p = parent[v];
      if (p != planar::kNoNode) {
        low[p] = std::min(low[p], low[v]);
        if (p != root && low[v] >= tin[p]) cut[p] = 1;
      }
    }
  }
  cut[root] = root_children >= 2;
  return cut;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 1200;
  Rng rng(7);
  // A sparse planar network with plenty of cut vertices.
  const planar::GeneratedGraph gg =
      planar::random_planar(n, n + n / 5, rng);
  const planar::EmbeddedGraph& g = gg.graph;
  std::printf("network: n=%d, m=%d\n", g.num_nodes(), g.num_edges());

  const DfsRun run = compute_dfs_tree(g, gg.root_hint);
  if (!run.check.ok()) {
    std::printf("ERROR: DFS tree invalid\n");
    return 1;
  }
  const auto cut = articulation_from_dfs(g, run.build.tree);
  const auto ref = articulation_reference(g, gg.root_hint);
  long long count = 0, agree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    count += cut[v];
    agree += (cut[v] == ref[v]);
  }
  std::printf("articulation points: %lld of %d nodes\n", count, g.num_nodes());
  std::printf("agreement with the textbook recursion: %lld/%d %s\n", agree,
              g.num_nodes(),
              agree == g.num_nodes() ? "(exact)" : "(MISMATCH!)");
  std::printf("DFS built in %d phases, charged %lld rounds (D <= %d)\n",
              run.build.phases, run.build.cost.charged, run.diameter_bound);
  return agree == g.num_nodes() ? 0 : 1;
}
