// The CONGEST simulator, hands on: run the message-level BFS wave and
// Awerbuch's token DFS on the same network and watch rounds vs messages.
// Demonstrates the NodeProgram API the baselines are written against.
//
//   ./examples/congest_playground [n]

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "core/plansep.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 900;

  struct Net {
    const char* name;
    planar::GeneratedGraph gg;
  };
  Rng rng(11);
  Net nets[] = {
      {"grid", planar::grid(static_cast<int>(std::sqrt(n)),
                            static_cast<int>(std::sqrt(n)))},
      {"triangulation", planar::stacked_triangulation(n, rng)},
      {"cycle", planar::cycle(n)},
  };

  std::printf("%-14s %8s %8s | %10s %10s | %10s %10s\n", "network", "n", "m",
              "bfs.rnds", "bfs.msgs", "dfs.rnds", "dfs.msgs");
  for (const Net& net : nets) {
    const auto& g = net.gg.graph;
    const auto bfs = congest::distributed_bfs(g, net.gg.root_hint);
    const auto dfs = baselines::awerbuch_dfs(g, net.gg.root_hint);
    std::printf("%-14s %8d %8d | %10d %10lld | %10d %10lld\n", net.name,
                g.num_nodes(), g.num_edges(), bfs.rounds, bfs.messages,
                dfs.rounds, dfs.messages);
  }
  std::printf(
      "\nBFS finishes in ~D rounds (one wave); Awerbuch's token DFS needs\n"
      "~4n rounds regardless of D — the gap the paper's Otilde(D) algorithm\n"
      "closes deterministically.\n");
  return 0;
}
