// Quickstart: build a planar graph, compute a deterministic cycle
// separator (Theorem 1) and a DFS tree (Theorem 2), and print what the
// library gives you back.
//
//   ./examples/quickstart [side]

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "core/plansep.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  const int side = argc > 1 ? std::atoi(argv[1]) : 20;

  // A side×side grid: n = side^2 nodes, diameter 2(side-1).
  const planar::GeneratedGraph gg = planar::grid(side, side);
  const planar::EmbeddedGraph& g = gg.graph;
  std::printf("graph: %dx%d grid, n=%d, m=%d\n", side, side, g.num_nodes(),
              g.num_edges());

  // --- Cycle separator (Theorem 1).
  const SeparatorRun sep = compute_cycle_separator(g, gg.root_hint);
  std::printf("\ncycle separator (phase %d):\n", sep.separator.phase);
  std::printf("  path of %zu nodes from %d to %d%s\n",
              sep.separator.path.size(), sep.separator.endpoint_a,
              sep.separator.endpoint_b,
              sep.separator.closing_edge != planar::kNoEdge
                  ? " (closed by a real edge)"
                  : " (virtual closing edge)");
  std::printf("  balance: largest remaining component = %.1f%% of n (<= 66.7%%)\n",
              100.0 * sep.check.balance);
  std::printf("  rounds: measured=%lld charged=%lld  (D <= %d)\n",
              sep.cost.measured, sep.cost.charged, sep.diameter_bound);

  // --- DFS tree (Theorem 2).
  const DfsRun dfs = compute_dfs_tree(g, gg.root_hint);
  std::printf("\nDFS tree rooted at %d:\n", gg.root_hint);
  std::printf("  valid DFS tree: %s (every edge joins ancestor/descendant)\n",
              dfs.check.ok() ? "yes" : "NO");
  int max_depth = 0;
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_depth = std::max(max_depth, dfs.build.tree.depth(v));
  }
  std::printf("  depth: %d, outer phases: %d (log2 n = %.1f)\n", max_depth,
              dfs.build.phases, std::log2(std::max(2, g.num_nodes())));
  std::printf("  rounds: measured=%lld charged=%lld\n",
              dfs.build.cost.measured, dfs.build.cost.charged);

  // Every node knows its parent and depth — the distributed output format.
  std::printf("\nfirst few nodes (id: parent, depth):\n");
  for (planar::NodeId v = 0; v < std::min<planar::NodeId>(8, g.num_nodes());
       ++v) {
    std::printf("  %d: parent=%d depth=%d\n", v, dfs.build.tree.parent(v),
                dfs.build.tree.depth(v));
  }
  return dfs.check.ok() && sep.check.ok() ? 0 : 1;
}
