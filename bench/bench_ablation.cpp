// E12 (ablation) — the balance-verification hardening (DESIGN.md §4.7):
// how often does the first, paper-prescribed candidate already pass
// verification? If the answer is "almost always", the hardening costs one
// components pass and buys robustness; if candidates failed often the
// engine would degrade towards candidate scanning.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("ablation");
  const int seeds = quick ? 1 : 4;
  const int n = quick ? 150 : 800;

  std::printf(
      "E12: verification ablation — candidates tried per separator\n\n");
  Table table({"family", "parts", "cand.tried", "cand/part", "first-hit%"});
  for (planar::Family f : planar::all_families()) {
    long long parts = 0, tried = 0, first = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto gg = planar::make_instance(f, n, seed);
      const auto run = compute_dfs_tree(gg.graph, gg.root_hint);
      parts += run.build.separator_stats.parts;
      tried += run.build.separator_stats.candidates_tried;
      first += run.build.separator_stats.first_candidate_hits;
    }
    if (parts == 0) continue;
    table.add(planar::family_name(f), parts, tried,
              static_cast<double>(tried) / parts, 100.0 * first / parts);
    json.row()
        .set("kind", "verification_ablation")
        .set("family", planar::family_name(f))
        .set("n", n)
        .set("parts", parts)
        .set("candidates_tried", tried)
        .set("candidates_per_part", static_cast<double>(tried) / parts)
        .set("first_hit_pct", 100.0 * first / parts);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "ablation"));
  std::printf(
      "\nExpectation: cand/part close to 1 — the paper's phase analysis\n"
      "nearly always nails the first candidate; the verification is cheap\n"
      "insurance for the under-specified corners, not a crutch.\n");
  return 0;
}
