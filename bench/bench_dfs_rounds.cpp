// E3 — Theorem 2: DFS trees in Õ(D) rounds, O(log n) outer phases.
//
// Section 1: end-to-end DFS construction per family × size — rounds under
// both accountings, outer phase count vs log2 n, validity of the result.
//
// Section 2: wall-clock of the message-level round engine, serial vs the
// parallel executor (--threads=K), on large triangulation/grid instances
// (n up to ~100k). The parallel run must be bit-identical (same rounds,
// same messages) — checked here — so the speedup comes for free
// semantically. Timings are min-of-`--reps` (default 3) so the CI
// perf-regression gate (bench/bench_gate.py) compares noise-tolerant
// numbers, and every row carries the engine configuration it ran under
// (threads, par_threshold, host_cores, reps) so baseline rows are
// self-describing and matchable.
//
// Emits dfs_rounds.bench.json (override with --json=PATH).

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <thread>

#include "bench_util.hpp"
#include "shortcuts/partwise_message.hpp"
#include "util/check.hpp"

namespace {

using namespace plansep;

struct EngineTiming {
  int rounds = 0;
  long long messages = 0;
  double wall_ms = 0;
};

// Runs fn `reps` times under cfg; keeps fn's observable counts (identical
// across repetitions — the engine is deterministic) and the minimum wall
// time.
template <typename Fn>
EngineTiming timed_run(const congest::ThreadConfig& cfg, int reps,
                       const Fn& fn) {
  congest::ScopedThreadConfig guard(cfg);
  EngineTiming t;
  t.wall_ms = bench::min_wall_ms(reps, [&] { t = fn(); });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  const int threads = bench::threads_arg(argc, argv, 4);
  const int reps = bench::reps_arg(argc, argv, quick ? 1 : 3);
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  bench::BenchJson json("dfs_rounds");

  const congest::ThreadConfig serial_cfg{1, 64};
  const congest::ThreadConfig par_cfg{threads, 32};

  // Engine configuration stamp shared by every row (the gate matches
  // baseline rows on these).
  const auto stamp = [&](obs::RowsJson::Row& row) -> obs::RowsJson::Row& {
    return row.set("threads", threads)
        .set("par_threshold", par_cfg.min_active_to_parallelize)
        .set("host_cores", host_cores)
        .set("reps", reps);
  };

  std::printf("E3: DFS construction rounds and phases (Theorem 2)\n\n");
  Table table({"family", "n", "D<=", "valid", "phases", "lg n", "measured",
               "charged", "chg/(D*lg^2 n)"});
  for (const auto& pt : bench::standard_sweep(quick)) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    bench::WallTimer timer;
    const auto run = compute_dfs_tree(gg.graph, gg.root_hint);
    const double wall_ms = timer.ms();
    const double d = std::max(1, run.diameter_bound);
    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              run.diameter_bound, run.check.ok(), run.build.phases,
              std::log2(std::max(2, gg.graph.num_nodes())),
              run.build.cost.measured, run.build.cost.charged,
              static_cast<double>(run.build.cost.charged) /
                  (d * bench::polylog2(gg.graph.num_nodes())));
    auto& row = json.row()
                    .set("kind", "dfs_analytic")
                    .set("family", planar::family_name(pt.family))
                    .set("n", gg.graph.num_nodes())
                    .set("diameter_bound", run.diameter_bound)
                    .set("valid", run.check.ok())
                    .set("phases", run.build.phases)
                    .set("rounds_measured", run.build.cost.measured)
                    .set("rounds_charged", run.build.cost.charged)
                    .set("wall_ms", wall_ms);
    stamp(row);
  }
  table.print();
  std::printf(
      "\nPaper expectation: valid DFS everywhere, phases = O(log n),\n"
      "charged rounds = Otilde(D) (bounded last column).\n");

  // ------------------------------------------------- parallel engine --
  std::printf(
      "\nParallel round engine: serial vs %d threads, min of %d reps\n\n",
      threads, reps);
  Table par_table({"workload", "family", "n", "rounds", "messages",
                   "serial ms", "par ms", "speedup"});

  std::vector<bench::SweepPoint> big = quick
      ? std::vector<bench::SweepPoint>{{planar::Family::kTriangulation, 2000},
                                       {planar::Family::kGrid, 2025}}
      : std::vector<bench::SweepPoint>{
            {planar::Family::kTriangulation, 50000},
            {planar::Family::kGrid, 50176},
            {planar::Family::kGridDiagonals, 50176},
            {planar::Family::kTriangulation, 100000},
            {planar::Family::kGrid, 100489},
            {planar::Family::kGridDiagonals, 100489}};
  for (const auto& pt : big) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    const auto& g = gg.graph;

    // Workload A: the BFS wave (frontier-parallel rounds).
    const auto run_bfs = [&] {
      const congest::BfsResult bfs = congest::distributed_bfs(g, gg.root_hint);
      return EngineTiming{bfs.rounds, bfs.messages, 0};
    };
    // Workload B: message-level part-wise aggregation over the BFS tree —
    // every node active for many rounds, the heaviest per-round work the
    // simulator runs.
    const congest::BfsResult tree = congest::distributed_bfs(g, gg.root_hint);
    std::vector<int> part(static_cast<std::size_t>(g.num_nodes()));
    std::vector<std::int64_t> value(static_cast<std::size_t>(g.num_nodes()));
    for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
      part[static_cast<std::size_t>(v)] = v % 32;
      value[static_cast<std::size_t>(v)] = (11 * v) % 257;
    }
    const auto run_agg = [&] {
      const shortcuts::MessageAggregateResult res =
          shortcuts::message_level_aggregate(g, tree, part, value,
                                             shortcuts::AggOp::kSum);
      return EngineTiming{res.rounds, res.messages, 0};
    };

    struct Workload {
      const char* name;
      const std::function<EngineTiming()> fn;
    };
    for (const auto& [name, fn] : std::initializer_list<Workload>{
             {"bfs_wave", run_bfs}, {"aggregate", run_agg}}) {
      const EngineTiming s = timed_run(serial_cfg, reps, fn);
      const EngineTiming p = timed_run(par_cfg, reps, fn);
      // Determinism: the parallel executor must match the serial engine on
      // every observable count before its wall clock means anything.
      PLANSEP_CHECK_MSG(s.rounds == p.rounds && s.messages == p.messages,
                        "parallel run diverged from serial engine");
      const double speedup = p.wall_ms > 0 ? s.wall_ms / p.wall_ms : 0;
      par_table.add(name, planar::family_name(pt.family), g.num_nodes(),
                    s.rounds, s.messages, s.wall_ms, p.wall_ms, speedup);
      auto& row = json.row()
                      .set("kind", "parallel_engine")
                      .set("workload", name)
                      .set("family", planar::family_name(pt.family))
                      .set("n", g.num_nodes())
                      .set("rounds", s.rounds)
                      .set("messages", s.messages)
                      .set("wall_ms_serial", s.wall_ms)
                      .set("wall_ms_parallel", p.wall_ms)
                      .set("speedup", speedup);
      stamp(row);
    }
  }
  par_table.print();
  std::printf(
      "\nSerial and parallel runs are checked bit-identical on rounds and\n"
      "message counts; speedup > 1 requires real cores (host_cores in the\n"
      "JSON rows records what this machine had).\n");

  json.write(bench::json_path_arg(argc, argv, "dfs_rounds"));
  return 0;
}
