// E3 — Theorem 2: DFS trees in Õ(D) rounds, O(log n) outer phases.
//
// End-to-end DFS construction per family × size: rounds under both
// accountings, outer phase count vs log2 n, and validity of the result.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  const bool quick = bench::quick_mode(argc, argv);

  std::printf("E3: DFS construction rounds and phases (Theorem 2)\n\n");
  Table table({"family", "n", "D<=", "valid", "phases", "lg n", "measured",
               "charged", "chg/(D*lg^2 n)"});
  for (const auto& pt : bench::standard_sweep(quick)) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    const auto run = compute_dfs_tree(gg.graph, gg.root_hint);
    const double d = std::max(1, run.diameter_bound);
    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              run.diameter_bound, run.check.ok(), run.build.phases,
              std::log2(std::max(2, gg.graph.num_nodes())),
              run.build.cost.measured, run.build.cost.charged,
              static_cast<double>(run.build.cost.charged) /
                  (d * bench::polylog2(gg.graph.num_nodes())));
  }
  table.print();
  std::printf(
      "\nPaper expectation: valid DFS everywhere, phases = O(log n),\n"
      "charged rounds = Otilde(D) (bounded last column).\n");
  return 0;
}
