// E13 (extension) — cycle separators vs BFS-level separators (the
// "levels" half of Lipton–Tarjan): separator size and availability per
// family. Level separators shine on high-diameter graphs (grids: thin
// diagonal levels) and collapse on low-diameter ones (each level is a
// slab) — the regime where the paper's cycle machinery is essential.

#include <cstdio>

#include "baselines/level_separator.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("lt");
  const int n = quick ? 200 : 2000;

  std::printf("E13: cycle separators vs BFS-level separators (n=%d)\n\n", n);
  Table table({"family", "D<=", "cycle.size", "cycle.bal", "level.found",
               "level.size", "level.bal"});
  for (planar::Family f : planar::all_families()) {
    const auto gg = planar::make_instance(f, n, 1);
    const auto cyc = compute_cycle_separator(gg.graph, gg.root_hint);
    const auto lvl = baselines::bfs_level_separator(gg.graph, gg.root_hint);
    table.add(planar::family_name(f), cyc.diameter_bound,
              static_cast<int>(cyc.separator.path.size()), cyc.check.balance,
              lvl.found, static_cast<int>(lvl.separator.size()),
              lvl.found ? lvl.balance : 0.0);
    json.row()
        .set("kind", "cycle_vs_level")
        .set("family", planar::family_name(f))
        .set("n", gg.graph.num_nodes())
        .set("diameter_bound", cyc.diameter_bound)
        .set("cycle_size", static_cast<int>(cyc.separator.path.size()))
        .set("cycle_balance", cyc.check.balance)
        .set("level_found", lvl.found)
        .set("level_size", static_cast<int>(lvl.separator.size()))
        .set("level_balance", lvl.found ? lvl.balance : 0.0);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "lt"));
  std::printf(
      "\nExpectation: levels win on grids/cylinders (thin levels), cycle\n"
      "separators win by orders of magnitude on triangulations and other\n"
      "low-diameter families; cycle separators are *always* available.\n");
  return 0;
}
