#pragma once

// Shared helpers for the experiment binaries (bench/). Each binary
// regenerates one experiment of EXPERIMENTS.md and prints a plain-text
// table; `--quick` shrinks the sweep for smoke runs.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/plansep.hpp"
#include "util/table.hpp"

namespace plansep::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline double polylog2(int n) {
  const double l = std::log2(std::max(2, n));
  return l * l;
}

struct SweepPoint {
  planar::Family family;
  int n;
};

inline std::vector<SweepPoint> standard_sweep(bool quick) {
  using planar::Family;
  if (quick) {
    return {{Family::kGrid, 100},
            {Family::kTriangulation, 200},
            {Family::kOuterplanar, 120}};
  }
  return {
      {Family::kGrid, 400},        {Family::kGrid, 1600},
      {Family::kGrid, 6400},       {Family::kGridDiagonals, 1600},
      {Family::kCylinder, 1600},   {Family::kTriangulation, 500},
      {Family::kTriangulation, 2000}, {Family::kTriangulation, 8000},
      {Family::kRandomPlanar, 2000},  {Family::kOuterplanar, 1000},
      {Family::kCycle, 600},       {Family::kRandomTree, 2000},
  };
}

}  // namespace plansep::bench
