#pragma once

// Shared helpers for the experiment binaries (bench/). Each binary
// regenerates one experiment of EXPERIMENTS.md, prints a plain-text table,
// and emits a machine-readable <name>.bench.json next to it so the perf
// trajectory accumulates across commits. Flags understood by every binary
// that uses these helpers:
//   --quick            shrink the sweep for smoke runs
//   --threads=K        round-engine shards for the parallel-engine sections
//   --json=PATH        override the JSON output path ("" suppresses it)
//   --metrics-out=PATH write observability metrics JSON (src/obs/)
//   --trace-out=PATH   write a Chrome trace-event / Perfetto file

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/plansep.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "obs/trace_export.hpp"
#include "util/table.hpp"

namespace plansep::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Value of a "--key=value" flag, or nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* key) {
  const std::size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 &&
        std::strncmp(argv[i] + 2, key, klen) == 0 && argv[i][2 + klen] == '=') {
      return argv[i] + 2 + klen + 1;
    }
  }
  return nullptr;
}

/// --threads=K (>= 1); falls back to the given default.
inline int threads_arg(int argc, char** argv, int fallback = 4) {
  if (const char* v = flag_value(argc, argv, "threads")) {
    const int k = std::atoi(v);
    if (k >= 1) return k;
  }
  return fallback;
}

/// --json=PATH; empty string = suppress. Default: <name>.bench.json in cwd.
inline std::string json_path_arg(int argc, char** argv,
                                 const std::string& bench_name) {
  if (const char* v = flag_value(argc, argv, "json")) return v;
  return bench_name + ".bench.json";
}

inline double polylog2(int n) {
  const double l = std::log2(std::max(2, n));
  return l * l;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Restarts the clock — one timer can time many repetitions in place.
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimum wall time of `reps` runs of fn — the noise-tolerant estimate
/// the perf-regression gate compares (min, not mean: scheduling noise is
/// strictly additive, so the minimum is the cleanest repeatable sample).
template <typename Fn>
inline double min_wall_ms(int reps, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  WallTimer timer;
  for (int r = 0; r < std::max(1, reps); ++r) {
    timer.reset();
    fn();
    best = std::min(best, timer.ms());
  }
  return best;
}

/// --reps=N (>= 1); falls back to the given default. Repetition count for
/// min-of-reps timing.
inline int reps_arg(int argc, char** argv, int fallback = 3) {
  if (const char* v = flag_value(argc, argv, "reps")) {
    const int k = std::atoi(v);
    if (k >= 1) return k;
  }
  return fallback;
}

// ------------------------------------------------------------- JSON out --
//
// The flat row-oriented schema shared by every bench lives in
// src/obs/json.hpp (obs::RowsJson) so the observability exporters and the
// bench harness render JSON identically; the historical name stays.

using BenchJson = obs::RowsJson;

// ---------------------------------------------------------- obs session --

/// Opt-in observability for a bench run: when --metrics-out and/or
/// --trace-out are given, installs a metrics scope (registry + chained
/// trace sink) for the lifetime of the object and writes the requested
/// exports at destruction. With neither flag the bench runs with metrics
/// fully disabled — construct one of these first in every bench main.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    if (const char* v = flag_value(argc, argv, "metrics-out")) {
      metrics_path_ = v;
    }
    if (const char* v = flag_value(argc, argv, "trace-out")) trace_path_ = v;
    if (!metrics_path_.empty() || !trace_path_.empty()) {
      scoped_.emplace(registry_);
    }
  }
  ~ObsSession() {
    if (!scoped_.has_value()) return;
    scoped_.reset();  // detach + fold pending per-run state
    obs::write_metrics_json(registry_, metrics_path_);
    obs::write_chrome_trace(registry_, trace_path_);
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const { return scoped_.has_value(); }

 private:
  obs::MetricsRegistry registry_;
  std::optional<obs::ScopedMetrics> scoped_;
  std::string metrics_path_;
  std::string trace_path_;
};

struct SweepPoint {
  planar::Family family;
  int n;
};

inline std::vector<SweepPoint> standard_sweep(bool quick) {
  using planar::Family;
  if (quick) {
    return {{Family::kGrid, 100},
            {Family::kTriangulation, 200},
            {Family::kOuterplanar, 120}};
  }
  return {
      {Family::kGrid, 400},        {Family::kGrid, 1600},
      {Family::kGrid, 6400},       {Family::kGridDiagonals, 1600},
      {Family::kCylinder, 1600},   {Family::kTriangulation, 500},
      {Family::kTriangulation, 2000}, {Family::kTriangulation, 8000},
      {Family::kRandomPlanar, 2000},  {Family::kOuterplanar, 1000},
      {Family::kCycle, 600},       {Family::kRandomTree, 2000},
  };
}

}  // namespace plansep::bench
