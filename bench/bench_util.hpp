#pragma once

// Shared helpers for the experiment binaries (bench/). Each binary
// regenerates one experiment of EXPERIMENTS.md, prints a plain-text table,
// and emits a machine-readable BENCH_<name>.json next to it so the perf
// trajectory accumulates across commits. Flags understood by every binary
// that uses these helpers:
//   --quick        shrink the sweep for smoke runs
//   --threads=K    round-engine shards for the parallel-engine sections
//   --json=PATH    override the JSON output path ("" suppresses the file)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/plansep.hpp"
#include "util/table.hpp"

namespace plansep::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Value of a "--key=value" flag, or nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* key) {
  const std::size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 &&
        std::strncmp(argv[i] + 2, key, klen) == 0 && argv[i][2 + klen] == '=') {
      return argv[i] + 2 + klen + 1;
    }
  }
  return nullptr;
}

/// --threads=K (>= 1); falls back to the given default.
inline int threads_arg(int argc, char** argv, int fallback = 4) {
  if (const char* v = flag_value(argc, argv, "threads")) {
    const int k = std::atoi(v);
    if (k >= 1) return k;
  }
  return fallback;
}

/// --json=PATH; empty string = suppress. Default: BENCH_<name>.json in cwd.
inline std::string json_path_arg(int argc, char** argv,
                                 const std::string& bench_name) {
  if (const char* v = flag_value(argc, argv, "json")) return v;
  return "BENCH_" + bench_name + ".json";
}

inline double polylog2(int n) {
  const double l = std::log2(std::max(2, n));
  return l * l;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------- JSON out --
//
// Flat row-oriented schema shared by every bench:
//   {"bench": "<name>", "schema": 1, "rows": [{...}, ...]}
// Rows keep insertion order; values are ints, doubles, bools or strings.

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  class Row {
   public:
    Row& set(const char* key, long long v) {
      kv_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& set(const char* key, int v) { return set(key, static_cast<long long>(v)); }
    Row& set(const char* key, double v) {
      char buf[64];
      if (std::isfinite(v)) {
        std::snprintf(buf, sizeof buf, "%.6g", v);
      } else {
        std::snprintf(buf, sizeof buf, "null");
      }
      kv_.emplace_back(key, buf);
      return *this;
    }
    Row& set(const char* key, bool v) {
      kv_.emplace_back(key, v ? "true" : "false");
      return *this;
    }
    Row& set(const char* key, const std::string& v) {
      kv_.emplace_back(key, quote(v));
      return *this;
    }
    Row& set(const char* key, const char* v) { return set(key, std::string(v)); }

   private:
    friend class BenchJson;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out += c;
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> kv_;
  };

  /// Appends a fresh row; chain .set(...) calls on the reference.
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string render() const {
    std::string out = "{\"bench\": " + Row::quote(name_) + ", \"schema\": 1";
    out += ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "  {";
      const auto& kv = rows_[r].kv_;
      for (std::size_t i = 0; i < kv.size(); ++i) {
        if (i) out += ", ";
        out += Row::quote(kv[i].first) + ": " + kv[i].second;
      }
      out += "}";
    }
    out += "\n]}\n";
    return out;
  }

  /// Writes render() to path (no-op on empty path); announces the file.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    f << render();
    std::printf("\n[json] %zu row(s) -> %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

struct SweepPoint {
  planar::Family family;
  int n;
};

inline std::vector<SweepPoint> standard_sweep(bool quick) {
  using planar::Family;
  if (quick) {
    return {{Family::kGrid, 100},
            {Family::kTriangulation, 200},
            {Family::kOuterplanar, 120}};
  }
  return {
      {Family::kGrid, 400},        {Family::kGrid, 1600},
      {Family::kGrid, 6400},       {Family::kGridDiagonals, 1600},
      {Family::kCylinder, 1600},   {Family::kTriangulation, 500},
      {Family::kTriangulation, 2000}, {Family::kTriangulation, 8000},
      {Family::kRandomPlanar, 2000},  {Family::kOuterplanar, 1000},
      {Family::kCycle, 600},       {Family::kRandomTree, 2000},
  };
}

}  // namespace plansep::bench
