#!/usr/bin/env python3
"""Perf-regression gate over bench JSON rows.

Compares rows of a chosen kind (--kind, default `parallel_engine`) from a
fresh bench run against the committed baseline and fails when any matched
row's gated fields (--fields, default the parallel-engine wall clocks)
regressed by more than the tolerance (default 20%). E.g. the serving tier
gates `bench_loadgen` rows with:

  bench_gate.py --kind loadgen --fields wall_ms,p99_ms \
      --current loadgen.bench.json --baseline bench/baselines/loadgen.bench.json

Matching and noise policy:
  * Rows are keyed on (kind, workload, family, n, threads, par_threshold,
    host_cores) — the self-describing fields every row carries. A current
    row with no baseline counterpart is reported and skipped (new sweep
    points bootstrap on the next baseline refresh); a baseline row with no
    current counterpart fails the gate (a silently dropped sweep point is a
    coverage regression).
  * host_cores is part of the key on purpose: wall clocks from a 1-core
    container and an 8-core runner are not comparable. When *no* baseline
    row matches the current host_cores at all, the gate skips with a
    warning instead of failing — a new runner shape needs a baseline
    bootstrap, not a red build.
  * Rows faster than --min-ms (default 5 ms) are ignored: at that scale
    scheduler jitter dwarfs any real regression. Both binaries already
    report min-of-reps timings (bench_util.hpp), so the gate adds no
    repetition logic of its own.

Exit status: 0 = pass (or skip), 1 = regression / coverage loss,
2 = usage or malformed input.
"""

import argparse
import json
import sys

KEY_FIELDS = ("kind", "workload", "family", "n", "threads", "par_threshold",
              "host_cores")
# Default wall-clock fields gated per row, with the headline one first.
WALL_FIELDS = ("wall_ms_parallel", "wall_ms_serial")
# Per-kind field defaults, so the common gates need no --fields flag.
KIND_FIELDS = {
    "parallel_engine": WALL_FIELDS,
    "loadgen": ("wall_ms",),
    "query": ("warm_wall_ms", "cold_job_ms"),
    "ingest": ("wall_ms", "reject_wall_ms"),
    "taskgraph": ("dag_wall_ms", "mono_wall_ms"),
}


def load_rows(path, kind):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench-gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        print(f"bench-gate: {path} has no rows[]", file=sys.stderr)
        sys.exit(2)
    return [r for r in rows if r.get("kind") == kind]


def row_key(row):
    return tuple(row.get(f) for f in KEY_FIELDS)


def fmt_key(key):
    return " ".join(f"{f}={v}" for f, v in zip(KEY_FIELDS, key))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="bench JSON produced by this build")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline bench JSON")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative slowdown (default 0.20 = 20%%)")
    ap.add_argument("--min-ms", type=float, default=5.0,
                    help="ignore rows whose baseline wall clock is below "
                         "this (noise floor, default 5 ms)")
    ap.add_argument("--kind", default="parallel_engine",
                    help="row kind to gate (default parallel_engine)")
    ap.add_argument("--fields", default=None,
                    help="comma-separated wall-clock fields to gate per row "
                         "(default: the kind's entry in KIND_FIELDS, else "
                         f"{','.join(WALL_FIELDS)})")
    args = ap.parse_args()
    if args.fields is None:
        fields = KIND_FIELDS.get(args.kind, WALL_FIELDS)
    else:
        fields = tuple(f for f in args.fields.split(",") if f)

    current = {row_key(r): r for r in load_rows(args.current, args.kind)}
    baseline = {row_key(r): r for r in load_rows(args.baseline, args.kind)}
    if not current:
        print(f"bench-gate: no {args.kind} rows in current run",
              file=sys.stderr)
        return 1
    if not baseline:
        print(f"bench-gate: baseline has no {args.kind} rows",
              file=sys.stderr)
        return 1

    host_cores = {k[KEY_FIELDS.index("host_cores")] for k in current}
    base_cores = {k[KEY_FIELDS.index("host_cores")] for k in baseline}
    if not (host_cores & base_cores):
        print(f"bench-gate: SKIP — baseline rows are from host_cores="
              f"{sorted(base_cores)} but this runner has host_cores="
              f"{sorted(host_cores)}; refresh the baseline from this "
              f"runner shape to arm the gate here.")
        return 0

    failures = []
    compared = 0
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        if cur is None:
            if key[KEY_FIELDS.index("host_cores")] not in host_cores:
                continue  # other runner shape's rows — not ours to check
            failures.append(f"missing sweep point: {fmt_key(key)}")
            continue
        for field in fields:
            b, c = base.get(field), cur.get(field)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if b < args.min_ms:
                continue
            compared += 1
            ratio = c / b if b > 0 else float("inf")
            marker = ""
            if ratio > 1.0 + args.tolerance:
                marker = "  << REGRESSION"
                failures.append(
                    f"{fmt_key(key)} {field}: {b:.2f} ms -> {c:.2f} ms "
                    f"({ratio:.2f}x)")
            print(f"  {fmt_key(key)} {field}: {b:.2f} -> {c:.2f} ms "
                  f"({ratio:.2f}x){marker}")

    for key in sorted(set(current) - set(baseline)):
        print(f"  new (unbaselined, skipped): {fmt_key(key)}")

    if failures:
        print(f"\nbench-gate: FAIL — {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench-gate: PASS — {compared} wall-clock cells within "
          f"{args.tolerance:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
