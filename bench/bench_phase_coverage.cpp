// E10 — Lemma 1 case coverage: which phase of the separator algorithm
// produces the answer, per family, across the whole DFS recursion (every
// component of every outer phase counts once). Verifies the algorithm
// exercises all of its machinery, not just the easy Phase 3.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("phase_coverage");
  const int seeds = quick ? 1 : 4;
  const int n = quick ? 150 : 800;

  std::printf("E10: separator phase coverage over the DFS recursion\n\n");
  Table table({"family", "parts", "tree", "range", "longpath", "aug-leaf",
               "hidden", "facepath", "phase5", "lastresort"});
  for (planar::Family f : planar::all_families()) {
    separator::SeparatorStats total{};
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto gg = planar::make_instance(f, n, seed);
      const auto run = compute_dfs_tree(gg.graph, gg.root_hint);
      for (std::size_t i = 0; i < total.phase_counts.size(); ++i) {
        total.phase_counts[i] += run.build.separator_stats.phase_counts[i];
      }
      total.parts += run.build.separator_stats.parts;
    }
    table.add(planar::family_name(f), total.parts, total.phase_counts[0],
              total.phase_counts[1], total.phase_counts[2],
              total.phase_counts[3], total.phase_counts[4],
              total.phase_counts[5], total.phase_counts[6],
              total.phase_counts[7]);
    json.row()
        .set("kind", "phase_coverage")
        .set("family", planar::family_name(f))
        .set("n", n)
        .set("parts", total.parts)
        .set("tree", total.phase_counts[0])
        .set("range", total.phase_counts[1])
        .set("longpath", total.phase_counts[2])
        .set("aug_leaf", total.phase_counts[3])
        .set("hidden", total.phase_counts[4])
        .set("facepath", total.phase_counts[5])
        .set("phase5", total.phase_counts[6])
        .set("lastresort", total.phase_counts[7]);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "phase_coverage"));
  std::printf(
      "\nExpectation: lastresort = 0 everywhere; trees resolve in Phase 2,\n"
      "dense families mostly in Phase 3/4, sparse ones exercise Phase 5.\n");
  return 0;
}
