// E17 (serving) — the ingest front door: untrusted edge-list text
// through the full admission pipeline (capped parse, canonicalization,
// DMP planarity, fingerprint). Each sweep point renders a generated
// instance as external edge-list text (sparse 64-bit-ish ids, comments,
// CRLF — the hostile-ish shape real inputs have) and reports the accept
// wall clock, end-to-end throughput in MB/s and edges/s, and the cost
// of *rejecting* the same text with a K5 spliced in (the adversarial
// path must cost about the same as the happy path — no amplification
// for attackers). Counters accepted/rejected
// are printed so CI can sanity-check both verdicts ran. Flags are
// bench_util's (--quick, --reps=N, --json=PATH).

#include <cstdio>
#include <sstream>
#include <thread>

#include "bench_util.hpp"
#include "ingest/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  const int reps = bench::reps_arg(argc, argv, 3);
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  struct Point {
    planar::Family family;
    int n;
  };
  const std::vector<Point> sweep =
      quick ? std::vector<Point>{{planar::Family::kGrid, 400},
                                 {planar::Family::kTriangulation, 1000}}
            : std::vector<Point>{
                  // The DMP admission step is super-linear, so the sweep
                  // stays modest: it gates parse+admit cost drift, not
                  // asymptotics.
                  {planar::Family::kGrid, 2500},
                  {planar::Family::kGrid, 6400},
                  {planar::Family::kTriangulation, 2000},
                  {planar::Family::kTriangulation, 5000},
                  {planar::Family::kRandomPlanar, 2000},
              };

  std::printf("E17: ingest admission throughput (%s)\n\n",
              quick ? "quick" : "full");
  Table table({"family", "n", "edges", "bytes", "accept ms", "MB/s",
               "Medges/s", "reject ms"});
  bench::BenchJson json("ingest");

  int accepted = 0, rejected = 0;
  for (const Point& pt : sweep) {
    const auto gg = planar::make_instance(pt.family, pt.n, /*seed=*/1);

    // External-looking text: ids stretched over a sparse 64-bit range,
    // a comment header, CRLF line endings on half the lines.
    std::ostringstream os;
    os << "# bench_ingest " << planar::family_name(pt.family) << " n="
       << pt.n << "\n";
    for (planar::EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
      const long long u =
          1000000007LL * static_cast<long long>(gg.graph.edge_u(e)) + 17;
      const long long v =
          1000000007LL * static_cast<long long>(gg.graph.edge_v(e)) + 17;
      os << u << ' ' << v << (e % 2 == 0 ? "\r\n" : "\n");
    }
    const std::string text = os.str();

    // K5 on five fresh ids: the same text, now one block past planar.
    std::string hostile = text;
    for (int a = 0; a < 5; ++a) {
      for (int b = a + 1; b < 5; ++b) {
        hostile += std::to_string(4000000000000000000LL + a) + " " +
                   std::to_string(4000000000000000000LL + b) + "\n";
      }
    }

    ingest::IngestOptions opts;  // production caps, no corpus store
    std::size_t edges = 0;
    const double accept_ms = bench::min_wall_ms(reps, [&] {
      const ingest::IngestResult res = ingest::ingest_string(text, opts);
      edges = static_cast<std::size_t>(res.graph.num_edges());
      ++accepted;
    });
    const double reject_ms = bench::min_wall_ms(reps, [&] {
      try {
        (void)ingest::ingest_string(hostile, opts);
        std::fprintf(stderr, "bench_ingest: hostile input was admitted\n");
        std::exit(2);
      } catch (const ingest::IngestError&) {
        ++rejected;
      }
    });

    const double mb = static_cast<double>(text.size()) / (1024.0 * 1024.0);
    const double mb_per_s = mb / (accept_ms / 1000.0);
    const double medges_per_s =
        static_cast<double>(edges) / 1e6 / (accept_ms / 1000.0);

    table.add(planar::family_name(pt.family), pt.n,
              static_cast<long long>(edges),
              static_cast<long long>(text.size()), accept_ms, mb_per_s,
              medges_per_s, reject_ms);
    json.row()
        .set("kind", "ingest")
        .set("workload", "admit")
        .set("family", planar::family_name(pt.family))
        .set("n", pt.n)
        .set("threads", 1)
        .set("par_threshold", 0)
        .set("host_cores", host_cores)
        .set("edges", static_cast<long long>(edges))
        .set("input_bytes", static_cast<long long>(text.size()))
        .set("wall_ms", accept_ms)
        .set("reject_wall_ms", reject_ms)
        .set("mb_per_s", mb_per_s)
        .set("medges_per_s", medges_per_s);
  }

  table.print();
  json.write(bench::json_path_arg(argc, argv, "ingest"));
  std::printf(
      "\naccepted=%d rejected=%d\n"
      "Expectation: admission cost is dominated by the DMP planarity step\n"
      "(super-linear, hence the modest sweep), and rejecting a near-planar\n"
      "input costs about the same as admitting its planar bulk — the\n"
      "adversarial path buys no amplification.\n",
      accepted, rejected);
  return (accepted > 0 && rejected > 0) ? 0 : 1;
}
