// E9 — the part-wise aggregation engine (Proposition 4 substitute):
// measured rounds as a function of the number of parts, against the
// theoretical O(D) charge. Parts are BFS-depth bands (connected within
// each component of a band), a congestion-friendly shape, and random
// subtree decompositions, a congestion-hostile one.

#include <cstdio>

#include "bench_util.hpp"
#include "shortcuts/partwise_message.hpp"

namespace {

using namespace plansep;

std::pair<std::vector<int>, int> band_parts(const planar::EmbeddedGraph& g,
                                            const congest::BfsResult& bfs,
                                            int bands) {
  // Depth bands, refined to connected components.
  std::vector<int> band(g.num_nodes());
  const int width = std::max(1, (bfs.height + 1) / bands);
  for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
    band[v] = bfs.depth[v] / width;
  }
  std::vector<int> label(g.num_nodes(), -1);
  int parts = 0;
  for (planar::NodeId s = 0; s < g.num_nodes(); ++s) {
    if (label[s] >= 0) continue;
    const int id = parts++;
    std::vector<planar::NodeId> stack{s};
    label[s] = id;
    while (!stack.empty()) {
      const planar::NodeId v = stack.back();
      stack.pop_back();
      for (planar::DartId d : g.rotation(v)) {
        const planar::NodeId w = g.head(d);
        if (label[w] < 0 && band[w] == band[v]) {
          label[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return {label, parts};
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("partwise");
  const int n = quick ? 400 : 4000;

  std::printf("E9: part-wise aggregation rounds vs number of parts (n=%d)\n\n",
              n);
  Table table({"family", "parts", "D<=", "measured", "msg-level", "charged",
               "meas/D"});
  for (planar::Family f :
       {planar::Family::kGrid, planar::Family::kTriangulation}) {
    const auto gg = planar::make_instance(f, n, 1);
    shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
    for (int bands : {1, 4, 16, 64}) {
      auto [part, parts] = band_parts(gg.graph, engine.global_tree(), bands);
      std::vector<std::int64_t> ones(gg.graph.num_nodes(), 1);
      const auto res = engine.aggregate(part, ones, shortcuts::AggOp::kSum);
      // The same global-tree protocol executed message-by-message on the
      // CONGEST simulator.
      const auto msg = shortcuts::message_level_aggregate(
          gg.graph, engine.global_tree(), part, ones, shortcuts::AggOp::kSum);
      table.add(planar::family_name(f), parts, engine.diameter_bound(),
                res.cost.measured, msg.rounds, res.cost.charged,
                static_cast<double>(res.cost.measured) /
                    std::max(1, engine.diameter_bound()));
      json.row()
          .set("kind", "partwise")
          .set("family", planar::family_name(f))
          .set("n", n)
          .set("parts", parts)
          .set("diameter_bound", engine.diameter_bound())
          .set("rounds_measured", res.cost.measured)
          .set("rounds_msg_level", msg.rounds)
          .set("rounds_charged", res.cost.charged);
    }
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "partwise"));
  std::printf(
      "\nExpectation: with HHW shortcuts every row would be Otilde(D)\n"
      "(the charged column). `measured` is min(intra-part, global pipeline);\n"
      "`msg-level` is the global pipeline alone, executed message-by-message\n"
      "— it exposes the congestion cost (many parts through one tree) that\n"
      "the intra-part strategy sidesteps and real shortcuts schedule away.\n");
  return 0;
}
