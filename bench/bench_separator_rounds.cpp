// E1 — Theorem 1: cycle separators in Õ(D) rounds.
//
// For each family × size: rounds of one whole-graph separator computation
// (representation setup + the phase machinery), under both accountings
// (DESIGN.md): `charged` follows the paper (each aggregation costs O(D)
// via deterministic shortcuts), `measured` is our substitute's simulation.
// The Õ(D) claim manifests as charged/(D·log²n) staying bounded while n
// grows by orders of magnitude.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("separator_rounds");

  std::printf("E1: separator rounds vs diameter (Theorem 1)\n\n");
  Table table({"family", "n", "m", "D<=", "measured", "charged", "chg/D",
               "chg/(D*lg^2 n)", "phase"});
  for (const auto& pt : bench::standard_sweep(quick)) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    const auto run = compute_cycle_separator(gg.graph, gg.root_hint);
    const double d = std::max(1, run.diameter_bound);
    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              gg.graph.num_edges(), run.diameter_bound, run.cost.measured,
              run.cost.charged, static_cast<double>(run.cost.charged) / d,
              static_cast<double>(run.cost.charged) /
                  (d * bench::polylog2(gg.graph.num_nodes())),
              run.separator.phase);
    json.row()
        .set("kind", "separator_rounds")
        .set("family", planar::family_name(pt.family))
        .set("n", gg.graph.num_nodes())
        .set("m", gg.graph.num_edges())
        .set("diameter_bound", run.diameter_bound)
        .set("rounds_measured", run.cost.measured)
        .set("rounds_charged", run.cost.charged)
        .set("charged_over_d_polylog",
             static_cast<double>(run.cost.charged) /
                 (d * bench::polylog2(gg.graph.num_nodes())))
        .set("phase", run.separator.phase);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "separator_rounds"));
  std::printf(
      "\nPaper expectation: charged/(D*polylog) bounded as n grows; the\n"
      "trivial lower bound is Omega(D), so chg/D >= 1 always.\n");
  return 0;
}
