// E11 (extension) — recursive separator decomposition (the Lipton–Tarjan
// application the paper's introduction motivates): levels, separator
// fraction and costs as a function of the leaf size.

#include <cstdio>

#include "bench_util.hpp"
#include "query/index.hpp"
#include "separator/hierarchy.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("hierarchy");
  const int n = quick ? 300 : 3000;

  std::printf("E11: separator hierarchy vs leaf size (n=%d)\n\n", n);
  Table table({"family", "leaf", "levels", "lg(n/leaf)", "pieces", "sep%",
               "charged", "index ms", "index MB"});
  for (planar::Family f :
       {planar::Family::kGrid, planar::Family::kTriangulation,
        planar::Family::kRandomPlanar}) {
    const auto gg = planar::make_instance(f, n, 1);
    for (int leaf : {8, 32, 128}) {
      shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
      const auto h = separator::build_hierarchy(gg.graph, engine, leaf);
      int leaves = 0;
      for (const auto& piece : h.pieces) leaves += piece.is_leaf();
      // The query tier's index build rides the same decomposition; its
      // cost and footprint belong in the leaf-size tradeoff picture.
      bench::WallTimer index_timer;
      const auto qi = query::build_query_index(gg.graph, h, leaf);
      const double index_ms = index_timer.ms();
      table.add(planar::family_name(f), leaf, h.levels,
                std::log2(static_cast<double>(gg.graph.num_nodes()) / leaf),
                leaves,
                100.0 * h.separator_nodes / gg.graph.num_nodes(),
                h.cost.charged, index_ms,
                static_cast<double>(qi.byte_size()) / (1 << 20));
      json.row()
          .set("kind", "hierarchy")
          .set("family", planar::family_name(f))
          .set("n", gg.graph.num_nodes())
          .set("leaf_size", leaf)
          .set("levels", h.levels)
          .set("pieces", leaves)
          .set("pieces_total", static_cast<long long>(h.pieces.size()))
          .set("separator_pct",
               100.0 * h.separator_nodes / gg.graph.num_nodes())
          .set("rounds_charged", h.cost.charged)
          .set("index_build_ms", index_ms)
          .set("index_bytes", static_cast<long long>(qi.byte_size()));
    }
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "hierarchy"));
  std::printf(
      "\nExpectation: levels track log(n/leaf) (2/3 shrinkage per level);\n"
      "smaller leaves spend more nodes on separators — the classic\n"
      "divide-and-conquer tradeoff.\n");
  return 0;
}
