// E5 — the deterministic subroutines (Lemmas 9, 11–19): per-subroutine
// round costs as a function of n and D. Each column is one building block
// of the separator/DFS machinery:
//   bfs      — global BFS wave (engine setup; message-level)
//   boruvka  — spanning forest of the whole graph (Lemma 9)
//   orders   — LEFT/RIGHT-DFS-ORDER fragment merging (Lemma 11)
//   pa       — one part-wise aggregation over the whole graph (Prop. 4)

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("subroutines");

  std::printf("E5: subroutine round costs (measured / charged)\n\n");
  Table table({"family", "n", "D<=", "bfs", "boruvka.m", "boruvka.c",
               "orders.m", "orders.c", "pa.m", "pa.c"});
  for (const auto& pt : bench::standard_sweep(quick)) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
    std::vector<int> part(gg.graph.num_nodes(), 0);

    sub::SpanningForest forest = sub::boruvka_forest(
        gg.graph, part, 1, [](planar::EdgeId) { return 0; }, engine);
    sub::PartSet ps = sub::part_set_from_forest(
        gg.graph, part, 1, forest.parent_dart, forest.root, engine);
    const shortcuts::RoundCost orders = sub::charge_dfs_orders(engine, ps);

    std::vector<std::int64_t> ones(gg.graph.num_nodes(), 1);
    const auto pa = engine.aggregate(part, ones, shortcuts::AggOp::kSum);

    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              engine.diameter_bound(), engine.setup_cost().measured,
              forest.cost.measured, forest.cost.charged, orders.measured,
              orders.charged, pa.cost.measured, pa.cost.charged);
    json.row()
        .set("kind", "subroutines")
        .set("family", planar::family_name(pt.family))
        .set("n", gg.graph.num_nodes())
        .set("diameter_bound", engine.diameter_bound())
        .set("bfs_rounds", engine.setup_cost().measured)
        .set("boruvka_measured", forest.cost.measured)
        .set("boruvka_charged", forest.cost.charged)
        .set("orders_measured", orders.measured)
        .set("orders_charged", orders.charged)
        .set("pa_measured", pa.cost.measured)
        .set("pa_charged", pa.cost.charged);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "subroutines"));
  std::printf(
      "\nPaper expectation: every column = Otilde(D): bfs ~= D exactly;\n"
      "boruvka and orders pay O(log n) aggregation phases each.\n");
  return 0;
}
