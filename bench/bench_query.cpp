// E16 (serving) — the query engine: answer distance queries from the
// persisted separator-hierarchy index and compare against the only
// alternative the pipeline offers, re-running the hierarchy build per
// query. Reports the cold job cost (generate + build + index + answer),
// the warm batch wall (min-of-reps), qps, per-query latency percentiles,
// and the warm-vs-pipeline speedup. Flags beyond bench_util's:
//   --cache-dir=PATH  disk tier for the artifact cache (cold runs in a
//                     fresh process then warm-load from disk)
//   --queries=Q       schedule length per sweep point
// The final `answers_crc=...` line digests every distance returned across
// the sweep; CI runs the bench twice and cmp's the two lines (answers
// must be byte-identical across cache temperature).

#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/fingerprint.hpp"
#include "io/artifact.hpp"
#include "io/binary.hpp"
#include "query/service.hpp"
#include "serve/cache.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  const int threads = bench::threads_arg(argc, argv, 1);
  const int reps = bench::reps_arg(argc, argv, 3);
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::string cache_dir;
  if (const char* v = bench::flag_value(argc, argv, "cache-dir")) {
    cache_dir = v;
  }

  struct Point {
    planar::Family family;
    int n;
    int leaf;
  };
  // The 100k triangulation point is the acceptance anchor: warm indexed
  // queries must beat per-query pipeline runs by >= 100x there. Grids are
  // capped at 20k — their near-square pieces make the distance blocks
  // quadratic-ish in the leaf count and the index balloons past 100k.
  const std::vector<Point> sweep =
      quick ? std::vector<Point>{{planar::Family::kGrid, 900, 32},
                                 {planar::Family::kTriangulation, 2000, 32}}
            : std::vector<Point>{
                  {planar::Family::kGrid, 10000, 64},
                  {planar::Family::kGrid, 20000, 64},
                  {planar::Family::kTriangulation, 20000, 64},
                  {planar::Family::kTriangulation, 100000, 128},
                  {planar::Family::kRandomPlanar, 50000, 128},
              };
  const int queries = [&] {
    if (const char* v = bench::flag_value(argc, argv, "queries")) {
      return std::max(1, std::atoi(v));
    }
    return quick ? 2000 : 50000;
  }();

  std::printf("E16: query engine over the hierarchy index (threads=%d%s)\n\n",
              threads, quick ? ", quick" : "");
  Table table({"family", "n", "leaf", "cold ms", "warm ms", "qps", "p50 us",
               "p99 us", "speedup"});
  bench::BenchJson json("query");

  serve::ResultCache cache({256u << 20, cache_dir});
  query::EngineCache engines(4);
  serve::BatchOptions bopts;
  bopts.threads = threads;  // index-build fan-out (byte-identical result)
  std::uint32_t answers_crc = 0;

  for (const Point& pt : sweep) {
    const std::uint64_t seed = 1;
    query::QueryJob job;
    job.instance.family = planar::family_name(pt.family);
    job.instance.n = pt.n;
    job.instance.seed = seed;
    job.leaf_size = pt.leaf;

    // Seed-pure query schedule: the pair stream is a function of
    // (family, n, seed) only, so reruns and CI smoke answer the exact
    // same questions.
    const auto gg = planar::make_instance(pt.family, pt.n, seed);
    const planar::NodeId n = gg.graph.num_nodes();
    Rng rng(core::mix_seed(0x71756572790000ULL /* "query" */,
                           static_cast<std::uint64_t>(pt.n), seed));
    job.pairs.reserve(static_cast<std::size_t>(queries));
    for (int i = 0; i < queries; ++i) {
      job.pairs.emplace_back(
          static_cast<planar::NodeId>(rng.next_below(
              static_cast<std::uint64_t>(n))),
          static_cast<planar::NodeId>(rng.next_below(
              static_cast<std::uint64_t>(n))));
    }

    // Cold: one job paying the whole pipeline (generate, hierarchy,
    // index, persist, answer). With --cache-dir and a prior run's
    // artifacts on disk this becomes a disk-tier warm load instead —
    // the cold/warm smoke relies on exactly that.
    bench::WallTimer cold_timer;
    const query::QueryOutcome cold =
        query::run_query_job(job, bopts, cache, &engines);
    const double cold_ms = cold_timer.ms();
    if (cold.status != "ok") {
      std::fprintf(stderr, "bench_query: cold job failed: %s\n",
                   cold.error.c_str());
      return 2;
    }

    // Warm: the artifact and the prepared engine are hot.
    const double warm_ms = bench::min_wall_ms(reps, [&] {
      const query::QueryOutcome warm =
          query::run_query_job(job, bopts, cache, &engines);
      if (warm.status != "ok" || !warm.engine_cache_hit) {
        std::fprintf(stderr, "bench_query: warm run missed the engine\n");
        std::exit(2);
      }
    });

    // Fold the cold answers into the sweep digest (cold == warm is
    // asserted by the engine-cache path sharing one decode).
    for (const std::int64_t d : cold.distances) {
      std::uint8_t b[8];
      for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<std::uint8_t>(
            (static_cast<std::uint64_t>(d) >> (8 * i)) & 0xff);
      }
      answers_crc ^= io::crc32(b, sizeof b);
      answers_crc = (answers_crc << 1) | (answers_crc >> 31);
    }

    // Per-query latency percentiles over the prepared engine, and the
    // index footprint from the persisted artifact.
    const serve::CacheKey key = query::index_cache_key(
        core::topology_fingerprint(gg.graph), gg.root_hint, pt.leaf);
    const auto bytes = cache.get_or_compute(
        key, [&]() -> std::vector<std::uint8_t> {
          std::fprintf(stderr,
                       "bench_query: artifact fell out of the cache\n");
          std::exit(2);
          return {};
        });
    auto engine = query::engine_from_artifact_bytes(gg.graph, *bytes);
    const std::size_t index_bytes = engine->index().byte_size();
    std::vector<double> lat_us;
    lat_us.reserve(job.pairs.size());
    bench::WallTimer lat_timer;
    for (const auto& [u, v] : job.pairs) {
      lat_timer.reset();
      (void)engine->distance(u, v);
      lat_us.push_back(lat_timer.ms() * 1000.0);
    }
    std::sort(lat_us.begin(), lat_us.end());
    const double p50_us = lat_us[lat_us.size() / 2];
    const double p99_us = lat_us[lat_us.size() * 99 / 100];

    const double warm_per_query_ms =
        warm_ms / static_cast<double>(queries);
    const double qps = 1000.0 / warm_per_query_ms;
    // The un-indexed alternative answers every query with its own
    // pipeline run; the cold job above is one such run.
    const double speedup = cold_ms / warm_per_query_ms;

    table.add(planar::family_name(pt.family), n, pt.leaf, cold_ms, warm_ms,
              qps, p50_us, p99_us, speedup);
    json.row()
        .set("kind", "query")
        .set("workload", "leaf" + std::to_string(pt.leaf))
        .set("family", planar::family_name(pt.family))
        .set("n", n)
        .set("threads", threads)
        .set("par_threshold", 0)
        .set("host_cores", host_cores)
        .set("seed", static_cast<long long>(seed))
        .set("queries", queries)
        .set("leaf_size", pt.leaf)
        .set("index_bytes", static_cast<long long>(index_bytes))
        .set("cold_job_ms", cold_ms)
        .set("warm_wall_ms", warm_ms)
        .set("qps", qps)
        .set("p50_us", p50_us)
        .set("p99_us", p99_us)
        .set("speedup_vs_pipeline", speedup);
  }

  table.print();
  json.write(bench::json_path_arg(argc, argv, "query"));
  const auto ec = engines.counters();
  std::printf(
      "\nengine cache: %lld hits, %lld misses; answers_crc=%08x\n"
      "Expectation: the cold job pays the full pipeline once; warm batches\n"
      "answer from the persisted index at >= 100x per-query speedup on the\n"
      "large points (the serve-answers-not-runs contract).\n",
      ec.hits, ec.misses, answers_crc);
  return 0;
}
