// E8 — ablation of the deterministic weight formula (Definition 2): the
// closed form is endpoint-local (O(deg) work after the orders exist),
// versus the brute-force region count (the oracle: full face tracing +
// dual BFS per edge, as a centralized algorithm would do). Wall-clock per
// 1000 fundamental edges.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  using Clock = std::chrono::steady_clock;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("weights");

  std::printf("E8: Definition 2 closed form vs brute-force region count\n\n");
  Table table({"family", "n", "edges", "formula.us/edge", "oracle.us/edge",
               "speedup", "agree"});
  std::vector<bench::SweepPoint> sweep = {
      {planar::Family::kTriangulation, quick ? 100 : 400},
      {planar::Family::kGrid, quick ? 100 : 400},
      {planar::Family::kRandomPlanar, quick ? 100 : 400},
  };
  for (const auto& pt : sweep) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    const auto t = tree::RootedSpanningTree::bfs(gg.graph, gg.root_hint);
    const faces::FaceOracle oracle(t);
    const auto fund = faces::real_fundamental_edges(t);
    std::vector<faces::FundamentalEdge> fes;
    for (auto e : fund) fes.push_back(faces::analyze_fundamental_edge(t, e));

    auto t0 = Clock::now();
    long long sum_formula = 0;
    for (const auto& fe : fes) sum_formula += faces::face_weight(t, fe);
    const double us_formula =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
        std::max<std::size_t>(1, fes.size());

    t0 = Clock::now();
    long long sum_oracle = 0;
    bool agree = true;
    for (const auto& fe : fes) {
      const auto region = oracle.real_face(fe);
      const long long w = oracle.lemma_weight(fe.u, fe.v, region);
      sum_oracle += w;
      agree = agree && (w == faces::face_weight(t, fe));
    }
    const double us_oracle =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
        std::max<std::size_t>(1, fes.size());

    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              static_cast<int>(fes.size()), us_formula, us_oracle,
              us_oracle / std::max(1e-9, us_formula),
              agree && sum_formula == sum_oracle);
    json.row()
        .set("kind", "weight_formula")
        .set("family", planar::family_name(pt.family))
        .set("n", gg.graph.num_nodes())
        .set("edges", static_cast<int>(fes.size()))
        .set("formula_us_per_edge", us_formula)
        .set("oracle_us_per_edge", us_oracle)
        .set("speedup", us_oracle / std::max(1e-9, us_formula))
        .set("agree", agree && sum_formula == sum_oracle);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "weights"));
  std::printf(
      "\nExpectation: agreement everywhere (Lemmas 3/4); the closed form is\n"
      "orders of magnitude cheaper — distributively it is the difference\n"
      "between O(1) local work and re-simulating the whole face.\n");
  return 0;
}
