// Micro-benchmarks (google-benchmark) of the hot primitives: rotation
// system construction, face tracing, tree representation, Definition 2
// weights, Remark 1 membership, part-wise aggregation, BFS waves.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "core/plansep.hpp"

namespace {

using namespace plansep;

planar::GeneratedGraph make_tri(int n) {
  Rng rng(7);
  return planar::stacked_triangulation(n, rng);
}

void BM_EmbeddingFromCoordinates(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto gg = planar::grid(side, side);
  std::vector<std::pair<planar::NodeId, planar::NodeId>> edges;
  for (planar::EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
    edges.emplace_back(gg.graph.edge_u(e), gg.graph.edge_v(e));
  }
  for (auto _ : state) {
    auto g = planar::EmbeddedGraph::from_coordinates(gg.graph.coordinates(),
                                                     edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_EmbeddingFromCoordinates)->Arg(16)->Arg(48);

void BM_FaceTracing(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    planar::FaceStructure fs(gg.graph);
    benchmark::DoNotOptimize(fs.num_faces());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_darts());
}
BENCHMARK(BM_FaceTracing)->Arg(1000)->Arg(8000);

void BM_RootedTreeBuild(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto t = tree::RootedSpanningTree::bfs(gg.graph, gg.root_hint);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_nodes());
}
BENCHMARK(BM_RootedTreeBuild)->Arg(1000)->Arg(8000);

void BM_FaceWeights(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  const auto t = tree::RootedSpanningTree::bfs(gg.graph, gg.root_hint);
  std::vector<faces::FundamentalEdge> fes;
  for (auto e : faces::real_fundamental_edges(t)) {
    fes.push_back(faces::analyze_fundamental_edge(t, e));
  }
  for (auto _ : state) {
    long long acc = 0;
    for (const auto& fe : fes) acc += faces::face_weight(t, fe);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * fes.size());
}
BENCHMARK(BM_FaceWeights)->Arg(1000)->Arg(8000);

void BM_MembershipClassify(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  const auto t = tree::RootedSpanningTree::bfs(gg.graph, gg.root_hint);
  const auto fund = faces::real_fundamental_edges(t);
  const auto fe = faces::analyze_fundamental_edge(t, fund.front());
  const auto fd = faces::face_data(t, fe);
  for (auto _ : state) {
    int inside = 0;
    for (planar::NodeId v : t.nodes()) {
      inside += faces::classify_node(fd, faces::node_data(t, v)) ==
                faces::FaceSide::kInside;
    }
    benchmark::DoNotOptimize(inside);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_nodes());
}
BENCHMARK(BM_MembershipClassify)->Arg(1000)->Arg(8000);

void BM_PartwiseAggregate(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
  std::vector<int> part(gg.graph.num_nodes(), 0);
  std::vector<std::int64_t> ones(gg.graph.num_nodes(), 1);
  for (auto _ : state) {
    auto res = engine.aggregate(part, ones, shortcuts::AggOp::kSum);
    benchmark::DoNotOptimize(res.value[0]);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_nodes());
}
BENCHMARK(BM_PartwiseAggregate)->Arg(1000)->Arg(8000);

void BM_DistributedBfsWave(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto res = congest::distributed_bfs(gg.graph, gg.root_hint);
    benchmark::DoNotOptimize(res.height);
  }
  state.SetItemsProcessed(state.iterations() * gg.graph.num_edges());
}
BENCHMARK(BM_DistributedBfsWave)->Arg(1000)->Arg(8000);

void BM_WholeSeparator(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto run = compute_cycle_separator(gg.graph, gg.root_hint);
    benchmark::DoNotOptimize(run.separator.path.size());
  }
}
BENCHMARK(BM_WholeSeparator)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_WholeDfs(benchmark::State& state) {
  const auto gg = make_tri(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto run = compute_dfs_tree(gg.graph, gg.root_hint);
    benchmark::DoNotOptimize(run.build.phases);
  }
}
BENCHMARK(BM_WholeDfs)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every run mirrored into the shared
/// *.bench.json row schema (bench_util.hpp) like the table benches.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  TeeReporter() : json("micro") {}
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      json.row()
          .set("kind", "micro")
          .set("name", run.benchmark_name())
          .set("iterations", static_cast<long long>(run.iterations))
          .set("real_time", run.GetAdjustedRealTime())
          .set("cpu_time", run.GetAdjustedCPUTime())
          .set("time_unit", benchmark::GetTimeUnitString(run.time_unit))
          .set("items_per_second",
               run.counters.find("items_per_second") != run.counters.end()
                   ? static_cast<double>(
                         run.counters.at("items_per_second"))
                   : 0.0);
    }
  }
  plansep::bench::BenchJson json;
};

}  // namespace

int main(int argc, char** argv) {
  plansep::bench::ObsSession obs(argc, argv);
  const std::string json_path =
      plansep::bench::json_path_arg(argc, argv, "micro");
  // Strip the repo-wide flags before handing argv to google-benchmark
  // (its Initialize rejects flags it does not know).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0 ||
        std::strncmp(argv[i], "--metrics-out=", 14) == 0 ||
        std::strncmp(argv[i], "--trace-out=", 12) == 0 ||
        std::strncmp(argv[i], "--threads=", 10) == 0 ||
        std::strcmp(argv[i], "--quick") == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.json.write(json_path);
  benchmark::Shutdown();
  return 0;
}
