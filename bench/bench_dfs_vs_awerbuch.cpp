// E4 — ours vs Awerbuch (§1.1): the deterministic Õ(D) algorithm against
// the classic O(n)-round DFS. On low-diameter families (triangulations)
// ours wins by a factor that grows with n; on high-diameter families
// (cycles, outerplanar) D ≈ n and Awerbuch's simplicity wins the
// constants — exactly the regime split the paper describes.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("dfs_vs_awerbuch");

  std::printf("E4: deterministic Otilde(D) DFS vs Awerbuch O(n) DFS\n\n");
  Table table({"family", "n", "D<=", "ours.charged", "ours.measured",
               "awerbuch", "awb/chg", "winner(charged)"});

  std::vector<bench::SweepPoint> sweep = bench::standard_sweep(quick);
  for (const auto& pt : sweep) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    bench::WallTimer ours_timer;
    const auto ours = compute_dfs_tree(gg.graph, gg.root_hint);
    const double ours_ms = ours_timer.ms();
    bench::WallTimer awb_timer;
    const auto awb = baselines::awerbuch_dfs(gg.graph, gg.root_hint);
    const double awb_ms = awb_timer.ms();
    const double ratio = static_cast<double>(awb.rounds) /
                         static_cast<double>(ours.build.cost.charged);
    table.add(planar::family_name(pt.family), gg.graph.num_nodes(),
              ours.diameter_bound, ours.build.cost.charged,
              ours.build.cost.measured, awb.rounds, ratio,
              ratio > 1.0 ? "ours" : "awerbuch");
    json.row()
        .set("kind", "dfs_vs_awerbuch")
        .set("family", planar::family_name(pt.family))
        .set("n", gg.graph.num_nodes())
        .set("diameter_bound", ours.diameter_bound)
        .set("ours_rounds_charged", ours.build.cost.charged)
        .set("ours_rounds_measured", ours.build.cost.measured)
        .set("ours_wall_ms", ours_ms)
        .set("awerbuch_rounds", awb.rounds)
        .set("awerbuch_messages", awb.messages)
        .set("awerbuch_wall_ms", awb_ms)
        .set("rounds_ratio", ratio);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "dfs_vs_awerbuch"));
  std::printf(
      "\nPaper expectation: ours wins whenever D << n/polylog (e.g.\n"
      "triangulations, D = O(log n)); Awerbuch wins when D = Theta(n).\n");
  return 0;
}
