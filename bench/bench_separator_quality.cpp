// E2 — separator quality: the marked set must be a tree path whose removal
// leaves components of at most 2n/3 (Definition of a cycle separator +
// Lemma 5). Reports the balance distribution over many seeds per family.

#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("separator_quality");
  const int seeds = quick ? 3 : 12;
  const int n = quick ? 150 : 600;

  std::printf("E2: separator balance across %d seeds per family\n\n", seeds);
  Table table({"family", "n", "ok", "bal.mean", "bal.max", "sep.mean",
               "sep/sqrt(n)"});
  for (planar::Family f : planar::all_families()) {
    std::vector<double> balances;
    std::vector<double> sizes;
    bool all_ok = true;
    int real_n = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto gg = planar::make_instance(f, n, seed);
      real_n = gg.graph.num_nodes();
      shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
      std::vector<int> part(gg.graph.num_nodes(), 0);
      sub::PartSet ps = sub::build_part_set(gg.graph, part, 1, engine);
      separator::SeparatorEngine se(engine);
      const auto res = se.compute(ps);
      const auto chk = separator::check_separator(ps, 0, res.parts[0]);
      all_ok = all_ok && chk.ok();
      balances.push_back(chk.balance);
      sizes.push_back(static_cast<double>(res.parts[0].path.size()));
    }
    const Summary bal = summarize(balances);
    const Summary sz = summarize(sizes);
    table.add(planar::family_name(f), real_n, all_ok, bal.mean, bal.max,
              sz.mean, sz.mean / std::sqrt(static_cast<double>(real_n)));
    json.row()
        .set("kind", "separator_quality")
        .set("family", planar::family_name(f))
        .set("n", real_n)
        .set("seeds", seeds)
        .set("all_ok", all_ok)
        .set("balance_mean", bal.mean)
        .set("balance_max", bal.max)
        .set("separator_mean", sz.mean);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "separator_quality"));
  std::printf(
      "\nPaper expectation: bal.max <= 0.667 everywhere (Lemma 5); separator\n"
      "sizes are tree paths — unlike Lipton–Tarjan they need not be\n"
      "O(sqrt(n)) (cycle separators trade size for distributed simplicity).\n");
  return 0;
}
