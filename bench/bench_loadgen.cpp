// bench_loadgen — E15: deterministic load generator for plansepd.
//
//   bench_loadgen [--socket=PATH] [--seed=N] [--jobs=N] [--threads=K]
//                 [--window=W] [--burst=B] [--queue=Q] [--quick]
//                 [--json=PATH] [--metrics-out=PATH] [--trace-out=PATH]
//                 [--drain]
//
// Doubles as the serving tier's integration test: the schedule is a pure
// function of --seed (mixed cold/warm/duplicate/malformed submissions),
// so two runs with the same seed — at any --threads — must produce the
// same admission decisions, the same per-job responses, and therefore
// the same payload_crc fingerprint (CRC-32 over every outcome frame's
// payload bytes, folded in job-id order). CI runs it twice and diffs the
// fingerprint line.
//
// Two phases, each one JSON row (kind="loadgen"):
//   probe — pause dispatch, burst B submissions at a queue of depth Q,
//           resume. With dispatch frozen, admission is sequential and
//           exactly max(0, B - Q) submissions bounce with kQueueFull:
//           deterministic backpressure, counted and gated.
//   mixed — the seeded schedule, submitted stop-and-wait with a window
//           of W outstanding jobs. Wall-clock latencies give the
//           jobs/sec, p50 and p99 cells the perf gate tracks.
//
// Without --socket an in-process Server is started (dispatcher workers =
// --threads); with --socket the generator drives an external plansepd
// and --threads is informational only. Self-checks (exit 1 on failure):
// at least one backpressure reject, at least one warm cache serve, every
// submission gets exactly one outcome, and — when draining — a clean
// kDrained summary.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/fingerprint.hpp"
#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "io/binary.hpp"

namespace {

using namespace plansep;

// One planned submission: the job line and the planner's intent (the
// intent is informational — the daemon sees only the line).
struct PlannedJob {
  std::string spec;
  enum Kind { kCold, kWarm, kDup, kMalformed } kind = kCold;
};

// The seeded schedule: ~35% cold (fresh spec), ~45% warm (re-issue of an
// earlier cold spec), ~10% duplicate of the most recent well-formed job
// (exercises single-flight under concurrency), ~10% malformed (unknown
// flag → kBadJobSpec). Job 0 is always cold. Pure function of (seed,
// jobs): no RNG state threads through, every decision re-derives from
// core::mix_seed, so the schedule is stable across platforms and runs.
std::vector<PlannedJob> plan_schedule(std::uint64_t seed, int jobs) {
  static const char* kFamilies[] = {"grid", "cycle", "outerplanar",
                                    "triangulation", "wheel"};
  static const char* kAlgos[] = {"separator", "dfs", "pipeline"};
  std::vector<PlannedJob> out;
  std::vector<std::string> cold_specs;
  out.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    const std::uint64_t u =
        core::mix_seed(seed, static_cast<std::uint64_t>(i),
                       0x6c6f616467656eULL /* "loadgen" */);
    const double r = static_cast<double>(u >> 11) * 0x1.0p-53;
    PlannedJob job;
    if (i == 0 || cold_specs.empty() || r < 0.35) {
      const std::uint64_t h =
          core::mix_seed(seed, static_cast<std::uint64_t>(i), 2);
      char buf[128];
      std::snprintf(buf, sizeof buf, "--family=%s --n=%d --seed=%llu --algo=%s",
                    kFamilies[h % 5], 24 + static_cast<int>((h >> 8) % 41),
                    static_cast<unsigned long long>(1 + ((h >> 16) % 1000)),
                    kAlgos[(h >> 24) % 3]);
      job.spec = buf;
      job.kind = PlannedJob::kCold;
      cold_specs.push_back(job.spec);
    } else if (r < 0.80) {
      const std::uint64_t h =
          core::mix_seed(seed, static_cast<std::uint64_t>(i), 3);
      job.spec = cold_specs[h % cold_specs.size()];
      job.kind = PlannedJob::kWarm;
    } else if (r < 0.90) {
      // Duplicate the nearest preceding well-formed job (job 0 is always
      // cold, so one exists) — duplicating a malformed line would just be
      // another parse error, not a single-flight probe.
      std::size_t j = out.size();
      while (out[j - 1].kind == PlannedJob::kMalformed) --j;
      job.spec = out[j - 1].spec;
      job.kind = PlannedJob::kDup;
    } else {
      job.spec = "--family=grid --loadgen-bogus=" + std::to_string(i);
      job.kind = PlannedJob::kMalformed;
    }
    out.push_back(std::move(job));
  }
  return out;
}

// One outcome frame, keyed by job id for order-independent CRC folding.
struct Outcome {
  daemon::FrameType type;
  std::vector<std::uint8_t> payload;
  double latency_ms = 0.0;
};

// Folds outcomes into the CRC buffer in ascending id order (arrival
// order of immediate rejects vs. queued responses is timing-dependent;
// id order is not).
void fold_outcomes(const std::map<std::uint64_t, Outcome>& outcomes,
                   std::vector<std::uint8_t>* buf) {
  for (const auto& [id, oc] : outcomes) {
    for (int s = 0; s < 64; s += 8) {
      buf->push_back(static_cast<std::uint8_t>(id >> s));
    }
    buf->push_back(static_cast<std::uint8_t>(oc.type));
    buf->insert(buf->end(), oc.payload.begin(), oc.payload.end());
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// Reads a counter out of a DaemonMetrics snapshot JSON without a JSON
// parser: the obs JsonWriter emits "name":value with no padding.
long long counter_in_json(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
}

bool is_outcome(daemon::FrameType t) {
  return t == daemon::FrameType::kResponse || t == daemon::FrameType::kReject ||
         t == daemon::FrameType::kError;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int threads = bench::threads_arg(argc, argv, 4);
  const std::uint64_t seed =
      bench::flag_value(argc, argv, "seed")
          ? std::strtoull(bench::flag_value(argc, argv, "seed"), nullptr, 10)
          : 42;
  const int jobs = bench::flag_value(argc, argv, "jobs")
                       ? std::atoi(bench::flag_value(argc, argv, "jobs"))
                       : (quick ? 120 : 400);
  const int window = bench::flag_value(argc, argv, "window")
                         ? std::atoi(bench::flag_value(argc, argv, "window"))
                         : 16;
  const int burst = bench::flag_value(argc, argv, "burst")
                        ? std::atoi(bench::flag_value(argc, argv, "burst"))
                        : 48;
  const int queue = bench::flag_value(argc, argv, "queue")
                        ? std::atoi(bench::flag_value(argc, argv, "queue"))
                        : 32;
  const bool drain_at_end = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--drain") return true;
    }
    return false;
  }();
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  // --socket: drive an external daemon. Otherwise run an in-process
  // Server so the binary is self-contained for CI smoke and local runs.
  std::string socket_path;
  if (const char* v = bench::flag_value(argc, argv, "socket")) socket_path = v;
  std::unique_ptr<daemon::Server> server;
  if (socket_path.empty()) {
    socket_path = "/tmp/plansep_loadgen_" + std::to_string(getpid()) + ".sock";
    daemon::ServerOptions sopts;
    sopts.socket_path = socket_path;
    sopts.dispatcher.workers = threads;
    sopts.dispatcher.max_queue = static_cast<std::size_t>(queue);
    sopts.dispatcher.per_client_quota = 4096;  // probe rejects must be
                                               // queue-full, not quota
    sopts.cache_bytes = 32u << 20;
    sopts.cache_shards = 4;
    if (const char* v = bench::flag_value(argc, argv, "metrics-out")) {
      sopts.metrics_out = v;
    }
    if (const char* v = bench::flag_value(argc, argv, "trace-out")) {
      sopts.trace_out = v;
    }
    server = std::make_unique<daemon::Server>(sopts);
    try {
      server->start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_loadgen: cannot start server: %s\n",
                   e.what());
      return 2;
    }
  }

  daemon::Client client;
  if (!client.connect(socket_path, 5000)) {
    std::fprintf(stderr, "bench_loadgen: cannot connect to %s\n",
                 socket_path.c_str());
    return 2;
  }

  bench::BenchJson json("loadgen");
  const auto stamp = [&](obs::RowsJson::Row& row) -> obs::RowsJson::Row& {
    return row.set("family", "serving")
        .set("threads", threads)
        .set("par_threshold", 0)
        .set("host_cores", host_cores)
        .set("seed", static_cast<long long>(seed))
        .set("window", window);
  };
  std::vector<std::string> failures;

  // ------------------------------------------------------------ probe --
  // Dispatch frozen → the burst is admitted strictly in submission
  // order and overflow rejects deterministically with kQueueFull.
  std::printf("E15: plansepd load generator (seed=%llu, threads=%d)\n\n",
              static_cast<unsigned long long>(seed), threads);
  constexpr const char* kProbeSpec = "--family=grid --n=25 --seed=1";
  constexpr std::uint64_t kCtrlBase = 900000;
  std::map<std::uint64_t, Outcome> probe_outcomes;
  long long probe_rejects = 0;
  double probe_wall_ms = 0;
  {
    if (!client.pause(kCtrlBase + 1)) {
      std::fprintf(stderr, "bench_loadgen: pause timed out\n");
      return 2;
    }
    for (int i = 0; i < burst; ++i) {
      client.submit(static_cast<std::uint64_t>(i), daemon::Priority::kNormal,
                    kProbeSpec);
    }
    if (!client.resume(kCtrlBase + 2)) {
      std::fprintf(stderr, "bench_loadgen: resume timed out\n");
      return 2;
    }
    bench::WallTimer timer;
    std::vector<double> latencies;
    while (probe_outcomes.size() < static_cast<std::size_t>(burst)) {
      auto f = client.next_frame(30000);
      if (!f.has_value()) {
        failures.push_back("probe: timed out waiting for outcomes");
        break;
      }
      if (!is_outcome(static_cast<daemon::FrameType>(f->type))) continue;
      Outcome oc;
      oc.type = static_cast<daemon::FrameType>(f->type);
      oc.payload = f->payload;
      oc.latency_ms = timer.ms();
      if (oc.type == daemon::FrameType::kReject) {
        ++probe_rejects;
      } else if (oc.type == daemon::FrameType::kResponse) {
        latencies.push_back(oc.latency_ms);
      }
      probe_outcomes.emplace(f->id, std::move(oc));
    }
    probe_wall_ms = timer.ms();
    const long long admitted =
        static_cast<long long>(probe_outcomes.size()) - probe_rejects;
    std::printf(
        "probe: burst=%d queue=%d -> admitted=%lld rejected=%lld "
        "(%.1f ms after resume)\n",
        burst, queue, admitted, probe_rejects, probe_wall_ms);
    auto& row = json.row()
                    .set("kind", "loadgen")
                    .set("workload", "probe")
                    .set("n", burst)
                    .set("jobs", burst)
                    .set("rejects", probe_rejects)
                    .set("wall_ms", probe_wall_ms)
                    .set("jobs_per_sec",
                         probe_wall_ms > 0
                             ? 1000.0 * static_cast<double>(admitted) /
                                   probe_wall_ms
                             : 0.0)
                    .set("p50_ms", percentile(latencies, 0.50))
                    .set("p99_ms", percentile(latencies, 0.99));
    stamp(row);
    if (probe_rejects < 1) {
      failures.push_back("probe: expected at least one backpressure reject");
    }
  }

  // ------------------------------------------------------------ mixed --
  // The seeded schedule, stop-and-wait with `window` outstanding jobs.
  const auto schedule = plan_schedule(seed, jobs);
  int planned[4] = {0, 0, 0, 0};
  for (const auto& j : schedule) ++planned[j.kind];
  std::map<std::uint64_t, Outcome> mixed_outcomes;
  using Clock = std::chrono::steady_clock;
  std::map<std::uint64_t, Clock::time_point> submit_at;
  constexpr std::uint64_t kMixedBase = 1000;
  double mixed_wall_ms = 0;
  std::vector<double> latencies;
  {
    bench::WallTimer timer;
    std::size_t next = 0;
    int outstanding = 0;
    while (mixed_outcomes.size() < schedule.size()) {
      while (outstanding < window && next < schedule.size()) {
        const std::uint64_t id = kMixedBase + next;
        submit_at[id] = Clock::now();
        client.submit(id, daemon::Priority::kNormal, schedule[next].spec);
        ++next;
        ++outstanding;
      }
      auto f = client.next_frame(30000);
      if (!f.has_value()) {
        failures.push_back("mixed: timed out waiting for outcomes");
        break;
      }
      if (!is_outcome(static_cast<daemon::FrameType>(f->type))) continue;
      if (f->id < kMixedBase) continue;  // probe straggler
      Outcome oc;
      oc.type = static_cast<daemon::FrameType>(f->type);
      oc.payload = f->payload;
      oc.latency_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - submit_at[f->id])
                          .count();
      latencies.push_back(oc.latency_ms);
      mixed_outcomes.emplace(f->id, std::move(oc));
      --outstanding;
    }
    mixed_wall_ms = timer.ms();
  }
  long long mixed_errors = 0;
  for (const auto& [id, oc] : mixed_outcomes) {
    if (oc.type != daemon::FrameType::kResponse) ++mixed_errors;
  }
  const double jobs_per_sec =
      mixed_wall_ms > 0
          ? 1000.0 * static_cast<double>(mixed_outcomes.size()) / mixed_wall_ms
          : 0.0;
  std::printf(
      "mixed: jobs=%d (cold=%d warm=%d dup=%d malformed=%d) window=%d\n"
      "       %.1f ms, %.1f jobs/s, p50=%.2f ms, p99=%.2f ms\n",
      jobs, planned[0], planned[1], planned[2], planned[3], window,
      mixed_wall_ms, jobs_per_sec, percentile(latencies, 0.50),
      percentile(latencies, 0.99));
  if (mixed_outcomes.size() != schedule.size()) {
    failures.push_back("mixed: " + std::to_string(mixed_outcomes.size()) +
                       " outcomes for " + std::to_string(schedule.size()) +
                       " submissions");
  }
  if (mixed_errors != planned[3]) {
    failures.push_back("mixed: " + std::to_string(mixed_errors) +
                       " non-response outcomes but " +
                       std::to_string(planned[3]) + " malformed jobs planned");
  }

  // ----------------------------------------- fingerprint + self-checks --
  std::vector<std::uint8_t> crc_buf;
  fold_outcomes(probe_outcomes, &crc_buf);
  fold_outcomes(mixed_outcomes, &crc_buf);
  const std::uint32_t payload_crc = io::crc32(crc_buf.data(), crc_buf.size());
  std::printf("payload_crc=%08x\n", payload_crc);

  long long served_warm = 0;
  long long rejected_backpressure = 0;
  if (const auto m = client.metrics(kCtrlBase + 3)) {
    served_warm = counter_in_json(*m, "daemon/cache_served_warm");
    rejected_backpressure =
        counter_in_json(*m, "daemon/rejected_backpressure");
    std::printf("metrics: cache_served_warm=%lld rejected_backpressure=%lld\n",
                served_warm, rejected_backpressure);
  } else {
    failures.push_back("metrics query timed out");
  }
  if (served_warm < 1) {
    failures.push_back("expected at least one warm cache serve");
  }
  if (rejected_backpressure < 1) {
    failures.push_back("expected rejected_backpressure >= 1 in metrics");
  }

  {
    auto& row = json.row()
                    .set("kind", "loadgen")
                    .set("workload", "mixed")
                    .set("n", jobs)
                    .set("jobs", jobs)
                    .set("cold", planned[0])
                    .set("warm", planned[1])
                    .set("dup", planned[2])
                    .set("malformed", planned[3])
                    .set("rejects", mixed_errors)
                    .set("wall_ms", mixed_wall_ms)
                    .set("jobs_per_sec", jobs_per_sec)
                    .set("p50_ms", percentile(latencies, 0.50))
                    .set("p99_ms", percentile(latencies, 0.99))
                    .set("payload_crc", static_cast<long long>(payload_crc))
                    .set("cache_served_warm", served_warm);
    stamp(row);
  }

  // --------------------------------------------------------- teardown --
  // In-process servers always drain (it exercises the graceful path and
  // writes --metrics-out/--trace-out); an external daemon is only
  // drained when asked, so CI can run the generator twice against one
  // daemon before shutting it down.
  if (server || drain_at_end) {
    const auto summary = client.drain(kCtrlBase + 4);
    if (!summary.has_value()) {
      failures.push_back("drain timed out");
    } else {
      std::printf("drain: %s\n", summary->c_str());
    }
  }
  client.close();
  if (server) {
    server->wait();
    server->stop();
  }

  json.write(bench::json_path_arg(argc, argv, "loadgen"));

  if (!failures.empty()) {
    for (const auto& f : failures) {
      std::fprintf(stderr, "[loadgen] SELF-CHECK FAILED: %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("\n[loadgen] all self-checks passed\n");
  return 0;
}
