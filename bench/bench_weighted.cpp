// E14 (extension) — weighted cycle separators (the paper's future-work
// direction; SSSP/diameter applications [13] need weighted balance):
// balance and separator sizes across weight schemes.

#include <cstdio>

#include "bench_util.hpp"
#include "subroutines/components.hpp"
#include "util/stats.hpp"

namespace {

using namespace plansep;

std::vector<long long> weights(const char* scheme, int n, Rng& rng) {
  std::vector<long long> w(n, 1);
  if (std::string(scheme) == "random") {
    for (auto& x : w) x = rng.next_in(0, 100);
  } else if (std::string(scheme) == "zipf") {
    for (int i = 0; i < n; ++i) {
      w[i] = static_cast<long long>(1000.0 / (1 + rng.next_below(n)));
    }
  } else if (std::string(scheme) == "one_heavy") {
    w[rng.next_below(n)] = 100LL * n;
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("weighted");
  const int seeds = quick ? 2 : 8;
  const int n = quick ? 150 : 1000;

  std::printf("E14: weighted cycle separators (n=%d, %d seeds)\n\n", n, seeds);
  Table table({"family", "scheme", "bal.mean", "bal.max", "sep.mean",
               "lastresort"});
  for (planar::Family f :
       {planar::Family::kGrid, planar::Family::kTriangulation,
        planar::Family::kRandomPlanar}) {
    for (const char* scheme : {"uniform", "random", "zipf", "one_heavy"}) {
      std::vector<double> balances, sizes;
      long long last_resorts = 0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto gg = planar::make_instance(f, n, seed);
        const auto& g = gg.graph;
        shortcuts::PartwiseEngine engine(g, gg.root_hint);
        std::vector<int> part(g.num_nodes(), 0);
        sub::PartSet ps = sub::build_part_set(g, part, 1, engine);
        Rng rng(seed * 17);
        const auto w = weights(scheme, g.num_nodes(), rng);
        long long total = 0;
        for (long long x : w) total += x;
        separator::SeparatorEngine se(engine);
        const auto res = se.compute_weighted(ps, w);
        last_resorts += res.stats.phase_counts[7];
        // Weighted balance of the result.
        std::vector<char> marked(g.num_nodes(), 0);
        for (planar::NodeId v : res.parts[0].path) marked[v] = 1;
        const sub::Components comps = sub::connected_components(
            g, [&](planar::NodeId v) { return !marked[v]; });
        std::vector<long long> sums(comps.count, 0);
        for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
          if (comps.label[v] >= 0) sums[comps.label[v]] += w[v];
        }
        long long mx = 0;
        for (long long s : sums) mx = std::max(mx, s);
        balances.push_back(total > 0 ? static_cast<double>(mx) / total : 0.0);
        sizes.push_back(static_cast<double>(res.parts[0].path.size()));
      }
      const Summary bal = summarize(balances);
      const Summary sz = summarize(sizes);
      table.add(planar::family_name(f), scheme, bal.mean, bal.max, sz.mean,
                last_resorts);
      json.row()
          .set("kind", "weighted_separator")
          .set("family", planar::family_name(f))
          .set("n", n)
          .set("scheme", scheme)
          .set("balance_mean", bal.mean)
          .set("balance_max", bal.max)
          .set("separator_mean", sz.mean)
          .set("last_resorts", last_resorts);
    }
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "weighted"));
  std::printf(
      "\nExpectation: weighted balance <= 0.667 everywhere, including the\n"
      "degenerate one-heavy-node scheme; the weighted sweeps settle without\n"
      "the last-resort scan.\n");
  return 0;
}
