// E7 — deterministic exact weights (Definition 2) vs randomized sampling
// estimates (the Ghaffari–Parter-style baseline): attempts, retry rate,
// fallback rate and achieved balance as a function of the sample rate.
// The deterministic engine needs exactly one pass by construction.

#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("det_vs_random");
  const int seeds = quick ? 3 : 10;
  const int n = quick ? 200 : 1500;

  std::printf(
      "E7: deterministic vs randomized-estimate separators (n=%d, %d seeds)\n\n",
      n, seeds);
  Table table({"family", "sample", "attempts.mean", "retry%", "fallback%",
               "bal.mean", "bal.max"});
  for (planar::Family f :
       {planar::Family::kTriangulation, planar::Family::kGrid,
        planar::Family::kRandomPlanar}) {
    for (double rate : {0.02, 0.1, 0.3, 1.0}) {
      std::vector<double> attempts, balances;
      int retries = 0, fallbacks = 0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto gg = planar::make_instance(f, n, seed);
        shortcuts::PartwiseEngine engine(gg.graph, gg.root_hint);
        std::vector<int> part(gg.graph.num_nodes(), 0);
        sub::PartSet ps = sub::build_part_set(gg.graph, part, 1, engine);
        baselines::RandomizedSeparatorEngine re(engine, rate);
        Rng rng(seed * 1000003ULL + 7);
        const auto res = re.compute(ps, rng);
        attempts.push_back(res.attempts);
        retries += res.parts_needing_retry > 0 ? 1 : 0;
        fallbacks += res.deterministic_fallbacks > 0 ? 1 : 0;
        balances.push_back(
            separator::check_separator(ps, 0, res.result.parts[0]).balance);
      }
      const Summary att = summarize(attempts);
      const Summary bal = summarize(balances);
      table.add(planar::family_name(f), rate, att.mean,
                100.0 * retries / seeds, 100.0 * fallbacks / seeds, bal.mean,
                bal.max);
      json.row()
          .set("kind", "det_vs_random")
          .set("family", planar::family_name(f))
          .set("n", n)
          .set("sample_rate", rate)
          .set("attempts_mean", att.mean)
          .set("retry_pct", 100.0 * retries / seeds)
          .set("fallback_pct", 100.0 * fallbacks / seeds)
          .set("balance_mean", bal.mean)
          .set("balance_max", bal.max);
    }
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "det_vs_random"));
  std::printf(
      "\nExpectation: with sample = 1.0 the estimate is exact (one attempt,\n"
      "no retries); small samples need retries or the deterministic\n"
      "fallback — the determinism-vs-randomness tradeoff the paper removes.\n");
  return 0;
}
