// E6 — JOIN-PROBLEM (Lemma 2): absorbing a cycle separator into the
// partial DFS tree takes O(log n) halving iterations, each Õ(D) rounds.
// We mark the separator of the component G − {root} and measure the join.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::BenchJson json("join");

  std::printf("E6: JOIN-PROBLEM iterations and rounds (Lemma 2)\n\n");
  Table table({"family", "n", "D<=", "sep.size", "iters", "lg n", "added",
               "join.measured", "join.charged"});
  for (const auto& pt : bench::standard_sweep(quick)) {
    const auto gg = planar::make_instance(pt.family, pt.n, 1);
    const auto& g = gg.graph;
    shortcuts::PartwiseEngine engine(g, gg.root_hint);

    // Separator of the single component G − {root}.
    dfs::PartialDfsTree tree(g, gg.root_hint);
    const sub::Components comps = sub::connected_components(
        g, [&](planar::NodeId v) { return !tree.contains(v); });
    std::vector<int> part(g.num_nodes(), -1);
    for (planar::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!tree.contains(v)) part[v] = comps.label[v];
    }
    sub::PartSet ps = sub::build_part_set(g, part, comps.count, engine);
    separator::SeparatorEngine se(engine);
    const auto sep = se.compute(ps);
    long long sep_size = 0;
    for (char m : sep.marked) sep_size += m;

    const dfs::JoinResult jr = dfs::join_separators(tree, sep.marked, engine);
    table.add(planar::family_name(pt.family), g.num_nodes(),
              engine.diameter_bound(), sep_size, jr.iterations,
              std::log2(std::max(2, g.num_nodes())), jr.nodes_added,
              jr.cost.measured, jr.cost.charged);
    json.row()
        .set("kind", "join")
        .set("family", planar::family_name(pt.family))
        .set("n", g.num_nodes())
        .set("diameter_bound", engine.diameter_bound())
        .set("separator_size", sep_size)
        .set("iterations", jr.iterations)
        .set("nodes_added", jr.nodes_added)
        .set("rounds_measured", jr.cost.measured)
        .set("rounds_charged", jr.cost.charged);
  }
  table.print();
  json.write(bench::json_path_arg(argc, argv, "join"));
  std::printf(
      "\nPaper expectation: iters = O(log n) (at least half of the\n"
      "remaining separator is absorbed per iteration).\n");
  return 0;
}
