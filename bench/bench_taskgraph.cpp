// E18 (taskgraph) — the phase-level task graph vs the monolithic call
// sequence on the serving pipeline. The workload is the sharing
// acceptance case: a two-algorithms-same-fingerprint batch (deterministic
// separator + BFS-level baseline on one instance), where the DAG builds
// the spanning tree once and both algorithms consume its bytes, while the
// monolithic path pays the BFS twice. Reports the cold batch wall for
// both execution modes (min-of-reps, fresh cache per rep), the warm DAG
// wall (everything cache-served), the sub-result sharing counters, and
// the corpus-store IO overlapped with compute. The bench hard-fails if
// the DAG and monolithic row streams differ (byte-identity contract) or
// if the cold DAG batch runs the spanning tree more than once per
// fingerprint. Flags beyond bench_util's:
//   --corpus-dir=PATH  scratch corpus root for the overlapped IO stage
//                      (default taskgraph.bench.corpus, wiped per rep)

#include <cstdio>
#include <filesystem>
#include <thread>

#include "bench_util.hpp"
#include "serve/batch.hpp"
#include "serve/cache.hpp"
#include "taskgraph/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace plansep;
  bench::ObsSession obs(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  // Two jobs per batch, so two worker shards is the natural default: the
  // second algorithm joins the first's spanning-tree flight instead of
  // finding it already cached.
  const int threads = bench::threads_arg(argc, argv, 2);
  const int reps = bench::reps_arg(argc, argv, 3);
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::string corpus_dir = "taskgraph.bench.corpus";
  if (const char* v = bench::flag_value(argc, argv, "corpus-dir")) {
    corpus_dir = v;
  }

  const std::vector<bench::SweepPoint> sweep =
      quick ? std::vector<bench::SweepPoint>{
                  {planar::Family::kGrid, 400},
                  {planar::Family::kTriangulation, 2000}}
            : std::vector<bench::SweepPoint>{
                  {planar::Family::kGrid, 6400},
                  {planar::Family::kTriangulation, 20000},
                  {planar::Family::kRandomPlanar, 20000},
                  {planar::Family::kTriangulation, 100000},
              };

  std::printf(
      "E18: task-graph DAG vs monolithic on two-algorithm batches "
      "(threads=%d%s)\n\n",
      threads, quick ? ", quick" : "");
  Table table({"family", "n", "mono ms", "dag ms", "warm ms", "speedup",
               "st runs", "shared", "io ms"});
  bench::BenchJson json("taskgraph");

  for (const bench::SweepPoint& pt : sweep) {
    const std::uint64_t seed = 1;
    std::vector<serve::JobSpec> jobs(2);
    jobs[0].family = planar::family_name(pt.family);
    jobs[0].n = pt.n;
    jobs[0].seed = seed;
    jobs[0].algo = serve::Algo::kSeparator;
    jobs[1] = jobs[0];
    jobs[1].algo = serve::Algo::kBaselineSeparator;

    // One cold batch in each execution mode: fresh in-memory cache, the
    // corpus scratch wiped so the IO task writes every time.
    const auto run_cold = [&](bool dag) {
      std::filesystem::remove_all(corpus_dir);
      std::filesystem::create_directories(corpus_dir);
      serve::ResultCache cache({256u << 20, ""});
      serve::BatchOptions opts;
      opts.threads = threads;
      opts.corpus_dir = corpus_dir;
      opts.taskgraph = dag;
      return serve::run_batch(jobs, opts, cache);
    };

    // Instrumented cold runs: counters and the byte-identity check.
    const serve::BatchReport mono = run_cold(false);
    const serve::BatchReport dag = run_cold(true);
    if (mono.ok != 2 || dag.ok != 2) {
      std::fprintf(stderr, "bench_taskgraph: batch failed (%lld/%lld ok)\n",
                   mono.ok, dag.ok);
      return 2;
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (mono.results[j].row != dag.results[j].row) {
        std::fprintf(stderr,
                     "bench_taskgraph: DAG row diverged from monolithic "
                     "(job %zu)\n  mono: %s\n  dag:  %s\n",
                     j, mono.results[j].row.c_str(),
                     dag.results[j].row.c_str());
        return 2;
      }
    }
    const long long st_runs =
        dag.taskgraph.runs.count(taskgraph::kSpanningTreeTask)
            ? dag.taskgraph.runs.at(taskgraph::kSpanningTreeTask)
            : 0;
    const long long shared =
        static_cast<long long>(jobs.size()) - st_runs;
    if (st_runs != 1 || dag.cache.served_without_compute() <= 0) {
      std::fprintf(stderr,
                   "bench_taskgraph: no sub-result sharing on the cold DAG "
                   "batch (spanning_tree runs=%lld, hits=%lld)\n",
                   st_runs, dag.cache.hits);
      return 2;
    }

    // Timed cold batches, then the warm DAG batch over one kept cache.
    const double mono_ms = bench::min_wall_ms(reps, [&] { run_cold(false); });
    const double dag_ms = bench::min_wall_ms(reps, [&] { run_cold(true); });

    serve::ResultCache warm_cache({256u << 20, ""});
    serve::BatchOptions warm_opts;
    warm_opts.threads = threads;
    warm_opts.taskgraph = true;
    (void)serve::run_batch(jobs, warm_opts, warm_cache);
    serve::BatchReport warm_report;
    const double warm_ms = bench::min_wall_ms(reps, [&] {
      warm_report = serve::run_batch(jobs, warm_opts, warm_cache);
    });
    if (warm_report.taskgraph.tasks_run != 0) {
      std::fprintf(stderr,
                   "bench_taskgraph: warm DAG batch ran %lld compute "
                   "bodies, expected 0\n",
                   warm_report.taskgraph.tasks_run);
      return 2;
    }

    const double speedup = mono_ms / dag_ms;
    table.add(planar::family_name(pt.family), pt.n, mono_ms, dag_ms, warm_ms,
              speedup, st_runs, shared,
              static_cast<double>(dag.taskgraph.overlapped_io_ms));
    json.row()
        .set("kind", "taskgraph")
        .set("workload", "two-algo-pair")
        .set("family", planar::family_name(pt.family))
        .set("n", pt.n)
        .set("threads", threads)
        .set("par_threshold", 0)
        .set("host_cores", host_cores)
        .set("seed", static_cast<long long>(seed))
        .set("jobs", static_cast<long long>(jobs.size()))
        .set("mono_wall_ms", mono_ms)
        .set("dag_wall_ms", dag_ms)
        .set("dag_warm_wall_ms", warm_ms)
        .set("speedup_dag_vs_mono", speedup)
        .set("tasks_run", dag.taskgraph.tasks_run)
        .set("cache_served", dag.taskgraph.cache_served)
        .set("spanning_tree_runs", st_runs)
        .set("shared_subresults", shared)
        .set("flight_joins", dag.cache.flight_joins)
        .set("cache_hits", dag.cache.hits)
        .set("io_tasks", dag.taskgraph.io_tasks)
        .set("overlapped_io_ms", dag.taskgraph.overlapped_io_ms)
        .set("warm_cache_served", warm_report.taskgraph.cache_served);
  }

  std::filesystem::remove_all(corpus_dir);
  table.print();
  json.write(bench::json_path_arg(argc, argv, "taskgraph"));
  std::printf(
      "\nExpectation: the cold DAG batch builds the spanning tree once and\n"
      "both algorithms consume its bytes (st runs=1, shared=1), beating the\n"
      "monolithic path that pays the BFS per job; corpus IO overlaps the\n"
      "compute stages; the warm batch is served entirely from cache. Rows\n"
      "are byte-identical across execution modes (checked above).\n");
  return 0;
}
