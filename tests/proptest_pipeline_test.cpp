// Property-based fuzzing of the full pipeline — embedding → triangulation
// → separator engine → hierarchy → DFS builder — with the centralized
// oracles of testing/oracles.hpp checked on every seeded case, round-count
// envelopes that fail on >2× regressions, CONGEST bandwidth accounting
// over captured message traces, and the seeded-replay workflow (an
// injected violation must shrink and print a reproducible one-line
// command).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "shortcuts/partwise.hpp"
#include "shortcuts/partwise_message.hpp"
#include "testing/proptest.hpp"
#include "testing/trace.hpp"
#include "util/check.hpp"

namespace plansep::testing {
namespace {

using planar::Family;
using planar::NodeId;

Property pipeline_property(PipelineOptions opt) {
  return [opt](const Instance& inst, InvariantReport& rep) {
    run_pipeline_checked(inst, opt, rep);
  };
}

TEST(ProptestPipeline, FullPipelineInvariantsHold) {
  PropConfig cfg;
  cfg.cases = 320;
  cfg.min_n = 12;
  cfg.max_n = 120;
  cfg.mutation_probability = 0.35;
  cfg.base_seed = 20260806;

  std::set<Family> families_seen;
  const PropResult res = run_property(
      "pipeline", cfg, [&](const Instance& inst, InvariantReport& rep) {
        families_seen.insert(inst.spec.family);
        run_pipeline_checked(inst, PipelineOptions{}, rep);
      });
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_GE(res.cases_run, 200);
  EXPECT_GE(families_seen.size(), 5u);
}

TEST(ProptestPipeline, TracedRunsRespectBandwidth) {
  // A smaller traced sweep: every captured message stream must satisfy the
  // one-message-per-edge-per-round CONGEST discipline, and the
  // message-level aggregation protocol must agree with the analytic
  // engine's values.
  PropConfig cfg;
  cfg.cases = 24;
  cfg.min_n = 12;
  cfg.max_n = 48;
  cfg.mutation_probability = 0.25;
  cfg.base_seed = 7;

  PipelineOptions opt;
  opt.capture_trace = true;
  opt.run_hierarchy = false;  // keep traced runs small
  const PropResult res = run_property("pipeline_traced", cfg,
                                      pipeline_property(opt));
  EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(ProptestPipeline, TraceCaptureIsDeterministicAndDiffable) {
  const CaseSpec spec{Family::kTriangulation, 48, 12345, Mutation::kNone};
  auto capture = [](const CaseSpec& s) {
    const Instance inst = build_instance(s);
    const auto& g = inst.gg.graph;
    TraceRecorder rec;
    {
      ScopedTraceCapture cap(rec);
      shortcuts::PartwiseEngine engine(g, inst.gg.root_hint);
      std::vector<int> part(static_cast<std::size_t>(g.num_nodes()), 0);
      std::vector<std::int64_t> value(static_cast<std::size_t>(g.num_nodes()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        value[static_cast<std::size_t>(v)] = v;
      }
      shortcuts::message_level_aggregate(g, engine.global_tree(), part, value,
                                         shortcuts::AggOp::kSum);
    }
    return rec.events();
  };

  const auto a = capture(spec);
  const auto b = capture(spec);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(first_divergence(a, b), -1) << diff_traces(a, b);
  EXPECT_EQ(diff_traces(a, b), "");

  CaseSpec other = spec;
  other.seed = 54321;
  const auto c = capture(other);
  EXPECT_NE(first_divergence(a, c), -1);
  EXPECT_FALSE(diff_traces(a, c).empty());
}

TEST(ProptestPipeline, ParallelPipelineTraceEquivalentToSerial) {
  // For every generator family: the full pipeline (engine setup BFS waves
  // plus the message-level aggregation protocol) run serially and with the
  // k-thread round executor, k in {2, 4, 8}, must produce byte-identical
  // CONGEST traces. first_divergence pinpoints the first mismatch if not.
  const Property par_equiv = [](const Instance& inst, InvariantReport& rep) {
    auto capture = [&](const congest::ThreadConfig& cfg) {
      congest::ScopedThreadConfig guard(cfg);
      TraceRecorder rec;
      ScopedTraceCapture cap(rec);
      InvariantReport inner;
      PipelineOptions opt;
      opt.run_hierarchy = false;  // keep each doubled run small
      run_pipeline_checked(inst, opt, inner);
      // Extra message-level traffic so the comparison covers the partwise
      // program's multi-part streaming, not just BFS waves.
      const auto& g = inst.gg.graph;
      shortcuts::PartwiseEngine engine(g, inst.gg.root_hint);
      std::vector<int> part(static_cast<std::size_t>(g.num_nodes()));
      std::vector<std::int64_t> value(static_cast<std::size_t>(g.num_nodes()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        part[static_cast<std::size_t>(v)] = v % 4;
        value[static_cast<std::size_t>(v)] = (5 * v) % 19;
      }
      shortcuts::message_level_aggregate(g, engine.global_tree(), part, value,
                                         shortcuts::AggOp::kMax);
      return std::make_pair(rec.events(), inner.to_string());
    };
    const auto [serial, serial_rep] = capture({1, 64});
    if (serial.empty()) rep.fail("serial run captured no trace");
    for (const int k : {2, 4, 8}) {
      const auto [par, par_rep] = capture({k, 0});
      const int at = first_divergence(serial, par);
      if (at != -1) {
        rep.fail("serial vs " + std::to_string(k) + "-thread divergence:\n" +
                 diff_traces(serial, par));
      }
      if (serial_rep != par_rep) {
        rep.fail("oracle reports differ between serial and " +
                 std::to_string(k) + "-thread runs");
      }
    }
  };

  for (Family f : default_families()) {
    PropConfig cfg;
    cfg.cases = 5;
    cfg.min_n = 16;
    cfg.max_n = 56;
    cfg.families = {f};
    cfg.mutation_probability = 0.3;
    cfg.base_seed = 0x7a5 + static_cast<std::uint64_t>(f);
    const PropResult res = run_property("parallel_equivalence", cfg, par_equiv);
    EXPECT_TRUE(res.ok()) << planar::family_name(f) << ": " << res.summary();
    EXPECT_EQ(res.cases_run, cfg.cases);
  }
}

TEST(ProptestPipeline, ParallelPipelineMetricsByteIdenticalToSerial) {
  // Acceptance bar for the observability subsystem: the metrics JSON —
  // merged round clock, message counter, congestion histograms, span
  // timeline with notes — must be byte-identical between a serial run and
  // a k-thread run for k in {2, 4, 8}, for every generator family. The sink
  // replay order and the coordinator-thread-only span discipline make this
  // hold exactly, not approximately.
  const Property metrics_equiv = [](const Instance& inst,
                                    InvariantReport& rep) {
    auto measure = [&](const congest::ThreadConfig& cfg) {
      congest::ScopedThreadConfig guard(cfg);
      obs::MetricsRegistry reg;
      {
        obs::ScopedMetrics scope(reg);
        InvariantReport inner;
        PipelineOptions opt;
        opt.run_hierarchy = false;  // keep each doubled run small
        run_pipeline_checked(inst, opt, inner);
      }
      return reg.to_json();
    };
    const std::string serial = measure({1, 64});
    if (serial.find("\"name\"") == std::string::npos) {
      rep.fail("serial run recorded no spans");
    }
    for (const int k : {2, 4, 8}) {
      const std::string par = measure({k, 0});
      if (serial == par) continue;
      // Find the first differing line for a readable report.
      std::size_t line_start = 0;
      for (std::size_t i = 0; i < std::min(serial.size(), par.size()); ++i) {
        if (serial[i] != par[i]) break;
        if (serial[i] == '\n') line_start = i + 1;
      }
      rep.fail("serial vs " + std::to_string(k) +
               "-thread metrics JSON diverge near: " +
               serial.substr(line_start, 160));
    }
  };

  for (Family f : default_families()) {
    PropConfig cfg;
    cfg.cases = 4;
    cfg.min_n = 16;
    cfg.max_n = 56;
    cfg.families = {f};
    cfg.mutation_probability = 0.3;
    cfg.base_seed = 0x0b5 + static_cast<std::uint64_t>(f);
    const PropResult res =
        run_property("parallel_metrics_equality", cfg, metrics_equiv);
    EXPECT_TRUE(res.ok()) << planar::family_name(f) << ": " << res.summary();
    EXPECT_EQ(res.cases_run, cfg.cases);
  }
}

TEST(ProptestPipeline, GlobalSinkDetachesCleanly) {
  // Settle any PLANSEP_METRICS bootstrap so the baseline sink is stable
  // across the engine runs below (Network::run would trigger it mid-test).
  obs::global_registry();
  congest::TraceSink* const base = congest::global_trace_sink();
  TraceRecorder rec;
  {
    ScopedTraceCapture cap(rec);
    const Instance inst =
        build_instance({Family::kGrid, 25, 1, Mutation::kNone});
    shortcuts::PartwiseEngine engine(inst.gg.graph, inst.gg.root_hint);
  }
  const long long captured = rec.total_messages();
  EXPECT_GT(captured, 0);
  EXPECT_EQ(congest::global_trace_sink(), base);
  // Outside the scope nothing more is recorded.
  const Instance inst2 =
      build_instance({Family::kGrid, 25, 2, Mutation::kNone});
  shortcuts::PartwiseEngine engine2(inst2.gg.graph, inst2.gg.root_hint);
  EXPECT_EQ(rec.total_messages(), captured);
}

TEST(ProptestReplay, InjectedViolationShrinksAndReplaysDeterministically) {
  // Artificially injected invariant violation: pretend instances above 40
  // nodes are broken. The harness must shrink toward the threshold and
  // print a single-line replay command that reproduces the failure.
  const Property injected = [](const Instance& inst, InvariantReport& rep) {
    if (inst.gg.graph.num_nodes() > 40) {
      rep.fail("injected: n = " +
               std::to_string(inst.gg.graph.num_nodes()) + " > 40");
    }
  };
  PropConfig cfg;
  cfg.cases = 60;
  cfg.min_n = 30;
  cfg.max_n = 90;
  cfg.base_seed = 3;
  cfg.max_failures = 1;

  ::testing::internal::CaptureStderr();
  const PropResult res = run_property("injected", cfg, injected);
  const std::string err = ::testing::internal::GetCapturedStderr();

  ASSERT_FALSE(res.ok());
  const Failure& f = res.failures.front();

  // The replay command was printed, on a single line.
  const auto at = err.find(f.replay);
  ASSERT_NE(at, std::string::npos) << err;
  const auto line_start = err.rfind('\n', at);
  const auto line_end = err.find('\n', at);
  const std::string line = err.substr(
      line_start == std::string::npos ? 0 : line_start + 1,
      (line_end == std::string::npos ? err.size() : line_end) -
          (line_start == std::string::npos ? 0 : line_start + 1));
  EXPECT_NE(line.find("--seed="), std::string::npos) << line;
  EXPECT_NE(line.find("--family="), std::string::npos) << line;
  EXPECT_NE(line.find("--n="), std::string::npos) << line;

  // The command parses and reproduces the failure, deterministically.
  const auto spec = parse_replay(f.replay);
  ASSERT_TRUE(spec.has_value()) << f.replay;
  const InvariantReport once = run_one(*spec, injected);
  const InvariantReport twice = run_one(*spec, injected);
  EXPECT_FALSE(once.ok());
  EXPECT_EQ(once.to_string(), twice.to_string());

  // Shrinking moved toward the threshold without crossing it.
  EXPECT_LE(f.shrunk.n, f.original.n);
  EXPECT_GT(build_instance(f.shrunk).gg.graph.num_nodes(), 40);
  EXPECT_LE(f.shrunk.n, 60);
}

TEST(ProptestReplay, ExceptionsAreCapturedAsViolations) {
  const Property throws = [](const Instance&, InvariantReport&) {
    throw CheckError("synthetic engine failure");
  };
  const InvariantReport rep =
      run_one({Family::kGrid, 16, 9, Mutation::kNone}, throws);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("synthetic engine failure"),
            std::string::npos);
}

}  // namespace
}  // namespace plansep::testing
