// Property tests for the core of the paper's first contribution: the
// deterministic face-weight formula (Definition 2) must equal the region
// count established by Lemmas 3 and 4 on EVERY real fundamental edge of
// EVERY instance, for arbitrary spanning trees and virtual-root stubs.

#include <gtest/gtest.h>

#include <string>

#include "faces/fundamental.hpp"
#include "faces/weight_oracle.hpp"
#include "faces/weights.hpp"
#include "planar/generators.hpp"
#include "tree/rooted_tree.hpp"
#include "util/rng.hpp"

namespace plansep::faces {
namespace {

using planar::Family;
using planar::GeneratedGraph;

struct Case {
  Family family;
  int n;
  std::uint64_t seeds;
};

class WeightsMatchOracle : public ::testing::TestWithParam<Case> {};

TEST_P(WeightsMatchOracle, AllFundamentalEdges) {
  const Case& c = GetParam();
  int checked_edges = 0;
  for (std::uint64_t seed = 1; seed <= c.seeds; ++seed) {
    const GeneratedGraph gg = planar::make_instance(c.family, c.n, seed);
    const planar::EmbeddedGraph& g = gg.graph;
    Rng rng(seed * 977);
    // Random root on each repetition; random stub gap at the root.
    const planar::NodeId root =
        static_cast<planar::NodeId>(rng.next_below(g.num_nodes()));
    const int gap = static_cast<int>(rng.next_below(g.degree(root) + 1));
    const tree::RootedSpanningTree t =
        tree::RootedSpanningTree::bfs(g, root, gap);
    const FaceOracle oracle(t);
    for (planar::EdgeId e : real_fundamental_edges(t)) {
      const FundamentalEdge fe = analyze_fundamental_edge(t, e);
      const FaceOracle::Region region = oracle.real_face(fe);
      const long long expected = oracle.lemma_weight(fe.u, fe.v, region);
      const long long got = face_weight(t, fe);
      ASSERT_EQ(got, expected)
          << planar::family_name(c.family) << " n=" << c.n << " seed=" << seed
          << " edge {" << fe.u << "," << fe.v << "}"
          << " anc=" << fe.u_ancestor_of_v
          << (fe.u_ancestor_of_v
                  ? (uses_left_order(fe) ? " [pi_l]" : " [pi_r]")
                  : "")
          << " root=" << root << " gap=" << gap;
      ++checked_edges;
    }
  }
  // The suite must actually exercise fundamental edges for cyclic families.
  if (c.family != Family::kRandomTree && c.family != Family::kStar) {
    EXPECT_GT(checked_edges, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightsMatchOracle,
    ::testing::Values(Case{Family::kCycle, 8, 3},
                      Case{Family::kCycle, 17, 3},
                      Case{Family::kWheel, 8, 4},
                      Case{Family::kWheel, 15, 4},
                      Case{Family::kGrid, 16, 4},
                      Case{Family::kGrid, 36, 4},
                      Case{Family::kGridDiagonals, 25, 6},
                      Case{Family::kCylinder, 24, 4},
                      Case{Family::kTriangulation, 12, 8},
                      Case{Family::kTriangulation, 30, 8},
                      Case{Family::kRandomPlanar, 24, 8},
                      Case{Family::kRandomPlanar, 48, 6},
                      Case{Family::kOuterplanar, 20, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string s = std::string(planar::family_name(info.param.family)) +
                      "_" + std::to_string(info.param.n);
      for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return s;
    });

TEST(WeightsOracle, WheelByHand) {
  // Wheel with hub 0 and rim 1..6; rooted at rim node 1. The BFS tree is
  // hub-star-like; fundamental edges are rim edges. Sanity check that the
  // oracle and the formula agree and produce plausible counts.
  const GeneratedGraph gg = planar::wheel(7);
  const tree::RootedSpanningTree t = tree::RootedSpanningTree::bfs(gg.graph, 1);
  const FaceOracle oracle(t);
  const auto fund = real_fundamental_edges(t);
  ASSERT_FALSE(fund.empty());
  for (planar::EdgeId e : fund) {
    const FundamentalEdge fe = analyze_fundamental_edge(t, e);
    const auto region = oracle.real_face(fe);
    EXPECT_EQ(face_weight(t, fe), oracle.lemma_weight(fe.u, fe.v, region));
    // A face of the wheel holds at most all non-border nodes.
    EXPECT_LE(region.inside_count, t.size() - 2);
    EXPECT_GE(region.inside_count, 0);
  }
}

TEST(WeightsOracle, SubsetInstance) {
  // Weights remain correct on induced subgraphs (partition parts).
  const GeneratedGraph gg = planar::grid(5, 5);
  std::vector<char> in_set(25, 0);
  // A 4x4 sub-grid (nodes with row<4 and col<4).
  for (int r = 0; r < 4; ++r) {
    for (int col = 0; col < 4; ++col) in_set[r * 5 + col] = 1;
  }
  const tree::RootedSpanningTree t =
      tree::RootedSpanningTree::bfs_subset(gg.graph, 0, in_set);
  EXPECT_EQ(t.size(), 16);
  const FaceOracle oracle(t);
  int count = 0;
  for (planar::EdgeId e : real_fundamental_edges(t)) {
    const FundamentalEdge fe = analyze_fundamental_edge(t, e);
    const auto region = oracle.real_face(fe);
    EXPECT_EQ(face_weight(t, fe), oracle.lemma_weight(fe.u, fe.v, region));
    ++count;
  }
  EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace plansep::faces
