// Deep-tree stress: the paper's results hold for ARBITRARY spanning trees
// (§3.1.1 stresses depth up to Θ(n)), but most sweeps elsewhere use BFS
// trees. Here every face-machinery property is re-checked on random DFS
// spanning trees (which are as deep as the graph allows), and the
// separator engine is run end-to-end on them.

#include <gtest/gtest.h>

#include <string>

#include "faces/augmentation.hpp"
#include "faces/fundamental.hpp"
#include "faces/hidden.hpp"
#include "faces/membership.hpp"
#include "faces/weight_oracle.hpp"
#include "faces/weights.hpp"
#include "planar/generators.hpp"
#include "separator/engine.hpp"
#include "separator/validate.hpp"
#include "subroutines/part_context.hpp"
#include "tree/rooted_tree.hpp"
#include "util/rng.hpp"

namespace plansep::faces {
namespace {

using planar::Family;
using planar::GeneratedGraph;
using planar::NodeId;

/// Random DFS spanning tree: maximally deep, randomized child order.
tree::RootedSpanningTree random_dfs_tree(const planar::EmbeddedGraph& g,
                                         NodeId root, Rng& rng) {
  std::vector<planar::DartId> parent(g.num_nodes(), planar::kNoDart);
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{root};
  seen[root] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    std::vector<planar::DartId> darts(g.rotation(v).begin(),
                                      g.rotation(v).end());
    rng.shuffle(darts);
    for (planar::DartId d : darts) {
      const NodeId w = g.head(d);
      if (seen[w]) continue;
      seen[w] = 1;
      parent[w] = planar::EmbeddedGraph::rev(d);
      stack.push_back(w);
    }
  }
  const int gap = static_cast<int>(rng.next_below(g.degree(root) + 1));
  return tree::RootedSpanningTree(g, root, std::move(parent), gap);
}

struct Case {
  Family family;
  int n;
  std::uint64_t seeds;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = std::string(planar::family_name(info.param.family)) + "_" +
                  std::to_string(info.param.n);
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

class DeepTreeProperty : public ::testing::TestWithParam<Case> {};

TEST_P(DeepTreeProperty, WeightsAndMembership) {
  const Case& c = GetParam();
  int max_depth_seen = 0;
  for (std::uint64_t seed = 1; seed <= c.seeds; ++seed) {
    const GeneratedGraph gg = planar::make_instance(c.family, c.n, seed);
    Rng rng(seed * 60013 + 1);
    const NodeId root =
        static_cast<NodeId>(rng.next_below(gg.graph.num_nodes()));
    const auto t = random_dfs_tree(gg.graph, root, rng);
    for (NodeId v : t.nodes()) {
      max_depth_seen = std::max(max_depth_seen, t.depth(v));
    }
    const FaceOracle oracle(t);
    for (planar::EdgeId e : real_fundamental_edges(t)) {
      const FundamentalEdge fe = analyze_fundamental_edge(t, e);
      const auto region = oracle.real_face(fe);
      // Definition 2 == Lemmas 3/4 on deep trees.
      ASSERT_EQ(face_weight(t, fe), oracle.lemma_weight(fe.u, fe.v, region))
          << planar::family_name(c.family) << " seed=" << seed << " e={"
          << fe.u << "," << fe.v << "}";
      // Remark 1 membership on deep trees.
      std::vector<char> on_border(gg.graph.num_nodes(), 0);
      for (NodeId b : region.border) on_border[b] = 1;
      const FaceData fd = face_data(t, fe);
      for (NodeId z : t.nodes()) {
        const FaceSide side = classify_node(fd, node_data(t, z));
        FaceSide want = FaceSide::kOutside;
        if (on_border[z]) {
          want = FaceSide::kBorder;
        } else if (region.inside[z]) {
          want = FaceSide::kInside;
        }
        ASSERT_EQ(static_cast<int>(side), static_cast<int>(want))
            << planar::family_name(c.family) << " seed=" << seed << " e={"
            << fe.u << "," << fe.v << "} z=" << z;
      }
    }
  }
  // The sweep must actually exercise deep trees.
  if (c.family == Family::kGrid) {
    EXPECT_GT(max_depth_seen, c.n / 4);
  }
}

TEST_P(DeepTreeProperty, NotHiddenLeafWeightRealizable) {
  const Case& c = GetParam();
  for (std::uint64_t seed = 1; seed <= c.seeds; ++seed) {
    const GeneratedGraph gg = planar::make_instance(c.family, c.n, seed);
    Rng rng(seed * 71993 + 5);
    const NodeId root =
        static_cast<NodeId>(rng.next_below(gg.graph.num_nodes()));
    const auto t = random_dfs_tree(gg.graph, root, rng);
    const FaceOracle oracle(t);
    for (planar::EdgeId e : real_fundamental_edges(t)) {
      const FundamentalEdge fe = analyze_fundamental_edge(t, e);
      const auto region = oracle.real_face(fe);
      for (NodeId z : t.nodes()) {
        if (!region.inside[z] || !t.children(z).empty()) continue;
        if (gg.graph.has_edge(fe.u, z)) continue;
        if (!hiding_edges(t, fe, z).empty()) continue;
        const auto regions = oracle.augmented_faces(fe, z);
        const long long got = augmented_weight(t, fe, z);
        bool matched = false;
        for (const auto& r : regions) {
          matched |= (oracle.lemma_weight(fe.u, z, r) == got);
        }
        ASSERT_TRUE(matched)
            << planar::family_name(c.family) << " seed=" << seed << " e={"
            << fe.u << "," << fe.v << "} z=" << z;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeepTreeProperty,
                         ::testing::Values(Case{Family::kGrid, 25, 6},
                                           Case{Family::kGrid, 49, 4},
                                           Case{Family::kGridDiagonals, 36, 5},
                                           Case{Family::kCylinder, 36, 4},
                                           Case{Family::kTriangulation, 25, 8},
                                           Case{Family::kRandomPlanar, 36, 6},
                                           Case{Family::kOuterplanar, 24, 6},
                                           Case{Family::kWheel, 14, 4}),
                         case_name);

TEST(DeepTreeSeparator, EngineWorksOnRandomDfsTrees) {
  // Run the separator phases on parts whose trees are deep random DFS
  // trees instead of Borůvka trees.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const GeneratedGraph gg =
        planar::make_instance(Family::kGridDiagonals, 100, seed);
    const auto& g = gg.graph;
    Rng rng(seed * 29 + 3);
    plansep::shortcuts::PartwiseEngine engine(g, gg.root_hint);
    const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = random_dfs_tree(g, root, rng);
    std::vector<planar::DartId> parent(g.num_nodes(), planar::kNoDart);
    for (NodeId v : t.nodes()) parent[v] = t.parent_dart(v);
    std::vector<int> part(g.num_nodes(), 0);
    plansep::sub::PartSet ps = plansep::sub::part_set_from_forest(g, part, 1, parent, {root},
                                                engine);
    plansep::separator::SeparatorEngine se(engine);
    const auto res = se.compute(ps);
    const auto chk = plansep::separator::check_separator(ps, 0, res.parts[0]);
    EXPECT_TRUE(chk.ok()) << "seed=" << seed << " phase=" << res.parts[0].phase
                          << " balance=" << chk.balance;
    EXPECT_EQ(res.stats.phase_counts[7], 0) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace plansep::faces
