// Tests for the worker pool behind the parallel round executor and for
// the engine edge cases the pool must survive: more shards than active
// nodes, empty rounds with in-flight messages, nested ScopedThreadConfig
// overrides, earliest-error rethrow across shards, and arena reuse across
// repeated runs of the same Network.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/bfs_tree.hpp"
#include "congest/network.hpp"
#include "congest/thread_pool.hpp"
#include "planar/generators.hpp"
#include "testing/trace.hpp"
#include "util/check.hpp"

namespace plansep::congest {
namespace {

using planar::GeneratedGraph;
using testing::TraceRecorder;

// ------------------------------------------------------------ raw pool --

TEST(ThreadPool, CoversEveryShardExactlyOnce) {
  constexpr int kShards = 32;
  std::vector<std::atomic<int>> hits(kShards);
  for (auto& h : hits) h.store(0);
  ThreadPool::instance().run_shards(kShards,
                                    [&](int shard) { hits[shard]++; });
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
  // k shards need k-1 workers; the pool grows on demand and keeps them.
  EXPECT_GE(ThreadPool::instance().worker_count(), kShards - 1);
}

TEST(ThreadPool, SingleShardRunsInlineAndZeroShardsIsAnError) {
  std::thread::id ran_on;
  ThreadPool::instance().run_shards(
      1, [&](int) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id())
      << "one shard must not pay a barrier";
  EXPECT_THROW(ThreadPool::instance().run_shards(0, [](int) {}),
               plansep::CheckError);
}

TEST(ThreadPool, ReusedAcrossManyBarriersWithoutGrowth) {
  constexpr int kShards = 8;
  constexpr int kReps = 200;
  std::atomic<long long> total{0};
  ThreadPool::instance().run_shards(kShards, [&](int) { total++; });
  const int workers_after_first = ThreadPool::instance().worker_count();
  for (int rep = 1; rep < kReps; ++rep) {
    ThreadPool::instance().run_shards(kShards, [&](int) { total++; });
  }
  EXPECT_EQ(total.load(), static_cast<long long>(kShards) * kReps);
  EXPECT_EQ(ThreadPool::instance().worker_count(), workers_after_first)
      << "repeat barriers at the same width must not spawn new workers";
}

// ------------------------------------------------------- engine edges --

// v -> v+1 ping down a path, recording (round, payload) per node.
class Ping : public NodeProgram {
 public:
  explicit Ping(int sends) : sends_(sends) {}
  std::vector<NodeId> initial_nodes(const planar::EmbeddedGraph& g) override {
    received.assign(static_cast<std::size_t>(g.num_nodes()), {});
    return {0};
  }
  void round(NodeId v, InboxView inbox, Ctx& ctx) override {
    for (const auto& inc : inbox) {
      received[static_cast<std::size_t>(v)].push_back(
          {ctx.round(), inc.msg.a});
    }
    if (v == 0 && ctx.round() < sends_) {
      Message m;
      m.a = ctx.round();
      ctx.send(1, m);
      if (ctx.round() + 1 < sends_) ctx.wake_next_round();
    }
  }
  std::vector<std::vector<std::pair<int, std::int64_t>>> received;

 private:
  int sends_ = 1;
};

// Stalls every message by one round — manufactures rounds where no node
// is active but messages are still in flight.
class StallAll : public FaultInjector {
 public:
  bool crashed(int, NodeId) override { return false; }
  Fate fate(int, NodeId, NodeId) override { return Fate::kStall; }
  std::uint64_t reorder_seed(int, NodeId) override { return 0; }
};

TEST(ParallelNetwork, ShardsMayExceedActiveNodes) {
  // 8 shards over at most 4 nodes: most shards get empty slices every
  // round and the run must still be bit-identical to serial.
  const GeneratedGraph gg = planar::path(4);
  const auto capture = [&](int threads) {
    ScopedThreadConfig tc({threads, 0});
    TraceRecorder rec;
    testing::ScopedTraceCapture cap(rec);
    distributed_bfs(gg.graph, gg.root_hint);
    return rec.events();
  };
  const auto serial = capture(1);
  const auto wide = capture(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(testing::first_divergence(wide, serial), -1)
      << testing::diff_traces(wide, serial);
}

TEST(ParallelNetwork, EmptyRoundsWithInFlightMessages) {
  // A stalled send leaves round 1 with no active node but a message in
  // flight; the parallel engine must keep the run alive and deliver in
  // round 2, exactly like the serial engine.
  const GeneratedGraph gg = planar::path(3);
  const auto run = [&](int threads) {
    congest::Network net(gg.graph);
    net.set_threads(threads);
    net.set_min_active_to_parallelize(0);
    StallAll stall;
    net.set_fault_injector(&stall);
    Ping prog(1);
    net.run(prog, 16);
    return prog.received;
  };
  const auto serial = run(1);
  const auto wide = run(8);
  ASSERT_EQ(serial[1].size(), 1u);
  EXPECT_EQ(serial[1][0].first, 2);
  EXPECT_EQ(wide, serial);
}

TEST(ParallelNetwork, NestedScopedThreadConfigRestores) {
  const ThreadConfig base = default_thread_config();
  {
    ScopedThreadConfig outer({4, 16, false});
    EXPECT_EQ(default_thread_config().threads, 4);
    EXPECT_EQ(default_thread_config().min_active_to_parallelize, 16);
    EXPECT_FALSE(default_thread_config().fuse_rounds);
    {
      ScopedThreadConfig inner({8, 0});
      EXPECT_EQ(default_thread_config().threads, 8);
      EXPECT_EQ(default_thread_config().min_active_to_parallelize, 0);
      EXPECT_TRUE(default_thread_config().fuse_rounds);
    }
    EXPECT_EQ(default_thread_config().threads, 4);
    EXPECT_EQ(default_thread_config().min_active_to_parallelize, 16);
    EXPECT_FALSE(default_thread_config().fuse_rounds);
  }
  EXPECT_EQ(default_thread_config().threads, base.threads);
  EXPECT_EQ(default_thread_config().min_active_to_parallelize,
            base.min_active_to_parallelize);
  EXPECT_EQ(default_thread_config().fuse_rounds, base.fuse_rounds);
}

// Every node is initially active; the listed nodes throw on their first
// turn. Serial execution hits the lowest-id thrower first, so the
// parallel engine's earliest-error rethrow must surface the same one.
class ThrowAt : public NodeProgram {
 public:
  explicit ThrowAt(std::vector<NodeId> throwers)
      : throwers_(std::move(throwers)) {}
  std::vector<NodeId> initial_nodes(const planar::EmbeddedGraph& g) override {
    std::vector<NodeId> all;
    for (NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
    return all;
  }
  void round(NodeId v, InboxView, Ctx&) override {
    for (const NodeId t : throwers_) {
      if (v == t) throw std::runtime_error("node " + std::to_string(v));
    }
  }

 private:
  std::vector<NodeId> throwers_;
};

TEST(ParallelNetwork, RethrowsTheEarliestErrorInSerialOrder) {
  const GeneratedGraph gg = planar::grid(5, 5);
  const auto error_of = [&](int threads) {
    congest::Network net(gg.graph);
    net.set_threads(threads);
    net.set_min_active_to_parallelize(0);
    // Throwers land in different shards; node 7 precedes node 19 in
    // serial turn order, so "node 7" must win for every k.
    ThrowAt prog({19, 7});
    try {
      net.run(prog, 8);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string serial = error_of(1);
  ASSERT_EQ(serial, "node 7");
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(error_of(threads), serial) << "threads=" << threads;
  }
}

TEST(ParallelNetwork, ArenaReuseAcrossRunsLeaksNoState) {
  // The same Network object rerun several times (arenas, inbox slabs and
  // activation scratch are all reused) must reproduce its first run
  // bit-for-bit, including after an aborted run left arenas mid-flight.
  const GeneratedGraph gg = planar::path(6);
  congest::Network net(gg.graph);
  net.set_threads(8);
  net.set_min_active_to_parallelize(0);
  const auto run_once = [&] {
    Ping prog(4);
    TraceRecorder rec;
    testing::ScopedTraceCapture cap(rec);
    const int rounds = net.run(prog, 32);
    return std::make_pair(rounds, rec.events());
  };
  const auto first = run_once();
  ASSERT_FALSE(first.second.empty());
  for (int rep = 0; rep < 3; ++rep) {
    const auto again = run_once();
    EXPECT_EQ(again.first, first.first) << "rep " << rep;
    EXPECT_EQ(testing::first_divergence(again.second, first.second), -1)
        << "rep " << rep << "\n"
        << testing::diff_traces(again.second, first.second);
  }
  // Abort a run mid-flight, then confirm the next clean run still matches.
  {
    ThrowAt bomb({3});
    EXPECT_THROW(net.run(bomb, 8), std::runtime_error);
  }
  const auto after_abort = run_once();
  EXPECT_EQ(after_abort.first, first.first);
  EXPECT_EQ(testing::first_divergence(after_abort.second, first.second), -1)
      << testing::diff_traces(after_abort.second, first.second);
}

}  // namespace
}  // namespace plansep::congest
